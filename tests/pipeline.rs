//! End-to-end integration tests: scene → BVH → trace capture → simulation,
//! across every method, exercising the whole stack exactly as the
//! experiment harness does.

use drs::baselines::{DmkConfig, DmkKernel, DmkUnit, TbcConfig, TbcUnit};
use drs::core::system::{DrsSystem, RowedWhileIf};
use drs::core::{DrsConfig, DrsUnit};
use drs::kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs::scene::SceneKind;
use drs::sim::{GpuConfig, NullSpecial, SimStats, Simulation};
use drs::trace::{BounceStreams, RayScript};

fn gpu(warps: usize) -> GpuConfig {
    GpuConfig { max_warps: warps, max_cycles: 200_000_000, ..GpuConfig::gtx780() }
}

fn capture(kind: SceneKind, rays: usize, bounces: usize) -> BounceStreams {
    let scene = kind.build_with_tris(4_000);
    BounceStreams::capture(&scene, rays, bounces, 0xFEED)
}

fn run_aila(scripts: &[RayScript], warps: usize) -> SimStats {
    let k = WhileWhileKernel::new(WhileWhileConfig::default());
    Simulation::new(gpu(warps), k.program(), Box::new(k.clone()), Box::new(NullSpecial), scripts)
        .run()
        .expect("aila completes")
}

fn run_drs(scripts: &[RayScript], warps: usize) -> SimStats {
    let cfg = DrsConfig { warps, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 };
    let k = WhileIfKernel::new();
    Simulation::new(
        gpu(warps),
        k.program(),
        Box::new(RowedWhileIf::new(cfg.rows())),
        Box::new(DrsUnit::new(cfg)),
        scripts,
    )
    .run()
    .expect("drs completes")
}

#[test]
fn full_pipeline_all_methods_trace_every_ray() {
    let streams = capture(SceneKind::Conference, 700, 2);
    let scripts = &streams.bounce(2).scripts;
    let expected = scripts.len() as u64;

    let aila = run_aila(scripts, 4);
    assert_eq!(aila.rays_completed, expected);

    let drs = run_drs(scripts, 4);
    assert_eq!(drs.rays_completed, expected);

    let dmk_cfg = DmkConfig { warps: 4, lanes: 32, pool_slots: 4 * 32 };
    let dmk_kernel = DmkKernel::new(dmk_cfg);
    let dmk = Simulation::new(
        gpu(4),
        dmk_kernel.program(),
        Box::new(dmk_kernel.clone()),
        Box::new(DmkUnit::new(dmk_cfg)),
        scripts,
    )
    .run()
    .expect("dmk completes");
    assert_eq!(dmk.rays_completed, expected);

    let tbc_kernel = WhileIfKernel::new();
    let tbc_cfg = TbcConfig { warps: 4, lanes: 32, warps_per_block: 4 };
    let tbc = Simulation::new(
        gpu(4),
        tbc_kernel.program(),
        Box::new(tbc_kernel.clone()),
        Box::new(TbcUnit::new(tbc_cfg)),
        scripts,
    )
    .run()
    .expect("tbc completes");
    assert_eq!(tbc.rays_completed, expected);
}

#[test]
fn headline_result_drs_beats_aila_on_secondary_rays() {
    // The paper's core claim at miniature scale: on incoherent secondary
    // rays, DRS clearly improves both SIMD efficiency and throughput.
    let streams = capture(SceneKind::Conference, 1_200, 2);
    let scripts = &streams.bounce(2).scripts;
    let aila = run_aila(scripts, 6);
    let drs = run_drs(scripts, 6);
    let e_aila = aila.issued.simd_efficiency();
    let e_drs = drs.issued.simd_efficiency();
    assert!(
        e_drs > e_aila * 1.3,
        "DRS SIMD efficiency {e_drs:.3} should dominate Aila {e_aila:.3}"
    );
    assert!(
        drs.cycles < aila.cycles,
        "DRS cycles {} should undercut Aila {}",
        drs.cycles,
        aila.cycles
    );
}

#[test]
fn primary_rays_are_coherent_secondary_are_not() {
    // Figure 2's premise, end to end.
    let streams = capture(SceneKind::CrytekSponza, 1_000, 2);
    let b1 = run_aila(&streams.bounce(1).scripts, 4);
    let b2 = run_aila(&streams.bounce(2).scripts, 4);
    let e1 = b1.issued.simd_efficiency();
    let e2 = b2.issued.simd_efficiency();
    assert!(e1 > e2 + 0.05, "B1 {e1:.3} must exceed B2 {e2:.3}");
}

#[test]
fn drs_system_wrapper_end_to_end() {
    let streams = capture(SceneKind::FairyForest, 600, 2);
    let sys = DrsSystem::new(
        gpu(4),
        DrsConfig { warps: 4, backup_rows: 2, swap_buffers: 9, ideal: false, lanes: 32 },
    );
    let out = sys.simulate(&streams.bounce(1).scripts).expect("completes");
    assert_eq!(out.rays_completed, streams.bounce(1).scripts.len() as u64);
}

#[test]
fn simulations_are_deterministic_end_to_end() {
    let streams = capture(SceneKind::Plants, 500, 2);
    let scripts = &streams.bounce(1).scripts;
    let a = run_drs(scripts, 4);
    let b = run_drs(scripts, 4);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.issued.total, b.issued.total);
    assert_eq!(a.swaps_completed, b.swaps_completed);
}

#[test]
fn bvh_addresses_flow_into_texture_cache() {
    let streams = capture(SceneKind::Conference, 500, 1);
    let out = run_aila(&streams.bounce(1).scripts, 4);
    let l1t_total = out.l1t.hits + out.l1t.misses;
    assert!(l1t_total > 0, "BVH traffic must hit the texture cache");
    assert!(
        out.l1t.hit_rate() > 0.3,
        "coherent primary rays should reuse cached nodes, rate {}",
        out.l1t.hit_rate()
    );
}
