//! Golden tests for the static verifier: every shipped kernel program must
//! verify clean of errors, every malformed fixture must be rejected with
//! its own distinct diagnostic, and every method must finish a simulation
//! run — which, under `--features validate`, additionally engages the
//! engine's runtime invariant checks (mask subsets, divergence partitions,
//! end-of-kernel drain).

use drs::baselines::{DmkConfig, DmkKernel, DmkUnit, TbcConfig, TbcUnit};
use drs::core::system::RowedWhileIf;
use drs::core::{DrsConfig, DrsUnit};
use drs::kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs::sim::{Block, GpuConfig, MemSpace, MicroOp, NullSpecial, Program, Simulation, Terminator};
use drs::trace::{RayScript, Step, Termination};
use drs::verify::{verify_blocks, verify_config, verify_program, Check, Report};

fn shipped_programs() -> Vec<(&'static str, Program)> {
    vec![
        ("while-while", WhileWhileKernel::new(WhileWhileConfig::default()).program()),
        ("while-if", WhileIfKernel::new().program()),
        ("dmk", DmkKernel::new(DmkConfig::paper_default(4)).program()),
        // TBC and DRS drive the while-if program with their own hardware
        // units; what they execute is what must verify.
        ("tbc", WhileIfKernel::new().program()),
        ("drs", WhileIfKernel::new().program()),
    ]
}

#[test]
fn all_shipped_kernels_verify_clean() {
    for (name, program) in shipped_programs() {
        let report = verify_program(&program);
        assert!(report.is_clean(), "kernel {name} has errors:\n{report}");
        assert!(!report.has(Check::UnreachableBlock), "kernel {name}:\n{report}");
        assert!(!report.has(Check::ReconvergeMismatch), "kernel {name}:\n{report}");
    }
}

#[test]
fn paper_config_lints_clean() {
    let report = verify_config(&GpuConfig::gtx780());
    assert!(report.is_clean(), "gtx780 config has errors:\n{report}");
}

// ---------------------------------------------------------------------------
// Malformed golden fixtures: each fires its own distinct diagnostic code.
// ---------------------------------------------------------------------------

/// The only error codes the fixture is allowed to fire, so each golden
/// program demonstrates exactly the defect it was written for.
fn sole_error(report: &Report, check: Check) {
    assert!(report.has(check), "expected {}:\n{report}", check.code());
    for d in report.errors() {
        assert_eq!(d.check, check, "unexpected extra error:\n{report}");
    }
}

#[test]
fn golden_wrong_reconverge() {
    // Diamond followed by a tail: the branch declares reconvergence at the
    // tail, a real post-dominator but not the *immediate* one. The stack
    // still balances — the warp just reconverges a block late, silently
    // losing SIMD efficiency. Exactly the bug class only IPDOM math catches.
    let blocks = vec![
        Block::new(
            "entry",
            vec![MicroOp::alu(1, &[], 1)],
            Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 3 },
        ),
        Block::new("then", vec![MicroOp::alu(1, &[1], 1)], Terminator::Jump(2)),
        Block::new("join", vec![MicroOp::alu(1, &[1], 1)], Terminator::Jump(3)),
        Block::new("tail", vec![MicroOp::store(MemSpace::Global, 0, &[1])], Terminator::Exit),
    ];
    sole_error(&verify_blocks(&blocks), Check::ReconvergeMismatch);
}

#[test]
fn golden_dangling_block() {
    let blocks = vec![
        Block::new(
            "entry",
            vec![],
            Terminator::Branch { cond: 0, on_true: 1, on_false: 9, reconverge: 1 },
        ),
        Block::new("exit", vec![], Terminator::Exit),
    ];
    sole_error(&verify_blocks(&blocks), Check::DanglingTarget);
}

#[test]
fn golden_read_before_write() {
    // r7 is read on the entry path but no path ever writes it first.
    let blocks = vec![
        Block::new("entry", vec![MicroOp::alu(1, &[7], 1)], Terminator::Jump(1)),
        Block::new("exit", vec![MicroOp::store(MemSpace::Global, 0, &[1])], Terminator::Exit),
    ];
    sole_error(&verify_blocks(&blocks), Check::ReadBeforeWrite);
}

#[test]
fn golden_non_uniform_exit() {
    // One divergent path exits directly while its sibling lanes would still
    // be parked at the declared reconvergence point.
    let blocks = vec![
        Block::new(
            "entry",
            vec![MicroOp::alu(1, &[], 1)],
            Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
        ),
        Block::new("early_out", vec![], Terminator::Exit),
        Block::new("join", vec![MicroOp::store(MemSpace::Global, 0, &[1])], Terminator::Exit),
    ];
    let report = verify_blocks(&blocks);
    assert!(report.has(Check::NonUniformExit), "{report}");
    // This CFG necessarily also mis-declares reconvergence (the paths never
    // rejoin); both defects must be named.
    assert!(report.has(Check::ReconvergeMismatch), "{report}");
}

#[test]
fn golden_unbounded_stack() {
    // Two mutually-looping branch blocks that park at *alternating*
    // reconvergence points neither loop ever visits: every round trip
    // pushes two fresh entries, so the SIMT stack grows without bound.
    let blocks = vec![
        Block::new(
            "head_a",
            vec![],
            Terminator::Branch { cond: 0, on_true: 1, on_false: 4, reconverge: 2 },
        ),
        Block::new(
            "head_b",
            vec![],
            Terminator::Branch { cond: 1, on_true: 0, on_false: 4, reconverge: 3 },
        ),
        Block::new("park_a", vec![], Terminator::Jump(4)),
        Block::new("park_b", vec![], Terminator::Jump(4)),
        Block::new("exit", vec![], Terminator::Exit),
    ];
    let report = verify_blocks(&blocks);
    assert!(report.has(Check::UnboundedStack), "{report}");
}

#[test]
fn golden_fixtures_fire_distinct_codes() {
    // The four headline fixtures must be distinguishable by code alone.
    let codes = [
        Check::ReconvergeMismatch.code(),
        Check::DanglingTarget.code(),
        Check::ReadBeforeWrite.code(),
        Check::NonUniformExit.code(),
    ];
    let mut unique: Vec<&str> = codes.to_vec();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), codes.len(), "codes collide: {codes:?}");
}

// ---------------------------------------------------------------------------
// Every method completes a simulation run. Built with `--features validate`
// these runs additionally assert the engine's runtime invariants each tick.
// ---------------------------------------------------------------------------

fn scripts(n: usize) -> Vec<RayScript> {
    (0..n)
        .map(|i| {
            let mut steps = Vec::new();
            for k in 0..2 + i % 9 {
                steps.push(Step::Inner {
                    node_addr: 0x1000_0000 + ((i * 37 + k) % 2048) as u64 * 64,
                    both_children_hit: k % 3 == 0,
                });
            }
            if i % 3 != 0 {
                steps.push(Step::Leaf {
                    node_addr: 0x1200_0000 + (i % 512) as u64 * 64,
                    prim_base_addr: 0x4000_0000 + (i % 512) as u64 * 48,
                    prim_count: 1 + (i % 3) as u16,
                });
            }
            RayScript::new(steps, Termination::Hit)
        })
        .collect()
}

fn gpu(warps: usize) -> GpuConfig {
    GpuConfig { max_warps: warps, max_cycles: 100_000_000, ..GpuConfig::gtx780() }
}

#[test]
fn all_methods_complete_under_runtime_validation() {
    let s = scripts(300);
    let expected = s.len() as u64;

    let aila = WhileWhileKernel::new(WhileWhileConfig::default());
    let out =
        Simulation::new(gpu(4), aila.program(), Box::new(aila.clone()), Box::new(NullSpecial), &s)
            .run()
            .expect("while-while completes");
    assert_eq!(out.rays_completed, expected, "while-while");

    let drs_cfg = DrsConfig { warps: 4, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 };
    let k = WhileIfKernel::new();
    let out = Simulation::new(
        gpu(4),
        k.program(),
        Box::new(RowedWhileIf::new(drs_cfg.rows())),
        Box::new(DrsUnit::new(drs_cfg)),
        &s,
    )
    .run()
    .expect("drs completes");
    assert_eq!(out.rays_completed, expected, "drs");

    let dmk_cfg = DmkConfig { warps: 4, lanes: 32, pool_slots: 4 * 32 };
    let dmk = DmkKernel::new(dmk_cfg);
    let out = Simulation::new(
        gpu(4),
        dmk.program(),
        Box::new(dmk.clone()),
        Box::new(DmkUnit::new(dmk_cfg)),
        &s,
    )
    .run()
    .expect("dmk completes");
    assert_eq!(out.rays_completed, expected, "dmk");

    let tbc = WhileIfKernel::new();
    let tbc_cfg = TbcConfig { warps: 4, lanes: 32, warps_per_block: 4 };
    let out = Simulation::new(
        gpu(4),
        tbc.program(),
        Box::new(tbc.clone()),
        Box::new(TbcUnit::new(tbc_cfg)),
        &s,
    )
    .run()
    .expect("tbc completes");
    assert_eq!(out.rays_completed, expected, "tbc");
}
