//! Property-based tests over the core data structures and invariants.

use drs::bvh::{BuildMethod, BuildParams, Bvh, KdBuildParams, KdTree};
use drs::geom::{Mesh, Triangle};
use drs::math::{Aabb, Ray, Vec3, XorShift64};
use drs::sim::{MachineState, RayState};
use drs::trace::{RayScript, Step, Termination};
use proptest::prelude::*;

fn arb_vec3(range: f32) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_triangle() -> impl Strategy<Value = Triangle> {
    (arb_vec3(10.0), arb_vec3(10.0), arb_vec3(10.0)).prop_map(|(a, b, c)| Triangle::new(a, b, c, 0))
}

fn arb_mesh(max: usize) -> impl Strategy<Value = Mesh> {
    proptest::collection::vec(arb_triangle(), 1..max).prop_map(Mesh::from_triangles)
}

fn arb_ray() -> impl Strategy<Value = Ray> {
    (arb_vec3(20.0), arb_vec3(1.0))
        .prop_filter("nonzero direction", |(_, d)| d.length_squared() > 1e-6)
        .prop_map(|(o, d)| Ray::new(o, d.normalized()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every BVH built over any triangle soup passes structural validation.
    #[test]
    fn bvh_structure_is_always_valid(mesh in arb_mesh(120), sah in proptest::bool::ANY) {
        let method = if sah { BuildMethod::BinnedSah { bins: 8 } } else { BuildMethod::Median };
        let bvh = Bvh::build(&mesh, &BuildParams { method, max_leaf_size: 3 });
        prop_assert!(bvh.validate(&mesh).is_ok());
    }

    /// BVH traversal agrees with brute force on closest hits.
    #[test]
    fn bvh_traversal_matches_brute_force(mesh in arb_mesh(60), ray in arb_ray()) {
        let bvh = Bvh::build(&mesh, &BuildParams::default());
        let fast = bvh.intersect(&mesh, &ray);
        let slow = Bvh::intersect_brute_force(&mesh, &ray);
        match (fast, slow) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a.t - b.t).abs() < 1e-2,
                "t mismatch {} vs {}", a.t, b.t),
            (a, b) => prop_assert!(false, "hit disagreement: {a:?} vs {b:?}"),
        }
    }

    /// kd-tree traversal agrees with brute force on closest hits (same
    /// contract as the BVH, different partitioning semantics).
    #[test]
    fn kdtree_traversal_matches_brute_force(mesh in arb_mesh(60), ray in arb_ray()) {
        let kd = KdTree::build(&mesh, &KdBuildParams::default());
        prop_assert!(kd.validate(&mesh).is_ok());
        let fast = kd.intersect(&mesh, &ray);
        let slow = Bvh::intersect_brute_force(&mesh, &ray);
        match (fast, slow) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a.t - b.t).abs() < 1e-2,
                "t mismatch {} vs {}", a.t, b.t),
            (a, b) => prop_assert!(false, "hit disagreement: {a:?} vs {b:?}"),
        }
    }

    /// AABB union is commutative, associative in effect, and monotone.
    #[test]
    fn aabb_union_laws(a in arb_vec3(10.0), b in arb_vec3(10.0),
                       c in arb_vec3(10.0), d in arb_vec3(10.0)) {
        let bb1 = Aabb::from_points([a, b]);
        let bb2 = Aabb::from_points([c, d]);
        let u = bb1.union(&bb2);
        prop_assert_eq!(u, bb2.union(&bb1));
        prop_assert!(u.contains_box(&bb1));
        prop_assert!(u.contains_box(&bb2));
        prop_assert!(u.surface_area() + 1e-3 >= bb1.surface_area().max(bb2.surface_area()));
    }

    /// A ray that hits the union box must hit at least... the converse: a
    /// ray hitting either sub-box always hits their union.
    #[test]
    fn ray_hitting_part_hits_union(a in arb_vec3(5.0), b in arb_vec3(5.0),
                                   c in arb_vec3(5.0), d in arb_vec3(5.0),
                                   ray in arb_ray()) {
        let bb1 = Aabb::from_points([a, b]);
        let bb2 = Aabb::from_points([c, d]);
        let u = bb1.union(&bb2);
        let hit_part = bb1.intersect(&ray, 0.0, f32::INFINITY).is_some()
            || bb2.intersect(&ray, 0.0, f32::INFINITY).is_some();
        if hit_part {
            prop_assert!(u.intersect(&ray, 0.0, f32::INFINITY).is_some());
        }
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn rng_shuffle_is_permutation(seed in 1u64.., len in 1usize..200) {
        let mut rng = XorShift64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Machine-state slot transitions: fetch/consume/retire keep the cached
    /// state consistent with recomputation, and ray conservation holds.
    #[test]
    fn machine_state_cache_is_coherent(
        step_counts in proptest::collection::vec(0usize..6, 4..40),
        ops in proptest::collection::vec((0usize..64, 0u8..3), 1..300),
    ) {
        let scripts: Vec<RayScript> = step_counts
            .iter()
            .map(|&n| {
                RayScript::new(
                    (0..n)
                        .map(|k| Step::Inner {
                            node_addr: 0x1000 + k as u64 * 64,
                            both_children_hit: false,
                        })
                        .collect(),
                    Termination::Escaped,
                )
            })
            .collect();
        let slots = 16;
        let mut m = MachineState::new(&scripts, 2, 8, slots);
        m.track_dirty = true;
        let total = scripts.len() as u64;
        for (slot_raw, op) in ops {
            let s = slot_raw % slots;
            match op {
                0 => {
                    if m.slots[s].ray.is_none() {
                        m.fetch_into(s);
                    }
                }
                1 => {
                    if m.peek_step(s).is_some() {
                        m.consume_step(s);
                    }
                }
                _ => {
                    if m.slots[s].ray.is_some() && m.peek_step(s).is_none() {
                        m.retire_ray(s);
                    }
                }
            }
            // The cache matches a fresh recomputation.
            prop_assert_eq!(m.state_cache[s], m.compute_state(s));
        }
        // Ray conservation: handed out = resident + completed.
        let resident = m.slots.iter().filter(|s| s.ray.is_some()).count() as u64;
        let handed_out = total - m.queue.remaining() as u64;
        prop_assert_eq!(handed_out, resident + m.rays_completed);
        // States are within the legal set.
        for s in 0..slots {
            let st = m.slot_state(s);
            prop_assert!(matches!(
                st,
                RayState::Fetching | RayState::Inner | RayState::Leaf | RayState::Done
            ));
        }
    }
}

/// End-to-end robustness: for arbitrary ray scripts, both the software
/// baseline and DRS trace every ray to completion, deterministically.
mod kernel_robustness {
    use drs::core::system::RowedWhileIf;
    use drs::core::{DrsConfig, DrsUnit};
    use drs::kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
    use drs::sim::{GpuConfig, NullSpecial, Simulation};
    use drs::trace::{RayScript, Step, Termination};
    use proptest::prelude::*;

    fn arb_step() -> impl Strategy<Value = Step> {
        prop_oneof![
            (0u64..2048, proptest::bool::ANY).prop_map(|(n, b)| Step::Inner {
                node_addr: 0x1000_0000 + n * 64,
                both_children_hit: b,
            }),
            (0u64..2048, 0u64..2048, 1u16..6).prop_map(|(n, p, c)| Step::Leaf {
                node_addr: 0x1100_0000 + n * 64,
                prim_base_addr: 0x4000_0000 + p * 48,
                prim_count: c,
            }),
        ]
    }

    fn arb_scripts() -> impl Strategy<Value = Vec<RayScript>> {
        proptest::collection::vec(
            proptest::collection::vec(arb_step(), 0..24)
                .prop_map(|steps| RayScript::new(steps, Termination::Hit)),
            1..220,
        )
    }

    fn gpu() -> GpuConfig {
        GpuConfig { max_warps: 3, max_cycles: 80_000_000, ..GpuConfig::gtx780() }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn both_kernels_trace_every_ray(scripts in arb_scripts()) {
            let live = scripts.iter().filter(|s| !s.steps().is_empty()).count();
            let _ = live;
            let expected = scripts.len() as u64;

            let k = WhileWhileKernel::new(WhileWhileConfig::default());
            let aila = Simulation::new(
                gpu(), k.program(), Box::new(k.clone()), Box::new(NullSpecial), &scripts,
            ).run();
            prop_assert!(aila.completed, "while-while hit the cycle cap");
            prop_assert_eq!(aila.stats.rays_completed, expected);

            let cfg = DrsConfig { warps: 3, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 };
            let wi = WhileIfKernel::new();
            let drs = Simulation::new(
                gpu(), wi.program(),
                Box::new(RowedWhileIf::new(cfg.rows())),
                Box::new(DrsUnit::new(cfg)),
                &scripts,
            ).run();
            prop_assert!(drs.completed, "DRS hit the cycle cap");
            prop_assert_eq!(drs.stats.rays_completed, expected);
        }
    }
}
