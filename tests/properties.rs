//! Randomized property tests over the core data structures and invariants.
//!
//! Driven by the in-repo `drs_math::XorShift64` generator (no external
//! dependencies), and compiled only with `--features proptest` so the default
//! tier-1 run stays fast and offline.

#![cfg(feature = "proptest")]

use drs::bvh::{BuildMethod, BuildParams, Bvh, KdBuildParams, KdTree};
use drs::geom::{Mesh, Triangle};
use drs::math::{Aabb, Ray, Vec3, XorShift64};
use drs::sim::{MachineState, RayState};
use drs::trace::{RayScript, Step, Termination};

fn gen_vec3(rng: &mut XorShift64, range: f32) -> Vec3 {
    let mut c = || (rng.next_f32() * 2.0 - 1.0) * range;
    Vec3::new(c(), c(), c())
}

fn gen_mesh(rng: &mut XorShift64, max: usize) -> Mesh {
    let n = 1 + rng.next_below(max);
    let tris: Vec<Triangle> = (0..n)
        .map(|_| Triangle::new(gen_vec3(rng, 10.0), gen_vec3(rng, 10.0), gen_vec3(rng, 10.0), 0))
        .collect();
    Mesh::from_triangles(tris)
}

fn gen_ray(rng: &mut XorShift64) -> Ray {
    let o = gen_vec3(rng, 20.0);
    loop {
        let d = gen_vec3(rng, 1.0);
        if d.length_squared() > 1e-6 {
            return Ray::new(o, d.normalized());
        }
    }
}

/// Every BVH built over any triangle soup passes structural validation.
#[test]
fn bvh_structure_is_always_valid() {
    let mut rng = XorShift64::new(0xB44D_1001);
    for case in 0..64 {
        let mesh = gen_mesh(&mut rng, 120);
        let method =
            if case % 2 == 0 { BuildMethod::BinnedSah { bins: 8 } } else { BuildMethod::Median };
        let bvh = Bvh::build(&mesh, &BuildParams { method, max_leaf_size: 3 });
        assert!(bvh.validate(&mesh).is_ok(), "invalid BVH on case {case}");
    }
}

/// BVH traversal agrees with brute force on closest hits.
#[test]
fn bvh_traversal_matches_brute_force() {
    let mut rng = XorShift64::new(0xB44D_1002);
    for case in 0..64 {
        let mesh = gen_mesh(&mut rng, 60);
        let bvh = Bvh::build(&mesh, &BuildParams::default());
        let ray = gen_ray(&mut rng);
        let fast = bvh.intersect(&mesh, &ray);
        let slow = Bvh::intersect_brute_force(&mesh, &ray);
        match (fast, slow) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!((a.t - b.t).abs() < 1e-2, "case {case}: t mismatch {} vs {}", a.t, b.t);
            }
            (a, b) => panic!("case {case}: hit disagreement: {a:?} vs {b:?}"),
        }
    }
}

/// kd-tree traversal agrees with brute force on closest hits (same contract
/// as the BVH, different partitioning semantics).
#[test]
fn kdtree_traversal_matches_brute_force() {
    let mut rng = XorShift64::new(0xB44D_1003);
    for case in 0..64 {
        let mesh = gen_mesh(&mut rng, 60);
        let kd = KdTree::build(&mesh, &KdBuildParams::default());
        assert!(kd.validate(&mesh).is_ok());
        let ray = gen_ray(&mut rng);
        let fast = kd.intersect(&mesh, &ray);
        let slow = Bvh::intersect_brute_force(&mesh, &ray);
        match (fast, slow) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!((a.t - b.t).abs() < 1e-2, "case {case}: t mismatch {} vs {}", a.t, b.t);
            }
            (a, b) => panic!("case {case}: hit disagreement: {a:?} vs {b:?}"),
        }
    }
}

/// AABB union is commutative, containing, and monotone in surface area.
#[test]
fn aabb_union_laws() {
    let mut rng = XorShift64::new(0xB44D_1004);
    for _ in 0..256 {
        let bb1 = Aabb::from_points([gen_vec3(&mut rng, 10.0), gen_vec3(&mut rng, 10.0)]);
        let bb2 = Aabb::from_points([gen_vec3(&mut rng, 10.0), gen_vec3(&mut rng, 10.0)]);
        let u = bb1.union(&bb2);
        assert_eq!(u, bb2.union(&bb1));
        assert!(u.contains_box(&bb1));
        assert!(u.contains_box(&bb2));
        assert!(u.surface_area() + 1e-3 >= bb1.surface_area().max(bb2.surface_area()));
    }
}

/// A ray hitting either sub-box always hits their union.
#[test]
fn ray_hitting_part_hits_union() {
    let mut rng = XorShift64::new(0xB44D_1005);
    for _ in 0..256 {
        let bb1 = Aabb::from_points([gen_vec3(&mut rng, 5.0), gen_vec3(&mut rng, 5.0)]);
        let bb2 = Aabb::from_points([gen_vec3(&mut rng, 5.0), gen_vec3(&mut rng, 5.0)]);
        let u = bb1.union(&bb2);
        let ray = gen_ray(&mut rng);
        let hit_part = bb1.intersect(&ray, 0.0, f32::INFINITY).is_some()
            || bb2.intersect(&ray, 0.0, f32::INFINITY).is_some();
        if hit_part {
            assert!(u.intersect(&ray, 0.0, f32::INFINITY).is_some());
        }
    }
}

/// Shuffling preserves the multiset of elements.
#[test]
fn rng_shuffle_is_permutation() {
    let mut seeds = XorShift64::new(0xB44D_1006);
    for _ in 0..64 {
        let seed = seeds.next_u64().max(1);
        let len = 1 + seeds.next_below(200);
        let mut rng = XorShift64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }
}

/// Machine-state slot transitions: fetch/consume/retire keep the cached
/// state consistent with recomputation, and ray conservation holds.
#[test]
fn machine_state_cache_is_coherent() {
    let mut rng = XorShift64::new(0xB44D_1007);
    for _ in 0..32 {
        let n_rays = 4 + rng.next_below(36);
        let scripts: Vec<RayScript> = (0..n_rays)
            .map(|_| {
                let n = rng.next_below(6);
                RayScript::new(
                    (0..n)
                        .map(|k| Step::Inner {
                            node_addr: 0x1000 + k as u64 * 64,
                            both_children_hit: false,
                        })
                        .collect(),
                    Termination::Escaped,
                )
            })
            .collect();
        let slots = 16;
        let mut m = MachineState::new(&scripts, 2, 8, slots);
        m.track_dirty = true;
        let total = scripts.len() as u64;
        let n_ops = 1 + rng.next_below(300);
        for _ in 0..n_ops {
            let s = rng.next_below(slots);
            match rng.next_below(3) {
                0 => {
                    if m.slots[s].ray.is_none() {
                        m.fetch_into(s);
                    }
                }
                1 => {
                    if m.peek_step(s).is_some() {
                        m.consume_step(s);
                    }
                }
                _ => {
                    if m.slots[s].ray.is_some() && m.peek_step(s).is_none() {
                        m.retire_ray(s);
                    }
                }
            }
            // The cache matches a fresh recomputation.
            assert_eq!(m.state_cache[s], m.compute_state(s));
        }
        // Ray conservation: handed out = resident + completed.
        let resident = m.slots.iter().filter(|s| s.ray.is_some()).count() as u64;
        let handed_out = total - m.queue.remaining() as u64;
        assert_eq!(handed_out, resident + m.rays_completed);
        // States are within the legal set.
        for s in 0..slots {
            let st = m.slot_state(s);
            assert!(matches!(
                st,
                RayState::Fetching | RayState::Inner | RayState::Leaf | RayState::Done
            ));
        }
    }
}

/// The engine's event-driven fast path is unobservable: for arbitrary
/// ray scripts across every method family, cycle skipping on vs. off
/// yields identical `SimStats` and identical telemetry reports (stall
/// totals, interval samples, trace spans).
mod fastpath_equivalence {
    use drs::baselines::{DmkConfig, DmkKernel, DmkUnit, TbcConfig, TbcUnit};
    use drs::core::system::RowedWhileIf;
    use drs::core::{DrsConfig, DrsUnit};
    use drs::kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
    use drs::math::XorShift64;
    use drs::sim::{GpuConfig, NullSpecial, SimStats, Simulation};
    use drs::telemetry::{TelemetryCollector, TelemetryConfig, TelemetryReport};
    use drs::trace::{RayScript, Step, Termination};

    fn gen_scripts(rng: &mut XorShift64) -> Vec<RayScript> {
        let n = 1 + rng.next_below(150);
        (0..n)
            .map(|_| {
                let steps = (0..rng.next_below(20))
                    .map(|_| {
                        if rng.next_below(2) == 0 {
                            Step::Inner {
                                node_addr: 0x1000_0000 + rng.next_below(2048) as u64 * 64,
                                both_children_hit: rng.next_below(2) == 0,
                            }
                        } else {
                            Step::Leaf {
                                node_addr: 0x1100_0000 + rng.next_below(2048) as u64 * 64,
                                prim_base_addr: 0x4000_0000 + rng.next_below(2048) as u64 * 48,
                                prim_count: 1 + rng.next_below(4) as u16,
                            }
                        }
                    })
                    .collect();
                RayScript::new(steps, Termination::Hit)
            })
            .collect()
    }

    const WARPS: usize = 3;

    fn gpu() -> GpuConfig {
        GpuConfig { max_warps: WARPS, max_cycles: 80_000_000, ..GpuConfig::gtx780() }
    }

    fn build(method: usize, scripts: &[RayScript]) -> Simulation<'_> {
        match method {
            0 => {
                let k = WhileWhileKernel::new(WhileWhileConfig::default());
                Simulation::new(
                    gpu(),
                    k.program(),
                    Box::new(k.clone()),
                    Box::new(NullSpecial),
                    scripts,
                )
            }
            1 => {
                let cfg = DmkConfig { warps: WARPS, lanes: 32, pool_slots: WARPS * 32 };
                let k = DmkKernel::new(cfg);
                Simulation::new(
                    gpu(),
                    k.program(),
                    Box::new(k.clone()),
                    Box::new(DmkUnit::new(cfg)),
                    scripts,
                )
            }
            2 => {
                let k = WhileIfKernel::new();
                let cfg = TbcConfig { warps: WARPS, lanes: 32, warps_per_block: 2 };
                Simulation::new(
                    gpu(),
                    k.program(),
                    Box::new(k.clone()),
                    Box::new(TbcUnit::new(cfg)),
                    scripts,
                )
            }
            _ => {
                let cfg = DrsConfig {
                    warps: WARPS,
                    backup_rows: 1,
                    swap_buffers: 6,
                    ideal: false,
                    lanes: 32,
                };
                let k = WhileIfKernel::new();
                Simulation::new(
                    gpu(),
                    k.program(),
                    Box::new(RowedWhileIf::new(cfg.rows())),
                    Box::new(DrsUnit::new(cfg)),
                    scripts,
                )
            }
        }
    }

    fn run(
        method: usize,
        scripts: &[RayScript],
        fastpath: bool,
        telemetry: bool,
    ) -> (SimStats, Option<TelemetryReport>) {
        let mut collector = TelemetryCollector::new(TelemetryConfig {
            interval: 400,
            trace: true,
            ..TelemetryConfig::default()
        });
        let mut sim = build(method, scripts);
        if telemetry {
            sim.attach_telemetry(&mut collector);
        }
        sim.set_fastpath(fastpath);
        let out = sim.run().expect("hit the cycle cap");
        (out, telemetry.then(|| collector.into_report()))
    }

    #[test]
    fn fastpath_is_unobservable_for_random_programs() {
        let mut rng = XorShift64::new(0xB44D_1009);
        for case in 0..8 {
            let scripts = gen_scripts(&mut rng);
            for method in 0..4 {
                // Plain engine: stats must match bit for bit.
                let (fast, _) = run(method, &scripts, true, false);
                let (naive, _) = run(method, &scripts, false, false);
                assert_eq!(fast, naive, "case {case} method {method}: fast path changed SimStats");

                // With a collector attached: stats unchanged vs. the plain
                // run, and the full report — totals, interval samples,
                // trace spans — identical across the fast path.
                let (fast_t, fast_report) = run(method, &scripts, true, true);
                let (naive_t, naive_report) = run(method, &scripts, false, true);
                assert_eq!(fast_t, fast, "telemetry must stay observational");
                assert_eq!(naive_t, naive);
                let (fast_report, naive_report) = (fast_report.unwrap(), naive_report.unwrap());
                assert_eq!(
                    fast_report, naive_report,
                    "case {case} method {method}: fast path changed the telemetry report"
                );
                fast_report.check_identity().unwrap();
            }
        }
    }
}

/// End-to-end robustness: for arbitrary ray scripts, both the software
/// baseline and DRS trace every ray to completion, deterministically.
mod kernel_robustness {
    use drs::core::system::RowedWhileIf;
    use drs::core::{DrsConfig, DrsUnit};
    use drs::kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
    use drs::math::XorShift64;
    use drs::sim::{GpuConfig, NullSpecial, Simulation};
    use drs::trace::{RayScript, Step, Termination};

    fn gen_step(rng: &mut XorShift64) -> Step {
        if rng.next_below(2) == 0 {
            Step::Inner {
                node_addr: 0x1000_0000 + rng.next_below(2048) as u64 * 64,
                both_children_hit: rng.next_below(2) == 0,
            }
        } else {
            Step::Leaf {
                node_addr: 0x1100_0000 + rng.next_below(2048) as u64 * 64,
                prim_base_addr: 0x4000_0000 + rng.next_below(2048) as u64 * 48,
                prim_count: 1 + rng.next_below(5) as u16,
            }
        }
    }

    fn gen_scripts(rng: &mut XorShift64) -> Vec<RayScript> {
        let n = 1 + rng.next_below(219);
        (0..n)
            .map(|_| {
                let steps = (0..rng.next_below(24)).map(|_| gen_step(rng)).collect();
                RayScript::new(steps, Termination::Hit)
            })
            .collect()
    }

    fn gpu() -> GpuConfig {
        GpuConfig { max_warps: 3, max_cycles: 80_000_000, ..GpuConfig::gtx780() }
    }

    #[test]
    fn both_kernels_trace_every_ray() {
        let mut rng = XorShift64::new(0xB44D_1008);
        for case in 0..12 {
            let scripts = gen_scripts(&mut rng);
            let expected = scripts.len() as u64;

            let k = WhileWhileKernel::new(WhileWhileConfig::default());
            let aila = Simulation::new(
                gpu(),
                k.program(),
                Box::new(k.clone()),
                Box::new(NullSpecial),
                &scripts,
            )
            .run()
            .unwrap_or_else(|e| panic!("case {case}: while-while failed: {e}"));
            assert_eq!(aila.rays_completed, expected);

            let cfg =
                DrsConfig { warps: 3, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 };
            let wi = WhileIfKernel::new();
            let drs = Simulation::new(
                gpu(),
                wi.program(),
                Box::new(RowedWhileIf::new(cfg.rows())),
                Box::new(DrsUnit::new(cfg)),
                &scripts,
            )
            .run()
            .unwrap_or_else(|e| panic!("case {case}: DRS failed: {e}"));
            assert_eq!(drs.rays_completed, expected);
        }
    }
}
