//! Facade crate for the Dynamic Ray Shuffling (DRS) reproduction.
//!
//! Re-exports every subsystem crate under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! - [`math`] — vectors, rays, AABBs, RNG, low-discrepancy sampling
//! - [`geom`] — triangle meshes and intersection routines
//! - [`scene`] — the four procedural benchmark scenes
//! - [`bvh`] — SAH BVH and kd-tree construction, instrumented traversal
//! - [`render`] — the path tracer and per-bounce ray-stream capture
//! - [`trace`] — per-ray traversal scripts consumed by the simulator
//! - [`sim`] — the cycle-level SIMT GPU core simulator
//! - [`telemetry`] — stall attribution, interval timelines, Chrome-trace
//!   export for instrumented simulation runs
//! - [`kernels`] — the while-while (Aila) and while-if (DRS) kernels
//! - [`core`] — the Dynamic Ray Shuffling hardware model (the paper's contribution)
//! - [`baselines`] — DMK and TBC comparison hardware
//! - [`verify`] — static verification of kernel programs and GPU configs
//! - [`harness`] — parallel experiment orchestration (jobs, worker pool,
//!   capture cache, machine-readable results)
//!
//! # Quickstart
//!
//! ```
//! use drs::scene::SceneKind;
//! use drs::trace::BounceStreams;
//!
//! // A tiny conference-room stand-in: build scene + BVH, trace one bounce.
//! let scene = SceneKind::Conference.build_with_tris(500);
//! let streams = BounceStreams::capture(&scene, 64, 2, 0x1234);
//! assert!(!streams.bounce(1).scripts.is_empty());
//! ```

pub use drs_baselines as baselines;
pub use drs_bvh as bvh;
pub use drs_core as core;
pub use drs_geom as geom;
pub use drs_harness as harness;
pub use drs_kernels as kernels;
pub use drs_math as math;
pub use drs_render as render;
pub use drs_scene as scene;
pub use drs_sim as sim;
pub use drs_telemetry as telemetry;
pub use drs_trace as trace;
pub use drs_verify as verify;
