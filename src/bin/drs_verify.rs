//! `drs-verify`: static verification CLI for the shipped kernel programs
//! and GPU configurations.
//!
//! ```text
//! drs-verify [KERNEL...]        verify named kernels (default: all)
//! drs-verify --config           also lint the paper's GPU configuration
//! ```
//!
//! Kernels: `while-while`, `while-if`, `dmk`, `tbc`, `drs`. TBC and DRS
//! execute the while-if program under their own hardware units, so their
//! entries verify that same program — listed separately because the paper
//! evaluates them as separate methods. Exits nonzero if any error-severity
//! diagnostic fires.

use drs::baselines::{DmkConfig, DmkKernel};
use drs::kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs::sim::{GpuConfig, Program};
use drs::verify::{verify_config, verify_program, Report};

const KERNELS: [&str; 5] = ["while-while", "while-if", "dmk", "tbc", "drs"];

fn program_for(name: &str) -> Option<Program> {
    match name {
        "while-while" => Some(WhileWhileKernel::new(WhileWhileConfig::default()).program()),
        "while-if" => Some(WhileIfKernel::new().program()),
        "dmk" => Some(DmkKernel::new(DmkConfig::paper_default(4)).program()),
        // TBC and DRS are hardware units over the while-if software kernel.
        "tbc" | "drs" => Some(WhileIfKernel::new().program()),
        _ => None,
    }
}

fn print_report(what: &str, report: &Report) -> bool {
    let errors = report.errors().count();
    let warnings = report.warnings().count();
    if report.diagnostics.is_empty() {
        println!("{what}: clean");
    } else {
        println!("{what}: {errors} error(s), {warnings} warning(s)");
        for d in &report.diagnostics {
            println!("  {d}");
        }
    }
    report.is_clean()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut lint_config = false;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--config" => lint_config = true,
            "--help" | "-h" => {
                println!("usage: drs-verify [--config] [KERNEL...]");
                println!("kernels: {}  (default: all)", KERNELS.join(", "));
                return;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names = KERNELS.iter().map(std::string::ToString::to_string).collect();
    }

    let mut ok = true;
    for name in &names {
        match program_for(name) {
            Some(program) => {
                let report = verify_program(&program);
                ok &= print_report(&format!("kernel {name}"), &report);
            }
            None => {
                eprintln!("unknown kernel `{name}` (expected one of: {})", KERNELS.join(", "));
                ok = false;
            }
        }
    }
    if lint_config {
        ok &= print_report("config gtx780", &verify_config(&GpuConfig::gtx780()));
    }
    if !ok {
        std::process::exit(1);
    }
}
