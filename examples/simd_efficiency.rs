//! Per-bounce SIMD efficiency report (a miniature of the paper's Figure 2)
//! for any benchmark scene and ray-tracing method.
//!
//! Run with:
//! `cargo run --release --example simd_efficiency [scene] [method]`
//! where `scene` ∈ `conference|fairy|sponza|plants` and
//! `method` ∈ `aila|drs|dmk|tbc`.

use drs::baselines::{DmkConfig, DmkKernel, DmkUnit, TbcConfig, TbcUnit};
use drs::core::system::RowedWhileIf;
use drs::core::{DrsConfig, DrsUnit};
use drs::kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs::scene::SceneKind;
use drs::sim::{GpuConfig, NullSpecial, SimStats, Simulation};
use drs::trace::{BounceStreams, RayScript};

fn run(method: &str, gpu: &GpuConfig, scripts: &[RayScript]) -> SimStats {
    match method {
        "aila" => {
            let k = WhileWhileKernel::new(WhileWhileConfig::default());
            Simulation::new(
                gpu.clone(),
                k.program(),
                Box::new(k.clone()),
                Box::new(NullSpecial),
                scripts,
            )
            .run()
        }
        "drs" => {
            let cfg = DrsConfig {
                warps: gpu.max_warps,
                backup_rows: 1,
                swap_buffers: 6,
                ideal: false,
                lanes: 32,
            };
            let k = WhileIfKernel::new();
            Simulation::new(
                gpu.clone(),
                k.program(),
                Box::new(RowedWhileIf::new(cfg.rows())),
                Box::new(DrsUnit::new(cfg)),
                scripts,
            )
            .run()
        }
        "dmk" => {
            let cfg = DmkConfig { warps: gpu.max_warps, lanes: 32, pool_slots: gpu.max_warps * 32 };
            let k = DmkKernel::new(cfg);
            Simulation::new(
                gpu.clone(),
                k.program(),
                Box::new(k.clone()),
                Box::new(DmkUnit::new(cfg)),
                scripts,
            )
            .run()
        }
        "tbc" => {
            let k = WhileIfKernel::new();
            let cfg = TbcConfig {
                warps: gpu.max_warps,
                lanes: 32,
                warps_per_block: 6.min(gpu.max_warps),
            };
            Simulation::new(
                gpu.clone(),
                k.program(),
                Box::new(k.clone()),
                Box::new(TbcUnit::new(cfg)),
                scripts,
            )
            .run()
        }
        other => {
            eprintln!("unknown method {other}; use aila|drs|dmk|tbc");
            std::process::exit(2);
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scene_name = args.next().unwrap_or_else(|| "conference".into());
    let method = args.next().unwrap_or_else(|| "aila".into());
    let kind = match scene_name.as_str() {
        "conference" => SceneKind::Conference,
        "fairy" => SceneKind::FairyForest,
        "sponza" => SceneKind::CrytekSponza,
        "plants" => SceneKind::Plants,
        other => {
            eprintln!("unknown scene {other}");
            std::process::exit(2);
        }
    };

    let scene = kind.build_with_tris(20_000);
    let streams = BounceStreams::capture(&scene, 4_000, 8, 7);
    let gpu = GpuConfig { max_warps: 12, ..GpuConfig::gtx780() };
    println!("{} / {method}: SIMD efficiency per bounce", scene.kind());
    println!(
        "{:>3} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "B", "rays", "eff", "W1:8", "W9:16", "W17:24", "W25:32"
    );
    for b in 1..=streams.depth() {
        let stream = streams.bounce(b);
        if stream.scripts.is_empty() {
            println!("{b:>3}  (no surviving rays)");
            continue;
        }
        let out = run(&method, &gpu, &stream.scripts);
        let h = out.issued;
        println!(
            "{b:>3} {:>7} {:>8.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            stream.scripts.len(),
            h.simd_efficiency() * 100.0,
            h.bucket_fraction(0) * 100.0,
            h.bucket_fraction(1) * 100.0,
            h.bucket_fraction(2) * 100.0,
            h.bucket_fraction(3) * 100.0,
        );
    }
}
