//! The paper's Figure 6 walkthrough: watch the DRS control shuffle rays
//! between register-file rows on a miniature machine (two 8-lane warps).
//!
//! Run with: `cargo run --release --example walkthrough`
//!
//! The printout shows, per `rdctrl` round, each logical ray row's
//! occupancy by state (`I` = inner, `L` = leaf, `.` = empty slot) plus the
//! warp→row renaming table — the mechanism of Figures 4 and 6.

use drs::core::{DrsConfig, DrsUnit};
use drs::sim::{MachineState, RayState, SimStats, SpecialOutcome, SpecialUnit};
use drs::trace::{RayScript, Step, Termination};

const LANES: usize = 8;

/// Render one row as a string of per-slot state letters.
fn row_picture(m: &MachineState<'_>, row: usize) -> String {
    (0..LANES)
        .map(|lane| match m.state_cache[row * LANES + lane] {
            RayState::Inner => 'I',
            RayState::Leaf => 'L',
            RayState::Fetching | RayState::Done => '.',
            RayState::Empty => 'x',
        })
        .collect()
}

fn dump(m: &MachineState<'_>, unit: &DrsUnit, rows: usize, round: usize) {
    println!("round {round}:");
    for r in 0..rows {
        let summary = unit.row_summary(r);
        println!(
            "  row {r}: [{}]  (inner {}, leaf {}, empty {})",
            row_picture(m, r),
            summary.inner,
            summary.leaf,
            summary.no_ray
        );
    }
    println!("  renaming: warp0 -> row {}, warp1 -> row {}", unit.row_of(0), unit.row_of(1));
}

fn main() {
    // Scripts shaped like Figure 6: all rays start in the inner state; some
    // switch to the leaf state after one node, others after three.
    let scripts: Vec<RayScript> = (0..16)
        .map(|i| {
            let inner_run = if i % 3 == 0 { 1 } else { 3 };
            let mut steps: Vec<Step> = (0..inner_run)
                .map(|k| Step::Inner {
                    node_addr: 0x1000_0000 + (i * 8 + k) as u64 * 64,
                    both_children_hit: false,
                })
                .collect();
            steps.push(Step::Leaf {
                node_addr: 0x1100_0000 + i as u64 * 64,
                prim_base_addr: 0x4000_0000 + i as u64 * 48,
                prim_count: 2,
            });
            RayScript::new(steps, Termination::Hit)
        })
        .collect();

    // Two warps, one backup row, two empty rows -> five logical rows.
    let cfg = DrsConfig { warps: 2, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: LANES };
    let mut unit = DrsUnit::new(cfg);
    let rows = cfg.rows();
    let mut m = MachineState::new(&scripts, cfg.warps, LANES, rows * LANES);
    m.track_dirty = true;
    let mut stats = SimStats::default();

    println!(
        "Figure 6 walkthrough: {} rays, 2 warps x {LANES} lanes, {rows} rows\n",
        scripts.len()
    );
    for round in 0..14 {
        // Each warp reads trav_ctrl_val; the DRS control renames/stalls.
        for warp in 0..cfg.warps {
            match unit.issue(warp, 0, &mut m, &mut stats) {
                SpecialOutcome::Stall => {
                    println!("  warp{warp}: rdctrl STALLS (shuffling in progress)");
                }
                SpecialOutcome::Proceed { ctrl } => {
                    let action = match ctrl {
                        1 => "FETCH",
                        2 => "TRAV_INNER",
                        3 => "TRAV_LEAF",
                        _ => "EXIT",
                    };
                    println!("  warp{warp}: rdctrl -> {action} on row {}", unit.row_of(warp));
                    // Execute the body on every occupied lane of the row.
                    let row = unit.row_of(warp);
                    for lane in 0..LANES {
                        let slot = row * LANES + lane;
                        match ctrl {
                            1 if m.slots[slot].ray.is_none() => {
                                m.fetch_into(slot);
                            }
                            2 => {
                                if matches!(m.peek_step(slot), Some(Step::Inner { .. })) {
                                    m.consume_step(slot);
                                }
                            }
                            3 => {
                                if matches!(m.peek_step(slot), Some(Step::Leaf { .. })) {
                                    m.consume_step(slot);
                                }
                                if m.slots[slot].ray.is_some() && m.peek_step(slot).is_none() {
                                    m.retire_ray(slot);
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        // Give the swap engine a burst of cycles with all bank ports idle.
        let idle = vec![true; 32];
        for c in 0..40u64 {
            unit.tick(round as u64 * 40 + c, &idle, &mut m, &mut stats);
        }
        dump(&m, &unit, rows, round);
        if m.all_work_drained() {
            println!(
                "\nall {} rays traced; {} ray swaps performed",
                m.rays_completed, stats.swaps_completed
            );
            break;
        }
        println!();
    }
}
