//! Render a benchmark scene to a PPM image with the path tracer.
//!
//! Run with: `cargo run --release --example render_scene [scene] [spp] [nee]`
//! where `scene` is one of `conference|fairy|sponza|plants` (default
//! `conference`), `spp` the samples per pixel (default 8), and an optional
//! literal `nee` enables next-event estimation (direct light sampling).
//! Writes `render_<scene>.ppm` into the working directory.

use drs::render::{PathTracer, RenderConfig};
use drs::scene::SceneKind;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let scene_name = args.next().unwrap_or_else(|| "conference".into());
    let spp: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);
    let nee = args.next().as_deref() == Some("nee");
    let kind = match scene_name.as_str() {
        "conference" => SceneKind::Conference,
        "fairy" => SceneKind::FairyForest,
        "sponza" => SceneKind::CrytekSponza,
        "plants" => SceneKind::Plants,
        other => {
            eprintln!("unknown scene {other}; use conference|fairy|sponza|plants");
            std::process::exit(2);
        }
    };

    let scene = kind.build_with_tris(30_000);
    println!("rendering {} ({} triangles) at {spp} spp...", scene.kind(), scene.mesh().len());
    let tracer = PathTracer::new(&scene);
    let cfg = RenderConfig {
        width: 320,
        height: 240,
        samples_per_pixel: spp,
        next_event_estimation: nee,
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let img = tracer.render(&cfg);
    println!(
        "rendered in {:.1}s, mean luminance {:.3}",
        started.elapsed().as_secs_f32(),
        img.mean_luminance()
    );

    let path = format!("render_{scene_name}.ppm");
    let file = File::create(&path)?;
    img.write_ppm(BufWriter::new(file))?;
    println!("wrote {path}");
    Ok(())
}
