//! Quickstart: build a scene, capture a ray workload, and compare the
//! software while-while baseline against Dynamic Ray Shuffling.
//!
//! Run with: `cargo run --release --example quickstart`

use drs::core::system::RowedWhileIf;
use drs::core::{DrsConfig, DrsUnit};
use drs::kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs::scene::SceneKind;
use drs::sim::{GpuConfig, NullSpecial, Simulation};
use drs::trace::BounceStreams;

fn main() {
    // 1. A procedural stand-in for the paper's conference-room benchmark.
    let scene = SceneKind::Conference.build_with_tris(20_000);
    println!("scene: {} ({} triangles)", scene.kind(), scene.mesh().len());

    // 2. Capture per-bounce ray streams by path tracing (the simulator's
    //    workload format). Bounce 2 rays are incoherent — the hard case.
    let streams = BounceStreams::capture(&scene, 4_000, 2, 0x5EED);
    let secondary = &streams.bounce(2).scripts;
    println!("captured {} secondary rays", secondary.len());

    // 3. Simulate Aila's software kernel on a 12-warp SMX.
    let gpu = GpuConfig { max_warps: 12, ..GpuConfig::gtx780() };
    let aila = WhileWhileKernel::new(WhileWhileConfig::default());
    let base = Simulation::new(
        gpu.clone(),
        aila.program(),
        Box::new(aila.clone()),
        Box::new(NullSpecial),
        secondary,
    )
    .run()
    .expect("baseline run failed");

    // 4. Simulate the same rays with DRS hardware attached.
    let drs_cfg = DrsConfig { warps: 12, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 };
    let kernel = WhileIfKernel::new();
    let drs = Simulation::new(
        gpu.clone(),
        kernel.program(),
        Box::new(RowedWhileIf::new(drs_cfg.rows())),
        Box::new(DrsUnit::new(drs_cfg)),
        secondary,
    )
    .run()
    .expect("DRS run failed");

    // 5. Report.
    let speedup = base.cycles as f64 / drs.cycles as f64;
    println!("\n                 {:>12} {:>12}", "while-while", "DRS");
    println!(
        "SIMD efficiency  {:>11.1}% {:>11.1}%",
        base.issued.simd_efficiency() * 100.0,
        drs.issued.simd_efficiency() * 100.0
    );
    println!("cycles           {:>12} {:>12}", base.cycles, drs.cycles);
    println!(
        "Mrays/s (GPU)    {:>12.1} {:>12.1}",
        base.mrays_per_sec(gpu.clock_mhz, gpu.smx_count),
        drs.mrays_per_sec(gpu.clock_mhz, gpu.smx_count)
    );
    println!("\nDRS speedup on incoherent rays: {speedup:.2}x");
    println!("rays shuffled by the swap engine: {}", drs.swaps_completed);
}
