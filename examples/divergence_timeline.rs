//! The paper's Figure 1 argument, measured instead of sketched: where
//! warp-cycles go when the while-while kernel traces incoherent rays.
//!
//! Run with: `cargo run --release --example divergence_timeline`
//!
//! Earlier versions of this example hand-animated an 8-lane warp. Now the
//! cycle-level simulator runs the real Aila kernel over captured
//! secondary rays with the telemetry collector attached, and we print
//! what the hardware actually did:
//!
//! 1. an interval timeline — SIMD efficiency per 2000-cycle window, the
//!    same series `experiments --timeline` writes as JSON;
//! 2. a stall-attribution table — every warp-cycle of the run charged to
//!    exactly one bucket (the accounting identity is asserted).

use drs::harness::{run_method_with_warps_telemetry, Method};
use drs::scene::SceneKind;
use drs::sim::StallBucket;
use drs::telemetry::TelemetryConfig;
use drs::trace::BounceStreams;

fn bar(frac: f64, width: usize) -> String {
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn main() {
    // Real secondary rays from the conference scene: incoherent, exactly
    // the workload of Figure 1's discussion.
    let scene = SceneKind::Conference.build_with_tris(4_000);
    let streams = BounceStreams::capture(&scene, 640, 2, 0xF16);
    let scripts = &streams.bounce(2).scripts;

    let warps = 8;
    let (out, report) = run_method_with_warps_telemetry(
        Method::Aila,
        warps,
        scripts,
        TelemetryConfig { interval: 2000, ..TelemetryConfig::default() },
    );
    report.check_identity().expect("every warp-cycle charged exactly once");
    let stats = out.expect("the stream completes within the safety cycle cap");

    println!("while-while kernel, {} secondary rays, {warps} warps", scripts.len());
    println!("{} cycles, SIMD efficiency {:.1}%\n", stats.cycles, stats.simd_efficiency() * 100.0);

    println!("SIMD efficiency per {}-cycle interval:", report.interval);
    for s in &report.intervals {
        let eff = s.simd_efficiency();
        println!(
            "  [{:>6}, {:>6})  {}  {:5.1}%  ({} issues)",
            s.start,
            s.end,
            bar(eff, 32),
            eff * 100.0,
            s.issued_all().total
        );
    }

    println!("\nwhere the warp-cycles went ({} warps x {} cycles):", report.warps, report.cycles);
    let total: u64 = report.totals.iter().sum();
    for b in StallBucket::ALL {
        let n = report.totals[b as usize];
        let frac = n as f64 / total as f64;
        println!("  {:18} {}  {:5.1}%  ({n} warp-cycles)", b.label(), bar(frac, 32), frac * 100.0);
    }
    println!(
        "\naccounting identity: {} warp-cycles attributed == {} cycles x {} warps",
        total, report.cycles, report.warps
    );
    println!("(DRS attacks the idle/drain tail by refilling divergent warps —");
    println!(" see `examples/walkthrough.rs` and `experiments fig10`)");
}
