//! The paper's Figure 1: why ray tracing under-utilizes SIMD units.
//!
//! Run with: `cargo run --release --example divergence_timeline`
//!
//! Eight rays share one 8-lane warp executing the classic while-while
//! kernel. At each loop phase the warp serially executes the inner-node
//! body (only lanes in the `I` state active), then the leaf body (only
//! lanes in the `L` state active); terminated lanes (`F`) idle until every
//! ray finishes. The printout shows each phase's active mask — the W1:8
//! tail the paper's Figure 2 measures, made visible.

use drs::scene::SceneKind;
use drs::trace::{BounceStreams, Step};

const LANES: usize = 8;

#[derive(Clone, Copy, PartialEq)]
enum LaneState {
    Inner,
    Leaf,
    Fetch,
}

fn state_char(s: LaneState) -> char {
    match s {
        LaneState::Inner => 'I',
        LaneState::Leaf => 'L',
        LaneState::Fetch => 'F',
    }
}

fn main() {
    // Real secondary rays from the conference scene: incoherent, exactly
    // the workload of Figure 1's discussion.
    let scene = SceneKind::Conference.build_with_tris(4_000);
    let streams = BounceStreams::capture(&scene, 64, 2, 0xF16);
    let scripts = &streams.bounce(2).scripts[..LANES];

    let mut cursors = vec![0usize; LANES];
    let states = |cursors: &[usize]| -> Vec<LaneState> {
        scripts
            .iter()
            .zip(cursors)
            .map(|(s, &c)| match s.steps().get(c) {
                Some(Step::Inner { .. }) => LaneState::Inner,
                Some(Step::Leaf { .. }) => LaneState::Leaf,
                None => LaneState::Fetch,
            })
            .collect()
    };

    println!("Figure 1: while-while warp timeline (8 lanes, secondary rays)\n");
    println!("phase        lane states   active  utilization");
    let mut total_active = 0usize;
    let mut total_slots = 0usize;
    let mut phase = 0usize;
    loop {
        let st = states(&cursors);
        if st.iter().all(|&s| s == LaneState::Fetch) {
            break;
        }
        // Inner phase: lanes whose next step is an inner node execute; the
        // warp loops until no lane wants inner traversal (we aggregate the
        // whole inner run into one printed phase per lane-step).
        let phase_kind =
            if st.contains(&LaneState::Inner) { LaneState::Inner } else { LaneState::Leaf };
        let active: Vec<bool> = st.iter().map(|&s| s == phase_kind).collect();
        let n_active = active.iter().filter(|&&a| a).count();
        let grid: String = st.iter().map(|&s| state_char(s)).collect();
        let mask: String = active.iter().map(|&a| if a { '#' } else { '.' }).collect();
        println!(
            "T{phase:<3} {}   [{grid}]      {n_active}/8    [{mask}]",
            if phase_kind == LaneState::Inner { "inner" } else { "leaf " },
        );
        total_active += n_active;
        total_slots += LANES;
        for (lane, act) in active.iter().enumerate() {
            if *act {
                cursors[lane] += 1;
            }
        }
        phase += 1;
        if phase > 400 {
            break;
        }
    }
    println!(
        "\nwarp SIMD utilization over {} phases: {:.1}%",
        phase,
        total_active as f64 / total_slots as f64 * 100.0
    );
    println!("(the DRS eliminates exactly this loss — see `examples/walkthrough.rs`)");
}
