//! Shared instruction-cost model for the kernel bodies.
//!
//! Both kernels execute the same traversal mathematics (slab tests,
//! Möller–Trumbore, ray setup), so their loop bodies are built from the
//! same micro-op sequences. Counts approximate the SASS of Aila-style
//! kernels: a node step is a 64-byte node fetch plus ~two dozen FMA/min/max
//! ops; a primitive test is a triangle fetch plus ~20 arithmetic ops; a ray
//! fetch reads the 17 words of live ray state the paper counts.

use drs_sim::{MemSpace, MicroOp, OpTag, Reg};

/// ALU ops (beyond the node load) in the inner-node body. Together with
/// the loop heads and the leaf/fetch bodies this puts the kernels' main
/// loop in the several-hundred-instruction regime the paper describes.
pub const INNER_ALU_OPS: usize = 36;
/// ALU ops added when both children hit (push the far child).
pub const PUSH_FAR_ALU_OPS: usize = 3;
/// ALU ops (beyond the triangle loads) per primitive test.
pub const PRIM_ALU_OPS: usize = 28;
/// Triangle-record loads per primitive test (3×16 B vectors in the real
/// kernel; two 128-bit loads here).
pub const PRIM_LOADS: usize = 2;
/// ALU ops in the ray-fetch body (ray setup: reciprocal direction, init).
pub const FETCH_ALU_OPS: usize = 12;
/// Global-memory loads in the ray-fetch body: 17 words ≈ 3 × 128-bit
/// vectors + 2 scalars = 5 transactions.
pub const FETCH_LOADS: usize = 5;
/// Live registers per ray (the paper's count: 17 integers and floats).
pub const RAY_LIVE_REGISTERS: usize = 17;
/// First register of the ray-state window. Both kernels keep the ray's
/// architectural state in `RAY_REG_LO..=RAY_REG_HI` so the static liveness
/// pass derives exactly [`RAY_LIVE_REGISTERS`] live registers at every
/// shuffle-eligible point; r1-r9 are block-local scratch that never
/// crosses a block boundary.
pub const RAY_REG_LO: u8 = 10;
/// Last register of the ray-state window (inclusive).
pub const RAY_REG_HI: u8 = RAY_REG_LO + RAY_LIVE_REGISTERS as u8 - 1;

/// Default ALU latency used for kernel arithmetic.
pub const ALU_LAT: u32 = 9;

/// Append `n` chained ALU ops cycling through a register window.
///
/// Ops alternate destinations over `regs` so the scoreboard sees realistic
/// short dependence chains rather than one serial chain.
pub fn alu_chain(ops: &mut Vec<MicroOp>, n: usize, regs: &[Reg], tag: OpTag) {
    assert!(regs.len() >= 2, "need at least two registers for a chain");
    for i in 0..n {
        let dst = regs[i % regs.len()];
        let src_a = regs[(i + 1) % regs.len()];
        let src_b = regs[(i + 2) % regs.len()];
        ops.push(MicroOp::alu(dst, &[src_a, src_b], ALU_LAT).with_tag(tag));
    }
}

/// Append a load with the given address token.
pub fn load(ops: &mut Vec<MicroOp>, dst: Reg, space: MemSpace, addr: u16, tag: OpTag) {
    ops.push(MicroOp::load(dst, space, addr, &[]).with_tag(tag));
}

/// Append `n` ALU ops that read `inputs`, mix through block-local
/// `scratch`, and land in `outputs` — with *no* dead writes and no
/// upward-exposed scratch, so the liveness pass sees exactly the intended
/// register traffic.
///
/// Four phases: gather (each scratch register seeded from two inputs,
/// covering every input), mix (scratch updated in place, reading its own
/// old value plus a neighbour), reduce (every scratch residue folded into
/// `scratch[0]`), and output (each output computed from the reduction).
/// Every write is read by a later op in the same block except the output
/// writes, which the caller keeps live across the block boundary.
///
/// # Panics
///
/// Panics when fewer than two scratch registers are given, when `inputs`
/// or `outputs` is empty, when `2 * scratch.len() < inputs.len()` (the
/// gather phase could not read every input), or when `n` is too small to
/// fit the gather/reduce/output phases.
pub fn compute_chain(
    ops: &mut Vec<MicroOp>,
    n: usize,
    scratch: &[Reg],
    inputs: &[Reg],
    outputs: &[Reg],
    tag: OpTag,
) {
    let s = scratch.len();
    assert!(s >= 2, "need at least two scratch registers");
    assert!(!inputs.is_empty() && !outputs.is_empty(), "inputs and outputs must be nonempty");
    assert!(2 * s >= inputs.len(), "gather phase must read every input");
    assert!(n >= s + (s - 1) + outputs.len(), "n too small for gather+reduce+output");
    let m = n - s - (s - 1) - outputs.len();
    // Gather: scratch[i] = f(inputs[2i], inputs[2i+1]) (indices mod len).
    for (i, &dst) in scratch.iter().enumerate() {
        let a = inputs[(2 * i) % inputs.len()];
        let b = inputs[(2 * i + 1) % inputs.len()];
        ops.push(MicroOp::alu(dst, &[a, b], ALU_LAT).with_tag(tag));
    }
    // Mix: in-place updates; the self-read consumes the previous value.
    for j in 0..m {
        let dst = scratch[j % s];
        let other = scratch[(j + 1) % s];
        ops.push(MicroOp::alu(dst, &[dst, other], ALU_LAT).with_tag(tag));
    }
    // Reduce: fold every scratch residue into scratch[0].
    for &t in &scratch[1..] {
        ops.push(MicroOp::alu(scratch[0], &[scratch[0], t], ALU_LAT).with_tag(tag));
    }
    // Output: land the result in the caller's live registers.
    for (k, &dst) in outputs.iter().enumerate() {
        let other = scratch[1 + k % (s - 1)];
        ops.push(MicroOp::alu(dst, &[scratch[0], other], ALU_LAT).with_tag(tag));
    }
}

/// Append `n` ALU ops that each define a fresh register (`dst_base + i`)
/// from two registers of `window`. The ray-fetch body uses this to expand
/// the loaded ray words into the rest of the ray-state window: every
/// destination is written exactly once (live across the block boundary)
/// and every window register is read.
///
/// # Panics
///
/// Panics when `window` has fewer than one register or `2 * n <
/// window.len()` (some window register would never be read).
pub fn expand_chain(ops: &mut Vec<MicroOp>, n: usize, window: &[Reg], dst_base: Reg, tag: OpTag) {
    assert!(!window.is_empty(), "need a source window");
    assert!(2 * n >= window.len(), "expansion must read every window register");
    for i in 0..n {
        let a = window[(2 * i) % window.len()];
        let b = window[(2 * i + 1) % window.len()];
        ops.push(MicroOp::alu(dst_base + i as Reg, &[a, b], ALU_LAT).with_tag(tag));
    }
}

/// Append `n` ALU ops that update `regs` in place (each op reads its own
/// destination plus a neighbour). Used for predicated read-modify-write
/// sequences over live state, e.g. the far-child stack push: every write
/// consumes the previous value, so none is dead as long as `regs` stay
/// live after the block.
pub fn update_chain(ops: &mut Vec<MicroOp>, n: usize, regs: &[Reg], tag: OpTag) {
    assert!(regs.len() >= 2, "need at least two registers for an update chain");
    for i in 0..n {
        let dst = regs[i % regs.len()];
        let other = regs[(i + 1) % regs.len()];
        ops.push(MicroOp::alu(dst, &[dst, other], ALU_LAT).with_tag(tag));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::OpKind;

    #[test]
    fn alu_chain_produces_n_ops() {
        let mut ops = Vec::new();
        alu_chain(&mut ops, 7, &[1, 2, 3], OpTag::Normal);
        assert_eq!(ops.len(), 7);
        assert!(ops.iter().all(|o| matches!(o.kind, OpKind::Alu { .. })));
    }

    #[test]
    fn chain_has_varied_destinations() {
        let mut ops = Vec::new();
        alu_chain(&mut ops, 6, &[1, 2, 3], OpTag::Normal);
        let dsts: Vec<_> = ops.iter().map(|o| o.dst.unwrap()).collect();
        assert_eq!(dsts, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn chain_needs_two_regs() {
        alu_chain(&mut Vec::new(), 3, &[1], OpTag::Normal);
    }

    #[test]
    fn cost_constants_sane() {
        // The paper counts 17 live ray registers.
        assert_eq!(RAY_LIVE_REGISTERS, 17);
        assert_eq!(RAY_REG_HI as usize - RAY_REG_LO as usize + 1, RAY_LIVE_REGISTERS);
        const { assert!(INNER_ALU_OPS >= 20, "node step must dominate loop overhead") };
    }

    #[test]
    fn compute_chain_produces_n_ops_reading_every_input() {
        let mut ops = Vec::new();
        compute_chain(&mut ops, 20, &[2, 3, 4], &[10, 11, 12, 13, 14], &[10, 11], OpTag::Normal);
        assert_eq!(ops.len(), 20);
        let read: std::collections::BTreeSet<_> =
            ops.iter().flat_map(drs_sim::MicroOp::sources).collect();
        for r in [10, 11, 12, 13, 14] {
            assert!(read.contains(&r), "input r{r} never read");
        }
    }

    #[test]
    fn compute_chain_has_no_intra_block_dead_writes() {
        // Every write except the output writes must be read by a later op.
        let mut ops = Vec::new();
        compute_chain(
            &mut ops,
            36,
            &[2, 3, 4, 5, 6, 7],
            &[1, 10, 11, 12],
            &[19, 20],
            OpTag::Normal,
        );
        for (j, op) in ops.iter().enumerate() {
            let d = op.dst.expect("all chain ops write");
            if [19, 20].contains(&d) && j >= ops.len() - 2 {
                continue; // outputs stay live across the block
            }
            assert!(
                ops[j + 1..].iter().any(|later| later.sources().any(|s| s == d)),
                "op {j} writes r{d} but nothing later reads it"
            );
        }
    }

    #[test]
    fn compute_chain_defines_scratch_before_reading_it() {
        let mut ops = Vec::new();
        let scratch = [2u8, 3, 4];
        compute_chain(&mut ops, 12, &scratch, &[10, 11], &[10], OpTag::Normal);
        let mut defined: std::collections::BTreeSet<u8> = [10, 11].into();
        for op in &ops {
            for s in op.sources() {
                assert!(defined.contains(&s), "r{s} read before written");
            }
            defined.insert(op.dst.unwrap());
        }
    }

    #[test]
    fn update_chain_is_read_modify_write() {
        let mut ops = Vec::new();
        update_chain(&mut ops, 3, &[19, 20], OpTag::Normal);
        assert_eq!(ops.len(), 3);
        for op in &ops {
            let d = op.dst.unwrap();
            assert!(op.sources().any(|s| s == d), "must read its own destination");
        }
    }
}
