//! Shared instruction-cost model for the kernel bodies.
//!
//! Both kernels execute the same traversal mathematics (slab tests,
//! Möller–Trumbore, ray setup), so their loop bodies are built from the
//! same micro-op sequences. Counts approximate the SASS of Aila-style
//! kernels: a node step is a 64-byte node fetch plus ~two dozen FMA/min/max
//! ops; a primitive test is a triangle fetch plus ~20 arithmetic ops; a ray
//! fetch reads the 17 words of live ray state the paper counts.

use drs_sim::{MemSpace, MicroOp, OpTag, Reg};

/// ALU ops (beyond the node load) in the inner-node body. Together with
/// the loop heads and the leaf/fetch bodies this puts the kernels' main
/// loop in the several-hundred-instruction regime the paper describes.
pub const INNER_ALU_OPS: usize = 36;
/// ALU ops added when both children hit (push the far child).
pub const PUSH_FAR_ALU_OPS: usize = 3;
/// ALU ops (beyond the triangle loads) per primitive test.
pub const PRIM_ALU_OPS: usize = 28;
/// Triangle-record loads per primitive test (3×16 B vectors in the real
/// kernel; two 128-bit loads here).
pub const PRIM_LOADS: usize = 2;
/// ALU ops in the ray-fetch body (ray setup: reciprocal direction, init).
pub const FETCH_ALU_OPS: usize = 12;
/// Global-memory loads in the ray-fetch body (17 words ≈ 3 × 128-bit + 2).
pub const FETCH_LOADS: usize = 3;
/// Live registers per ray (the paper's count: 17 integers and floats).
pub const RAY_LIVE_REGISTERS: usize = 17;

/// Default ALU latency used for kernel arithmetic.
pub const ALU_LAT: u32 = 9;

/// Append `n` chained ALU ops cycling through a register window.
///
/// Ops alternate destinations over `regs` so the scoreboard sees realistic
/// short dependence chains rather than one serial chain.
pub fn alu_chain(ops: &mut Vec<MicroOp>, n: usize, regs: &[Reg], tag: OpTag) {
    assert!(regs.len() >= 2, "need at least two registers for a chain");
    for i in 0..n {
        let dst = regs[i % regs.len()];
        let src_a = regs[(i + 1) % regs.len()];
        let src_b = regs[(i + 2) % regs.len()];
        ops.push(MicroOp::alu(dst, &[src_a, src_b], ALU_LAT).with_tag(tag));
    }
}

/// Append a load with the given address token.
pub fn load(ops: &mut Vec<MicroOp>, dst: Reg, space: MemSpace, addr: u16, tag: OpTag) {
    ops.push(MicroOp::load(dst, space, addr, &[]).with_tag(tag));
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::OpKind;

    #[test]
    fn alu_chain_produces_n_ops() {
        let mut ops = Vec::new();
        alu_chain(&mut ops, 7, &[1, 2, 3], OpTag::Normal);
        assert_eq!(ops.len(), 7);
        assert!(ops.iter().all(|o| matches!(o.kind, OpKind::Alu { .. })));
    }

    #[test]
    fn chain_has_varied_destinations() {
        let mut ops = Vec::new();
        alu_chain(&mut ops, 6, &[1, 2, 3], OpTag::Normal);
        let dsts: Vec<_> = ops.iter().map(|o| o.dst.unwrap()).collect();
        assert_eq!(dsts, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn chain_needs_two_regs() {
        alu_chain(&mut Vec::new(), 3, &[1], OpTag::Normal);
    }

    #[test]
    fn cost_constants_sane() {
        // The paper counts 17 live ray registers.
        assert_eq!(RAY_LIVE_REGISTERS, 17);
        const { assert!(INNER_ALU_OPS >= 20, "node step must dominate loop overhead") };
    }
}
