//! Aila-style while-while ray traversal kernel (the software baseline).
//!
//! Persistent threads pull rays from a global queue; each warp runs the
//! layered while-while loop of the paper's Algorithm 1. Two optional
//! optimizations from Aila's kernels are modelled:
//!
//! - **terminated-ray replacement**: threads whose ray finished fetch a new
//!   ray at the next outer iteration instead of waiting for the whole warp,
//! - **speculative traversal**: a thread whose next step is a leaf may keep
//!   traversing inner nodes (postponing one leaf) while warp-mates still
//!   want inner traversal.
//!
//! Divergence behaviour is exactly Figure 1 of the paper: a warp's inner
//! loop runs while *any* lane wants inner traversal, lanes needing leaves
//! idle at the reconvergence point, and the time to finish a warp's rays is
//! set by the longest ray.

#[cfg(debug_assertions)]
use crate::costs::RAY_LIVE_REGISTERS;
use crate::costs::{
    compute_chain, expand_chain, load, update_chain, FETCH_ALU_OPS, FETCH_LOADS, INNER_ALU_OPS,
    PRIM_ALU_OPS, PRIM_LOADS, PUSH_FAR_ALU_OPS, RAY_REG_LO,
};
use drs_sim::{
    Block, KernelBehavior, MachineState, MemSpace, MicroOp, OpTag, Program, RaySlot, Terminator,
    NO_POSTPONED,
};
use drs_trace::Step;

// Condition tokens.
const C_CONTINUE: u16 = 0;
const C_NEEDS_FETCH: u16 = 1;
const C_RAY_ACTIVE: u16 = 2;
const C_WANTS_INNER: u16 = 3;
const C_BOTH_HIT: u16 = 4;
const C_WANTS_LEAF: u16 = 5;

// Effect tokens.
const E_FETCH: u16 = 0;
const E_CONSUME_INNER: u16 = 1;
const E_CONSUME_PRIM: u16 = 2;
const E_RETIRE: u16 = 3;

// Address tokens.
const A_RAY: u16 = 0;
const A_NODE: u16 = 1;
const A_PRIM0: u16 = 2;
const A_PRIM1: u16 = 3;

/// Tunables of the while-while kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhileWhileConfig {
    /// Postpone one leaf and keep traversing while warp-mates traverse.
    pub speculative_traversal: bool,
    /// Fetch replacement rays for terminated lanes each outer iteration.
    pub replace_terminated: bool,
}

impl Default for WhileWhileConfig {
    fn default() -> Self {
        // Aila's published kernel enables both.
        WhileWhileConfig { speculative_traversal: true, replace_terminated: true }
    }
}

/// The while-while kernel: program plus oracle behavior.
#[derive(Debug, Clone)]
pub struct WhileWhileKernel {
    config: WhileWhileConfig,
}

impl WhileWhileKernel {
    /// Create the kernel with the given options.
    pub fn new(config: WhileWhileConfig) -> WhileWhileKernel {
        WhileWhileKernel { config }
    }

    /// Build the micro-op program (block ids documented inline).
    pub fn program(&self) -> Program {
        let program = self.build_program();
        #[cfg(debug_assertions)]
        {
            drs_verify::assert_program_valid("while-while", &program);
            drs_verify::assert_shuffle_live("while-while", &program, RAY_LIVE_REGISTERS);
        }
        program
    }

    fn build_program(&self) -> Program {
        let t = OpTag::Normal;
        // Register conventions: ray state lives in r10-r26 (the window
        // `RAY_REG_LO..RAY_REG_LO+17`) and is the only state live across
        // block boundaries; r1-r9 are block-local scratch — so static
        // liveness derives the paper's 17 live registers per ray.
        let mut fetch_ops = Vec::new();
        for dst in RAY_REG_LO..RAY_REG_LO + FETCH_LOADS as u8 {
            load(&mut fetch_ops, dst, MemSpace::Global, A_RAY, t);
        }
        // Ray setup expands the loaded words into the rest of the window.
        expand_chain(
            &mut fetch_ops,
            FETCH_ALU_OPS,
            &[10, 11, 12, 13, 14],
            RAY_REG_LO + FETCH_LOADS as u8,
            t,
        );
        fetch_ops.push(MicroOp::effect(E_FETCH));

        let mut inner_ops = Vec::new();
        load(&mut inner_ops, 1, MemSpace::Texture, A_NODE, t);
        compute_chain(
            &mut inner_ops,
            INNER_ALU_OPS,
            &[2, 3, 4, 5, 6, 7],
            &[1, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20],
            &[19, 20],
            t,
        );
        // The far-child push compiles to predicated ops in real traversal
        // kernels — every lane pays its cost, but it causes no divergence.
        update_chain(&mut inner_ops, PUSH_FAR_ALU_OPS, &[19, 20], t);
        inner_ops.push(MicroOp::effect(E_CONSUME_INNER));

        let mut prim_ops = Vec::new();
        load(&mut prim_ops, 8, MemSpace::Texture, A_PRIM0, t);
        if PRIM_LOADS > 1 {
            load(&mut prim_ops, 9, MemSpace::Texture, A_PRIM1, t);
        }
        compute_chain(
            &mut prim_ops,
            PRIM_ALU_OPS,
            &[2, 3, 4, 5, 6, 7],
            &[8, 9, 20, 21, 22, 23, 24, 25, 26],
            &[20, 25],
            t,
        );
        prim_ops.push(MicroOp::effect(E_CONSUME_PRIM));

        Program::new(vec![
            // 0: outer loop head — retire finished rays, test continuation.
            Block::new(
                "outer_head",
                vec![MicroOp::effect(E_RETIRE)],
                Terminator::Branch { cond: C_CONTINUE, on_true: 1, on_false: 9, reconverge: 9 },
            ),
            // 1: fetch check.
            Block::new(
                "fetch_head",
                vec![],
                Terminator::Branch { cond: C_NEEDS_FETCH, on_true: 2, on_false: 3, reconverge: 3 },
            ),
            // 2: fetch body.
            Block::new("fetch_body", fetch_ops, Terminator::Jump(3)),
            // 3: middle loop head ("while ray not terminated").
            Block::new(
                "mid_head",
                vec![],
                Terminator::Branch { cond: C_RAY_ACTIVE, on_true: 4, on_false: 8, reconverge: 8 },
            ),
            // 4: inner while head.
            Block::new(
                "inner_head",
                vec![],
                Terminator::Branch { cond: C_WANTS_INNER, on_true: 5, on_false: 6, reconverge: 6 },
            ),
            // 5: inner body (node fetch + slab tests + predicated push).
            Block::new("inner_body", inner_ops, Terminator::Jump(4)),
            // 6: leaf while head.
            Block::new(
                "leaf_head",
                vec![],
                Terminator::Branch { cond: C_WANTS_LEAF, on_true: 7, on_false: 3, reconverge: 3 },
            ),
            // 7: per-primitive leaf body.
            Block::new("leaf_body", prim_ops, Terminator::Jump(6)),
            // 8: middle loop exit — back to persistent outer loop.
            Block::new("mid_exit", vec![], Terminator::Jump(0)),
            // 9: kernel exit.
            Block::new("exit", vec![], Terminator::Exit),
        ])
    }

    /// Whether a lane's slot currently wants the inner loop.
    fn wants_inner(&self, slot: &RaySlot, m: &MachineState<'_>, slot_idx: usize) -> bool {
        if slot.leaf_prims_left > 0 {
            return false; // mid-leaf: finish primitives first
        }
        match m.peek_step(slot_idx) {
            Some(Step::Inner { .. }) => true,
            Some(Step::Leaf { .. }) if self.config.speculative_traversal => {
                // Postpone this leaf iff the very next step is an inner node
                // and the postpone slot is free.
                slot.postponed_pos == NO_POSTPONED && {
                    let r = slot.ray.expect("peek implies ray");
                    matches!(
                        m.scripts[r.script as usize].steps().get(r.pos as usize + 1),
                        Some(Step::Inner { .. })
                    )
                }
            }
            _ => false,
        }
    }

    fn wants_leaf(&self, slot: &RaySlot, m: &MachineState<'_>, slot_idx: usize) -> bool {
        slot.leaf_prims_left > 0
            || slot.postponed_pos != NO_POSTPONED
            || matches!(m.peek_step(slot_idx), Some(Step::Leaf { .. }))
    }

    /// Begin the lane's next pending leaf: postponed first, else the next
    /// scripted leaf step. Returns false when no leaf is pending.
    fn begin_next_leaf(&self, m: &mut MachineState<'_>, s: usize) -> bool {
        if m.slots[s].postponed_pos != NO_POSTPONED {
            let ray = m.slots[s].ray.expect("postponed implies ray");
            let pos = m.slots[s].postponed_pos as usize;
            let Step::Leaf { prim_base_addr, prim_count, .. } =
                m.scripts[ray.script as usize].steps()[pos]
            else {
                panic!("postponed step is not a leaf");
            };
            m.slots[s].postponed_pos = NO_POSTPONED;
            m.slots[s].leaf_prims_left = prim_count;
            m.slots[s].leaf_total = prim_count;
            m.slots[s].leaf_base_addr = prim_base_addr;
            m.refresh_state(s);
            return true;
        }
        if let Some(Step::Leaf { prim_base_addr, prim_count, .. }) = m.peek_step(s).copied() {
            m.consume_step(s);
            m.slots[s].leaf_prims_left = prim_count;
            m.slots[s].leaf_total = prim_count;
            m.slots[s].leaf_base_addr = prim_base_addr;
            m.refresh_state(s);
            return true;
        }
        false
    }
}

impl KernelBehavior for WhileWhileKernel {
    fn eval_cond(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> bool {
        let Some(s) = m.slot_of(warp, lane) else { return false };
        let slot = m.slots[s];
        match token {
            C_CONTINUE => slot.ray.is_some() || !m.queue.is_empty(),
            C_NEEDS_FETCH => {
                if slot.ray.is_some() || m.queue.is_empty() {
                    return false;
                }
                if self.config.replace_terminated {
                    // Terminated lanes refetch individually each outer
                    // iteration (Aila's replacement optimization).
                    true
                } else {
                    // Classic persistent threads: the warp refills only
                    // once every lane has drained.
                    (0..m.lanes)
                        .all(|l| m.slot_of(warp, l).is_none_or(|sl| m.slots[sl].ray.is_none()))
                }
            }
            C_RAY_ACTIVE => {
                let lane_active = slot.ray.is_some()
                    && (slot.leaf_prims_left > 0
                        || slot.postponed_pos != NO_POSTPONED
                        || m.peek_step(s).is_some());
                if !lane_active {
                    return false;
                }
                // Terminated-ray replacement (Aila's Kepler optimization):
                // when warp utilization drops below a quarter and rays
                // remain in the queue, the whole warp votes to break out
                // and refill its empty lanes before continuing. The
                // threshold reproduces the baseline SIMD-efficiency band
                // the paper measures for Aila's kernel (28-36% on
                // secondary bounces).
                if self.config.replace_terminated && !m.queue.is_empty() {
                    let active = (0..m.lanes)
                        .filter(|&l| {
                            m.slot_of(warp, l).is_some_and(|sl| {
                                let so = m.slots[sl];
                                so.ray.is_some()
                                    && (so.leaf_prims_left > 0
                                        || so.postponed_pos != NO_POSTPONED
                                        || m.peek_step(sl).is_some())
                            })
                        })
                        .count();
                    if active * 4 < m.lanes {
                        return false;
                    }
                }
                true
            }
            C_WANTS_INNER => self.wants_inner(&slot, m, s),
            C_BOTH_HIT => {
                matches!(m.peek_step(s), Some(Step::Inner { both_children_hit: true, .. }))
            }
            C_WANTS_LEAF => self.wants_leaf(&slot, m, s),
            _ => panic!("unknown condition token {token}"),
        }
    }

    fn eval_addr(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> u64 {
        let Some(s) = m.slot_of(warp, lane) else { return 0 };
        let slot = m.slots[s];
        match token {
            A_RAY => {
                // Next ray's buffer slot: rays are 17 words ≈ 68 bytes,
                // stored contiguously in dispatch order.
                let idx = m.queue.total() - m.queue.remaining();
                0x8000_0000 + (idx as u64 + lane as u64) * 68
            }
            A_NODE => match m.peek_step(s) {
                Some(Step::Inner { node_addr, .. }) => *node_addr,
                Some(Step::Leaf { node_addr, .. }) => *node_addr,
                None => 0x7FFF_0000,
            },
            A_PRIM0 | A_PRIM1 => {
                let done = slot.leaf_total.saturating_sub(slot.leaf_prims_left) as u64;
                let base = slot.leaf_base_addr + done * 48;
                if token == A_PRIM0 {
                    base
                } else {
                    base + 16
                }
            }
            _ => panic!("unknown address token {token}"),
        }
    }

    fn apply_effect(&self, token: u16, warp: usize, lane: usize, m: &mut MachineState<'_>) {
        let Some(s) = m.slot_of(warp, lane) else { return };
        match token {
            E_FETCH => {
                if m.slots[s].ray.is_none() {
                    m.fetch_into(s);
                }
            }
            E_CONSUME_INNER => {
                match m.peek_step(s) {
                    Some(Step::Inner { .. }) => {
                        m.consume_step(s);
                    }
                    Some(Step::Leaf { .. }) => {
                        // Speculative traversal: postpone this leaf, then
                        // consume the following inner step.
                        debug_assert!(self.config.speculative_traversal);
                        debug_assert_eq!(m.slots[s].postponed_pos, NO_POSTPONED);
                        let r = m.slots[s].ray.expect("leaf step implies ray");
                        m.slots[s].postponed_pos = r.pos;
                        m.slots[s].ray = Some(drs_sim::RayRef { script: r.script, pos: r.pos + 1 });
                        debug_assert!(matches!(m.peek_step(s), Some(Step::Inner { .. })));
                        m.consume_step(s);
                    }
                    None => {} // lane was inactive when the mask formed
                }
            }
            E_CONSUME_PRIM => {
                if m.slots[s].leaf_prims_left == 0 && !self.begin_next_leaf(m, s) {
                    return;
                }
                m.slots[s].leaf_prims_left -= 1;
                m.refresh_state(s);
            }
            E_RETIRE => {
                let slot = m.slots[s];
                if slot.ray.is_some()
                    && slot.leaf_prims_left == 0
                    && slot.postponed_pos == NO_POSTPONED
                    && m.peek_step(s).is_none()
                {
                    m.retire_ray(s);
                }
            }
            _ => panic!("unknown effect token {token}"),
        }
    }

    fn initialize(&self, m: &mut MachineState<'_>) {
        if !self.config.replace_terminated {
            // Without replacement the kernel still fetches at the outer
            // head, but only when the whole warp has drained; modelled by
            // the same program (the C_NEEDS_FETCH lanes simply all agree).
        }
        // Threads start with no ray; the first outer iteration fetches.
        let _ = m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::{GpuConfig, NullSpecial, Simulation};
    use drs_trace::{RayScript, Termination};

    fn cfg(warps: usize) -> GpuConfig {
        GpuConfig { max_warps: warps, max_cycles: 50_000_000, ..GpuConfig::gtx780() }
    }

    fn make_scripts(n: usize, pattern: impl Fn(usize) -> Vec<Step>) -> Vec<RayScript> {
        (0..n).map(|i| RayScript::new(pattern(i), Termination::Hit)).collect()
    }

    fn uniform_steps(i: usize, inners: usize, leaves: usize) -> Vec<Step> {
        let mut v = Vec::new();
        for k in 0..inners {
            v.push(Step::Inner {
                node_addr: 0x1000_0000 + ((i * 61 + k) % 4096) as u64 * 64,
                both_children_hit: k % 3 == 0,
            });
        }
        for k in 0..leaves {
            v.push(Step::Leaf {
                node_addr: 0x1200_0000 + ((i * 17 + k) % 2048) as u64 * 64,
                prim_base_addr: 0x4000_0000 + ((i * 13 + k) % 2048) as u64 * 48,
                prim_count: 3,
            });
        }
        v
    }

    #[test]
    fn program_is_well_formed_and_substantial() {
        let k = WhileWhileKernel::new(WhileWhileConfig::default());
        let p = k.program();
        assert!(p.blocks().len() >= 10);
        assert!(p.static_op_count() > 60, "got {}", p.static_op_count());
    }

    #[test]
    fn traces_all_rays() {
        let scripts = make_scripts(512, |i| uniform_steps(i, 8, 2));
        let k = WhileWhileKernel::new(WhileWhileConfig::default());
        let sim = Simulation::new(
            cfg(8),
            k.program(),
            Box::new(k.clone()),
            Box::new(NullSpecial),
            &scripts,
        );
        let out = sim.run().expect("hit cycle cap");
        assert_eq!(out.rays_completed, 512);
        assert!(out.l1t.hits + out.l1t.misses > 0, "BVH reads go through L1T");
    }

    #[test]
    fn identical_rays_keep_high_efficiency() {
        let scripts = make_scripts(256, |_| uniform_steps(0, 10, 2));
        let k = WhileWhileKernel::new(WhileWhileConfig::default());
        let sim = Simulation::new(
            cfg(4),
            k.program(),
            Box::new(k.clone()),
            Box::new(NullSpecial),
            &scripts,
        );
        let out = sim.run().expect("completes");
        let eff = out.issued.simd_efficiency();
        assert!(eff > 0.95, "coherent rays should stay converged: {eff}");
    }

    #[test]
    fn ragged_rays_lose_efficiency() {
        // Mix very short and very long rays in the same warps.
        let scripts = make_scripts(256, |i| {
            if i % 2 == 0 {
                uniform_steps(i, 2, 1)
            } else {
                uniform_steps(i, 30, 4)
            }
        });
        let k = WhileWhileKernel::new(WhileWhileConfig::default());
        let sim = Simulation::new(
            cfg(4),
            k.program(),
            Box::new(k.clone()),
            Box::new(NullSpecial),
            &scripts,
        );
        let out = sim.run().expect("completes");
        let eff = out.issued.simd_efficiency();
        assert!(eff < 0.85, "divergent mix must hurt: {eff}");
        assert_eq!(out.rays_completed, 256);
    }

    #[test]
    fn speculative_traversal_changes_behaviour_but_not_results() {
        // Interleave I and L steps so a leaf is often followed by an inner
        // node — the pattern speculation exploits.
        let scripts = make_scripts(320, |i| {
            let mut v = Vec::new();
            for k in 0..6 + i % 9 {
                v.push(Step::Inner {
                    node_addr: 0x1000_0000 + ((i * 61 + k) % 4096) as u64 * 64,
                    both_children_hit: k % 3 == 0,
                });
                if k % 2 == i % 2 {
                    v.push(Step::Leaf {
                        node_addr: 0x1200_0000 + ((i * 17 + k) % 2048) as u64 * 64,
                        prim_base_addr: 0x4000_0000 + ((i * 13 + k) % 2048) as u64 * 48,
                        prim_count: 2,
                    });
                }
            }
            v
        });
        let run = |spec: bool| {
            let k = WhileWhileKernel::new(WhileWhileConfig {
                speculative_traversal: spec,
                replace_terminated: true,
            });
            Simulation::new(
                cfg(4),
                k.program(),
                Box::new(k.clone()),
                Box::new(NullSpecial),
                &scripts,
            )
            .run()
            .expect("completes")
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with.rays_completed, 320);
        assert_eq!(without.rays_completed, 320);
        assert_ne!(with.cycles, without.cycles, "speculation should alter the schedule");
    }

    #[test]
    fn all_leaf_scripts_complete() {
        // Rays that never touch an inner node (degenerate but legal).
        let scripts = make_scripts(64, |i| uniform_steps(i, 0, 3));
        let k = WhileWhileKernel::new(WhileWhileConfig::default());
        let sim = Simulation::new(
            cfg(2),
            k.program(),
            Box::new(k.clone()),
            Box::new(NullSpecial),
            &scripts,
        );
        let out = sim.run().expect("completes");
        assert_eq!(out.rays_completed, 64);
    }

    #[test]
    fn more_rays_than_slots_drains_queue() {
        // 2 warps x 32 lanes = 64 slots, 500 rays: persistent threads must
        // loop fetching.
        let scripts = make_scripts(500, |i| uniform_steps(i, 3 + i % 5, 1));
        let k = WhileWhileKernel::new(WhileWhileConfig::default());
        let sim = Simulation::new(
            cfg(2),
            k.program(),
            Box::new(k.clone()),
            Box::new(NullSpecial),
            &scripts,
        );
        let out = sim.run().expect("completes");
        assert_eq!(out.rays_completed, 500);
    }
}
