//! The while-if ray traversal kernel (the paper's Kernel 1).
//!
//! The layered while-while loop is restructured into one outer `while`
//! holding three `if` bodies (fetch / inner / leaf). Which body a warp
//! executes is decided by the value the `rdctrl` special instruction
//! returns — supplied by the attached hardware unit (DRS control in the
//! full system; the DMK and TBC baselines reuse the same program shape with
//! their own units). After each body, lanes publish their next traversal
//! state via the `reg_ray_state` effect, which the simulator folds into the
//! machine's per-slot state cache.

#[cfg(debug_assertions)]
use crate::costs::RAY_LIVE_REGISTERS;
use crate::costs::{
    compute_chain, expand_chain, load, update_chain, FETCH_ALU_OPS, FETCH_LOADS, INNER_ALU_OPS,
    PRIM_ALU_OPS, PRIM_LOADS, PUSH_FAR_ALU_OPS, RAY_REG_LO,
};
use drs_sim::{Block, KernelBehavior, MachineState, MemSpace, MicroOp, OpTag, Program, Terminator};
use drs_trace::Step;

/// `trav_ctrl_val` returned when the warp should terminate.
pub const CTRL_EXIT: u32 = 0;
/// `trav_ctrl_val` selecting the ray-fetch body.
pub const CTRL_FETCH: u32 = 1;
/// `trav_ctrl_val` selecting the inner-node body.
pub const CTRL_TRAV_INNER: u32 = 2;
/// `trav_ctrl_val` selecting the leaf-intersection body.
pub const CTRL_TRAV_LEAF: u32 = 3;
/// `trav_ctrl_val` enabling every body in one pass (fetch holes, traverse
/// inner lanes, intersect leaf lanes) — used by the TBC baseline, whose
/// block-wide stack runs all phases under lane masks rather than steering
/// whole warps.
pub const CTRL_TRAV_BOTH: u32 = 5;

/// Special-op token identifying `rdctrl` to the attached unit.
pub const TOKEN_RDCTRL: u16 = 0;

/// Inner nodes one `rdctrl` round may traverse per lane: the if body is an
/// unrolled bounded loop, long enough to amortize the control read (the
/// paper's main loop exceeds 300 instructions) yet short enough that rows
/// are re-sorted before run-length divergence accumulates.
pub const INNER_UNROLL: u16 = 4;

// Condition tokens.
const C_CTRL_NOT_EXIT: u16 = 0;
const C_CTRL_FETCH: u16 = 1;
const C_CTRL_INNER: u16 = 2;
const C_CTRL_LEAF: u16 = 3;
const C_LANE_HAS_INNER: u16 = 4;
const C_BOTH_HIT: u16 = 5;
const C_LANE_HAS_PRIMS: u16 = 6;
const C_LANE_CAN_FETCH: u16 = 7;
const C_LANE_LEAF_READY: u16 = 8;

// Effect tokens.
const E_FETCH: u16 = 0;
const E_CONSUME_INNER: u16 = 1;
const E_CONSUME_PRIM: u16 = 2;
const E_SET_STATE: u16 = 3;
const E_BEGIN_LEAF: u16 = 4;

/// Effect token resetting the per-round work counter. Public because
/// kernels that splice the while-if body (DMK) must place it in their own
/// control-read block.
pub const EFFECT_NEW_ROUND: u16 = 5;
const E_NEW_ROUND: u16 = EFFECT_NEW_ROUND;

// Address tokens.
const A_RAY: u16 = 0;
const A_NODE: u16 = 1;
const A_PRIM0: u16 = 2;
const A_PRIM1: u16 = 3;

/// The while-if kernel of the paper (Kernel 1).
#[derive(Debug, Clone)]
pub struct WhileIfKernel {
    /// Inner nodes one rdctrl round may traverse per lane.
    unroll: u16,
}

impl Default for WhileIfKernel {
    fn default() -> Self {
        WhileIfKernel::new()
    }
}

impl WhileIfKernel {
    /// Create the kernel with the default unroll factor.
    pub fn new() -> WhileIfKernel {
        WhileIfKernel { unroll: INNER_UNROLL }
    }

    /// Create the kernel with an explicit inner-unroll factor (ablation
    /// knob: 1 = one node per round, maximum re-sort granularity but
    /// maximum rdctrl/shuffle pressure; large values approach a full
    /// run-until-leaf body whose run-length variance caps efficiency).
    ///
    /// # Panics
    ///
    /// Panics if `unroll` is zero.
    pub fn with_unroll(unroll: u16) -> WhileIfKernel {
        assert!(unroll > 0, "unroll must be at least 1");
        WhileIfKernel { unroll }
    }

    /// The configured unroll factor.
    pub fn unroll(&self) -> u16 {
        self.unroll
    }

    /// Build the micro-op program.
    pub fn program(&self) -> Program {
        let program = self.build_program();
        #[cfg(debug_assertions)]
        {
            drs_verify::assert_program_valid("while-if", &program);
            drs_verify::assert_shuffle_live("while-if", &program, RAY_LIVE_REGISTERS);
        }
        program
    }

    fn build_program(&self) -> Program {
        let t = OpTag::Normal;
        // Register conventions: ray state lives in r10-r26 (the window
        // `RAY_REG_LO..RAY_REG_LO+17`) and is the only state live across
        // block boundaries; r1-r9 are block-local scratch. The static
        // liveness pass therefore derives exactly RAY_LIVE_REGISTERS live
        // registers at every shuffle-eligible point — the paper's 17.
        let mut fetch_ops = Vec::new();
        for dst in RAY_REG_LO..RAY_REG_LO + FETCH_LOADS as u8 {
            load(&mut fetch_ops, dst, MemSpace::Global, A_RAY, t);
        }
        // Ray setup expands the loaded words into the rest of the window.
        expand_chain(
            &mut fetch_ops,
            FETCH_ALU_OPS,
            &[10, 11, 12, 13, 14],
            RAY_REG_LO + FETCH_LOADS as u8,
            t,
        );
        fetch_ops.push(MicroOp::effect(E_FETCH));
        fetch_ops.push(MicroOp::effect(E_SET_STATE));

        let mut inner_ops = Vec::new();
        load(&mut inner_ops, 1, MemSpace::Texture, A_NODE, t);
        compute_chain(
            &mut inner_ops,
            INNER_ALU_OPS,
            &[2, 3, 4, 5, 6, 7],
            &[1, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20],
            &[19, 20],
            t,
        );
        // Predicated far-child push (no divergence, every lane pays):
        // read-modify-write of the traversal-stack registers.
        update_chain(&mut inner_ops, PUSH_FAR_ALU_OPS, &[19, 20], t);
        inner_ops.push(MicroOp::effect(E_CONSUME_INNER));
        inner_ops.push(MicroOp::effect(E_SET_STATE));

        let mut prim_ops = Vec::new();
        load(&mut prim_ops, 8, MemSpace::Texture, A_PRIM0, t);
        if PRIM_LOADS > 1 {
            load(&mut prim_ops, 9, MemSpace::Texture, A_PRIM1, t);
        }
        compute_chain(
            &mut prim_ops,
            PRIM_ALU_OPS,
            &[2, 3, 4, 5, 6, 7],
            &[8, 9, 20, 21, 22, 23, 24, 25, 26],
            &[20, 25],
            t,
        );
        prim_ops.push(MicroOp::effect(E_CONSUME_PRIM));

        Program::new(vec![
            // 0: read trav_ctrl_val, loop while != EXIT. All paths
            // reconverge at the tail block (12) before looping back, so a
            // warp always re-reads control with its full mask.
            Block::new(
                "read_ctrl",
                vec![MicroOp::special(0, TOKEN_RDCTRL), MicroOp::effect(E_NEW_ROUND)],
                Terminator::Branch {
                    cond: C_CTRL_NOT_EXIT,
                    on_true: 1,
                    on_false: 10,
                    reconverge: 10,
                },
            ),
            // 1: if (ctrl == FETCH) — warp-uniform.
            Block::new(
                "fetch_if",
                vec![],
                Terminator::Branch { cond: C_CTRL_FETCH, on_true: 2, on_false: 4, reconverge: 4 },
            ),
            // 2: per-lane guard (queue may drain mid-warp).
            Block::new(
                "fetch_guard",
                vec![],
                Terminator::Branch {
                    cond: C_LANE_CAN_FETCH,
                    on_true: 3,
                    on_false: 4,
                    reconverge: 4,
                },
            ),
            // 3: fetch body.
            Block::new("fetch_body", fetch_ops, Terminator::Jump(4)),
            // 4: if (ctrl == TRAV_INNER).
            Block::new(
                "inner_if",
                vec![],
                Terminator::Branch { cond: C_CTRL_INNER, on_true: 5, on_false: 7, reconverge: 7 },
            ),
            // 5: the inner while loop's head ("while node is not a leaf"):
            // each lane traverses its whole inner-node run inside the if
            // body; lanes whose run ends wait at the leaf if. The run-length
            // spread inside a state-sorted row is the "minor divergence" the
            // paper says keeps DRS below 100% SIMD efficiency.
            Block::new(
                "inner_head",
                vec![],
                Terminator::Branch {
                    cond: C_LANE_HAS_INNER,
                    on_true: 6,
                    on_false: 7,
                    reconverge: 7,
                },
            ),
            // 6: inner body (node fetch, slab tests, predicated push,
            // state publish) — loops for the next node of the run.
            Block::new("inner_body", inner_ops, Terminator::Jump(5)),
            // 7: if (ctrl == TRAV_LEAF).
            Block::new(
                "leaf_if",
                vec![],
                Terminator::Branch { cond: C_CTRL_LEAF, on_true: 11, on_false: 12, reconverge: 12 },
            ),
            // 8: per-primitive loop head — only the current leaf's
            // primitives; the next leaf waits for the next rdctrl round so
            // the DRS can re-sort rows between leaves.
            Block::new(
                "leaf_head",
                vec![],
                Terminator::Branch {
                    cond: C_LANE_HAS_PRIMS,
                    on_true: 9,
                    on_false: 12,
                    reconverge: 12,
                },
            ),
            // 9: per-primitive body.
            Block::new("leaf_body", prim_ops, Terminator::Jump(8)),
            // 10: exit.
            Block::new("exit", vec![], Terminator::Exit),
            // 11: begin the lane's pending leaf (one leaf per iteration).
            Block::new(
                "leaf_begin",
                vec![MicroOp::effect(E_BEGIN_LEAF), MicroOp::effect(E_SET_STATE)],
                Terminator::Branch {
                    cond: C_LANE_LEAF_READY,
                    on_true: 8,
                    on_false: 12,
                    reconverge: 12,
                },
            ),
            // 12: loop tail — the single back edge.
            Block::new("loop_tail", vec![], Terminator::Jump(0)),
        ])
    }
}

impl KernelBehavior for WhileIfKernel {
    fn eval_cond(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> bool {
        match token {
            // Warp-uniform control conditions.
            C_CTRL_NOT_EXIT => m.warp_ctrl[warp] != CTRL_EXIT,
            C_CTRL_FETCH => matches!(m.warp_ctrl[warp], CTRL_FETCH | CTRL_TRAV_BOTH),
            C_CTRL_INNER => matches!(m.warp_ctrl[warp], CTRL_TRAV_INNER | CTRL_TRAV_BOTH),
            C_CTRL_LEAF => matches!(m.warp_ctrl[warp], CTRL_TRAV_LEAF | CTRL_TRAV_BOTH),
            // Per-lane guards.
            C_LANE_CAN_FETCH => {
                let Some(s) = m.slot_of(warp, lane) else { return false };
                m.slots[s].usable && m.slots[s].ray.is_none() && !m.queue.is_empty()
            }
            C_LANE_HAS_INNER => {
                let Some(s) = m.slot_of(warp, lane) else { return false };
                m.slots[s].round_work < self.unroll
                    && matches!(m.peek_step(s), Some(Step::Inner { .. }))
            }
            C_BOTH_HIT => {
                let Some(s) = m.slot_of(warp, lane) else { return false };
                matches!(m.peek_step(s), Some(Step::Inner { both_children_hit: true, .. }))
            }
            C_LANE_HAS_PRIMS => {
                let Some(s) = m.slot_of(warp, lane) else { return false };
                m.slots[s].leaf_prims_left > 0
            }
            C_LANE_LEAF_READY => {
                let Some(s) = m.slot_of(warp, lane) else { return false };
                m.slots[s].leaf_prims_left > 0
            }
            _ => panic!("unknown condition token {token}"),
        }
    }

    fn eval_addr(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> u64 {
        let Some(s) = m.slot_of(warp, lane) else { return 0 };
        match token {
            A_RAY => {
                let idx = m.queue.total() - m.queue.remaining();
                0x8000_0000 + (idx as u64 + lane as u64) * 68
            }
            A_NODE => match m.peek_step(s) {
                Some(Step::Inner { node_addr, .. }) => *node_addr,
                Some(Step::Leaf { node_addr, .. }) => *node_addr,
                None => 0x7FFF_0000,
            },
            A_PRIM0 | A_PRIM1 => {
                let slot = m.slots[s];
                let done = slot.leaf_total.saturating_sub(slot.leaf_prims_left) as u64;
                let base = slot.leaf_base_addr + done * 48;
                if token == A_PRIM0 {
                    base
                } else {
                    base + 16
                }
            }
            _ => panic!("unknown address token {token}"),
        }
    }

    fn apply_effect(&self, token: u16, warp: usize, lane: usize, m: &mut MachineState<'_>) {
        let Some(s) = m.slot_of(warp, lane) else { return };
        match token {
            E_FETCH => {
                if m.slots[s].usable && m.slots[s].ray.is_none() {
                    m.fetch_into(s);
                }
            }
            E_CONSUME_INNER => {
                if matches!(m.peek_step(s), Some(Step::Inner { .. })) {
                    m.slots[s].round_work += 1;
                    m.consume_step(s);
                    self.retire_if_done(m, s);
                }
            }
            E_NEW_ROUND => {
                m.slots[s].round_work = 0;
            }
            E_BEGIN_LEAF => {
                if m.slots[s].leaf_prims_left == 0 {
                    if let Some(Step::Leaf { prim_base_addr, prim_count, .. }) =
                        m.peek_step(s).copied()
                    {
                        m.consume_step(s);
                        m.slots[s].leaf_prims_left = prim_count;
                        m.slots[s].leaf_total = prim_count;
                        m.slots[s].leaf_base_addr = prim_base_addr;
                        m.refresh_state(s);
                    }
                }
            }
            E_CONSUME_PRIM => {
                if m.slots[s].leaf_prims_left == 0 {
                    return; // lane was inactive when the loop mask formed
                }
                m.slots[s].leaf_prims_left -= 1;
                // Chain directly into a consecutive leaf step: the ray
                // stays in the leaf state, so the whole run is processed
                // within one rdctrl round.
                if m.slots[s].leaf_prims_left == 0 {
                    if let Some(Step::Leaf { prim_base_addr, prim_count, .. }) =
                        m.peek_step(s).copied()
                    {
                        m.consume_step(s);
                        m.slots[s].leaf_prims_left = prim_count;
                        m.slots[s].leaf_total = prim_count;
                        m.slots[s].leaf_base_addr = prim_base_addr;
                    }
                }
                m.refresh_state(s);
                if m.slots[s].leaf_prims_left == 0 {
                    self.retire_if_done(m, s);
                }
            }
            // reg_ray_state: the architectural write of the next traversal
            // state. Slot states are cache-maintained by the helpers, so
            // this is purely the synchronization point for the DRS control.
            E_SET_STATE => {
                m.refresh_state(s);
            }
            _ => panic!("unknown effect token {token}"),
        }
    }

    fn initialize(&self, m: &mut MachineState<'_>) {
        m.track_dirty = true;
    }
}

impl WhileIfKernel {
    fn retire_if_done(&self, m: &mut MachineState<'_>, s: usize) {
        if m.slots[s].ray.is_some() && m.slots[s].leaf_prims_left == 0 && m.peek_step(s).is_none() {
            m.retire_ray(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::{GpuConfig, RayState, SimStats, Simulation, SpecialOutcome, SpecialUnit};
    use drs_trace::{RayScript, Termination};

    /// A minimal "perfect oracle" control unit: since every lane of a warp
    /// in this test owns its own slot, it inspects the warp's slots and
    /// returns the majority state — enough to drive the kernel end to end
    /// without the real DRS hardware (exercised in `drs-core`).
    struct MajorityCtrl;

    impl SpecialUnit for MajorityCtrl {
        fn issue(
            &mut self,
            warp: usize,
            token: u16,
            m: &mut MachineState<'_>,
            _stats: &mut SimStats,
        ) -> SpecialOutcome {
            assert_eq!(token, TOKEN_RDCTRL);
            let mut counts = [0u32; 3]; // fetch, inner, leaf
            for lane in 0..m.lanes {
                if let Some(s) = m.slot_of(warp, lane) {
                    match m.slot_state(s) {
                        RayState::Fetching => counts[0] += 1,
                        RayState::Inner => counts[1] += 1,
                        RayState::Leaf => counts[2] += 1,
                        RayState::Done | RayState::Empty => {}
                    }
                }
            }
            if counts.iter().all(|&c| c == 0) {
                return SpecialOutcome::Proceed { ctrl: CTRL_EXIT };
            }
            let best = (0..3).max_by_key(|&i| counts[i]).expect("nonempty");
            let ctrl = [CTRL_FETCH, CTRL_TRAV_INNER, CTRL_TRAV_LEAF][best];
            SpecialOutcome::Proceed { ctrl }
        }

        fn tick(&mut self, _c: u64, _i: &[bool], _m: &mut MachineState<'_>, _s: &mut SimStats) {}
    }

    fn cfg(warps: usize) -> GpuConfig {
        GpuConfig { max_warps: warps, max_cycles: 50_000_000, ..GpuConfig::gtx780() }
    }

    fn scripts(n: usize) -> Vec<RayScript> {
        (0..n)
            .map(|i| {
                let mut steps = Vec::new();
                for k in 0..3 + i % 7 {
                    steps.push(Step::Inner {
                        node_addr: 0x1000_0000 + ((i * 31 + k) % 1024) as u64 * 64,
                        both_children_hit: k % 2 == 0,
                    });
                }
                steps.push(Step::Leaf {
                    node_addr: 0x1100_0000 + (i % 512) as u64 * 64,
                    prim_base_addr: 0x4000_0000 + (i % 512) as u64 * 48,
                    prim_count: 1 + (i % 4) as u16,
                });
                RayScript::new(steps, Termination::Hit)
            })
            .collect()
    }

    #[test]
    fn program_is_well_formed() {
        let p = WhileIfKernel::new().program();
        assert!(p.blocks().len() >= 12);
        assert!(p.static_op_count() > 60);
    }

    #[test]
    fn completes_under_majority_control() {
        let s = scripts(400);
        let k = WhileIfKernel::new();
        let sim =
            Simulation::new(cfg(4), k.program(), Box::new(k.clone()), Box::new(MajorityCtrl), &s);
        let out = sim.run().expect("hit cycle cap");
        assert_eq!(out.rays_completed, 400);
        assert!(out.rdctrl_issued > 0);
    }

    #[test]
    fn ctrl_gating_prevents_wrong_body_work() {
        // With majority control, warps still finish; a warp told TRAV_INNER
        // when some lanes need leaves must not consume those lanes' leaf
        // steps (the guard masks them off). End state is still completion.
        let s = scripts(96);
        let k = WhileIfKernel::new();
        let sim =
            Simulation::new(cfg(2), k.program(), Box::new(k.clone()), Box::new(MajorityCtrl), &s);
        let out = sim.run().expect("completes");
        assert_eq!(out.rays_completed, 96);
    }

    #[test]
    fn dirty_tracking_is_enabled() {
        let s = scripts(32);
        let k = WhileIfKernel::new();
        let sim =
            Simulation::new(cfg(1), k.program(), Box::new(k.clone()), Box::new(MajorityCtrl), &s);
        // The machine was initialized by the kernel behavior.
        assert!(sim.machine.track_dirty);
    }
}
