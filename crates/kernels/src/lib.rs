//! Ray-tracing kernels as micro-op programs for the cycle-level simulator.
//!
//! Two kernels, matching the paper's evaluation:
//!
//! - [`WhileWhileKernel`]: Aila-style software kernel — persistent
//!   threads, a layered while-while loop, optional speculative traversal
//!   and terminated-ray replacement. This is the software baseline every
//!   hardware scheme is compared against.
//! - [`WhileIfKernel`]: the paper's Kernel 1 — a while-if restructuring whose
//!   control flow is steered by the `rdctrl` special instruction and the
//!   `reg_ray_state` effect, designed for the DRS hardware (and reused by
//!   the DMK/TBC baseline units with their own special tokens).
//!
//! Both kernels share the per-body instruction-cost model in [`costs`], so
//! performance differences between them come from scheduling, divergence
//! and memory behaviour — not from arbitrary cost constants.

#![warn(missing_docs)]

pub mod costs;
mod while_if;
mod while_while;

pub use while_if::{
    WhileIfKernel, CTRL_EXIT, CTRL_FETCH, CTRL_TRAV_BOTH, CTRL_TRAV_INNER, CTRL_TRAV_LEAF,
    EFFECT_NEW_ROUND, INNER_UNROLL, TOKEN_RDCTRL,
};
pub use while_while::{WhileWhileConfig, WhileWhileKernel};
