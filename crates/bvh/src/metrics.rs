//! Tree-quality metrics: the surface-area-heuristic cost of a built BVH.
//!
//! These let the benches quantify *why* the binned-SAH builder beats the
//! median splitter (lower expected traversal cost), independent of any
//! particular ray distribution.

use crate::Bvh;

/// SAH cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SahParams {
    /// Cost of visiting an internal node.
    pub traversal_cost: f32,
    /// Cost of one ray-primitive intersection.
    pub intersect_cost: f32,
}

impl Default for SahParams {
    fn default() -> Self {
        SahParams { traversal_cost: 1.0, intersect_cost: 1.5 }
    }
}

/// Expected-cost summary of a BVH under the surface-area heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SahCost {
    /// Expected node visits per random ray (area-weighted).
    pub expected_node_visits: f32,
    /// Expected primitive tests per random ray (area-weighted).
    pub expected_prim_tests: f32,
    /// Combined SAH cost.
    pub total: f32,
}

/// Compute the SAH cost of a tree: for a random ray that intersects the
/// root, each node is visited with probability `area(node)/area(root)`.
///
/// # Panics
///
/// Panics if the BVH is empty (cannot happen for trees built by
/// [`Bvh::build`]).
pub fn sah_cost(bvh: &Bvh, params: &SahParams) -> SahCost {
    let nodes = bvh.nodes();
    assert!(!nodes.is_empty(), "BVH has no nodes");
    let root_area = nodes[0].bounds.surface_area().max(1e-12);
    let mut node_visits = 0.0f64;
    let mut prim_tests = 0.0f64;
    for n in nodes {
        let p = (n.bounds.surface_area() / root_area) as f64;
        if n.is_leaf() {
            prim_tests += p * n.prim_count as f64;
        } else {
            node_visits += p;
        }
    }
    let total =
        node_visits * params.traversal_cost as f64 + prim_tests * params.intersect_cost as f64;
    SahCost {
        expected_node_visits: node_visits as f32,
        expected_prim_tests: prim_tests as f32,
        total: total as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildMethod, BuildParams};
    use drs_geom::MeshBuilder;
    use drs_math::{Vec3, XorShift64};

    fn clustered_mesh() -> drs_geom::Mesh {
        let mut rng = XorShift64::new(21);
        let mut b = MeshBuilder::new();
        // Two dense clusters far apart: SAH separates them immediately;
        // a median split along the wrong axis can interleave them.
        b.scatter(Vec3::splat(-1.0), Vec3::splat(1.0), 300, 0.05, &mut rng);
        b.scatter(Vec3::new(40.0, 0.0, 0.0), Vec3::new(42.0, 2.0, 2.0), 300, 0.05, &mut rng);
        b.build()
    }

    #[test]
    fn sah_beats_median_on_clustered_input() {
        let mesh = clustered_mesh();
        let sah_tree = Bvh::build(
            &mesh,
            &BuildParams { method: BuildMethod::BinnedSah { bins: 16 }, max_leaf_size: 4 },
        );
        let med_tree =
            Bvh::build(&mesh, &BuildParams { method: BuildMethod::Median, max_leaf_size: 4 });
        let p = SahParams::default();
        let c_sah = sah_cost(&sah_tree, &p);
        let c_med = sah_cost(&med_tree, &p);
        assert!(
            c_sah.total <= c_med.total,
            "SAH {:.1} should not exceed median {:.1}",
            c_sah.total,
            c_med.total
        );
    }

    #[test]
    fn cost_components_are_positive_and_consistent() {
        let mesh = clustered_mesh();
        let tree = Bvh::build(&mesh, &BuildParams::default());
        let c = sah_cost(&tree, &SahParams::default());
        assert!(c.expected_node_visits > 0.0);
        assert!(c.expected_prim_tests > 0.0);
        let manual = c.expected_node_visits * 1.0 + c.expected_prim_tests * 1.5;
        assert!((c.total - manual).abs() < 1e-3);
    }

    #[test]
    fn root_only_tree_costs_its_primitives() {
        let mut b = MeshBuilder::new();
        b.triangle(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let mesh = b.build();
        let tree = Bvh::build(&mesh, &BuildParams::default());
        let c = sah_cost(&tree, &SahParams { traversal_cost: 1.0, intersect_cost: 2.0 });
        assert_eq!(c.expected_node_visits, 0.0);
        assert!((c.expected_prim_tests - 1.0).abs() < 1e-6);
        assert!((c.total - 2.0).abs() < 1e-6);
    }
}
