//! Functional and instrumented BVH traversal.

use crate::Bvh;
use drs_geom::Mesh;
use drs_math::{Ray, RAY_EPSILON};

/// A closest-hit result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Ray parameter at the intersection.
    pub t: f32,
    /// Index of the intersected triangle in the mesh.
    pub tri_index: u32,
    /// Barycentric coordinates of the hit.
    pub uv: (f32, f32),
}

/// One step of a ray's walk through the BVH, as observed by the
/// instrumented traversal. The trace crate converts streams of these into
/// the per-thread scripts the cycle-level simulator replays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraversalEvent {
    /// The ray tested an internal node's two children.
    Inner {
        /// Index of the visited internal node.
        node_index: u32,
        /// Whether both children were hit (the farther one is pushed to the
        /// traversal stack — slightly more work in the kernel's inner body).
        both_children_hit: bool,
    },
    /// The ray entered a leaf and intersected its primitives.
    Leaf {
        /// Index of the leaf node.
        node_index: u32,
        /// Number of primitives tested.
        prim_count: u16,
        /// Offset of the leaf's first primitive slot (device address base).
        first_prim: u32,
    },
}

/// Aggregate per-ray traversal counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Internal nodes visited.
    pub inner_visits: usize,
    /// Leaves visited.
    pub leaf_visits: usize,
    /// Primitives intersected.
    pub prim_tests: usize,
}

/// Closest-hit traversal with near-child-first ordering, streaming an event
/// per visited node into `sink`.
pub(crate) fn intersect(
    bvh: &Bvh,
    mesh: &Mesh,
    ray: &Ray,
    sink: &mut dyn FnMut(TraversalEvent),
) -> Option<Hit> {
    let nodes = bvh.nodes();
    let mut t_max = f32::INFINITY;
    let mut best: Option<Hit> = None;
    // Manual stack of node indices still to visit.
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    let mut current = 0u32;
    // Check the root bounds once; an early miss produces zero events, which
    // the trace layer records as an immediately-terminated ray.
    nodes[0].bounds.intersect(ray, RAY_EPSILON, t_max)?;
    loop {
        let node = &nodes[current as usize];
        if node.is_leaf() {
            sink(TraversalEvent::Leaf {
                node_index: current,
                prim_count: node.prim_count,
                first_prim: node.right_or_first,
            });
            for (slot, &p) in bvh.leaf_prims(node).iter().enumerate() {
                let _ = slot;
                let tri = &mesh.triangles()[p as usize];
                if let Some(h) = tri.intersect(ray, RAY_EPSILON, t_max) {
                    t_max = h.t;
                    best = Some(Hit { t: h.t, tri_index: p, uv: (h.u, h.v) });
                }
            }
        } else {
            let left = current + 1;
            let right = node.right_or_first;
            let t_left = nodes[left as usize].bounds.intersect(ray, RAY_EPSILON, t_max);
            let t_right = nodes[right as usize].bounds.intersect(ray, RAY_EPSILON, t_max);
            sink(TraversalEvent::Inner {
                node_index: current,
                both_children_hit: t_left.is_some() && t_right.is_some(),
            });
            match (t_left, t_right) {
                (Some(tl), Some(tr)) => {
                    // Visit the nearer child first; push the farther one.
                    let (near, far) = if tl <= tr { (left, right) } else { (right, left) };
                    stack.push(far);
                    current = near;
                    continue;
                }
                (Some(_), None) => {
                    current = left;
                    continue;
                }
                (None, Some(_)) => {
                    current = right;
                    continue;
                }
                (None, None) => {}
            }
        }
        // Pop, re-testing against the shrunken interval.
        loop {
            match stack.pop() {
                Some(idx) => {
                    if nodes[idx as usize].bounds.intersect(ray, RAY_EPSILON, t_max).is_some() {
                        current = idx;
                        break;
                    }
                    // Culled by a closer hit found since the push: the GPU
                    // kernel performs this same re-test when popping, so the
                    // culled node costs no Inner event.
                }
                None => return best,
            }
        }
    }
}

/// Any-hit (occlusion) traversal: returns true as soon as any triangle
/// intersects the ray within `(t_min, t_max)`. Unlike closest-hit, children
/// are visited in arbitrary order and traversal stops at the first hit —
/// the shadow-ray primitive of every renderer.
pub(crate) fn intersect_any(bvh: &Bvh, mesh: &Mesh, ray: &Ray, t_max: f32) -> bool {
    let nodes = bvh.nodes();
    if nodes[0].bounds.intersect(ray, RAY_EPSILON, t_max).is_none() {
        return false;
    }
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    stack.push(0);
    while let Some(idx) = stack.pop() {
        let node = &nodes[idx as usize];
        if node.bounds.intersect(ray, RAY_EPSILON, t_max).is_none() {
            continue;
        }
        if node.is_leaf() {
            for &p in bvh.leaf_prims(node) {
                if mesh.triangles()[p as usize].intersect(ray, RAY_EPSILON, t_max).is_some() {
                    return true;
                }
            }
        } else {
            stack.push(idx + 1);
            stack.push(node.right_or_first);
        }
    }
    false
}

/// Ground-truth brute force intersection over every triangle.
pub(crate) fn brute_force(mesh: &Mesh, ray: &Ray) -> Option<Hit> {
    let mut t_max = f32::INFINITY;
    let mut best = None;
    for (i, tri) in mesh.triangles().iter().enumerate() {
        if let Some(h) = tri.intersect(ray, RAY_EPSILON, t_max) {
            t_max = h.t;
            best = Some(Hit { t: h.t, tri_index: i as u32, uv: (h.u, h.v) });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildParams;
    use drs_geom::MeshBuilder;
    use drs_math::{Vec3, XorShift64};
    use drs_scene::SceneKind;

    fn random_rays(count: usize, seed: u64, span: f32) -> Vec<Ray> {
        let mut rng = XorShift64::new(seed);
        (0..count)
            .map(|_| {
                let o = Vec3::new(
                    (rng.next_f32() - 0.5) * span,
                    (rng.next_f32() - 0.5) * span,
                    (rng.next_f32() - 0.5) * span,
                );
                let d = Vec3::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5, rng.next_f32() - 0.5)
                    .normalized();
                Ray::new(o, if d.length() > 0.0 { d } else { Vec3::new(1.0, 0.0, 0.0) })
            })
            .collect()
    }

    #[test]
    fn traversal_matches_brute_force_on_random_soup() {
        let mut rng = XorShift64::new(99);
        let mut b = MeshBuilder::new();
        b.scatter(Vec3::splat(-5.0), Vec3::splat(5.0), 300, 0.8, &mut rng);
        let mesh = b.build();
        let bvh = Bvh::build(&mesh, &BuildParams::default());
        for ray in random_rays(500, 5, 16.0) {
            let a = bvh.intersect(&mesh, &ray);
            let b2 = Bvh::intersect_brute_force(&mesh, &ray);
            match (a, b2) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert!((x.t - y.t).abs() < 1e-3, "t mismatch: bvh {} vs brute {}", x.t, y.t);
                }
                (x, y) => panic!("hit disagreement: bvh {x:?} vs brute {y:?}"),
            }
        }
    }

    #[test]
    fn traversal_matches_brute_force_on_scenes() {
        for kind in [SceneKind::Conference, SceneKind::CrytekSponza] {
            let scene = kind.build_with_tris(800);
            let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
            for i in 0..100 {
                let s = (i % 10) as f32 / 10.0 + 0.05;
                let t = (i / 10) as f32 / 10.0 + 0.05;
                let ray = scene.camera().primary_ray(s, t);
                let a = bvh.intersect(scene.mesh(), &ray);
                let b = Bvh::intersect_brute_force(scene.mesh(), &ray);
                assert_eq!(a.is_some(), b.is_some(), "{kind} ray {i}");
                if let (Some(x), Some(y)) = (a, b) {
                    assert!((x.t - y.t).abs() < 1e-2, "{kind} ray {i}: {} vs {}", x.t, y.t);
                }
            }
        }
    }

    #[test]
    fn instrumented_events_are_consistent() {
        let scene = SceneKind::Conference.build_with_tris(1_000);
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        let ray = scene.camera().primary_ray(0.5, 0.5);
        let mut events = Vec::new();
        let hit = bvh.intersect_instrumented(scene.mesh(), &ray, &mut |e| events.push(e));
        assert!(hit.is_some());
        assert!(!events.is_empty());
        let mut stats = TraversalStats::default();
        for e in &events {
            match e {
                TraversalEvent::Inner { node_index, .. } => {
                    assert!(!bvh.nodes()[*node_index as usize].is_leaf());
                    stats.inner_visits += 1;
                }
                TraversalEvent::Leaf { node_index, prim_count, .. } => {
                    let n = &bvh.nodes()[*node_index as usize];
                    assert!(n.is_leaf());
                    assert_eq!(n.prim_count, *prim_count);
                    stats.leaf_visits += 1;
                    stats.prim_tests += *prim_count as usize;
                }
            }
        }
        assert!(stats.inner_visits >= stats.leaf_visits.saturating_sub(1));
    }

    #[test]
    fn miss_everything_produces_no_events() {
        let scene = SceneKind::Conference.build_with_tris(500);
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        let ray = Ray::new(Vec3::new(1000.0, 1000.0, 1000.0), Vec3::new(0.0, 1.0, 0.0));
        let mut events = Vec::new();
        let hit = bvh.intersect_instrumented(scene.mesh(), &ray, &mut |e| events.push(e));
        assert!(hit.is_none());
        assert!(events.is_empty());
    }

    #[test]
    fn closest_hit_is_truly_closest() {
        // Two parallel quads; ray must report the nearer.
        let mut b = MeshBuilder::new();
        b.quad(
            Vec3::new(-1.0, -1.0, 2.0),
            Vec3::new(1.0, -1.0, 2.0),
            Vec3::new(1.0, 1.0, 2.0),
            Vec3::new(-1.0, 1.0, 2.0),
        );
        b.quad(
            Vec3::new(-1.0, -1.0, 5.0),
            Vec3::new(1.0, -1.0, 5.0),
            Vec3::new(1.0, 1.0, 5.0),
            Vec3::new(-1.0, 1.0, 5.0),
        );
        let mesh = b.build();
        let bvh = Bvh::build(&mesh, &BuildParams::default());
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = bvh.intersect(&mesh, &ray).unwrap();
        assert!((hit.t - 2.0).abs() < 1e-5);
    }
}

#[cfg(test)]
mod any_hit_tests {
    use crate::{BuildParams, Bvh};
    use drs_geom::MeshBuilder;
    use drs_math::{Ray, Vec3, XorShift64};

    fn soup() -> drs_geom::Mesh {
        let mut rng = XorShift64::new(5);
        let mut b = MeshBuilder::new();
        b.scatter(Vec3::splat(-5.0), Vec3::splat(5.0), 250, 0.7, &mut rng);
        b.build()
    }

    #[test]
    fn any_hit_agrees_with_closest_hit_presence() {
        let mesh = soup();
        let bvh = Bvh::build(&mesh, &BuildParams::default());
        let mut rng = XorShift64::new(9);
        for _ in 0..400 {
            let o = Vec3::new(
                (rng.next_f32() - 0.5) * 16.0,
                (rng.next_f32() - 0.5) * 16.0,
                (rng.next_f32() - 0.5) * 16.0,
            );
            let d = Vec3::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5, rng.next_f32() - 0.5)
                .normalized();
            if d.length() == 0.0 {
                continue;
            }
            let ray = Ray::new(o, d);
            let closest = bvh.intersect(&mesh, &ray);
            assert_eq!(
                bvh.intersect_any(&mesh, &ray, f32::INFINITY),
                closest.is_some(),
                "presence disagreement"
            );
            // A t_max short of the closest hit must report unoccluded.
            if let Some(h) = closest {
                assert!(!bvh.intersect_any(&mesh, &ray, h.t * 0.5));
                assert!(bvh.intersect_any(&mesh, &ray, h.t + 1.0));
            }
        }
    }

    #[test]
    fn empty_interval_reports_unoccluded() {
        let mesh = soup();
        let bvh = Bvh::build(&mesh, &BuildParams::default());
        let ray = Ray::new(Vec3::splat(-10.0), Vec3::new(1.0, 1.0, 1.0).normalized());
        assert!(!bvh.intersect_any(&mesh, &ray, 1e-5));
    }
}
