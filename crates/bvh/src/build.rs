//! BVH construction: binned SAH and median split.

use crate::{Bvh, FlatNode};
use drs_geom::Mesh;
use drs_math::{Aabb, Axis};

/// Which partitioning strategy the builder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildMethod {
    /// Surface-area-heuristic sweep over `bins` spatial bins per axis; the
    /// production choice, minimizing expected traversal cost.
    BinnedSah {
        /// Number of bins per axis (16 is a standard default).
        bins: usize,
    },
    /// Split at the median centroid along the longest axis; cheaper to build
    /// but produces deeper, less efficient trees. Kept as an ablation
    /// baseline.
    Median,
}

/// Parameters controlling BVH construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildParams {
    /// Partitioning strategy.
    pub method: BuildMethod,
    /// Maximum primitives per leaf.
    pub max_leaf_size: usize,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams { method: BuildMethod::BinnedSah { bins: 16 }, max_leaf_size: 4 }
    }
}

/// Per-primitive build record.
#[derive(Debug, Clone, Copy)]
struct PrimRef {
    index: u32,
    bounds: Aabb,
    centroid: drs_math::Vec3,
}

pub(crate) fn build(mesh: &Mesh, params: &BuildParams) -> Bvh {
    assert!(!mesh.is_empty(), "cannot build a BVH over an empty mesh");
    assert!(params.max_leaf_size >= 1, "max_leaf_size must be >= 1");
    let mut refs: Vec<PrimRef> = mesh
        .triangles()
        .iter()
        .enumerate()
        .map(|(i, t)| PrimRef { index: i as u32, bounds: t.bounds(), centroid: t.centroid() })
        .collect();
    let mut nodes = Vec::with_capacity(mesh.len() * 2);
    let mut prim_indices = Vec::with_capacity(mesh.len());
    let n = refs.len();
    build_recursive(&mut refs[..], 0, n, params, &mut nodes, &mut prim_indices);
    Bvh { nodes, prim_indices }
}

/// Recursively build the subtree over `refs[lo..hi]`, appending nodes in
/// depth-first order (left child immediately follows its parent).
fn build_recursive(
    refs: &mut [PrimRef],
    lo: usize,
    hi: usize,
    params: &BuildParams,
    nodes: &mut Vec<FlatNode>,
    prim_indices: &mut Vec<u32>,
) -> usize {
    let bounds = refs[lo..hi].iter().fold(Aabb::EMPTY, |bb, r| bb.union(&r.bounds));
    let count = hi - lo;
    let my_index = nodes.len();
    if count <= params.max_leaf_size {
        push_leaf(refs, lo, hi, bounds, nodes, prim_indices);
        return my_index;
    }
    let centroid_bounds = refs[lo..hi].iter().fold(Aabb::EMPTY, |bb, r| bb.union_point(r.centroid));
    // Degenerate: all centroids coincide — no split can separate them.
    if centroid_bounds.extent().max_component() <= 0.0 {
        if u16::try_from(count).is_ok() {
            push_leaf(refs, lo, hi, bounds, nodes, prim_indices);
            return my_index;
        }
        // Forced even split to respect the u16 leaf-count field.
        let mid = lo + count / 2;
        return push_internal(refs, lo, mid, hi, bounds, Axis::X, params, nodes, prim_indices);
    }
    let (mid, axis) = match params.method {
        BuildMethod::Median => {
            let axis = centroid_bounds.longest_axis();
            let mid = lo + count / 2;
            refs[lo..hi].select_nth_unstable_by(mid - lo, |a, b| {
                a.centroid
                    .axis(axis)
                    .partial_cmp(&b.centroid.axis(axis))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            (mid, axis)
        }
        BuildMethod::BinnedSah { bins } => {
            match binned_sah_split(&mut refs[lo..hi], &centroid_bounds, bins) {
                Some((offset, axis)) => (lo + offset, axis),
                None => {
                    // SAH says "don't split" — make a leaf if the u16 field
                    // allows, otherwise fall back to a median split.
                    if count <= params.max_leaf_size.max(1) || count <= 8 {
                        push_leaf(refs, lo, hi, bounds, nodes, prim_indices);
                        return my_index;
                    }
                    let axis = centroid_bounds.longest_axis();
                    let mid = lo + count / 2;
                    refs[lo..hi].select_nth_unstable_by(mid - lo, |a, b| {
                        a.centroid
                            .axis(axis)
                            .partial_cmp(&b.centroid.axis(axis))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    (mid, axis)
                }
            }
        }
    };
    push_internal(refs, lo, mid, hi, bounds, axis, params, nodes, prim_indices)
}

/// Append an internal node and recurse into both halves.
#[allow(clippy::too_many_arguments)]
fn push_internal(
    refs: &mut [PrimRef],
    lo: usize,
    mid: usize,
    hi: usize,
    bounds: Aabb,
    axis: Axis,
    params: &BuildParams,
    nodes: &mut Vec<FlatNode>,
    prim_indices: &mut Vec<u32>,
) -> usize {
    debug_assert!(lo < mid && mid < hi, "split must make progress");
    let my_index = nodes.len();
    nodes.push(FlatNode {
        bounds,
        right_or_first: 0, // patched below
        prim_count: 0,
        axis: axis.index() as u8,
    });
    build_recursive(refs, lo, mid, params, nodes, prim_indices);
    let right = build_recursive(refs, mid, hi, params, nodes, prim_indices);
    nodes[my_index].right_or_first = right as u32;
    my_index
}

fn push_leaf(
    refs: &[PrimRef],
    lo: usize,
    hi: usize,
    bounds: Aabb,
    nodes: &mut Vec<FlatNode>,
    prim_indices: &mut Vec<u32>,
) {
    let first = prim_indices.len() as u32;
    prim_indices.extend(refs[lo..hi].iter().map(|r| r.index));
    nodes.push(FlatNode { bounds, right_or_first: first, prim_count: (hi - lo) as u16, axis: 0 });
}

/// Find the best binned-SAH split of `refs`; partitions `refs` in place and
/// returns `(split_offset, axis)`, or `None` when leaving the range whole is
/// cheaper than every candidate split.
fn binned_sah_split(
    refs: &mut [PrimRef],
    centroid_bounds: &Aabb,
    bins: usize,
) -> Option<(usize, Axis)> {
    const TRAVERSAL_COST: f32 = 1.0;
    const INTERSECT_COST: f32 = 1.0;
    let bins = bins.max(2);
    let total_bounds = refs.iter().fold(Aabb::EMPTY, |bb, r| bb.union(&r.bounds));
    let leaf_cost = INTERSECT_COST * refs.len() as f32;
    let mut best: Option<(f32, Axis, usize)> = None;

    for axis in Axis::ALL {
        let cmin = centroid_bounds.min.axis(axis);
        let cext = centroid_bounds.extent().axis(axis);
        if cext <= 0.0 {
            continue;
        }
        let bin_of =
            |c: f32| -> usize { (((c - cmin) / cext * bins as f32) as usize).min(bins - 1) };
        let mut bin_bounds = vec![Aabb::EMPTY; bins];
        let mut bin_counts = vec![0usize; bins];
        for r in refs.iter() {
            let b = bin_of(r.centroid.axis(axis));
            bin_bounds[b] = bin_bounds[b].union(&r.bounds);
            bin_counts[b] += 1;
        }
        // Suffix sweep: right-side area/count for every split plane.
        let mut right_area = vec![0.0f32; bins];
        let mut right_count = vec![0usize; bins];
        let mut acc_bb = Aabb::EMPTY;
        let mut acc_n = 0usize;
        for i in (1..bins).rev() {
            acc_bb = acc_bb.union(&bin_bounds[i]);
            acc_n += bin_counts[i];
            right_area[i] = acc_bb.surface_area();
            right_count[i] = acc_n;
        }
        // Prefix sweep evaluating SAH at each plane.
        let mut left_bb = Aabb::EMPTY;
        let mut left_n = 0usize;
        let parent_area = total_bounds.surface_area().max(1e-12);
        for plane in 1..bins {
            left_bb = left_bb.union(&bin_bounds[plane - 1]);
            left_n += bin_counts[plane - 1];
            if left_n == 0 || right_count[plane] == 0 {
                continue;
            }
            let cost = TRAVERSAL_COST
                + INTERSECT_COST
                    * (left_bb.surface_area() * left_n as f32
                        + right_area[plane] * right_count[plane] as f32)
                    / parent_area;
            if best.map_or(cost < leaf_cost, |(bc, _, _)| cost < bc) {
                best = Some((cost, axis, plane));
            }
        }
    }

    let (_, axis, plane) = best?;
    let cmin = centroid_bounds.min.axis(axis);
    let cext = centroid_bounds.extent().axis(axis);
    let bins_f = bins as f32;
    let mid = partition_in_place(refs, |r| {
        ((((r.centroid.axis(axis) - cmin) / cext * bins_f) as usize).min(bins - 1)) < plane
    });
    if mid == 0 || mid == refs.len() {
        return None; // numerically degenerate partition
    }
    Some((mid, axis))
}

/// Hoare-style partition: reorders `refs` so all elements satisfying `pred`
/// precede the rest; returns the boundary.
fn partition_in_place<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut lo = 0;
    let mut hi = slice.len();
    while lo < hi {
        if pred(&slice[lo]) {
            lo += 1;
        } else {
            hi -= 1;
            slice.swap(lo, hi);
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_geom::MeshBuilder;
    use drs_math::{Vec3, XorShift64};

    fn random_mesh(count: usize, seed: u64) -> Mesh {
        let mut rng = XorShift64::new(seed);
        let mut b = MeshBuilder::new();
        b.scatter(Vec3::splat(-10.0), Vec3::splat(10.0), count, 0.5, &mut rng);
        b.build()
    }

    #[test]
    fn partition_in_place_is_correct() {
        let mut v = vec![5, 1, 8, 2, 9, 3];
        let mid = partition_in_place(&mut v, |&x| x < 5);
        assert_eq!(mid, 3);
        assert!(v[..mid].iter().all(|&x| x < 5));
        assert!(v[mid..].iter().all(|&x| x >= 5));
        // all-true and all-false edge cases
        let mut v = vec![1, 2, 3];
        assert_eq!(partition_in_place(&mut v, |_| true), 3);
        assert_eq!(partition_in_place(&mut v, |_| false), 0);
        let mut empty: Vec<i32> = vec![];
        assert_eq!(partition_in_place(&mut empty, |_| true), 0);
    }

    #[test]
    fn sah_and_median_both_validate() {
        let mesh = random_mesh(500, 42);
        for method in [BuildMethod::BinnedSah { bins: 16 }, BuildMethod::Median] {
            let bvh = Bvh::build(&mesh, &BuildParams { method, max_leaf_size: 4 });
            bvh.validate(&mesh).expect("valid tree");
        }
    }

    #[test]
    fn sah_produces_fewer_or_equal_node_visits_than_median() {
        // SAH trees should be at least as shallow as median trees on
        // clustered input.
        let mut b = MeshBuilder::new();
        let mut rng = XorShift64::new(7);
        b.scatter(Vec3::splat(-1.0), Vec3::splat(1.0), 400, 0.05, &mut rng);
        b.scatter(Vec3::new(50.0, 0.0, 0.0), Vec3::new(52.0, 2.0, 2.0), 100, 0.05, &mut rng);
        let mesh = b.build();
        let sah = Bvh::build(&mesh, &BuildParams::default());
        let med = Bvh::build(&mesh, &BuildParams { method: BuildMethod::Median, max_leaf_size: 4 });
        assert!(sah.stats().node_count <= med.stats().node_count * 2);
        sah.validate(&mesh).unwrap();
        med.validate(&mesh).unwrap();
    }

    #[test]
    fn single_triangle_mesh() {
        let mut b = MeshBuilder::new();
        b.triangle(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let mesh = b.build();
        let bvh = Bvh::build(&mesh, &BuildParams::default());
        assert_eq!(bvh.nodes().len(), 1);
        assert!(bvh.nodes()[0].is_leaf());
        bvh.validate(&mesh).unwrap();
    }

    #[test]
    fn coincident_centroids_build_without_infinite_recursion() {
        // 100 triangles stacked at the same location.
        let mut b = MeshBuilder::new();
        for _ in 0..100 {
            b.triangle(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        }
        let mesh = b.build();
        let bvh = Bvh::build(&mesh, &BuildParams::default());
        bvh.validate(&mesh).unwrap();
    }

    #[test]
    fn max_leaf_size_respected() {
        let mesh = random_mesh(300, 3);
        for mls in [1usize, 2, 8] {
            let bvh = Bvh::build(
                &mesh,
                &BuildParams { method: BuildMethod::BinnedSah { bins: 8 }, max_leaf_size: mls },
            );
            // SAH may stop early only when it is *cheaper*, which can exceed
            // max_leaf_size only through the no-split fallback capped at 8.
            assert!(bvh.stats().max_leaf_prims <= mls.max(8));
            bvh.validate(&mesh).unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn empty_mesh_panics() {
        Bvh::build(&Mesh::new(), &BuildParams::default());
    }
}
