//! A kd-tree accelerator — the paper's other canonical acceleration
//! structure ("tree data structures are widely used, such as a kd-tree or
//! Bounding Volume Hierarchies").
//!
//! Space-partitioning semantics differ from the BVH's object partitioning:
//! triangles straddling a split plane are referenced from *both* children,
//! and traversal walks the ray's parametric interval front to back, which
//! lets it terminate as soon as a hit inside the current cell is found.
//! The functional interface mirrors [`crate::Bvh`] so the two structures
//! can be compared on identical ray sets.

use crate::traverse::Hit;
use drs_geom::Mesh;
use drs_math::{Aabb, Axis, Ray, RAY_EPSILON};

/// Simulated device base address of kd-tree nodes (distinct from the BVH's
/// so cache studies can tell the structures apart).
pub const KD_NODE_BASE_ADDR: u64 = 0x2000_0000;
/// Bytes per kd-node record (8-byte packed node, padded to 16).
pub const KD_NODE_SIZE_BYTES: u64 = 16;

/// One kd-tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KdNode {
    /// Interior node: splits space at `split` along `axis`; the left
    /// (below-plane) child is the next node in depth-first order, the right
    /// child sits at `right_child`.
    Inner {
        /// Split axis.
        axis: Axis,
        /// Split plane coordinate.
        split: f32,
        /// Index of the above-plane child.
        right_child: u32,
    },
    /// Leaf node referencing `count` primitive slots starting at `first`.
    Leaf {
        /// Offset into the primitive-index array.
        first: u32,
        /// Number of primitives.
        count: u32,
    },
}

/// Construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KdBuildParams {
    /// Stop splitting below this primitive count.
    pub max_leaf_size: usize,
    /// Hard depth limit (0 = use the `8 + 1.3·log2(n)` heuristic).
    pub max_depth: usize,
}

impl Default for KdBuildParams {
    fn default() -> Self {
        KdBuildParams { max_leaf_size: 8, max_depth: 0 }
    }
}

/// A kd-tree over a mesh.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    prim_indices: Vec<u32>,
    bounds: Aabb,
}

impl KdTree {
    /// Build a kd-tree by median splitting along the longest axis, with
    /// straddling triangles duplicated into both children.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is empty.
    pub fn build(mesh: &Mesh, params: &KdBuildParams) -> KdTree {
        assert!(!mesh.is_empty(), "cannot build a kd-tree over an empty mesh");
        let bounds = mesh.bounds();
        let max_depth = if params.max_depth > 0 {
            params.max_depth
        } else {
            (8.0 + 1.3 * (mesh.len() as f32).log2()).round() as usize
        };
        let prims: Vec<u32> = (0..mesh.len() as u32).collect();
        let mut tree = KdTree { nodes: Vec::new(), prim_indices: Vec::new(), bounds };
        tree.build_node(mesh, prims, bounds, max_depth, params.max_leaf_size);
        tree
    }

    fn build_node(
        &mut self,
        mesh: &Mesh,
        prims: Vec<u32>,
        bounds: Aabb,
        depth: usize,
        max_leaf: usize,
    ) -> usize {
        let my_index = self.nodes.len();
        if prims.len() <= max_leaf || depth == 0 {
            let first = self.prim_indices.len() as u32;
            let count = prims.len() as u32;
            self.prim_indices.extend(prims);
            self.nodes.push(KdNode::Leaf { first, count });
            return my_index;
        }
        let axis = bounds.longest_axis();
        let split = bounds.centroid().axis(axis);
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for &p in &prims {
            let bb = mesh.triangles()[p as usize].bounds();
            if bb.min.axis(axis) <= split {
                left.push(p);
            }
            if bb.max.axis(axis) >= split {
                right.push(p);
            }
        }
        // Degenerate split (everything straddles): make a leaf.
        if left.len() == prims.len() && right.len() == prims.len() {
            let first = self.prim_indices.len() as u32;
            let count = prims.len() as u32;
            self.prim_indices.extend(prims);
            self.nodes.push(KdNode::Leaf { first, count });
            return my_index;
        }
        self.nodes.push(KdNode::Inner { axis, split, right_child: 0 });
        let mut lb = bounds;
        lb.max[axis.index()] = split;
        let mut rb = bounds;
        rb.min[axis.index()] = split;
        self.build_node(mesh, left, lb, depth - 1, max_leaf);
        let right_index = self.build_node(mesh, right, rb, depth - 1, max_leaf);
        if let KdNode::Inner { right_child, .. } = &mut self.nodes[my_index] {
            *right_child = right_index as u32;
        }
        my_index
    }

    /// The node array (root at index 0).
    pub fn nodes(&self) -> &[KdNode] {
        &self.nodes
    }

    /// World bounds of the tree.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Device address of node `index`.
    pub fn node_addr(&self, index: usize) -> u64 {
        KD_NODE_BASE_ADDR + index as u64 * KD_NODE_SIZE_BYTES
    }

    /// Closest-hit traversal with early termination inside cells; also
    /// reports the number of nodes visited (inner + leaf) so the tree can
    /// be compared against the BVH on identical rays.
    pub fn intersect_counted(&self, mesh: &Mesh, ray: &Ray) -> (Option<Hit>, usize) {
        let Some(t_enter) = self.bounds.intersect(ray, RAY_EPSILON, f32::INFINITY) else {
            return (None, 0);
        };
        // Conservative exit: reuse the slab test's interval end by clipping
        // against a huge t and walking the stack with per-node intervals.
        let mut t_max_world = f32::INFINITY;
        let mut best: Option<Hit> = None;
        let mut visited = 0usize;
        // Stack of (node, t_min, t_max).
        let mut stack: Vec<(u32, f32, f32)> = Vec::with_capacity(64);
        stack.push((0, t_enter, f32::INFINITY));
        while let Some((idx, t0, mut t1)) = stack.pop() {
            t1 = t1.min(t_max_world);
            if t0 > t1 {
                continue;
            }
            let mut node = idx;
            loop {
                visited += 1;
                match self.nodes[node as usize] {
                    KdNode::Leaf { first, count } => {
                        for k in 0..count {
                            let p = self.prim_indices[(first + k) as usize];
                            if let Some(h) = mesh.triangles()[p as usize].intersect(
                                ray,
                                RAY_EPSILON,
                                t_max_world,
                            ) {
                                t_max_world = h.t;
                                best = Some(Hit { t: h.t, tri_index: p, uv: (h.u, h.v) });
                            }
                        }
                        // Front-to-back: a hit within this cell terminates.
                        if let Some(h) = &best {
                            if h.t <= t1 + 1e-4 {
                                return (best, visited);
                            }
                        }
                        break;
                    }
                    KdNode::Inner { axis, split, right_child } => {
                        let o = ray.origin.axis(axis);
                        let inv_d = ray.inv_direction.axis(axis);
                        let below_first = o < split || (o == split && inv_d <= 0.0);
                        let (near, far) = if below_first {
                            (node + 1, right_child)
                        } else {
                            (right_child, node + 1)
                        };
                        let t_plane = (split - o) * inv_d;
                        // Standard three-way case split: a non-positive or
                        // non-finite crossing means the ray points away
                        // from (or parallel to) the plane — near child
                        // only; a crossing beyond the interval also stays
                        // near; a crossing before the interval means the
                        // interval lies entirely on the far side; otherwise
                        // both children, near first.
                        if !t_plane.is_finite() || t_plane <= 0.0 || t_plane >= t1 {
                            node = near;
                        } else if t_plane < t0 {
                            node = far;
                        } else {
                            stack.push((far, t_plane, t1));
                            node = near;
                            t1 = t_plane;
                        }
                    }
                }
            }
        }
        (best, visited)
    }

    /// Closest-hit traversal.
    pub fn intersect(&self, mesh: &Mesh, ray: &Ray) -> Option<Hit> {
        self.intersect_counted(mesh, ray).0
    }

    /// Structural validation: every triangle reachable, leaf ranges in
    /// bounds, inner children in range.
    pub fn validate(&self, mesh: &Mesh) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty kd-tree".into());
        }
        let mut covered = vec![false; mesh.len()];
        let mut stack = vec![0u32];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(idx) = stack.pop() {
            let i = idx as usize;
            if i >= self.nodes.len() {
                return Err(format!("node {i} out of range"));
            }
            if seen[i] {
                return Err(format!("node {i} reachable twice"));
            }
            seen[i] = true;
            match self.nodes[i] {
                KdNode::Leaf { first, count } => {
                    let (first, count) = (first as usize, count as usize);
                    if first + count > self.prim_indices.len() {
                        return Err(format!("leaf {i} range out of bounds"));
                    }
                    for &p in &self.prim_indices[first..first + count] {
                        if p as usize >= mesh.len() {
                            return Err(format!("prim index {p} out of range"));
                        }
                        covered[p as usize] = true;
                    }
                }
                KdNode::Inner { right_child, .. } => {
                    stack.push(idx + 1);
                    stack.push(right_child);
                }
            }
        }
        if let Some(missing) = covered.iter().position(|&c| !c) {
            return Err(format!("triangle {missing} unreachable"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bvh;
    use drs_geom::MeshBuilder;
    use drs_math::{Vec3, XorShift64};

    fn soup(n: usize, seed: u64) -> Mesh {
        let mut rng = XorShift64::new(seed);
        let mut b = MeshBuilder::new();
        b.scatter(Vec3::splat(-6.0), Vec3::splat(6.0), n, 0.6, &mut rng);
        b.build()
    }

    fn random_rays(count: usize, seed: u64) -> Vec<Ray> {
        let mut rng = XorShift64::new(seed);
        (0..count)
            .map(|_| {
                let o = Vec3::new(
                    (rng.next_f32() - 0.5) * 20.0,
                    (rng.next_f32() - 0.5) * 20.0,
                    (rng.next_f32() - 0.5) * 20.0,
                );
                let mut d =
                    Vec3::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5, rng.next_f32() - 0.5);
                if d.length_squared() < 1e-6 {
                    d = Vec3::new(1.0, 0.0, 0.0);
                }
                Ray::new(o, d.normalized())
            })
            .collect()
    }

    #[test]
    fn builds_and_validates() {
        let mesh = soup(400, 3);
        let kd = KdTree::build(&mesh, &KdBuildParams::default());
        kd.validate(&mesh).unwrap();
        assert!(kd.nodes().len() > 1);
    }

    #[test]
    fn traversal_matches_brute_force() {
        let mesh = soup(300, 11);
        let kd = KdTree::build(&mesh, &KdBuildParams::default());
        for ray in random_rays(600, 5) {
            let fast = kd.intersect(&mesh, &ray);
            let slow = Bvh::intersect_brute_force(&mesh, &ray);
            match (fast, slow) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!((a.t - b.t).abs() < 1e-2, "t mismatch {} vs {}", a.t, b.t);
                }
                (a, b) => panic!("disagreement: kd {a:?} vs brute {b:?}"),
            }
        }
    }

    #[test]
    fn traversal_matches_bvh() {
        let mesh = soup(350, 17);
        let kd = KdTree::build(&mesh, &KdBuildParams::default());
        let bvh = Bvh::build(&mesh, &crate::BuildParams::default());
        for ray in random_rays(400, 23) {
            let a = kd.intersect(&mesh, &ray);
            let b = bvh.intersect(&mesh, &ray);
            assert_eq!(a.is_some(), b.is_some());
            if let (Some(x), Some(y)) = (a, b) {
                assert!((x.t - y.t).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn early_termination_limits_node_visits() {
        // A ray that hits geometry immediately should visit far fewer nodes
        // than one that misses everything and walks the whole corridor.
        let mesh = soup(500, 31);
        let kd = KdTree::build(&mesh, &KdBuildParams::default());
        let mut hit_visits = Vec::new();
        let mut miss_visits = Vec::new();
        for ray in random_rays(800, 41) {
            let (hit, v) = kd.intersect_counted(&mesh, &ray);
            if hit.is_some() {
                hit_visits.push(v);
            } else {
                miss_visits.push(v);
            }
        }
        assert!(!hit_visits.is_empty() && !miss_visits.is_empty());
        let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        // Hits terminate early on average (not a strict theorem per ray,
        // but a strong aggregate property of front-to-back traversal).
        assert!(
            avg(&hit_visits) < avg(&miss_visits) * 3.0,
            "hit {} vs miss {}",
            avg(&hit_visits),
            avg(&miss_visits)
        );
    }

    #[test]
    fn depth_limit_is_respected() {
        let mesh = soup(300, 7);
        let kd = KdTree::build(&mesh, &KdBuildParams { max_leaf_size: 4, max_depth: 3 });
        kd.validate(&mesh).unwrap();
        // Depth 3 => at most 2^4 - 1 nodes.
        assert!(kd.nodes().len() <= 15, "{} nodes", kd.nodes().len());
    }

    #[test]
    fn addresses_are_distinct_from_bvh() {
        let mesh = soup(50, 9);
        let kd = KdTree::build(&mesh, &KdBuildParams::default());
        assert_eq!(kd.node_addr(0), KD_NODE_BASE_ADDR);
        assert!(kd.node_addr(0) != crate::NODE_BASE_ADDR);
    }

    #[test]
    #[should_panic]
    fn empty_mesh_panics() {
        KdTree::build(&Mesh::new(), &KdBuildParams::default());
    }
}
