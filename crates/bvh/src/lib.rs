//! Acceleration structures: BVH construction and traversal, plus a
//! kd-tree comparator.
//!
//! The BVH is the acceleration structure both ray-tracing kernels in the
//! paper traverse (the paper names kd-trees as the other standard choice —
//! [`KdTree`] provides one for comparison). This crate provides:
//!
//! - a **binned-SAH builder** (the production algorithm) and a **median-split
//!   builder** (a simpler baseline, useful for ablations),
//! - a **flattened node layout** in which every node owns a simulated device
//!   address — the cycle-level simulator's L1-texture-cache model consumes
//!   exactly these addresses, matching the paper's "BVH … accessed through
//!   the L1 texture cache",
//! - **functional traversal** (closest hit / any hit) and an **instrumented
//!   traversal** that records the per-ray event stream (inner-node steps and
//!   leaf steps) from which [`drs-trace`](../drs_trace/index.html) builds the
//!   ray scripts that drive the simulator.
//!
//! # Example
//!
//! ```
//! use drs_bvh::{BuildParams, Bvh};
//! use drs_scene::SceneKind;
//! use drs_math::{Ray, Vec3};
//!
//! let scene = SceneKind::Conference.build_with_tris(500);
//! let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
//! let ray = scene.camera().primary_ray(0.5, 0.5);
//! let hit = bvh.intersect(scene.mesh(), &ray);
//! assert!(hit.is_some(), "camera looks into the room");
//! ```

#![warn(missing_docs)]

mod build;
mod kdtree;
mod metrics;
mod traverse;

pub use build::{BuildMethod, BuildParams};
pub use kdtree::{KdBuildParams, KdNode, KdTree, KD_NODE_BASE_ADDR, KD_NODE_SIZE_BYTES};
pub use metrics::{sah_cost, SahCost, SahParams};
pub use traverse::{Hit, TraversalEvent, TraversalStats};

use drs_geom::Mesh;
use drs_math::Aabb;

/// Simulated base address of the flattened node array in device memory.
pub const NODE_BASE_ADDR: u64 = 0x1000_0000;
/// Size in bytes of one flattened node as laid out on the device (two AABBs
/// + child/leaf metadata, matching Aila-style 64-byte nodes).
pub const NODE_SIZE_BYTES: u64 = 64;
/// Simulated base address of the triangle (Woop-transformed) data array.
pub const TRI_BASE_ADDR: u64 = 0x4000_0000;
/// Size in bytes of one triangle record on the device.
pub const TRI_SIZE_BYTES: u64 = 48;

/// A node of the flattened BVH.
///
/// Internal nodes store the index of their right child (the left child is
/// always the next node in depth-first order). Leaves store a range into the
/// permuted primitive-index array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatNode {
    /// World bounds of everything below this node.
    pub bounds: Aabb,
    /// For internal nodes, the index of the right child; for leaves, the
    /// offset of the first primitive in [`Bvh::prim_indices`].
    pub right_or_first: u32,
    /// Number of primitives (0 for internal nodes).
    pub prim_count: u16,
    /// Split axis (internal nodes; 0 for leaves). Drives near-child-first
    /// traversal ordering.
    pub axis: u8,
}

impl FlatNode {
    /// True if this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.prim_count > 0
    }
}

/// A flattened bounding volume hierarchy over a [`Mesh`].
#[derive(Debug, Clone)]
pub struct Bvh {
    nodes: Vec<FlatNode>,
    prim_indices: Vec<u32>,
}

impl Bvh {
    /// Build a BVH over `mesh` with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is empty.
    pub fn build(mesh: &Mesh, params: &BuildParams) -> Bvh {
        build::build(mesh, params)
    }

    /// The flattened nodes; index 0 is the root.
    pub fn nodes(&self) -> &[FlatNode] {
        &self.nodes
    }

    /// The permuted primitive indices leaves point into.
    pub fn prim_indices(&self) -> &[u32] {
        &self.prim_indices
    }

    /// Primitive indices referenced by a leaf node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a leaf.
    pub fn leaf_prims(&self, node: &FlatNode) -> &[u32] {
        assert!(node.is_leaf(), "leaf_prims called on internal node");
        let first = node.right_or_first as usize;
        &self.prim_indices[first..first + node.prim_count as usize]
    }

    /// Simulated device address of node `index`.
    ///
    /// Consecutive nodes occupy consecutive 64-byte slots, so siblings that
    /// are close in depth-first order share 128-byte cache lines — the
    /// locality the L1 texture cache exploits.
    #[inline]
    pub fn node_addr(&self, index: usize) -> u64 {
        NODE_BASE_ADDR + index as u64 * NODE_SIZE_BYTES
    }

    /// Simulated device address of the `pos`-th slot of the permuted
    /// primitive array.
    #[inline]
    pub fn prim_addr(&self, pos: usize) -> u64 {
        TRI_BASE_ADDR + pos as u64 * TRI_SIZE_BYTES
    }

    /// Closest-hit traversal (stackful, front-to-back by slab distance).
    pub fn intersect(&self, mesh: &Mesh, ray: &drs_math::Ray) -> Option<Hit> {
        traverse::intersect(self, mesh, ray, &mut |_| {})
    }

    /// Closest-hit traversal that also streams [`TraversalEvent`]s to `sink`.
    pub fn intersect_instrumented(
        &self,
        mesh: &Mesh,
        ray: &drs_math::Ray,
        sink: &mut dyn FnMut(TraversalEvent),
    ) -> Option<Hit> {
        traverse::intersect(self, mesh, ray, sink)
    }

    /// Any-hit occlusion query: is anything within `(epsilon, t_max)` along
    /// the ray? Cheaper than closest-hit because traversal stops at the
    /// first intersection (the shadow-ray primitive).
    pub fn intersect_any(&self, mesh: &Mesh, ray: &drs_math::Ray, t_max: f32) -> bool {
        traverse::intersect_any(self, mesh, ray, t_max)
    }

    /// Brute-force closest hit over all triangles; ground truth for tests.
    pub fn intersect_brute_force(mesh: &Mesh, ray: &drs_math::Ray) -> Option<Hit> {
        traverse::brute_force(mesh, ray)
    }

    /// Aggregate structural statistics (used in EXPERIMENTS.md context rows).
    pub fn stats(&self) -> BvhStats {
        let mut s = BvhStats { node_count: self.nodes.len(), ..BvhStats::default() };
        let mut stack = vec![(0usize, 0usize)];
        while let Some((idx, depth)) = stack.pop() {
            let n = &self.nodes[idx];
            s.max_depth = s.max_depth.max(depth);
            if n.is_leaf() {
                s.leaf_count += 1;
                s.total_leaf_prims += n.prim_count as usize;
                s.max_leaf_prims = s.max_leaf_prims.max(n.prim_count as usize);
            } else {
                stack.push((idx + 1, depth + 1));
                stack.push((n.right_or_first as usize, depth + 1));
            }
        }
        s
    }

    /// Verify structural invariants; returns a description of the first
    /// violation, if any. Exercised heavily by property tests.
    pub fn validate(&self, mesh: &Mesh) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty node array".into());
        }
        // Every primitive appears exactly once in the permutation.
        if self.prim_indices.len() != mesh.len() {
            return Err(format!(
                "prim index count {} != mesh triangles {}",
                self.prim_indices.len(),
                mesh.len()
            ));
        }
        let mut seen = vec![false; mesh.len()];
        for &p in &self.prim_indices {
            let p = p as usize;
            if p >= mesh.len() {
                return Err(format!("prim index {p} out of range"));
            }
            if seen[p] {
                return Err(format!("prim index {p} duplicated"));
            }
            seen[p] = true;
        }
        // Tree structure: each node visited exactly once; leaf ranges tile
        // the permutation; child bounds nest inside parents.
        let mut visited = vec![false; self.nodes.len()];
        let mut leaf_cover = vec![false; self.prim_indices.len()];
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            if idx >= self.nodes.len() {
                return Err(format!("node index {idx} out of range"));
            }
            if visited[idx] {
                return Err(format!("node {idx} reachable twice"));
            }
            visited[idx] = true;
            let n = &self.nodes[idx];
            if n.is_leaf() {
                let first = n.right_or_first as usize;
                let count = n.prim_count as usize;
                if first + count > self.prim_indices.len() {
                    return Err(format!("leaf {idx} range out of bounds"));
                }
                for slot in leaf_cover.iter_mut().skip(first).take(count) {
                    if *slot {
                        return Err(format!("leaf {idx} overlaps another leaf"));
                    }
                    *slot = true;
                }
                for &p in self.leaf_prims(n) {
                    let tri_bb = mesh.triangles()[p as usize].bounds();
                    if !n.bounds.expanded(1e-4).contains_box(&tri_bb) {
                        return Err(format!("leaf {idx} bounds do not contain prim {p}"));
                    }
                }
            } else {
                let (l, r) = (idx + 1, n.right_or_first as usize);
                if r >= self.nodes.len() {
                    return Err(format!("internal {idx} right child {r} out of range"));
                }
                for c in [l, r] {
                    if !n.bounds.expanded(1e-4).contains_box(&self.nodes[c].bounds) {
                        return Err(format!("node {idx} does not contain child {c}"));
                    }
                }
                stack.push(l);
                stack.push(r);
            }
        }
        if let Some(missing) = leaf_cover.iter().position(|&v| !v) {
            return Err(format!("prim slot {missing} not covered by any leaf"));
        }
        if let Some(unreachable) = visited.iter().position(|&v| !v) {
            return Err(format!("node {unreachable} unreachable from root"));
        }
        Ok(())
    }
}

/// Structural statistics of a built BVH.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BvhStats {
    /// Total nodes (internal + leaf).
    pub node_count: usize,
    /// Number of leaves.
    pub leaf_count: usize,
    /// Sum of primitives over all leaves.
    pub total_leaf_prims: usize,
    /// Largest leaf.
    pub max_leaf_prims: usize,
    /// Deepest leaf depth (root = 0).
    pub max_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_scene::SceneKind;

    #[test]
    fn build_and_validate_all_scenes() {
        for kind in SceneKind::ALL {
            let scene = kind.build_with_tris(1_500);
            let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
            bvh.validate(scene.mesh()).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn stats_are_consistent() {
        let scene = SceneKind::Conference.build_with_tris(1_000);
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        let s = bvh.stats();
        assert_eq!(s.total_leaf_prims, scene.mesh().len());
        assert_eq!(s.node_count, bvh.nodes().len());
        assert!(s.max_leaf_prims <= BuildParams::default().max_leaf_size);
        assert!(s.max_depth > 3);
    }

    #[test]
    fn node_addresses_are_64_byte_slots() {
        let scene = SceneKind::Plants.build_with_tris(800);
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        assert_eq!(bvh.node_addr(0), NODE_BASE_ADDR);
        assert_eq!(bvh.node_addr(3) - bvh.node_addr(2), NODE_SIZE_BYTES);
        assert_eq!(bvh.prim_addr(1) - bvh.prim_addr(0), TRI_SIZE_BYTES);
    }

    #[test]
    #[should_panic]
    fn leaf_prims_on_internal_node_panics() {
        let scene = SceneKind::Conference.build_with_tris(1_000);
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        let root = bvh.nodes()[0];
        assert!(!root.is_leaf());
        let _ = bvh.leaf_prims(&root);
    }
}
