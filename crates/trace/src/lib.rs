//! Per-ray traversal scripts: the workload format the simulator replays.
//!
//! The paper's methodology streams traces of rays captured from PBRT into
//! the ray-tracing kernels under test. This crate is that pipeline stage: it
//! walks complete light paths through a scene (sharing the BSDF sampling of
//! `drs-render`), records each ray's walk through the BVH as a [`RayScript`]
//! — the exact sequence of inner-node visits (with device addresses) and
//! leaf visits (with primitive counts) — and groups scripts into per-bounce
//! [`BounceStream`]s.
//!
//! During cycle-level simulation each GPU thread holds a cursor into its
//! ray's script: branch micro-ops consult the cursor ("is my next step an
//! inner node?") and load micro-ops draw the recorded addresses, which flow
//! through the simulated L1-texture/L2 cache hierarchy.
//!
//! Primary rays are captured in scanline order (spatially coherent, like a
//! real GPU dispatch); secondary rays inherit that order but their
//! directions are randomized by BSDF sampling — reproducing the coherence
//! collapse between bounce 1 and bounce 2 that drives the whole paper.
//!
//! # Example
//!
//! ```
//! use drs_scene::SceneKind;
//! use drs_trace::BounceStreams;
//!
//! let scene = SceneKind::Conference.build_with_tris(600);
//! let streams = BounceStreams::capture(&scene, 256, 4, 0xBEEF);
//! let b1 = streams.bounce(1);
//! assert_eq!(b1.scripts.len(), 256);
//! let b2 = streams.bounce(2);
//! assert!(!b2.scripts.is_empty());
//! ```

#![warn(missing_docs)]

mod capture;
mod io;
mod script;

pub use capture::{BounceStream, BounceStreams, StreamStats};
pub use io::{TraceIoError, FORMAT_VERSION};
pub use script::{RayScript, ScriptCursor, Step, Termination};
