//! Bounce-stream capture: walking paths and recording ray scripts.

use crate::script::{RayScript, Step, Termination};
use drs_bvh::{BuildParams, Bvh, TraversalEvent};
use drs_math::{dot, LowDiscrepancy, Ray, RAY_EPSILON};
use drs_render::sample_bsdf;
use drs_scene::Scene;

/// All rays captured for one bounce depth.
#[derive(Debug, Clone)]
pub struct BounceStream {
    /// 1-based bounce index (1 = primary rays).
    pub bounce: usize,
    /// One script per captured ray, in dispatch order.
    pub scripts: Vec<RayScript>,
}

impl BounceStream {
    /// Aggregate statistics over the stream.
    pub fn stats(&self) -> StreamStats {
        let mut s = StreamStats { rays: self.scripts.len(), ..Default::default() };
        if self.scripts.is_empty() {
            return s;
        }
        for script in &self.scripts {
            s.total_inner += script.inner_count();
            s.total_leaf += script.leaf_count();
            s.total_prim_tests += script.prim_tests();
            match script.termination() {
                Termination::Hit => s.hits += 1,
                Termination::Escaped => s.escaped += 1,
                Termination::HitLight => s.hit_light += 1,
            }
        }
        s
    }
}

/// Aggregate statistics of a [`BounceStream`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of rays in the stream.
    pub rays: usize,
    /// Total inner-node visits across rays.
    pub total_inner: usize,
    /// Total leaf visits across rays.
    pub total_leaf: usize,
    /// Total primitive tests across rays.
    pub total_prim_tests: usize,
    /// Rays that hit non-emissive geometry.
    pub hits: usize,
    /// Rays that left the scene.
    pub escaped: usize,
    /// Rays that hit a light source.
    pub hit_light: usize,
}

impl StreamStats {
    /// Mean inner-node visits per ray.
    pub fn avg_inner(&self) -> f64 {
        self.total_inner as f64 / self.rays.max(1) as f64
    }

    /// Mean leaf visits per ray.
    pub fn avg_leaf(&self) -> f64 {
        self.total_leaf as f64 / self.rays.max(1) as f64
    }

    /// Fraction of rays that terminated (escape or light) at this bounce.
    pub fn termination_rate(&self) -> f64 {
        (self.escaped + self.hit_light) as f64 / self.rays.max(1) as f64
    }
}

/// Captured per-bounce ray streams for one scene.
#[derive(Debug, Clone)]
pub struct BounceStreams {
    streams: Vec<BounceStream>,
}

impl BounceStreams {
    /// Assemble from already-built streams (used by the binary loader).
    ///
    /// # Panics
    ///
    /// Panics if the streams' bounce indices are not `1..=n` in order.
    pub fn from_streams(streams: Vec<BounceStream>) -> BounceStreams {
        for (i, s) in streams.iter().enumerate() {
            assert_eq!(s.bounce, i + 1, "bounce indices must be 1..=n in order");
        }
        BounceStreams { streams }
    }

    /// Capture up to `target_per_bounce` ray scripts for each bounce depth
    /// `1..=max_bounces` by walking complete paths through `scene`.
    ///
    /// Primary samples sweep the film in scanline order (one sample per
    /// virtual pixel, re-sweeping with new jitter until every bucket fills
    /// or the path budget runs out). Deep-bounce buckets can end up short in
    /// open scenes where most paths escape early — exactly the behaviour
    /// that makes some scenes "easy" in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `target_per_bounce == 0` or `max_bounces == 0`.
    pub fn capture(
        scene: &Scene,
        target_per_bounce: usize,
        max_bounces: usize,
        seed: u64,
    ) -> BounceStreams {
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        Self::capture_with_bvh(scene, &bvh, target_per_bounce, max_bounces, seed)
    }

    /// [`BounceStreams::capture`] with a caller-provided BVH.
    pub fn capture_with_bvh(
        scene: &Scene,
        bvh: &Bvh,
        target_per_bounce: usize,
        max_bounces: usize,
        seed: u64,
    ) -> BounceStreams {
        assert!(target_per_bounce > 0, "target_per_bounce must be positive");
        assert!(max_bounces > 0, "max_bounces must be positive");
        let mut streams: Vec<BounceStream> = (1..=max_bounces)
            .map(|b| BounceStream { bounce: b, scripts: Vec::with_capacity(target_per_bounce) })
            .collect();
        // Virtual film: 4:3, one primary sample per pixel per sweep.
        let width = ((target_per_bounce as f32 * 4.0 / 3.0).sqrt().ceil() as usize).max(1);
        let height = target_per_bounce.div_ceil(width);
        // Each sweep yields `width*height` paths; escape decay means deep
        // buckets fill slower, so allow a bounded number of re-sweeps.
        let max_sweeps = 32;
        // Pixels are visited in warp-shaped 8x4 tiles, matching how a GPU
        // rasterizes primary-ray dispatches: each group of 32 consecutive
        // rays (one warp) covers a compact screen tile, which is what makes
        // primary rays coherent in the paper's Figure 2.
        let tiles_x = width.div_ceil(8);
        let tiles_y = height.div_ceil(4);
        'sweeps: for sweep in 0..max_sweeps {
            for tile in 0..tiles_x * tiles_y {
                let tx = (tile % tiles_x) * 8;
                let ty = (tile / tiles_x) * 4;
                for local in 0..32 {
                    let px = tx + local % 8;
                    let py = ty + local / 8;
                    if px >= width || py >= height {
                        continue;
                    }
                    if streams.iter().all(|s| s.scripts.len() >= target_per_bounce) {
                        break 'sweeps;
                    }
                    let pixel_id = (py * width + px) as u64;
                    let mut sampler =
                        LowDiscrepancy::new(seed ^ pixel_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    sampler.start_sample(sweep as u64);
                    let (jx, jy) = sampler.next_2d();
                    let u = (px as f32 + jx) / width as f32;
                    let v = 1.0 - (py as f32 + jy) / height as f32;
                    let ray = scene.camera().primary_ray(u, v);
                    walk_one_path(
                        scene,
                        bvh,
                        ray,
                        &mut sampler,
                        max_bounces,
                        target_per_bounce,
                        &mut streams,
                    );
                }
            }
        }
        BounceStreams { streams }
    }

    /// The stream for a 1-based bounce index.
    ///
    /// # Panics
    ///
    /// Panics if `bounce` is 0 or exceeds the captured depth.
    pub fn bounce(&self, bounce: usize) -> &BounceStream {
        assert!(bounce >= 1 && bounce <= self.streams.len(), "bounce {bounce} out of range");
        &self.streams[bounce - 1]
    }

    /// Number of captured bounce depths.
    pub fn depth(&self) -> usize {
        self.streams.len()
    }

    /// Iterate over all streams in bounce order.
    pub fn iter(&self) -> impl Iterator<Item = &BounceStream> {
        self.streams.iter()
    }
}

/// Trace one full path, appending each bounce's script to its bucket
/// (buckets beyond `target` drop extra scripts).
fn walk_one_path(
    scene: &Scene,
    bvh: &Bvh,
    mut ray: Ray,
    sampler: &mut LowDiscrepancy,
    max_bounces: usize,
    target: usize,
    streams: &mut [BounceStream],
) {
    for bounce in 1..=max_bounces {
        let mut steps: Vec<Step> = Vec::with_capacity(48);
        let hit = bvh.intersect_instrumented(scene.mesh(), &ray, &mut |e| {
            steps.push(match e {
                TraversalEvent::Inner { node_index, both_children_hit } => {
                    Step::Inner { node_addr: bvh.node_addr(node_index as usize), both_children_hit }
                }
                TraversalEvent::Leaf { node_index, prim_count, first_prim } => Step::Leaf {
                    node_addr: bvh.node_addr(node_index as usize),
                    prim_base_addr: bvh.prim_addr(first_prim as usize),
                    prim_count,
                },
            });
        });
        let (termination, continuation) = match hit {
            None => (Termination::Escaped, None),
            Some(h) => {
                let material = scene.material_of(h.tri_index as usize);
                if material.is_emissive() {
                    (Termination::HitLight, None)
                } else {
                    let tri = &scene.mesh().triangles()[h.tri_index as usize];
                    let mut normal = tri.unit_normal();
                    if dot(normal, ray.direction) > 0.0 {
                        normal = -normal;
                    }
                    let u2 = sampler.next_2d();
                    let lobe = sampler.next_1d();
                    let next = sample_bsdf(material, ray.direction, normal, u2, lobe)
                        .map(|s| Ray::new(ray.at(h.t) + normal * RAY_EPSILON, s.direction));
                    (Termination::Hit, next)
                }
            }
        };
        let bucket = &mut streams[bounce - 1];
        if bucket.scripts.len() < target {
            bucket.scripts.push(RayScript::new(steps, termination));
        }
        match continuation {
            Some(next) => ray = next,
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_scene::SceneKind;

    #[test]
    fn capture_fills_primary_bucket_exactly() {
        let scene = SceneKind::Conference.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 200, 3, 1);
        assert_eq!(streams.depth(), 3);
        assert_eq!(streams.bounce(1).scripts.len(), 200);
    }

    #[test]
    fn deep_buckets_fill_in_closed_scene() {
        let scene = SceneKind::CrytekSponza.build_with_tris(1_500);
        let streams = BounceStreams::capture(&scene, 100, 4, 2);
        for b in 1..=4 {
            let len = streams.bounce(b).scripts.len();
            assert!(len >= 50, "bounce {b} has only {len} rays in a hard-to-escape scene");
        }
    }

    #[test]
    fn primary_rays_mostly_hit_something_indoors() {
        let scene = SceneKind::Conference.build_with_tris(800);
        let streams = BounceStreams::capture(&scene, 300, 2, 3);
        let stats = streams.bounce(1).stats();
        assert!(stats.escaped == 0, "closed room leaked {} rays", stats.escaped);
        assert!(stats.hits > 200);
    }

    #[test]
    fn secondary_rays_are_less_coherent_than_primary() {
        // Coherence proxy: average pairwise-consecutive script-prefix
        // agreement. Primary rays from adjacent pixels share long BVH
        // prefixes; bounced rays do not.
        let scene = SceneKind::Conference.build_with_tris(1_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 4);
        let prefix_agreement = |s: &BounceStream| -> f64 {
            let mut total = 0usize;
            let mut pairs = 0usize;
            for w in s.scripts.windows(2) {
                let (a, b) = (w[0].steps(), w[1].steps());
                let shared = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
                total += shared;
                pairs += 1;
            }
            total as f64 / pairs.max(1) as f64
        };
        let p1 = prefix_agreement(streams.bounce(1));
        let p2 = prefix_agreement(streams.bounce(2));
        assert!(p1 > p2 * 1.5, "primary coherence {p1:.2} not clearly above secondary {p2:.2}");
    }

    #[test]
    fn stats_totals_are_consistent() {
        let scene = SceneKind::Plants.build_with_tris(1_200);
        let streams = BounceStreams::capture(&scene, 150, 3, 5);
        for s in streams.iter() {
            let st = s.stats();
            assert_eq!(st.rays, s.scripts.len());
            assert_eq!(st.hits + st.escaped + st.hit_light, st.rays);
            let manual_inner: usize =
                s.scripts.iter().map(super::super::script::RayScript::inner_count).sum();
            assert_eq!(st.total_inner, manual_inner);
            assert!(st.avg_inner() >= 0.0);
        }
    }

    #[test]
    fn capture_is_deterministic() {
        let scene = SceneKind::FairyForest.build_with_tris(900);
        let a = BounceStreams::capture(&scene, 100, 3, 9);
        let b = BounceStreams::capture(&scene, 100, 3, 9);
        for bounce in 1..=3 {
            assert_eq!(a.bounce(bounce).scripts, b.bounce(bounce).scripts);
        }
    }

    #[test]
    #[should_panic]
    fn bounce_out_of_range_panics() {
        let scene = SceneKind::Conference.build_with_tris(500);
        let streams = BounceStreams::capture(&scene, 50, 2, 1);
        let _ = streams.bounce(3);
    }
}
