//! Ray scripts: the recorded walk of one ray through the BVH.

/// One recorded traversal step of a ray.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Visit an internal node: one iteration of the kernel's inner-node
    /// body (load node, two child slab tests, choose/push).
    Inner {
        /// Simulated device address of the node record.
        node_addr: u64,
        /// Whether both children were hit (the far child is pushed — the
        /// slightly longer path through the inner body).
        both_children_hit: bool,
    },
    /// Visit a leaf: `prim_count` ray-triangle intersection tests.
    Leaf {
        /// Simulated device address of the leaf node record.
        node_addr: u64,
        /// Address of the first triangle record tested.
        prim_base_addr: u64,
        /// Number of triangles tested in this leaf.
        prim_count: u16,
    },
}

impl Step {
    /// True for [`Step::Inner`].
    #[inline]
    pub fn is_inner(&self) -> bool {
        matches!(self, Step::Inner { .. })
    }

    /// True for [`Step::Leaf`].
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Step::Leaf { .. })
    }
}

/// Why a ray's traversal ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Termination {
    /// The ray intersected geometry (the path continues at the next bounce).
    Hit,
    /// The ray left the scene without hitting anything.
    Escaped,
    /// The ray hit an emissive surface (path terminates with light).
    HitLight,
}

/// The complete recorded traversal of one ray.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RayScript {
    steps: Vec<Step>,
    termination: Termination,
}

impl RayScript {
    /// Build a script from recorded steps.
    pub fn new(steps: Vec<Step>, termination: Termination) -> RayScript {
        RayScript { steps, termination }
    }

    /// The recorded steps in traversal order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Why the traversal ended.
    pub fn termination(&self) -> Termination {
        self.termination
    }

    /// Number of inner-node visits.
    pub fn inner_count(&self) -> usize {
        self.steps.iter().filter(|s| s.is_inner()).count()
    }

    /// Number of leaf visits.
    pub fn leaf_count(&self) -> usize {
        self.steps.iter().filter(|s| s.is_leaf()).count()
    }

    /// Total primitive intersection tests.
    pub fn prim_tests(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Leaf { prim_count, .. } => *prim_count as usize,
                Step::Inner { .. } => 0,
            })
            .sum()
    }

    /// A cursor positioned at the first step.
    pub fn cursor(&self) -> ScriptCursor<'_> {
        ScriptCursor { script: self, pos: 0 }
    }
}

/// A read cursor over a [`RayScript`], held by a simulated GPU thread.
///
/// The kernels' branch oracles ask the cursor what the thread's ray needs
/// next; consuming a step models completing one loop iteration of the
/// traversal kernel.
#[derive(Debug, Clone, Copy)]
pub struct ScriptCursor<'a> {
    script: &'a RayScript,
    pos: usize,
}

impl<'a> ScriptCursor<'a> {
    /// The next pending step, if any.
    #[inline]
    pub fn peek(&self) -> Option<&'a Step> {
        self.script.steps().get(self.pos)
    }

    /// Consume and return the next step.
    #[inline]
    pub fn next_step(&mut self) -> Option<&'a Step> {
        let s = self.script.steps().get(self.pos)?;
        self.pos += 1;
        Some(s)
    }

    /// True when every step has been consumed.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.pos >= self.script.steps().len()
    }

    /// Steps remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.script.steps().len() - self.pos
    }

    /// The script this cursor walks.
    #[inline]
    pub fn script(&self) -> &'a RayScript {
        self.script
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_script() -> RayScript {
        RayScript::new(
            vec![
                Step::Inner { node_addr: 0x100, both_children_hit: true },
                Step::Inner { node_addr: 0x140, both_children_hit: false },
                Step::Leaf { node_addr: 0x180, prim_base_addr: 0x4000, prim_count: 3 },
                Step::Inner { node_addr: 0x1c0, both_children_hit: false },
                Step::Leaf { node_addr: 0x200, prim_base_addr: 0x4090, prim_count: 2 },
            ],
            Termination::Hit,
        )
    }

    #[test]
    fn counters() {
        let s = sample_script();
        assert_eq!(s.inner_count(), 3);
        assert_eq!(s.leaf_count(), 2);
        assert_eq!(s.prim_tests(), 5);
        assert_eq!(s.termination(), Termination::Hit);
    }

    #[test]
    fn cursor_walks_in_order() {
        let s = sample_script();
        let mut c = s.cursor();
        assert_eq!(c.remaining(), 5);
        assert!(c.peek().unwrap().is_inner());
        let first = *c.next_step().unwrap();
        assert_eq!(first, s.steps()[0]);
        assert_eq!(c.remaining(), 4);
        while c.next_step().is_some() {}
        assert!(c.exhausted());
        assert_eq!(c.remaining(), 0);
        assert!(c.next_step().is_none());
    }

    #[test]
    fn empty_script_is_immediately_exhausted() {
        let s = RayScript::new(vec![], Termination::Escaped);
        let mut c = s.cursor();
        assert!(c.exhausted());
        assert!(c.peek().is_none());
        assert!(c.next_step().is_none());
    }
}
