//! Compact binary serialization of captured bounce streams.
//!
//! Workload capture (path tracing with instrumented traversal) is the
//! slowest non-simulation stage of the harness; this codec lets harness
//! runs cache captured workloads on disk and reload them instantly. The
//! format is a simple little-endian stream with a magic/version header —
//! no external serialization dependency.
//!
//! Deserialization failures are reported through the typed
//! [`TraceIoError`] so callers (notably the `drs-harness` capture cache)
//! can distinguish a stale/corrupt cache file — which should be evicted
//! and recaptured — from a genuine I/O fault.

use crate::capture::{BounceStream, BounceStreams};
use crate::script::{RayScript, Step, Termination};
use std::io::{self, Read, Write};

const MAGIC: u32 = 0x5244_5331; // "RDS1"

/// Version stamp of the on-disk trace format. Bump on any layout change:
/// cache keys incorporate it, so stale cache files from older builds are
/// simply never looked up (and are rejected by the header check if they
/// are fed in by hand).
pub const FORMAT_VERSION: u16 = 1;

/// Why decoding a serialized bounce stream failed.
///
/// Every variant except [`TraceIoError::Io`] means the *content* is bad
/// (truncated download, bit rot, a stale or foreign file); the stream can
/// never be partially salvaged, so callers should discard the source and
/// regenerate it.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader failed with a real I/O error.
    Io(io::Error),
    /// The stream ended before the advertised content was fully read.
    Truncated,
    /// The leading bytes are not the DRS trace magic (not a trace file).
    BadMagic(u32),
    /// A DRS trace file, but written by an incompatible format version.
    UnsupportedVersion(u16),
    /// Structurally invalid content: bad enum tag, implausible count,
    /// out-of-order bounce index. The payload names the failed check.
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Truncated => write!(f, "trace stream truncated"),
            TraceIoError::BadMagic(m) => {
                write!(f, "not a DRS trace file (magic {m:#010x}, expected {MAGIC:#010x})")
            }
            TraceIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v} (expected {FORMAT_VERSION})")
            }
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace stream: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> TraceIoError {
        // A short read while decoding fixed-width fields means the stream
        // ended mid-record: classify as truncation, not an I/O fault.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Truncated
        } else {
            TraceIoError::Io(e)
        }
    }
}

fn write_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, TraceIoError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, TraceIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_script<W: Write>(w: &mut W, s: &RayScript) -> io::Result<()> {
    write_u32(w, s.steps().len() as u32)?;
    w.write_all(&[match s.termination() {
        Termination::Hit => 0u8,
        Termination::Escaped => 1,
        Termination::HitLight => 2,
    }])?;
    for step in s.steps() {
        match *step {
            Step::Inner { node_addr, both_children_hit } => {
                w.write_all(&[u8::from(both_children_hit)])?;
                write_u64(w, node_addr)?;
            }
            Step::Leaf { node_addr, prim_base_addr, prim_count } => {
                w.write_all(&[2])?;
                write_u64(w, node_addr)?;
                write_u64(w, prim_base_addr)?;
                write_u16(w, prim_count)?;
            }
        }
    }
    Ok(())
}

fn read_script<R: Read>(r: &mut R) -> Result<RayScript, TraceIoError> {
    let n = read_u32(r)? as usize;
    if n > 1 << 24 {
        return Err(TraceIoError::Corrupt("script unreasonably long"));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag).map_err(TraceIoError::from)?;
    let termination = match tag[0] {
        0 => Termination::Hit,
        1 => Termination::Escaped,
        2 => Termination::HitLight,
        _ => return Err(TraceIoError::Corrupt("bad termination tag")),
    };
    // Cap the preallocation: `n` is attacker/corruption-controlled until
    // the reads below validate it, and a huge reservation would abort
    // before the truncation error surfaces.
    let mut steps = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        r.read_exact(&mut tag).map_err(TraceIoError::from)?;
        steps.push(match tag[0] {
            0 | 1 => Step::Inner { both_children_hit: tag[0] == 1, node_addr: read_u64(r)? },
            2 => Step::Leaf {
                node_addr: read_u64(r)?,
                prim_base_addr: read_u64(r)?,
                prim_count: read_u16(r)?,
            },
            _ => return Err(TraceIoError::Corrupt("bad step tag")),
        });
    }
    Ok(RayScript::new(steps, termination))
}

impl BounceStreams {
    /// Serialize all bounce streams to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, MAGIC)?;
        write_u16(&mut w, FORMAT_VERSION)?;
        write_u16(&mut w, self.depth() as u16)?;
        for stream in self.iter() {
            write_u16(&mut w, stream.bounce as u16)?;
            write_u32(&mut w, stream.scripts.len() as u32)?;
            for s in &stream.scripts {
                write_script(&mut w, s)?;
            }
        }
        Ok(())
    }

    /// Deserialize bounce streams from a reader.
    ///
    /// # Errors
    ///
    /// Returns a typed [`TraceIoError`] describing what is wrong with the
    /// stream; see its docs for the eviction contract cache users follow.
    pub fn load<R: Read>(mut r: R) -> Result<BounceStreams, TraceIoError> {
        let magic = read_u32(&mut r)?;
        if magic != MAGIC {
            return Err(TraceIoError::BadMagic(magic));
        }
        let version = read_u16(&mut r)?;
        if version != FORMAT_VERSION {
            return Err(TraceIoError::UnsupportedVersion(version));
        }
        let depth = read_u16(&mut r)? as usize;
        if depth == 0 || depth > 64 {
            return Err(TraceIoError::Corrupt("implausible bounce depth"));
        }
        let mut streams = Vec::with_capacity(depth);
        for expected in 1..=depth {
            let bounce = read_u16(&mut r)? as usize;
            if bounce != expected {
                return Err(TraceIoError::Corrupt("bounce indices out of order"));
            }
            let count = read_u32(&mut r)? as usize;
            if count > 1 << 28 {
                return Err(TraceIoError::Corrupt("implausible ray count"));
            }
            let mut scripts = Vec::with_capacity(count.min(65536));
            for _ in 0..count {
                scripts.push(read_script(&mut r)?);
            }
            streams.push(BounceStream { bounce, scripts });
        }
        Ok(BounceStreams::from_streams(streams))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_scene::SceneKind;

    #[test]
    fn round_trip_preserves_everything() {
        let scene = SceneKind::Conference.build_with_tris(800);
        let streams = BounceStreams::capture(&scene, 150, 3, 77);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        let loaded = BounceStreams::load(&buf[..]).unwrap();
        assert_eq!(loaded.depth(), streams.depth());
        for b in 1..=streams.depth() {
            assert_eq!(loaded.bounce(b).scripts, streams.bounce(b).scripts);
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        match BounceStreams::load(&b"NOPEnope"[..]).unwrap_err() {
            TraceIoError::BadMagic(m) => assert_eq!(m, u32::from_le_bytes(*b"NOPE")),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let scene = SceneKind::Conference.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 20, 1, 5);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        buf[4] = 0xFE; // low byte of the version field
        match BounceStreams::load(&buf[..]).unwrap_err() {
            TraceIoError::UnsupportedVersion(v) => assert_eq!(v, 0x00FE),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_point_is_rejected_without_panic() {
        // Golden sweep: a valid stream cut at *every* prefix length must
        // produce a typed error (no panic, no partial success). The header
        // is 8 bytes, so nothing shorter than the full file can decode.
        let scene = SceneKind::FairyForest.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 30, 2, 5);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        for cut in 0..buf.len() {
            match BounceStreams::load(&buf[..cut]) {
                Err(
                    TraceIoError::Truncated
                    | TraceIoError::Corrupt(_)
                    | TraceIoError::BadMagic(_)
                    | TraceIoError::UnsupportedVersion(_),
                ) => {}
                Err(TraceIoError::Io(e)) => panic!("cut at {cut} gave an Io error: {e}"),
                Ok(_) => panic!("truncation at {cut}/{} decoded successfully", buf.len()),
            }
        }
    }

    #[test]
    fn bit_flips_never_panic_and_errors_are_typed() {
        // Golden sweep: flip every single bit of a small serialized stream
        // one at a time. Decoding must never panic; it either fails with a
        // typed error or yields a (different but structurally valid)
        // stream — flips inside node-address payloads are undetectable by
        // design, the cache key protects against those.
        let scene = SceneKind::Conference.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 8, 1, 5);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut flipped = buf.clone();
                flipped[byte] ^= 1 << bit;
                match BounceStreams::load(&flipped[..]) {
                    Ok(loaded) => {
                        assert!(loaded.depth() >= 1);
                    }
                    Err(TraceIoError::Io(e)) => {
                        panic!("flip at {byte}.{bit} gave an Io error: {e}")
                    }
                    Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn corrupted_tag_is_rejected() {
        let scene = SceneKind::Conference.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 40, 1, 5);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        // Stomp a step tag deep in the payload with an invalid value.
        let idx = buf.len() - 19;
        buf[idx] = 0xFF;
        match BounceStreams::load(&buf[..]).unwrap_err() {
            TraceIoError::Corrupt(_) | TraceIoError::Truncated => {}
            other => panic!("expected Corrupt/Truncated, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceIoError::BadMagic(0x1234_5678);
        assert!(e.to_string().contains("0x12345678"));
        assert!(TraceIoError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(TraceIoError::Truncated.to_string().contains("truncated"));
        let io_err = TraceIoError::from(io::Error::other("disk on fire"));
        assert!(matches!(io_err, TraceIoError::Io(_)));
        assert!(io_err.to_string().contains("disk on fire"));
    }

    #[test]
    fn format_is_compact() {
        // One inner step = 9 bytes + per-script header of 5.
        let scene = SceneKind::Conference.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 100, 1, 5);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        let steps: usize = streams.bounce(1).scripts.iter().map(|s| s.steps().len()).sum();
        // Generous bound: header + scripts*(5) + steps*(18 max) + stream header.
        assert!(buf.len() <= 16 + 100 * 5 + steps * 18 + 8, "{} bytes", buf.len());
    }
}
