//! Compact binary serialization of captured bounce streams.
//!
//! Workload capture (path tracing with instrumented traversal) is the
//! slowest non-simulation stage of the harness; this codec lets harness
//! runs cache captured workloads on disk and reload them instantly. The
//! format is a simple little-endian stream with a magic/version header —
//! no external serialization dependency.

use crate::capture::{BounceStream, BounceStreams};
use crate::script::{RayScript, Step, Termination};
use std::io::{self, Read, Write};

const MAGIC: u32 = 0x5244_5331; // "RDS1"
const VERSION: u16 = 1;

fn write_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn write_script<W: Write>(w: &mut W, s: &RayScript) -> io::Result<()> {
    write_u32(w, s.steps().len() as u32)?;
    w.write_all(&[match s.termination() {
        Termination::Hit => 0u8,
        Termination::Escaped => 1,
        Termination::HitLight => 2,
    }])?;
    for step in s.steps() {
        match *step {
            Step::Inner { node_addr, both_children_hit } => {
                w.write_all(&[if both_children_hit { 1 } else { 0 }])?;
                write_u64(w, node_addr)?;
            }
            Step::Leaf { node_addr, prim_base_addr, prim_count } => {
                w.write_all(&[2])?;
                write_u64(w, node_addr)?;
                write_u64(w, prim_base_addr)?;
                write_u16(w, prim_count)?;
            }
        }
    }
    Ok(())
}

fn read_script<R: Read>(r: &mut R) -> io::Result<RayScript> {
    let n = read_u32(r)? as usize;
    if n > 1 << 24 {
        return Err(corrupt("script unreasonably long"));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let termination = match tag[0] {
        0 => Termination::Hit,
        1 => Termination::Escaped,
        2 => Termination::HitLight,
        _ => return Err(corrupt("bad termination tag")),
    };
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        r.read_exact(&mut tag)?;
        steps.push(match tag[0] {
            0 | 1 => Step::Inner { both_children_hit: tag[0] == 1, node_addr: read_u64(r)? },
            2 => Step::Leaf {
                node_addr: read_u64(r)?,
                prim_base_addr: read_u64(r)?,
                prim_count: read_u16(r)?,
            },
            _ => return Err(corrupt("bad step tag")),
        });
    }
    Ok(RayScript::new(steps, termination))
}

impl BounceStreams {
    /// Serialize all bounce streams to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        write_u32(&mut w, MAGIC)?;
        write_u16(&mut w, VERSION)?;
        write_u16(&mut w, self.depth() as u16)?;
        for stream in self.iter() {
            write_u16(&mut w, stream.bounce as u16)?;
            write_u32(&mut w, stream.scripts.len() as u32)?;
            for s in &stream.scripts {
                write_script(&mut w, s)?;
            }
        }
        Ok(())
    }

    /// Deserialize bounce streams from a reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for wrong magic/version or malformed content,
    /// and propagates reader I/O errors.
    pub fn load<R: Read>(mut r: R) -> io::Result<BounceStreams> {
        if read_u32(&mut r)? != MAGIC {
            return Err(corrupt("not a DRS trace file"));
        }
        if read_u16(&mut r)? != VERSION {
            return Err(corrupt("unsupported trace version"));
        }
        let depth = read_u16(&mut r)? as usize;
        if depth == 0 || depth > 64 {
            return Err(corrupt("implausible bounce depth"));
        }
        let mut streams = Vec::with_capacity(depth);
        for expected in 1..=depth {
            let bounce = read_u16(&mut r)? as usize;
            if bounce != expected {
                return Err(corrupt("bounce indices out of order"));
            }
            let count = read_u32(&mut r)? as usize;
            if count > 1 << 28 {
                return Err(corrupt("implausible ray count"));
            }
            let mut scripts = Vec::with_capacity(count);
            for _ in 0..count {
                scripts.push(read_script(&mut r)?);
            }
            streams.push(BounceStream { bounce, scripts });
        }
        Ok(BounceStreams::from_streams(streams))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_scene::SceneKind;

    #[test]
    fn round_trip_preserves_everything() {
        let scene = SceneKind::Conference.build_with_tris(800);
        let streams = BounceStreams::capture(&scene, 150, 3, 77);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        let loaded = BounceStreams::load(&buf[..]).unwrap();
        assert_eq!(loaded.depth(), streams.depth());
        for b in 1..=streams.depth() {
            assert_eq!(loaded.bounce(b).scripts, streams.bounce(b).scripts);
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let err = BounceStreams::load(&b"NOPEnope"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let scene = SceneKind::FairyForest.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 60, 2, 5);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(BounceStreams::load(cut).is_err());
    }

    #[test]
    fn corrupted_tag_is_rejected() {
        let scene = SceneKind::Conference.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 40, 1, 5);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        // Stomp a step tag deep in the payload with an invalid value.
        let idx = buf.len() - 19;
        buf[idx] = 0xFF;
        assert!(BounceStreams::load(&buf[..]).is_err());
    }

    #[test]
    fn format_is_compact() {
        // One inner step = 9 bytes + per-script header of 5.
        let scene = SceneKind::Conference.build_with_tris(600);
        let streams = BounceStreams::capture(&scene, 100, 1, 5);
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        let steps: usize = streams.bounce(1).scripts.iter().map(|s| s.steps().len()).sum();
        // Generous bound: header + scripts*(5) + steps*(18 max) + stream header.
        assert!(buf.len() <= 16 + 100 * 5 + steps * 18 + 8, "{} bytes", buf.len());
    }
}
