//! The harness's two contractual guarantees, proven end to end:
//!
//! 1. **Determinism**: a job grid run serially and with 4 workers yields
//!    bit-identical per-cell `SimStats`.
//! 2. **Caching**: a warm-cache rerun skips all capture work (hit counter
//!    equals the distinct workload count) and still yields identical
//!    results; the emitted JSON is well-formed and carries Mrays/s and
//!    SIMD efficiency for every cell.

use drs_harness::{
    figures, pool, CaptureMode, ChipConfig, ResultsFile, RunOptions, Scale, StreamCache,
};
use drs_scene::SceneKind;

/// Reduced scale so the grid stays fast in debug CI runs.
fn tiny_scale() -> Scale {
    Scale { rays: 260, tris_scale: 0.008, warps_scale: 0.15 }
}

/// A reduced fig10 grid: two scenes, bounces ≤ 2 — still covering all
/// four methods (Aila / DMK / TBC / DRS).
fn reduced_fig10(scale: &Scale) -> drs_harness::JobSet {
    let mut set = figures::fig10(scale);
    set.jobs.retain(|j| {
        j.bounce <= 2 && matches!(j.workload.scene, SceneKind::Conference | SceneKind::FairyForest)
    });
    assert_eq!(set.jobs.len(), 2 * 4 * 2, "two scenes x four methods x two bounces");
    set
}

#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    let scale = tiny_scale();
    let set = reduced_fig10(&scale);

    let serial = pool::run_jobs(&set.jobs, &RunOptions::serial());
    let parallel = pool::run_jobs(&set.jobs, &RunOptions::parallel(4));

    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (s, p) in serial.cells.iter().zip(parallel.cells.iter()) {
        assert_eq!(s.job.id(), p.job.id(), "cell order must not depend on worker count");
        assert_eq!(s.empty, p.empty);
        assert_eq!(s.completed, p.completed);
        assert_eq!(
            s.stats,
            p.stats,
            "per-cell SimStats diverged for {} bounce {} on {}",
            s.job.method.label(),
            s.job.bounce,
            s.job.workload.scene
        );
    }
    // The grid actually simulated something.
    assert!(serial.cells.iter().any(|c| !c.empty && c.stats.rays_completed > 0));
}

#[test]
fn chip_cells_are_bit_identical_across_worker_and_chip_thread_counts() {
    let scale = tiny_scale();
    let mut set = reduced_fig10(&scale);
    set.jobs.retain(|j| j.workload.scene == SceneKind::Conference);
    set.jobs.truncate(4);
    let set = set.with_chip(ChipConfig::gtx780(2));
    assert!(set.jobs.iter().all(|j| j.chip.is_some()));

    let base = pool::run_jobs(&set.jobs, &RunOptions::serial());
    // Both parallelism axes at once: cells across pool workers AND SMs
    // across threads inside each chip cell.
    let threaded = pool::run_jobs(
        &set.jobs,
        &RunOptions { workers: 4, chip_threads: 4, ..RunOptions::serial() },
    );
    let rerun = pool::run_jobs(&set.jobs, &RunOptions { chip_threads: 3, ..RunOptions::serial() });

    assert!(base.all_clean(), "chip grid must complete");
    for other in [&threaded, &rerun] {
        assert_eq!(base.cells.len(), other.cells.len());
        for (b, o) in base.cells.iter().zip(other.cells.iter()) {
            assert_eq!(b.stats, o.stats, "chip SimStats diverged across thread counts");
            assert_eq!(b.chip, o.chip, "chip summary diverged across thread counts");
        }
    }
    for cell in base.cells.iter().filter(|c| !c.empty) {
        let chip = cell.chip.as_ref().expect("chip cells carry a summary");
        assert_eq!(chip.sms, 2);
        assert_eq!(chip.per_sm_cycles.len(), 2);
        assert_eq!(
            chip.per_sm_rays.iter().sum::<u64>(),
            cell.stats.rays_completed,
            "aggregate rays must equal the per-SM sum"
        );
        assert_eq!(
            cell.stats.cycles,
            *chip.per_sm_cycles.iter().max().unwrap(),
            "chip cycles are the slowest SM's cycles"
        );
        assert!(chip.requests > 0, "a real workload must reach the shared memory system");
    }
    assert!(base.cells.iter().any(|c| !c.empty && c.stats.rays_completed > 0));
}

#[test]
fn warm_cache_rerun_is_identical_and_skips_capture() {
    let scale = tiny_scale();
    let set = reduced_fig10(&scale);
    let distinct = set.distinct_workloads().len();
    assert_eq!(distinct, 2);

    let dir = std::env::temp_dir().join(format!("drs-harness-cachetest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold pass: every workload is a miss.
    let cold_opts = RunOptions {
        workers: 4,
        capture: CaptureMode::Cached(StreamCache::new(&dir)),
        ..RunOptions::serial()
    };
    let cold = pool::run_jobs(&set.jobs, &cold_opts);
    assert_eq!(cold.cache.misses as usize, distinct);
    assert_eq!(cold.cache.hits, 0);

    // Warm pass: all capture work is skipped.
    let warm_opts = RunOptions {
        workers: 4,
        capture: CaptureMode::Cached(StreamCache::new(&dir)),
        ..RunOptions::serial()
    };
    let warm = pool::run_jobs(&set.jobs, &warm_opts);
    assert_eq!(
        warm.cache.hits as usize, distinct,
        "cache-hit counter must equal the distinct workload count"
    );
    assert_eq!(warm.cache.misses, 0);
    assert_eq!(warm.cache.evictions, 0);

    for (c, w) in cold.cells.iter().zip(warm.cells.iter()) {
        assert_eq!(c.stats, w.stats, "cached capture changed the simulation result");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn results_json_is_well_formed_with_required_metrics() {
    let scale = tiny_scale();
    let mut set = reduced_fig10(&scale);
    set.jobs.truncate(4);
    let report = pool::run_jobs(&set.jobs, &RunOptions::parallel(2));
    let n_cells = report.cells.len();
    let figures_of = vec![vec!["fig10".to_string()]; n_cells];
    let file = ResultsFile::from_report("fig10", 2, report, figures_of);
    let json = file.to_json();

    let value = json_parse(&json).unwrap_or_else(|e| panic!("invalid JSON at byte {e}: {json}"));
    let Json::Obj(obj) = value else { panic!("top level must be an object") };
    let cells = match obj.iter().find(|(k, _)| k == "cells") {
        Some((_, Json::Arr(cells))) => cells,
        other => panic!("missing cells array: {other:?}"),
    };
    assert_eq!(cells.len(), n_cells);
    for cell in cells {
        let Json::Obj(fields) = cell else { panic!("cell must be an object") };
        for required in ["mrays_per_sec", "simd_efficiency", "scene", "bounce", "method", "stats"] {
            assert!(
                fields.iter().any(|(k, _)| k == required),
                "cell missing required field {required}"
            );
        }
    }
}

// --- A deliberately tiny recursive-descent JSON parser: enough to prove
// --- well-formedness without pulling in a serialization dependency.

#[derive(Debug)]
#[allow(dead_code)] // payloads exist to prove they parse; tests read a subset
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn json_parse(s: &str) -> Result<Json, usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(i);
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), usize> {
    if *i < b.len() && b[*i] == c {
        *i += 1;
        Ok(())
    } else {
        Err(*i)
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, usize> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut entries = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, i);
                let Json::Str(key) = parse_value(b, i)? else {
                    return Err(*i);
                };
                skip_ws(b, i);
                expect(b, i, b':')?;
                entries.push((key, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(*i),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(*i),
                }
            }
        }
        Some(b'"') => {
            *i += 1;
            let mut out = String::new();
            loop {
                match b.get(*i) {
                    Some(b'"') => {
                        *i += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *i += 1;
                        match b.get(*i) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = s_slice(b, *i + 1, *i + 5).ok_or(*i)?;
                                let code = u32::from_str_radix(hex, 16).map_err(|_| *i)?;
                                out.push(char::from_u32(code).ok_or(*i)?);
                                *i += 4;
                            }
                            _ => return Err(*i),
                        }
                        *i += 1;
                    }
                    Some(&c) => {
                        if c < 0x20 {
                            return Err(*i);
                        }
                        // Walk over a full UTF-8 sequence.
                        let start = *i;
                        *i += 1;
                        while *i < b.len() && (b[*i] & 0xC0) == 0x80 {
                            *i += 1;
                        }
                        out.push_str(std::str::from_utf8(&b[start..*i]).map_err(|_| start)?);
                    }
                    None => return Err(*i),
                }
            }
        }
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *i;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                *i += 1;
            }
            let text = std::str::from_utf8(&b[start..*i]).map_err(|_| start)?;
            text.parse::<f64>().map(Json::Num).map_err(|_| start)
        }
        None => Err(*i),
    }
}

fn s_slice(b: &[u8], from: usize, to: usize) -> Option<&str> {
    b.get(from..to).and_then(|s| std::str::from_utf8(s).ok())
}
