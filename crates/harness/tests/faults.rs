//! Golden fault-tolerance tests: injected failures are isolated and
//! recorded, surviving cells stay bit-identical to a clean run, transient
//! faults recover through retries, and a checkpointed grid resumes to a
//! bit-identical merged result.

use drs_harness::{
    figures, run_jobs, CheckpointSpec, ChipConfig, FaultPlan, ResultsFile, RunOptions, Scale,
    SimJob,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static SEQ: AtomicU32 = AtomicU32::new(0);

fn tiny_fig2_jobs() -> Vec<SimJob> {
    let scale = Scale { rays: 120, tris_scale: 0.005, warps_scale: 0.1 };
    let mut set = figures::fig2(&scale);
    set.jobs.truncate(4);
    assert_eq!(set.jobs.len(), 4, "need four cells for the fault grid");
    set.jobs
}

fn temp_checkpoint() -> PathBuf {
    std::env::temp_dir().join(format!(
        "drs-faults-test-{}-{}.json",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn opts() -> RunOptions {
    RunOptions { retry_backoff_ms: 0, ..RunOptions::serial() }
}

fn stats_dump(mode: &str, report: drs_harness::RunReport) -> String {
    let n = report.cells.len();
    ResultsFile::from_report(mode, 1, report, vec![Vec::new(); n]).stats_json()
}

#[test]
fn injected_failures_are_recorded_and_survivors_are_bit_identical() {
    let jobs = tiny_fig2_jobs();
    let clean = run_jobs(&jobs, &opts());
    assert!(clean.all_clean(), "the clean grid must complete");

    // Permanent injections (no xT suffix → they fire on every attempt):
    // a worker panic on job 1, a watchdog trip on job 2, a cycle-budget
    // exhaustion on job 3. Job 0 is untouched.
    let faults = FaultPlan::parse("panic@1,watchdog@2,budget@3").unwrap();
    let faulted = run_jobs(&jobs, &RunOptions { faults, ..opts() });

    assert_eq!(faulted.cells.len(), clean.cells.len());
    assert_eq!(faulted.failed_cells().count(), 3, "exactly the three injected cells fail");

    let survivor = &faulted.cells[0];
    assert!(survivor.completed && survivor.failure.is_none());
    assert_eq!(survivor.attempts, 1);
    assert_eq!(survivor.stats, clean.cells[0].stats, "survivors must be bit-identical");

    let panic_cell = &faulted.cells[1];
    let f = panic_cell.failure.as_ref().expect("job 1 must fail");
    assert!(!panic_cell.completed);
    assert_eq!(f.kind, "panic");
    assert!(f.injected);
    assert!(f.message.contains("injected worker panic"), "{}", f.message);
    assert_eq!(panic_cell.attempts, 2, "default retry budget is one extra attempt");

    let watchdog_cell = &faulted.cells[2];
    let f = watchdog_cell.failure.as_ref().expect("job 2 must fail");
    assert_eq!(f.kind, "watchdog");
    assert!(f.injected);
    assert!(f.cycle.is_some());
    let dump = f.warp_dump.as_ref().expect("watchdog failures carry the warp dump as data");
    assert!(dump.contains("warp"), "dump must describe per-warp state: {dump}");

    let budget_cell = &faulted.cells[3];
    let f = budget_cell.failure.as_ref().expect("job 3 must fail");
    assert_eq!(f.kind, "cycle_limit");
    assert!(f.injected);
    assert!(budget_cell.stats.cycles > 0, "partial stats survive into the failed cell");
}

#[test]
fn transient_fault_recovers_and_result_is_bit_identical() {
    let jobs = tiny_fig2_jobs();
    let clean = run_jobs(&jobs, &opts());

    // x1: the fault fires only on the first attempt; the retry succeeds.
    let faults = FaultPlan::parse("panic@0x1,cache@2x1").unwrap();
    let report = run_jobs(&jobs, &RunOptions { faults, ..opts() });
    assert!(report.all_clean(), "transient faults must be absorbed by the retry layer");
    assert_eq!(report.cells[0].attempts, 2);
    assert_eq!(report.cells[2].attempts, 2);
    assert_eq!(report.cells[1].attempts, 1);
    for (got, want) in report.cells.iter().zip(&clean.cells) {
        assert_eq!(got.stats, want.stats, "recovered cells must match the clean run");
    }
}

#[test]
fn exhausted_retries_keep_the_failure_of_the_final_attempt() {
    let jobs = tiny_fig2_jobs();
    // Zero retries: even a transient fault is terminal on the first attempt.
    let faults = FaultPlan::parse("cache@1").unwrap();
    let report = run_jobs(&jobs, &RunOptions { faults, retries: 0, ..opts() });
    let cell = &report.cells[1];
    let f = cell.failure.as_ref().expect("no retry budget, so the cell fails");
    assert_eq!(f.kind, "cache_corrupt");
    assert_eq!(cell.attempts, 1);
    assert_eq!(report.failed_cells().count(), 1);
}

#[test]
fn checkpointed_run_resumes_to_a_bit_identical_merge() {
    let jobs = tiny_fig2_jobs();
    let clean_dump = stats_dump("fig2", run_jobs(&jobs, &opts()));

    // First pass: one permanently failing cell, checkpoint attached.
    let path = temp_checkpoint();
    let faults = FaultPlan::parse("watchdog@2").unwrap();
    let first = run_jobs(
        &jobs,
        &RunOptions {
            faults,
            checkpoint: Some(CheckpointSpec { path: path.clone(), resume: false }),
            ..opts()
        },
    );
    assert_eq!(first.failed_cells().count(), 1);
    assert!(path.exists(), "a run with failures must leave its checkpoint behind");

    // Second pass: resume without faults. Only the failed cell re-runs.
    let second = run_jobs(
        &jobs,
        &RunOptions {
            checkpoint: Some(CheckpointSpec { path: path.clone(), resume: true }),
            ..opts()
        },
    );
    assert_eq!(second.resumed, 3, "the three clean cells come from the checkpoint");
    assert!(second.all_clean());
    assert_eq!(
        stats_dump("fig2", second),
        clean_dump,
        "resumed merge must be byte-identical to an uninterrupted run"
    );
    assert!(!path.exists(), "a fully clean run removes its checkpoint");
}

#[test]
fn injected_chip_config_corruption_is_a_typed_failure() {
    let jobs = tiny_fig2_jobs();
    let faults = FaultPlan::parse("chipcfg@1").unwrap();
    let report = run_jobs(&jobs, &RunOptions { faults, ..opts() });

    let cell = &report.cells[1];
    let f = cell.failure.as_ref().expect("job 1 must fail chip-config validation");
    assert_eq!(f.kind, "chip_config");
    assert!(f.injected);
    assert!(f.message.contains("0 SMs"), "{}", f.message);
    assert_eq!(cell.attempts, 2, "injected faults are transient and get the retry");
    assert!(cell.chip.is_none(), "a failed chip attempt yields no summary");
    assert_eq!(report.failed_cells().count(), 1, "only the corrupted cell fails");
    assert!(report.cells[0].completed && report.cells[0].failure.is_none());
}

#[test]
fn chip_checkpoint_resumes_to_a_bit_identical_merge() {
    let chip = ChipConfig::gtx780(2);
    let jobs: Vec<SimJob> =
        tiny_fig2_jobs().into_iter().map(|j| SimJob { chip: Some(chip), ..j }).collect();
    let clean_dump = stats_dump("fig2", run_jobs(&jobs, &opts()));

    // First pass: one permanently failing chip cell, checkpoint attached.
    let path = temp_checkpoint();
    let faults = FaultPlan::parse("watchdog@2").unwrap();
    let first = run_jobs(
        &jobs,
        &RunOptions {
            faults,
            checkpoint: Some(CheckpointSpec { path: path.clone(), resume: false }),
            ..opts()
        },
    );
    assert_eq!(first.failed_cells().count(), 1);
    assert!(path.exists());

    // Second pass: resume without faults. The chip summaries of the
    // resumed cells must round-trip through the checkpoint file.
    let second = run_jobs(
        &jobs,
        &RunOptions {
            checkpoint: Some(CheckpointSpec { path: path.clone(), resume: true }),
            ..opts()
        },
    );
    assert_eq!(second.resumed, 3, "the three clean chip cells come from the checkpoint");
    assert!(second.all_clean());
    assert!(
        second.cells.iter().filter(|c| !c.empty).all(|c| c.chip.is_some()),
        "resumed chip cells must keep their shared-memory summary"
    );
    assert_eq!(
        stats_dump("fig2", second),
        clean_dump,
        "resumed chip merge must be byte-identical to an uninterrupted run"
    );
    assert!(!path.exists(), "a fully clean run removes its checkpoint");
}

#[test]
fn corrupt_or_mismatched_checkpoints_are_ignored_on_resume() {
    let jobs = tiny_fig2_jobs();
    let path = temp_checkpoint();
    std::fs::write(&path, b"{ not json").unwrap();
    let report = run_jobs(
        &jobs,
        &RunOptions {
            checkpoint: Some(CheckpointSpec { path: path.clone(), resume: true }),
            ..opts()
        },
    );
    assert_eq!(report.resumed, 0, "garbage checkpoints must be ignored, not trusted");
    assert!(report.all_clean());
    assert!(!path.exists(), "the clean run replaces and then removes the checkpoint");
}

#[test]
fn checkpoint_from_a_different_grid_is_rejected() {
    let jobs = tiny_fig2_jobs();
    let path = temp_checkpoint();
    // Build a checkpoint for a *different* grid (one job fewer).
    let first = run_jobs(
        &jobs[..3],
        &RunOptions {
            faults: FaultPlan::parse("watchdog@0").unwrap(),
            checkpoint: Some(CheckpointSpec { path: path.clone(), resume: false }),
            ..opts()
        },
    );
    assert_eq!(first.failed_cells().count(), 1);
    assert!(path.exists());
    // Resuming the full grid must not trust it: the run key differs.
    let report = run_jobs(
        &jobs,
        &RunOptions {
            checkpoint: Some(CheckpointSpec { path: path.clone(), resume: true }),
            ..opts()
        },
    );
    assert_eq!(report.resumed, 0, "a checkpoint for another grid must be rejected");
    assert!(report.all_clean());
    let _ = std::fs::remove_file(&path);
}
