//! End-to-end guarantees of the durable result store:
//!
//! 1. **Warm rerun does zero simulation work**: running a grid with a
//!    store, then rerunning it against the same directory, serves every
//!    cell from disk — the store-hit counter equals the cell count, the
//!    capture cache is never consulted — and the deterministic results
//!    document is byte-identical to the cold run's.
//! 2. **Corruption is quarantined and recomputed**: a bit-flipped entry
//!    (injected via the `store` fault kind) is detected by the footer
//!    checksum, moved to `quarantine/`, never served, and the cell is
//!    re-simulated to an identical result.

use drs_harness::{
    figures, pool, CaptureMode, FaultPlan, ResultStore, ResultsFile, RunOptions, Scale, StreamCache,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Reduced scale so the grid stays fast in debug CI runs.
fn tiny_scale() -> Scale {
    Scale { rays: 260, tris_scale: 0.008, warps_scale: 0.15 }
}

/// A small fig2 slice: conference scene, Aila, bounces ≤ 3.
fn small_grid() -> Vec<drs_harness::SimJob> {
    let mut set = figures::fig2(&tiny_scale());
    set.jobs.retain(|j| j.bounce <= 3);
    assert!(set.jobs.len() >= 2, "need at least two cells for the test to mean anything");
    set.jobs
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("drs-store-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts(store_dir: &PathBuf, cache_dir: &PathBuf) -> RunOptions {
    RunOptions {
        capture: CaptureMode::Cached(StreamCache::new(cache_dir)),
        store: Some(Arc::new(ResultStore::new(store_dir))),
        ..RunOptions::serial()
    }
}

fn results_doc(mode: &str, report: pool::RunReport, n_figures: usize) -> String {
    let figures_of = vec![vec![mode.to_string()]; n_figures];
    ResultsFile::from_report(mode, 1, report, figures_of).to_json()
}

#[test]
fn warm_store_rerun_does_zero_sim_work_and_is_byte_identical() {
    let store_dir = fresh_dir("warm");
    let cache_dir = fresh_dir("warm-cache");
    let jobs = small_grid();

    let cold = pool::run_jobs(&jobs, &opts(&store_dir, &cache_dir));
    assert!(cold.all_clean());
    assert_eq!(cold.store.hits, 0, "a fresh store has nothing to serve");
    assert_eq!(cold.store.misses, jobs.len() as u64);
    assert_eq!(cold.store.writes, jobs.len() as u64, "every clean cell is persisted");
    assert_eq!(cold.store.write_failures, 0);

    // Warm rerun: a *fresh* ResultStore handle over the same directory —
    // nothing is cached in memory, everything comes off disk.
    let warm = pool::run_jobs(&jobs, &opts(&store_dir, &cache_dir));
    assert!(warm.all_clean());
    assert_eq!(warm.store.hits, jobs.len() as u64, "every cell must be served from the store");
    assert_eq!(warm.store.misses, 0);
    assert_eq!(warm.store.writes, 0, "served cells are not rewritten");
    // Zero sim work implies zero capture work: the capture cache is
    // never even consulted for store-served cells.
    assert_eq!(warm.cache.hits + warm.cache.misses, 0, "warm run must not touch the capture cache");

    let n = jobs.len();
    for (c, w) in cold.cells.iter().zip(warm.cells.iter()) {
        assert_eq!(c.stats, w.stats, "store replay changed {}", c.cell_name());
        assert_eq!(c.wall_ms, w.wall_ms, "per-cell wall_ms is part of the stored entry");
        assert_eq!(c.attempts, w.attempts);
    }
    assert_eq!(
        results_doc("fig2", cold, n),
        results_doc("fig2", warm, n),
        "warm rerun must produce a byte-identical results document"
    );

    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn corrupted_entries_are_quarantined_and_recomputed() {
    let store_dir = fresh_dir("corrupt");
    let cache_dir = fresh_dir("corrupt-cache");
    let jobs = small_grid();

    let cold = pool::run_jobs(&jobs, &opts(&store_dir, &cache_dir));
    assert!(cold.all_clean());

    // Rerun with a bit flipped in job 0's entry (the `store@0` fault
    // corrupts it just before the lookup): the checksum footer must
    // catch it, quarantine the file, and re-simulate that one cell.
    let corrupt_opts =
        RunOptions { faults: FaultPlan::parse("store@0").unwrap(), ..opts(&store_dir, &cache_dir) };
    let rerun = pool::run_jobs(&jobs, &corrupt_opts);
    assert!(rerun.all_clean(), "a corrupt store entry must never fail the run");
    assert_eq!(rerun.store.quarantined, 1, "exactly the scrambled entry is quarantined");
    assert_eq!(rerun.store.hits, jobs.len() as u64 - 1, "the other cells are still served");
    assert_eq!(rerun.store.misses, 1);
    assert_eq!(rerun.store.writes, 1, "the recomputed cell is re-persisted");
    for (c, r) in cold.cells.iter().zip(rerun.cells.iter()) {
        assert_eq!(c.stats, r.stats, "recomputed cell diverged for {}", c.cell_name());
    }
    // The quarantined file is preserved for postmortem, out of the way.
    let quarantined = std::fs::read_dir(store_dir.join("quarantine")).map_or(0, Iterator::count);
    assert_eq!(quarantined, 1);

    // One more rerun: fully warm again (the recomputed entry is back).
    let warm = pool::run_jobs(&jobs, &opts(&store_dir, &cache_dir));
    assert_eq!(warm.store.hits, jobs.len() as u64);
    assert_eq!(warm.store.quarantined, 0);

    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
