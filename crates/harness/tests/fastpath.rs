//! End-to-end A/B proof of the engine's event-driven fast path at the
//! harness level: over reduced fig2 and fig10 grids — covering all four
//! methods (Aila / DMK / TBC / DRS) — running with cycle skipping on and
//! off yields bit-identical `SimStats`, and, with a collector attached,
//! bit-identical telemetry reports (totals, interval timeline, trace).

use drs_harness::{figures, pool, ResultsFile, RunOptions, Scale};
use drs_scene::SceneKind;
use drs_telemetry::TelemetryConfig;

/// Reduced scale so both passes stay fast in debug CI runs.
fn tiny_scale() -> Scale {
    Scale { rays: 260, tris_scale: 0.008, warps_scale: 0.15 }
}

/// The union of a reduced fig2 grid (conference, bounces ≤ 3) and a
/// reduced fig10 grid (two scenes, all four methods, bounces ≤ 2).
fn reduced_grids(scale: &Scale) -> Vec<drs_harness::SimJob> {
    let mut fig2 = figures::fig2(scale);
    fig2.jobs.retain(|j| j.bounce <= 3);
    let mut fig10 = figures::fig10(scale);
    fig10.jobs.retain(|j| {
        j.bounce <= 2 && matches!(j.workload.scene, SceneKind::Conference | SceneKind::FairyForest)
    });
    let mut jobs = fig2.jobs;
    jobs.extend(fig10.jobs);
    assert_eq!(jobs.len(), 3 + 2 * 4 * 2);
    jobs
}

fn opts(fastpath: bool, telemetry: Option<TelemetryConfig>) -> RunOptions {
    RunOptions { workers: 4, fastpath, telemetry, ..RunOptions::serial() }
}

#[test]
fn fastpath_onoff_stats_bit_identical_across_methods() {
    let scale = tiny_scale();
    let jobs = reduced_grids(&scale);
    let fast = pool::run_jobs(&jobs, &opts(true, None));
    let naive = pool::run_jobs(&jobs, &opts(false, None));
    assert_eq!(fast.cells.len(), naive.cells.len());
    let mut simulated = 0;
    for (f, n) in fast.cells.iter().zip(naive.cells.iter()) {
        assert_eq!(f.job.id(), n.job.id());
        assert_eq!(f.empty, n.empty);
        assert_eq!(f.completed, n.completed);
        assert_eq!(
            f.stats,
            n.stats,
            "fast path changed SimStats for {} bounce {} on {}",
            f.job.method.label(),
            f.job.bounce,
            f.job.workload.scene
        );
        if !f.empty && f.stats.rays_completed > 0 {
            simulated += 1;
        }
    }
    assert!(simulated >= 8, "grid must actually exercise the engine");

    // The deterministic stats dump — what CI diffs byte-for-byte — is
    // identical too.
    let figs = |n: usize| vec![vec!["ab".to_string()]; n];
    let nf = fast.cells.len();
    let a = ResultsFile::from_report("ab", 4, fast, figs(nf)).stats_json();
    let b = ResultsFile::from_report("ab", 4, naive, figs(nf)).stats_json();
    assert_eq!(a, b, "stats dumps must be byte-identical across the fast path");
}

#[test]
fn fastpath_onoff_telemetry_reports_identical() {
    let scale = tiny_scale();
    // Telemetry A/B is slower (naive per-cycle attribution), so use the
    // fig10 half only — it covers all four methods.
    let jobs: Vec<_> = reduced_grids(&scale)
        .into_iter()
        .filter(|j| j.bounce <= 2 && j.workload.scene == SceneKind::Conference)
        .collect();
    let cfg = TelemetryConfig { interval: 700, trace: true, ..TelemetryConfig::default() };
    let fast = pool::run_jobs(&jobs, &opts(true, Some(cfg)));
    let naive = pool::run_jobs(&jobs, &opts(false, Some(cfg)));
    for (f, n) in fast.cells.iter().zip(naive.cells.iter()) {
        assert_eq!(f.stats, n.stats);
        assert_eq!(
            f.telemetry,
            n.telemetry,
            "fast path changed the telemetry report for {} bounce {}",
            f.job.method.label(),
            f.job.bounce
        );
        if let Some(report) = &f.telemetry {
            report.check_identity().unwrap();
        }
    }
    assert!(fast.cells.iter().any(|c| c.telemetry.is_some()));
}
