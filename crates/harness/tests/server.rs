//! Chaos-level guarantees of the experiment service, driven in-process
//! through [`Server::run_controlled`]:
//!
//! 1. **Submit → stream → fetch** works over the line-delimited JSON
//!    protocol, and a repeat submission is served entirely from the
//!    result store with a byte-identical document.
//! 2. **Bounded admission**: past `queue_limit` the server sheds with a
//!    typed `busy` event instead of queueing unboundedly.
//! 3. **Crash convergence**: aborting a server mid-grid (the in-process
//!    surrogate for `kill -9` — queued work is dropped on the floor),
//!    restarting over the same store, and resubmitting yields a document
//!    byte-identical to an uninterrupted run's.
//! 4. **Store races**: two servers sharing one store directory both
//!    produce that same document, serialized by the store's lock files.
//! 5. **Client disconnects** (injected) kill only the connection: the
//!    grid still completes into the store and a fresh connection fetches
//!    the full results.

use drs_harness::{FaultPlan, Scale, Server, ServerControl, ServerOptions};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Reduced scale so grids stay fast in debug CI runs.
fn tiny_scale() -> Scale {
    Scale { rays: 260, tris_scale: 0.008, warps_scale: 0.15 }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("drs-server-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn server_opts(tag: &str, store_dir: &Path) -> ServerOptions {
    ServerOptions {
        store_dir: store_dir.to_path_buf(),
        cache_dir: fresh_dir(&format!("{tag}-cache")),
        workers: 2,
        scale: tiny_scale(),
        ..ServerOptions::new(
            std::env::temp_dir().join(format!("drs-serve-{tag}-{}.sock", std::process::id())),
        )
    }
}

/// Spawn a server on its own thread; returns the join handle.
fn spawn_server(
    opts: ServerOptions,
    control: ServerControl,
) -> std::thread::JoinHandle<std::io::Result<()>> {
    std::thread::spawn(move || Server::run_controlled(opts, &control))
}

/// A minimal protocol client with a read timeout on every event.
struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connect, retrying while the server is still binding its socket.
    fn connect(socket: &Path) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        let stream = loop {
            match UnixStream::connect(socket) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("could not connect to {}: {e}", socket.display()),
            }
        };
        stream.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut c = Client { reader: BufReader::new(stream), writer };
        let hello = c.recv().expect("hello event");
        assert!(hello.contains("\"event\":\"hello\""), "unexpected greeting: {hello}");
        c
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    /// Next protocol line, or `None` when the server closed the stream.
    /// Panics after 30 s of silence (a hung test beats a deadlocked CI).
    fn recv(&mut self) -> Option<String> {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => return None,
                Ok(_) => return Some(line.trim().to_string()),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    assert!(Instant::now() < deadline, "no server event within 30s");
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
    }

    /// Submit `figure` and return the ticket id from the `accepted` event.
    fn submit(&mut self, figure: &str) -> u64 {
        self.send(&format!("{{\"op\":\"submit\",\"figure\":\"{figure}\"}}"));
        let ev = self.recv().expect("accepted event");
        assert!(ev.contains("\"event\":\"accepted\""), "submit was not accepted: {ev}");
        field_u64(&ev, "ticket").expect("accepted carries a ticket id")
    }

    /// Read events until this ticket's `done`, then fetch and return the
    /// embedded deterministic results document (raw bytes, unreparsed).
    fn wait_and_fetch(&mut self, ticket: u64) -> String {
        loop {
            let ev = self.recv().expect("event stream ended before done");
            if ev.contains("\"event\":\"done\"") && field_u64(&ev, "ticket") == Some(ticket) {
                break;
            }
        }
        self.fetch(ticket)
    }

    /// Fetch a completed ticket's document (poll through `pending`).
    fn fetch(&mut self, ticket: u64) -> String {
        loop {
            self.send(&format!("{{\"op\":\"fetch\",\"ticket\":{ticket}}}"));
            let ev = self.recv().expect("fetch response");
            if ev.contains("\"event\":\"pending\"") {
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
            assert!(ev.contains("\"event\":\"results\""), "fetch failed: {ev}");
            let at = ev.find("\"doc\":").expect("results event embeds the document");
            return ev[at + "\"doc\":".len()..ev.len() - 1].to_string();
        }
    }
}

/// The numeric field `"name":N` of a single-line JSON event.
fn field_u64(line: &str, name: &str) -> Option<u64> {
    let at = line.find(&format!("\"{name}\":"))? + name.len() + 3;
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn drain_and_join(control: &ServerControl, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    control.drain.store(true, Ordering::Relaxed);
    handle.join().expect("server thread panicked").expect("server errored");
}

#[test]
fn submit_stream_fetch_and_store_backed_repeat_are_byte_identical() {
    let store = fresh_dir("basic-store");
    let opts = server_opts("basic", &store);
    let socket = opts.socket.clone();
    let control = ServerControl::default();
    let server = spawn_server(opts, control.clone());

    let mut client = Client::connect(&socket);
    let t1 = client.submit("fig2");
    let doc1 = client.wait_and_fetch(t1);
    assert!(doc1.contains("\"suite\":"), "results look like a stats document: {doc1}");

    // Same figure again on the same connection: everything comes from
    // the store, and the document is byte-identical.
    let t2 = client.submit("fig2");
    assert_ne!(t1, t2, "tickets are unique");
    let doc2 = client.wait_and_fetch(t2);
    assert_eq!(doc1, doc2, "store-served repeat must be byte-identical");

    drain_and_join(&control, server);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn submissions_past_the_queue_limit_are_shed_with_busy() {
    let store = fresh_dir("busy-store");
    let opts = ServerOptions { queue_limit: 1, ..server_opts("busy", &store) };
    let socket = opts.socket.clone();
    let control = ServerControl::default();
    let server = spawn_server(opts, control.clone());

    let mut client = Client::connect(&socket);
    // fig2 has more than one cell, so it cannot fit a 1-cell queue.
    client.send("{\"op\":\"submit\",\"figure\":\"fig2\"}");
    let ev = client.recv().expect("response");
    assert!(ev.contains("\"event\":\"busy\""), "expected busy shedding, got: {ev}");
    assert!(ev.contains("\"limit\":1"), "busy names the limit: {ev}");
    // The server is still healthy: status answers.
    client.send("{\"op\":\"status\"}");
    let st = client.recv().expect("status");
    assert!(st.contains("\"event\":\"status\""), "{st}");

    drain_and_join(&control, server);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn abort_restart_resubmit_converges_to_the_uninterrupted_document() {
    // Reference: an uninterrupted run on its own store.
    let ref_store = fresh_dir("conv-ref-store");
    let ref_opts = server_opts("conv-ref", &ref_store);
    let ref_socket = ref_opts.socket.clone();
    let ref_control = ServerControl::default();
    let ref_server = spawn_server(ref_opts, ref_control.clone());
    let mut ref_client = Client::connect(&ref_socket);
    let t = ref_client.submit("fig2");
    let reference = ref_client.wait_and_fetch(t);
    drain_and_join(&ref_control, ref_server);

    // Crash run: abort the server mid-grid (workers=1 so cells finish
    // one at a time), dropping all still-queued work on the floor.
    let store = fresh_dir("conv-store");
    let opts = ServerOptions { workers: 1, ..server_opts("conv-a", &store) };
    let socket = opts.socket.clone();
    let control = ServerControl::default();
    let server = spawn_server(opts, control.clone());
    let mut client = Client::connect(&socket);
    let _ = client.submit("fig2");
    // Wait for the first finished cell, then pull the plug.
    loop {
        match client.recv() {
            Some(ev) if ev.contains("\"event\":\"cell\"") => break,
            Some(_) => {}
            None => break, // server already gone
        }
    }
    control.abort.store(true, Ordering::Relaxed);
    server.join().expect("server thread panicked").expect("server errored");

    // Restart over the same store; resubmit; the merged (store + fresh
    // simulation) document must equal the uninterrupted reference.
    let opts2 = server_opts("conv-b", &store);
    let socket2 = opts2.socket.clone();
    let control2 = ServerControl::default();
    let server2 = spawn_server(opts2, control2.clone());
    let mut client2 = Client::connect(&socket2);
    let t2 = client2.submit("fig2");
    let recovered = client2.wait_and_fetch(t2);
    assert_eq!(
        recovered, reference,
        "restart + resubmit must converge to the uninterrupted run's bytes"
    );
    drain_and_join(&control2, server2);

    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&ref_store);
}

#[test]
fn two_servers_racing_one_store_agree_byte_for_byte() {
    let store = fresh_dir("race-store");
    let opts_a = server_opts("race-a", &store);
    let opts_b = server_opts("race-b", &store);
    let (sock_a, sock_b) = (opts_a.socket.clone(), opts_b.socket.clone());
    let (ctl_a, ctl_b) = (ServerControl::default(), ServerControl::default());
    let server_a = spawn_server(opts_a, ctl_a.clone());
    let server_b = spawn_server(opts_b, ctl_b.clone());

    // Submit the same grid to both servers concurrently: their store
    // writers race on the same directory, serialized per entry by the
    // lock files.
    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(&sock_b);
        let t = c.submit("fig2");
        c.wait_and_fetch(t)
    });
    let mut c = Client::connect(&sock_a);
    let t = c.submit("fig2");
    let doc_a = c.wait_and_fetch(t);
    let doc_b = worker.join().expect("client thread panicked");
    assert_eq!(doc_a, doc_b, "racing servers must agree on the document bytes");

    drain_and_join(&ctl_a, server_a);
    drain_and_join(&ctl_b, server_b);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn injected_client_disconnect_kills_the_connection_not_the_work() {
    let store = fresh_dir("disc-store");
    let opts = ServerOptions {
        faults: FaultPlan::parse("disconnect@0").unwrap(),
        ..server_opts("disc", &store)
    };
    let socket = opts.socket.clone();
    let control = ServerControl::default();
    let server = spawn_server(opts, control.clone());

    // This client is forcibly disconnected while cell 0's event is being
    // streamed; the stream must end (EOF), not hang.
    let mut doomed = Client::connect(&socket);
    let ticket = doomed.submit("fig2");
    // Drain events until the injected disconnect EOFs the stream.
    while doomed.recv().is_some() {}

    // The grid keeps running server-side; a fresh connection fetches the
    // complete document (polling through pending while it finishes).
    let mut fresh = Client::connect(&socket);
    let doc = fresh.fetch(ticket);
    assert!(doc.contains("\"cells\":"), "recovered document has cells: {doc}");

    drain_and_join(&control, server);
    let _ = std::fs::remove_dir_all(&store);
}
