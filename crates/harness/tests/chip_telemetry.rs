//! End-to-end guarantees of the chip memory-system telemetry layer:
//!
//! 1. **Observational**: running the same full-chip grid with and
//!    without telemetry yields bit-identical `SimStats` and
//!    `ChipSummary` — attaching the sink does zero accounting work that
//!    could perturb timing.
//! 2. **Accounting identity**: every emitted report satisfies its
//!    per-interval identity (Σ interference matrix == evictions +
//!    MSHR waits, interval series sums to the chip counters) at every
//!    interval, not just globally.
//! 3. **Determinism**: the full report — interval series, high-waters,
//!    interference matrix — is identical for any `chip_threads` count.

use drs_harness::{figures, pool, ChipConfig, RunOptions, Scale};
use drs_scene::SceneKind;
use drs_telemetry::TelemetryConfig;

/// Reduced scale so the grid stays fast in debug CI runs.
fn tiny_scale() -> Scale {
    Scale { rays: 260, tris_scale: 0.008, warps_scale: 0.15 }
}

/// A small 2-SM chip grid: conference scene, all four methods.
fn chip_grid() -> Vec<drs_harness::SimJob> {
    let mut set = figures::fig10(&tiny_scale());
    set.jobs.retain(|j| j.bounce <= 2 && matches!(j.workload.scene, SceneKind::Conference));
    set.jobs.truncate(4);
    let set = set.with_chip(ChipConfig::gtx780(2));
    assert!(set.jobs.iter().all(|j| j.chip.is_some()));
    set.jobs
}

fn opts(telemetry: Option<TelemetryConfig>, chip_threads: usize) -> RunOptions {
    RunOptions { chip_threads, telemetry, ..RunOptions::serial() }
}

#[test]
fn chip_telemetry_is_observational_and_satisfies_identity() {
    let jobs = chip_grid();
    let plain = pool::run_jobs(&jobs, &opts(None, 1));
    let tcfg = TelemetryConfig { interval: 400, ..TelemetryConfig::default() };
    let observed = pool::run_jobs(&jobs, &opts(Some(tcfg), 1));

    assert!(plain.all_clean() && observed.all_clean());
    assert_eq!(plain.cells.len(), observed.cells.len());
    let mut instrumented = 0;
    for (p, o) in plain.cells.iter().zip(observed.cells.iter()) {
        // Golden A/B: the sink must not change a single counter.
        assert_eq!(p.stats, o.stats, "telemetry perturbed chip SimStats");
        assert_eq!(p.chip, o.chip, "telemetry perturbed the chip summary");
        assert!(p.telemetry.is_none() && p.sm_telemetry.is_empty() && p.chip_telemetry.is_none());
        if o.empty {
            continue;
        }
        instrumented += 1;
        let summary = o.chip.as_ref().expect("chip cells carry a summary");
        let report = o.chip_telemetry.as_ref().expect("telemetry chip cells carry a chip report");
        // Per-SM stall reports ride along, one per SM, each internally
        // consistent.
        assert_eq!(o.sm_telemetry.len(), summary.sms);
        for sm in &o.sm_telemetry {
            sm.check_identity().unwrap();
        }
        // The chip report's interval series and interference matrix must
        // reconcile exactly with the independently-kept chip counters.
        assert_eq!(report.sms, summary.sms);
        assert_eq!(report.cycles, o.stats.cycles);
        report
            .check_identity(
                summary.l2_hits,
                summary.l2_misses,
                summary.l2_evictions,
                summary.mshr_waits,
            )
            .unwrap();
        assert_eq!(
            report.interference.iter().sum::<u64>(),
            summary.l2_evictions + summary.mshr_waits,
            "interference matrix total must equal evictions + MSHR waits"
        );
        assert_eq!(
            report.intervals.iter().map(|s| s.dram_busy_q).sum::<u64>(),
            summary.dram_busy_q
        );
    }
    assert!(instrumented > 0, "grid must exercise at least one real chip cell");
}

#[test]
fn chip_telemetry_reports_are_bit_identical_across_chip_threads() {
    let jobs = chip_grid();
    let tcfg = TelemetryConfig { interval: 400, ..TelemetryConfig::default() };
    let serial = pool::run_jobs(&jobs, &opts(Some(tcfg), 1));
    let threaded = pool::run_jobs(&jobs, &opts(Some(tcfg), 4));

    assert!(serial.all_clean() && threaded.all_clean());
    for (s, t) in serial.cells.iter().zip(threaded.cells.iter()) {
        assert_eq!(s.stats, t.stats);
        assert_eq!(s.chip, t.chip);
        assert_eq!(
            s.chip_telemetry, t.chip_telemetry,
            "chip telemetry report diverged across chip_threads"
        );
        assert_eq!(s.sm_telemetry, t.sm_telemetry, "per-SM reports diverged across chip_threads");
    }
}
