//! The telemetry layer's contractual guarantees, proven on the real
//! experiment grid (conference scene, every fig2 bounce, all four
//! comparison methods):
//!
//! 1. **Accounting identity**: with telemetry attached, every warp-cycle
//!    of every cell is charged to exactly one stall bucket —
//!    `Σ buckets == cycles × warps`, globally and per interval.
//! 2. **Observability is free**: the same grid run without telemetry
//!    yields bit-identical `SimStats` (the hot loop does no attribution
//!    work when detached).
//! 3. **Timeline fidelity**: the issue-weighted mean of the interval
//!    SIMD-efficiency series reproduces the aggregate efficiency to 1e-9.
//! 4. **Artifact validity**: the emitted Chrome trace and timeline JSON
//!    parse and match the schema the trace viewer expects.

use drs_harness::{
    figures, pool, CellResult, Method, ResultsFile, RunOptions, Scale, SimJob, WorkloadSpec,
};
use drs_scene::SceneKind;
use drs_sim::StallBucket;
use drs_telemetry::{check, TelemetryConfig};

/// Reduced scale so the grid stays fast in debug CI runs.
fn tiny_scale() -> Scale {
    Scale { rays: 260, tris_scale: 0.008, warps_scale: 0.15 }
}

/// Every fig2 cell (conference, bounces 1..=depth) for all four
/// comparison methods — Aila, DMK, TBC, and default DRS.
fn fig2_all_methods(scale: &Scale) -> Vec<SimJob> {
    let wl = WorkloadSpec::standard(SceneKind::Conference, scale, figures::CANONICAL_DEPTH);
    let mut jobs = Vec::new();
    for method in figures::comparison_methods() {
        for bounce in 1..=figures::CANONICAL_DEPTH {
            jobs.push(SimJob {
                workload: wl,
                bounce,
                method,
                warps: scale.warps(method.paper_warps()),
                chip: None,
            });
        }
    }
    assert_eq!(jobs.len(), 4 * figures::CANONICAL_DEPTH);
    jobs
}

fn telemetry_opts() -> RunOptions {
    RunOptions {
        workers: 4,
        telemetry: Some(TelemetryConfig {
            interval: 512,
            trace: true,
            ..TelemetryConfig::default()
        }),
        ..RunOptions::serial()
    }
}

fn cell_label(c: &CellResult) -> String {
    format!("{} B{}", c.job.method.label(), c.job.bounce)
}

#[test]
fn accounting_identity_and_timeline_fidelity_on_fig2_grid() {
    let scale = tiny_scale();
    let jobs = fig2_all_methods(&scale);
    let report = pool::run_jobs(&jobs, &telemetry_opts());

    let mut simulated = 0usize;
    for cell in &report.cells {
        assert!(cell.completed, "{} hit the cycle cap", cell_label(cell));
        if cell.empty {
            assert!(cell.telemetry.is_none(), "empty cells must not carry telemetry");
            continue;
        }
        simulated += 1;
        let t = cell.telemetry.as_ref().unwrap_or_else(|| {
            panic!("{}: telemetry missing despite being enabled", cell_label(cell))
        });
        assert_eq!(t.cycles, cell.stats.cycles, "{}", cell_label(cell));
        assert_eq!(t.warps, cell.job.warps, "{}", cell_label(cell));
        t.check_identity().unwrap_or_else(|e| panic!("{}: {e}", cell_label(cell)));
        assert!(
            (t.weighted_simd_efficiency() - cell.stats.simd_efficiency()).abs() < 1e-9,
            "{}: interval series does not reproduce aggregate SIMD efficiency",
            cell_label(cell)
        );
        // Issued warp-cycles only happen when instructions issued, and
        // every run that completed rays must have issued something.
        assert!(t.totals[StallBucket::Issued as usize] > 0, "{}", cell_label(cell));
        assert!(t.trace.as_ref().is_some_and(|tr| !tr.spans.is_empty()), "{}", cell_label(cell));
    }
    assert!(simulated >= 8, "grid too empty to be meaningful: {simulated} simulated cells");
}

#[test]
fn telemetry_off_is_bit_identical() {
    let scale = tiny_scale();
    // Bound the runtime: identity for all methods is covered above, so
    // two bounces per method suffice for the A/B comparison.
    let mut jobs = fig2_all_methods(&scale);
    jobs.retain(|j| j.bounce <= 2);

    let plain = pool::run_jobs(&jobs, &RunOptions { workers: 4, ..RunOptions::serial() });
    let observed = pool::run_jobs(&jobs, &telemetry_opts());

    assert_eq!(plain.cells.len(), observed.cells.len());
    for (p, o) in plain.cells.iter().zip(observed.cells.iter()) {
        assert!(p.telemetry.is_none());
        assert_eq!(
            p.stats,
            o.stats,
            "telemetry must be purely observational, diverged on {}",
            cell_label(p)
        );
        assert_eq!(p.completed, o.completed);
        assert_eq!(p.empty, o.empty);
    }
}

#[test]
fn emitted_artifacts_parse_and_match_schema() {
    let scale = tiny_scale();
    let mut jobs = fig2_all_methods(&scale);
    jobs.retain(|j| j.bounce <= 2 && j.method == Method::Aila);
    let report = pool::run_jobs(&jobs, &telemetry_opts());
    let n = report.cells.iter().filter(|c| !c.empty).count();
    assert!(n >= 1);

    let figures_of = vec![vec!["fig2".to_string()]; report.cells.len()];
    let results = ResultsFile::from_report("fig2", 4, report, figures_of);

    // The timeline artifact parses and lists every instrumented cell.
    let timeline = results.timeline_json().expect("instrumented cells present");
    let doc = check::parse(&timeline).expect("timeline artifact must be valid JSON");
    let cells = doc.get("cells").and_then(|c| c.as_arr()).expect("cells array");
    assert_eq!(cells.len(), n);
    for cell in cells {
        let t = cell.get("telemetry").expect("telemetry object");
        let buckets = t.get("stall_buckets").expect("stall_buckets object");
        let total: f64 = StallBucket::ALL
            .iter()
            .map(|b| {
                buckets
                    .get(b.label())
                    .and_then(drs_telemetry::check::Value::as_num)
                    .expect("bucket count")
            })
            .sum();
        let cycles = t.get("cycles").and_then(drs_telemetry::check::Value::as_num).unwrap();
        let warps = t.get("warps").and_then(drs_telemetry::check::Value::as_num).unwrap();
        assert_eq!(total, cycles * warps, "identity must survive serialization");
        assert!(!t.get("intervals").and_then(|v| v.as_arr()).unwrap().is_empty());
    }

    // The Chrome trace parses and passes the schema check.
    let trace = results.chrome_trace_json().expect("instrumented cells present");
    let summary = check::validate_chrome_trace(&trace).expect("trace must satisfy the schema");
    assert_eq!(summary.pids.len(), n, "one trace process per instrumented cell");
    assert!(summary.duration_events > 0, "stall spans must be present");
    assert!(summary.counter_events > 0, "SIMD-efficiency counters must be present");
    assert_eq!(summary.instant_events, n, "one end-marker per cell");
}
