//! A crash-safe experiment service over a Unix-domain socket.
//!
//! `experiments serve` turns the harness into a long-running simulator
//! daemon: clients connect to a socket, submit figure grids, stream
//! per-cell progress events, and fetch deterministic result documents.
//! Durability rides on the [`ResultStore`] — every clean cell lands on
//! disk the moment it finishes, so a `kill -9` at any instant loses at
//! most the cells still in flight, and a restart + resubmit converges to
//! results byte-identical to an uninterrupted run.
//!
//! # Protocol
//!
//! Line-delimited JSON, one document per line, both directions. Client
//! requests:
//!
//! ```text
//! {"op":"submit","figure":"fig2"}     queue a figure's job grid
//! {"op":"fetch","ticket":3}           fetch a finished ticket's results
//! {"op":"status"}                     queue / drain introspection
//! {"op":"drain"}                      begin graceful drain (admin)
//! ```
//!
//! Server events: `hello` (on connect), `accepted` (ticket id + job
//! count), `busy` (admission queue full — explicit shedding, never a
//! hang), `draining` (submission refused during drain), `cell` (one per
//! finished cell: index, source `store`/`sim`, throughput), `done` (all
//! of a ticket's cells finished), `results` (the fetched document),
//! `pending`, `error`.
//!
//! The fetched document is the *stats* form ([`ResultsFile::stats_json`]):
//! fully deterministic, no wall-clock or worker-count fields, so two
//! servers — or an interrupted-then-restarted one — produce comparable
//! bytes (`cmp`-equal, as the chaos tests assert).
//!
//! # Scheduling and degradation
//!
//! Admitted tickets share the worker pool via round-robin: each ticket
//! releases one cell per scheduling turn, so a small grid is never
//! starved behind a million-cell one. Admission is bounded
//! (`queue_limit` undispatched cells across all tickets); past it,
//! submissions get a typed `busy` response. Every client write goes
//! through a per-client mutex with a write timeout — a slow or dead
//! client is dropped (its results still land in the store; a later
//! fetch on a fresh connection retrieves them) and never stalls a
//! worker. SIGTERM (or the `drain` op) triggers a graceful drain:
//! admitted work finishes, the store is flushed (it always is — writes
//! are per-cell and atomic), new submissions are refused, and the
//! process exits 0.

#![cfg(unix)]

use crate::cache::StreamCache;
use crate::checkpoint::CheckpointCell;
use crate::fault::{FaultKind, FaultPlan};
use crate::figures;
use crate::job::{Scale, SimJob};
use crate::pool::{catch_quietly, run_one_job, CaptureMode, RunOptions};
use crate::results::{CellFailure, CellResult, ResultsFile};
use crate::store::ResultStore;
use drs_sim::{GpuConfig, JsonBuf, SimStats};
use drs_telemetry::check::{self, Value};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Protocol version announced in the `hello` event.
pub const PROTOCOL_VERSION: u32 = 1;

/// How often blocked accept/read loops poll their stop conditions.
const POLL_MS: u64 = 50;

/// Configuration for [`Server::run`].
#[derive(Debug)]
pub struct ServerOptions {
    /// Unix-domain socket path (created on start, removed on exit; a
    /// stale file from a crashed server is replaced).
    pub socket: PathBuf,
    /// Result-store directory (the durability root).
    pub store_dir: PathBuf,
    /// Capture-cache directory.
    pub cache_dir: PathBuf,
    /// Optional capture-cache byte limit (LRU eviction past it).
    pub cache_limit: Option<u64>,
    /// Worker threads executing cells.
    pub workers: usize,
    /// Maximum undispatched cells across all tickets; submissions past
    /// it are shed with a `busy` response.
    pub queue_limit: usize,
    /// Per-client write timeout. A client that cannot drain an event
    /// within it is dropped.
    pub write_timeout_ms: u64,
    /// Workload scale for submitted figures.
    pub scale: Scale,
    /// Engine fast path (see [`RunOptions::fastpath`]).
    pub fastpath: bool,
    /// Retry budget per cell for transient failures.
    pub retries: u32,
    /// Deterministic fault injection (store corruption and client
    /// disconnects are meaningful here; indices address a ticket's
    /// local job order).
    pub faults: FaultPlan,
    /// Log accept/submit/cell lines to stderr.
    pub progress: bool,
}

impl ServerOptions {
    /// Defaults for a server at `socket`: store and cache at their
    /// conventional locations, one worker per available core, a 4096-cell
    /// admission queue, 5 s write patience.
    pub fn new(socket: impl Into<PathBuf>) -> ServerOptions {
        ServerOptions {
            socket: socket.into(),
            store_dir: ResultStore::default_dir(),
            cache_dir: StreamCache::default_dir(),
            cache_limit: None,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            queue_limit: 4096,
            write_timeout_ms: 5_000,
            scale: Scale::default(),
            fastpath: true,
            retries: 1,
            faults: FaultPlan::default(),
            progress: false,
        }
    }
}

/// External control surface for a running server: both flags are polled,
/// so a signal handler (or a test) can flip them at any time.
#[derive(Debug, Clone, Default)]
pub struct ServerControl {
    /// Graceful drain: refuse new submissions, finish admitted work,
    /// exit. What SIGTERM sets.
    pub drain: Arc<AtomicBool>,
    /// Abrupt stop: abandon queued work, exit as soon as in-flight
    /// cells finish. The in-process stand-in for `kill -9` used by the
    /// chaos tests (a real SIGKILL is equivalent from the store's point
    /// of view: only completed, atomically-written entries survive).
    pub abort: Arc<AtomicBool>,
}

impl ServerControl {
    fn stopping(&self) -> bool {
        self.drain.load(Ordering::Relaxed) || self.abort.load(Ordering::Relaxed)
    }
}

/// One submitted job grid.
struct Ticket {
    client: u64,
    figure: String,
    jobs: Vec<SimJob>,
    /// Next undispatched job index.
    next: usize,
    /// Finished cells (dispatched and completed).
    done: usize,
    failed: usize,
    results: Vec<Option<CellResult>>,
}

/// Scheduler state under one mutex: tickets plus the round-robin ring of
/// tickets that still have undispatched cells.
#[derive(Default)]
struct Sched {
    next_ticket_id: u64,
    tickets: HashMap<u64, Ticket>,
    ring: VecDeque<u64>,
    /// Undispatched cells across all tickets (the admission gauge).
    queued: usize,
}

/// A connected client's write half, shared by every worker.
struct ClientHandle {
    id: u64,
    stream: Mutex<Option<UnixStream>>,
}

impl ClientHandle {
    /// Write one protocol line. On any error (including a write
    /// timeout) the client is dropped: the stream slot is cleared, so
    /// later events become no-ops instead of repeated stalls.
    fn send(&self, line: &str) {
        let mut slot = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(stream) = slot.as_mut() {
            let ok =
                stream.write_all(line.as_bytes()).and_then(|()| stream.write_all(b"\n")).is_ok();
            if !ok {
                eprintln!("drs-serve: dropping unresponsive client {}", self.id);
                let _ = stream.shutdown(std::net::Shutdown::Both);
                *slot = None;
            }
        }
    }

    /// Force-close the connection (client-disconnect fault injection).
    fn kill(&self) {
        let mut slot = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(stream) = slot.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

struct Inner {
    opts: ServerOptions,
    control: ServerControl,
    store: Arc<ResultStore>,
    run_opts: RunOptions,
    sched: Mutex<Sched>,
    work: Condvar,
    clients: Mutex<HashMap<u64, Arc<ClientHandle>>>,
    /// Captured streams memo, keyed by workload content key — the
    /// server-lifetime analogue of the pool's per-run capture phase.
    streams: Mutex<HashMap<u64, Arc<drs_trace::BounceStreams>>>,
    /// Set once workers have exited; tells client reader threads to
    /// wind down.
    clients_stop: AtomicBool,
}

/// The experiment service. See the module docs for the protocol.
pub struct Server;

/// SIGTERM flips this; the accept loop polls it. A `static` because a
/// C signal handler cannot capture state.
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    // Async-signal-safe: a single atomic store.
    SIGTERM_SEEN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
fn install_sigterm() {
    const SIGTERM: i32 = 15;
    // SAFETY: registering an async-signal-safe handler (it only stores
    // an atomic) for SIGTERM via the C signal(2) entry point.
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

impl Server {
    /// Run a server until SIGTERM (graceful drain) with default control
    /// flags. Blocks the calling thread for the server's lifetime.
    ///
    /// # Errors
    ///
    /// Socket bind failures; everything after a successful bind degrades
    /// instead of erroring.
    pub fn run(opts: ServerOptions) -> std::io::Result<()> {
        install_sigterm();
        SIGTERM_SEEN.store(false, Ordering::Relaxed);
        Self::run_controlled(opts, &ServerControl::default())
    }

    /// Run a server under external control flags — the in-process entry
    /// point the golden tests drive (drain, abort) without signals.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn run_controlled(opts: ServerOptions, control: &ServerControl) -> std::io::Result<()> {
        // A previous crash leaves a stale socket file; binding over it
        // needs the unlink first.
        let _ = std::fs::remove_file(&opts.socket);
        if let Some(parent) = opts.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let listener = UnixListener::bind(&opts.socket)?;
        listener.set_nonblocking(true)?;
        if opts.progress {
            eprintln!(
                "drs-serve: listening on {} (store {}, {} workers)",
                opts.socket.display(),
                opts.store_dir.display(),
                opts.workers
            );
        }
        let store = Arc::new(ResultStore::new(&opts.store_dir));
        let run_opts = RunOptions {
            workers: 1, // each cell runs on one server worker thread
            capture: CaptureMode::Cached(StreamCache::with_limit(
                &opts.cache_dir,
                opts.cache_limit,
            )),
            telemetry: None,
            progress: false,
            fastpath: opts.fastpath,
            retries: opts.retries,
            retry_backoff_ms: 10,
            job_cycle_budget: None,
            job_timeout_ms: None,
            chip_threads: 1,
            faults: opts.faults.clone(),
            checkpoint: None,
            store: None, // the server drives the store itself, per cell
        };
        let workers = opts.workers.max(1);
        let socket_path = opts.socket.clone();
        let inner = Arc::new(Inner {
            opts,
            control: control.clone(),
            store,
            run_opts,
            sched: Mutex::default(),
            work: Condvar::new(),
            clients: Mutex::new(HashMap::new()),
            streams: Mutex::new(HashMap::new()),
            clients_stop: AtomicBool::new(false),
        });

        std::thread::scope(|s| {
            let worker_handles: Vec<_> = (0..workers)
                .map(|_| {
                    let inner = Arc::clone(&inner);
                    s.spawn(move || worker_loop(&inner))
                })
                .collect();

            // Accept loop: polls the listener so stop flags stay live.
            let mut next_client = 0u64;
            loop {
                if inner.control.stopping() || SIGTERM_SEEN.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let id = next_client;
                        next_client += 1;
                        let inner = Arc::clone(&inner);
                        s.spawn(move || client_loop(&inner, stream, id));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(POLL_MS));
                    }
                    Err(e) => {
                        eprintln!("drs-serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(POLL_MS));
                    }
                }
            }
            // SIGTERM reached us through the poll: promote it to the
            // drain flag so workers see one coherent signal.
            if SIGTERM_SEEN.load(Ordering::Relaxed) {
                inner.control.drain.store(true, Ordering::Relaxed);
            }
            if inner.opts.progress {
                let what = if inner.control.abort.load(Ordering::Relaxed) {
                    "aborting"
                } else {
                    "draining"
                };
                eprintln!("drs-serve: {what} — new submissions refused");
            }
            inner.work.notify_all();
            for h in worker_handles {
                let _ = h.join();
            }
            // Workers are done (drain: queue empty; abort: queue
            // abandoned). Release the client reader threads.
            inner.clients_stop.store(true, Ordering::Relaxed);
            for client in inner.clients.lock().unwrap_or_else(PoisonError::into_inner).values() {
                client.kill();
            }
        });
        let _ = std::fs::remove_file(&socket_path);
        if inner.opts.progress {
            eprintln!("drs-serve: exited cleanly");
        }
        Ok(())
    }
}

/// Claim the next cell in round-robin ticket order. Returns the ticket
/// id, the ticket-local job index, the job, and the owning client.
fn claim(sched: &mut Sched) -> Option<(u64, usize, SimJob, u64)> {
    let ticket_id = sched.ring.pop_front()?;
    let ticket = sched.tickets.get_mut(&ticket_id)?;
    let index = ticket.next;
    let job = ticket.jobs[index];
    ticket.next += 1;
    sched.queued -= 1;
    if ticket.next < ticket.jobs.len() {
        sched.ring.push_back(ticket_id);
    }
    Some((ticket_id, index, job, ticket.client))
}

fn worker_loop(inner: &Inner) {
    loop {
        let claimed = {
            let mut sched = inner.sched.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if inner.control.abort.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(c) = claim(&mut sched) {
                    break Some(c);
                }
                if inner.control.drain.load(Ordering::Relaxed)
                    || SIGTERM_SEEN.load(Ordering::Relaxed)
                {
                    break None;
                }
                let (guard, _) = inner
                    .work
                    .wait_timeout(sched, Duration::from_millis(POLL_MS))
                    .unwrap_or_else(PoisonError::into_inner);
                sched = guard;
            }
        };
        let Some((ticket_id, index, job, client_id)) = claimed else { return };
        let (cell, source) = execute_cell(inner, index, &job);
        finish_cell(inner, ticket_id, index, client_id, cell, source);
    }
}

/// Run one cell: store lookup first (with injected corruption applied),
/// then capture + simulate, then persist.
fn execute_cell(inner: &Inner, index: usize, job: &SimJob) -> (CellResult, &'static str) {
    let id = job.id();
    if inner.run_opts.faults.fault_for(index, id, 1) == Some(FaultKind::StoreCorrupt)
        && inner.store.scramble(id)
    {
        eprintln!("drs-serve: injected store corruption for job {id}");
    }
    if let Some(prior) = inner.store.lookup(id) {
        return (prior.to_cell(*job), "store");
    }
    let streams = {
        let memo = inner.streams.lock().unwrap_or_else(PoisonError::into_inner);
        memo.get(&job.workload.content_key()).cloned()
    };
    let streams = match streams {
        Some(s) => Ok(s),
        None => catch_quietly(|| match &inner.run_opts.capture {
            CaptureMode::Uncached => job.workload.capture(),
            CaptureMode::Cached(cache) => cache.get_or_capture(&job.workload),
        })
        .map(|streams| {
            let streams = Arc::new(streams);
            inner
                .streams
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(job.workload.content_key(), Arc::clone(&streams));
            streams
        }),
    };
    let cell = match streams {
        Ok(streams) => run_one_job(index, job, &streams, &inner.run_opts),
        Err(panic) => CellResult {
            job: *job,
            empty: false,
            completed: false,
            stats: SimStats::default(),
            telemetry: None,
            sm_telemetry: Vec::new(),
            chip_telemetry: None,
            chip: None,
            failure: Some(CellFailure {
                kind: "capture".to_string(),
                message: format!("workload capture failed: {}", panic.message),
                cycle: None,
                injected: false,
                warp_dump: None,
            }),
            attempts: 1,
            wall_ms: 0.0,
        },
    };
    if cell.completed && cell.failure.is_none() {
        if let Err(e) = inner.store.store(id, &CheckpointCell::from_cell(&cell)) {
            eprintln!(
                "drs-serve: store write failed for job {id} ({e}); \
                 the result is served from memory, durability was lost"
            );
        }
    }
    (cell, "sim")
}

/// Record a finished cell, emit its `cell` event (and `done` when the
/// ticket completes), honoring an injected client disconnect.
fn finish_cell(
    inner: &Inner,
    ticket_id: u64,
    index: usize,
    client_id: u64,
    cell: CellResult,
    source: &'static str,
) {
    let disconnect = inner.run_opts.faults.fault_for(index, cell.job.id(), 1)
        == Some(FaultKind::ClientDisconnect);
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.kv_str("event", "cell");
    j.kv_u64("ticket", ticket_id);
    j.kv_u64("index", index as u64);
    let (done, total, failed, ticket_done) = {
        let mut sched = inner.sched.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(ticket) = sched.tickets.get_mut(&ticket_id) else { return };
        ticket.done += 1;
        if cell.failure.is_some() {
            ticket.failed += 1;
        }
        let summary =
            (ticket.done, ticket.jobs.len(), ticket.failed, ticket.done == ticket.jobs.len());
        j.kv_str("cell", &cell.cell_name());
        j.kv_str("source", source);
        j.kv_bool("ok", cell.failure.is_none());
        j.kv_u64("done", ticket.done as u64);
        j.kv_u64("total", ticket.jobs.len() as u64);
        j.kv_u64("cycles", cell.stats.cycles);
        j.kv_u64("rays", cell.stats.rays_completed);
        j.kv_f64("mrays", cell.mrays_per_sec(&GpuConfig::gtx780()));
        j.kv_f64("simd_efficiency", cell.stats.simd_efficiency());
        ticket.results[index] = Some(cell);
        summary
    };
    j.end_obj();
    if inner.opts.progress {
        eprintln!("drs-serve: ticket {ticket_id} cell {index} done ({done}/{total}, {source})");
    }
    let client = {
        let clients = inner.clients.lock().unwrap_or_else(PoisonError::into_inner);
        clients.get(&client_id).cloned()
    };
    if let Some(client) = client {
        if disconnect {
            eprintln!("drs-serve: injected disconnect of client {client_id}");
            client.kill();
        }
        client.send(&j.finish());
        if ticket_done {
            let mut d = JsonBuf::new();
            d.begin_obj();
            d.kv_str("event", "done");
            d.kv_u64("ticket", ticket_id);
            d.kv_u64("completed", (total - failed) as u64);
            d.kv_u64("failed", failed as u64);
            d.end_obj();
            client.send(&d.finish());
        }
    }
}

/// Build the deterministic results document for a completed ticket.
fn ticket_doc(inner: &Inner, ticket: &Ticket) -> String {
    let cells: Vec<(Vec<String>, CellResult)> = ticket
        .results
        .iter()
        .map(|c| (vec![ticket.figure.clone()], c.clone().expect("ticket complete")))
        .collect();
    let file = ResultsFile {
        mode: ticket.figure.clone(),
        workers: inner.opts.workers,
        cache: match &inner.run_opts.capture {
            CaptureMode::Uncached => crate::cache::CacheCounters::default(),
            CaptureMode::Cached(cache) => cache.counters(),
        },
        store: inner.store.counters(),
        wall_ms: 0.0,
        resumed: 0,
        checkpoint_writes: 0,
        cells,
    };
    file.stats_json()
}

/// One client connection: read ops line by line, answer with events.
fn client_loop(inner: &Inner, stream: UnixStream, id: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(POLL_MS)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(inner.opts.write_timeout_ms)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("drs-serve: failed to clone client stream: {e}");
            return;
        }
    };
    let handle = Arc::new(ClientHandle { id, stream: Mutex::new(Some(write_half)) });
    inner.clients.lock().unwrap_or_else(PoisonError::into_inner).insert(id, Arc::clone(&handle));
    if inner.opts.progress {
        eprintln!("drs-serve: client {id} connected");
    }
    let mut hello = JsonBuf::new();
    hello.begin_obj();
    hello.kv_str("event", "hello");
    hello.kv_u64("protocol", u64::from(PROTOCOL_VERSION));
    hello.kv_u64("client", id);
    hello.end_obj();
    handle.send(&hello.finish());

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if inner.clients_stop.load(Ordering::Relaxed) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client hung up
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_op(inner, &handle, trimmed);
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Poll tick; partial line bytes stay buffered in `line`.
            }
            Err(_) => break,
        }
    }
    inner.clients.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
    handle.kill();
    if inner.opts.progress {
        eprintln!("drs-serve: client {id} disconnected");
    }
}

fn event_line(fields: &[(&str, &str)]) -> String {
    let mut j = JsonBuf::new();
    j.begin_obj();
    for (k, v) in fields {
        j.kv_str(k, v);
    }
    j.end_obj();
    j.finish()
}

fn error_event(message: &str) -> String {
    event_line(&[("event", "error"), ("message", message)])
}

/// Dispatch one parsed client line. Untrusted input: the depth-limited
/// JSON parser rejects pathological nesting, and every malformed shape
/// becomes an `error` event, never a panic.
fn handle_op(inner: &Inner, client: &Arc<ClientHandle>, line: &str) {
    let doc = match check::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            client.send(&error_event(&format!("unparseable request: {e}")));
            return;
        }
    };
    match doc.get("op").and_then(Value::as_str) {
        Some("submit") => submit_op(inner, client, &doc),
        Some("fetch") => fetch_op(inner, client, &doc),
        Some("status") => status_op(inner, client),
        Some("drain") => {
            inner.control.drain.store(true, Ordering::Relaxed);
            inner.work.notify_all();
            client.send(&event_line(&[("event", "draining")]));
        }
        Some(other) => client.send(&error_event(&format!("unknown op '{other}'"))),
        None => client.send(&error_event("missing 'op' field")),
    }
}

fn submit_op(inner: &Inner, client: &Arc<ClientHandle>, doc: &Value) {
    if inner.control.stopping() || SIGTERM_SEEN.load(Ordering::Relaxed) {
        client.send(&event_line(&[("event", "draining")]));
        return;
    }
    let Some(figure) = doc.get("figure").and_then(Value::as_str) else {
        client.send(&error_event("submit needs a 'figure' field"));
        return;
    };
    let Some(set) = figures::by_name(figure, &inner.opts.scale) else {
        client.send(&error_event(&format!("unknown figure '{figure}'")));
        return;
    };
    let jobs = set.jobs;
    let mut sched = inner.sched.lock().unwrap_or_else(PoisonError::into_inner);
    if sched.queued + jobs.len() > inner.opts.queue_limit {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_str("event", "busy");
        j.kv_u64("queued", sched.queued as u64);
        j.kv_u64("limit", inner.opts.queue_limit as u64);
        j.end_obj();
        client.send(&j.finish());
        return;
    }
    let ticket_id = sched.next_ticket_id;
    sched.next_ticket_id += 1;
    sched.queued += jobs.len();
    let ticket = Ticket {
        client: client.id,
        figure: figure.to_string(),
        results: vec![None; jobs.len()],
        next: 0,
        done: 0,
        failed: 0,
        jobs,
    };
    let total = ticket.jobs.len();
    sched.tickets.insert(ticket_id, ticket);
    drop(sched);
    if inner.opts.progress {
        eprintln!(
            "drs-serve: client {} submitted {figure} as ticket {ticket_id} ({total} cells)",
            client.id
        );
    }
    // Acknowledge BEFORE the ticket becomes claimable: a store-served
    // cell finishes instantly, and its event must not outrun `accepted`
    // on the client's stream.
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.kv_str("event", "accepted");
    j.kv_u64("ticket", ticket_id);
    j.kv_str("figure", figure);
    j.kv_u64("jobs", total as u64);
    j.end_obj();
    client.send(&j.finish());
    inner.sched.lock().unwrap_or_else(PoisonError::into_inner).ring.push_back(ticket_id);
    inner.work.notify_all();
}

fn fetch_op(inner: &Inner, client: &Arc<ClientHandle>, doc: &Value) {
    let ticket_id = doc.get("ticket").and_then(Value::as_num).map(|n| n as u64);
    let Some(ticket_id) = ticket_id else {
        client.send(&error_event("fetch needs a numeric 'ticket' field"));
        return;
    };
    let response = {
        let sched = inner.sched.lock().unwrap_or_else(PoisonError::into_inner);
        match sched.tickets.get(&ticket_id) {
            None => error_event(&format!("unknown ticket {ticket_id}")),
            Some(t) if t.done < t.jobs.len() => {
                let mut j = JsonBuf::new();
                j.begin_obj();
                j.kv_str("event", "pending");
                j.kv_u64("ticket", ticket_id);
                j.kv_u64("done", t.done as u64);
                j.kv_u64("total", t.jobs.len() as u64);
                j.end_obj();
                j.finish()
            }
            Some(t) => {
                // The embedded document is itself single-line JSON, so
                // the composed event stays one protocol line.
                format!(
                    "{{\"event\":\"results\",\"ticket\":{ticket_id},\"doc\":{}}}",
                    ticket_doc(inner, t)
                )
            }
        }
    };
    client.send(&response);
}

fn status_op(inner: &Inner, client: &Arc<ClientHandle>) {
    let (queued, tickets) = {
        let sched = inner.sched.lock().unwrap_or_else(PoisonError::into_inner);
        (sched.queued, sched.tickets.len())
    };
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.kv_str("event", "status");
    j.kv_bool("draining", inner.control.stopping() || SIGTERM_SEEN.load(Ordering::Relaxed));
    j.kv_u64("queued", queued as u64);
    j.kv_u64("tickets", tickets as u64);
    j.kv_u64("workers", inner.opts.workers as u64);
    j.end_obj();
    client.send(&j.finish());
}
