//! Crash-safe run checkpoints: rerun only what is missing.
//!
//! The pool appends every finished cell to an on-disk checkpoint (whole
//! file rewritten through a temp file + atomic rename, so a crash or
//! `kill -9` at any instant leaves either the previous consistent
//! snapshot or the new one — never a torn file). A rerun with `--resume`
//! loads the checkpoint, reuses every *clean* cell byte-for-byte, and
//! simulates only the missing or failed ones; the merged results are
//! bit-identical to an uninterrupted run (proven by the fault test suite
//! and the CI crash-recovery smoke).
//!
//! A checkpoint is bound to its run by a `run_key` — a content hash over
//! the ordered job ids, the fast-path setting, and the schema version —
//! so a stale checkpoint from a different grid, scale, or engine mode is
//! ignored rather than merged. Corrupt or unparseable checkpoints are
//! ignored the same way: resuming can never produce worse results than
//! starting over.

use crate::job::{fnv1a64, JobId, SimJob};
use crate::results::{write_text, CellFailure, ChipSummary};
use drs_sim::{ActiveHistogram, JsonBuf, SimStats};
use drs_telemetry::check::{self, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::SCHEMA_VERSION;

/// Where the checkpoint lives and whether to read it back.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file path (conventionally `<out stem>_checkpoint.json`).
    pub path: PathBuf,
    /// Reuse clean cells from an existing checkpoint (`--resume`).
    pub resume: bool,
}

/// One finished cell as persisted in a checkpoint: everything needed to
/// reconstruct its [`CellResult`](crate::results::CellResult) except the
/// job itself (jobs are re-derived from the deterministic figure
/// enumeration and matched by content id).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointCell {
    /// No surviving rays at this bounce.
    pub empty: bool,
    /// Ran to full completion.
    pub completed: bool,
    /// Attempts the pool made.
    pub attempts: u32,
    /// Wall-clock of the original attempt (carried through so merged
    /// full-results files stay plausible; excluded from stats dumps).
    pub wall_ms: f64,
    /// Full counter set.
    pub stats: SimStats,
    /// Shared-memory-system summary, for full-chip cells.
    pub chip: Option<ChipSummary>,
    /// Failure record, for failed cells.
    pub failure: Option<CellFailure>,
}

impl CheckpointCell {
    /// Clean cells are safe to reuse on resume; failed ones are rerun.
    pub fn is_clean(&self) -> bool {
        self.completed && self.failure.is_none()
    }

    /// Capture the persistable part of a finished [`CellResult`](crate::results::CellResult)
    /// (everything except the job identity and telemetry reports, which
    /// are re-derived / re-collected rather than persisted).
    pub fn from_cell(cell: &crate::results::CellResult) -> CheckpointCell {
        CheckpointCell {
            empty: cell.empty,
            completed: cell.completed,
            attempts: cell.attempts,
            wall_ms: cell.wall_ms,
            stats: cell.stats.clone(),
            chip: cell.chip.clone(),
            failure: cell.failure.clone(),
        }
    }

    /// Reconstruct the [`CellResult`](crate::results::CellResult) this cell
    /// persisted, given the job
    /// it was matched to. Telemetry is `None`: persisted cells carry
    /// counters, not interval series.
    pub fn to_cell(&self, job: SimJob) -> crate::results::CellResult {
        crate::results::CellResult {
            job,
            empty: self.empty,
            completed: self.completed,
            stats: self.stats.clone(),
            telemetry: None,
            sm_telemetry: Vec::new(),
            chip_telemetry: None,
            failure: self.failure.clone(),
            chip: self.chip.clone(),
            attempts: self.attempts,
            wall_ms: self.wall_ms,
        }
    }

    /// Append this cell (with its job `id`) as a JSON object — the single
    /// on-disk cell layout shared by the checkpoint file and the result
    /// store, so both round-trip through the same parser.
    pub fn write_json(&self, j: &mut JsonBuf, id: JobId) {
        j.begin_obj();
        j.kv_str("id", &id.to_string());
        j.kv_bool("empty", self.empty);
        j.kv_bool("completed", self.completed);
        j.kv_u64("attempts", self.attempts as u64);
        j.kv_f64("wall_ms", self.wall_ms);
        if let Some(failure) = &self.failure {
            j.key("failure");
            failure.write_json(j, self.attempts);
        }
        j.key("stats");
        self.stats.write_json(j);
        if let Some(chip) = &self.chip {
            j.key("chip");
            chip.write_json(j);
        }
        j.end_obj();
    }

    /// Invert [`CheckpointCell::write_json`]: parse one cell object back
    /// into its id and contents. Any malformed or out-of-range field
    /// yields `None` — callers treat the enclosing document as stale.
    pub fn parse(cell: &Value) -> Option<(JobId, CheckpointCell)> {
        let id = JobId(u64::from_str_radix(cell.get("id")?.as_str()?, 16).ok()?);
        Some((
            id,
            CheckpointCell {
                empty: get_bool(cell, "empty")?,
                completed: get_bool(cell, "completed")?,
                attempts: get_u64(cell, "attempts")? as u32,
                wall_ms: cell.get("wall_ms")?.as_num()?,
                stats: parse_stats(cell.get("stats")?)?,
                chip: match cell.get("chip") {
                    Some(c) => Some(parse_chip(c)?),
                    None => None,
                },
                failure: match cell.get("failure") {
                    Some(f) => Some(parse_failure(f)?),
                    None => None,
                },
            },
        ))
    }
}

/// An in-memory checkpoint: the run it belongs to plus every finished
/// cell keyed by job id.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// Content hash binding the checkpoint to one (job grid, fastpath)
    /// run configuration.
    pub run_key: u64,
    /// Finished cells by job id (BTreeMap for deterministic file order).
    pub cells: BTreeMap<JobId, CheckpointCell>,
}

/// The content key binding a checkpoint to its run: ordered job ids, the
/// engine fast-path flag, and the schema version. Any difference — a
/// different grid, scale, seed, or engine mode — yields a different key.
pub fn run_key(jobs: &[SimJob], fastpath: bool) -> u64 {
    let mut canon = format!("drs-checkpoint;v={SCHEMA_VERSION};fastpath={fastpath}");
    for job in jobs {
        canon.push(';');
        canon.push_str(&job.id().to_string());
    }
    fnv1a64(canon.as_bytes())
}

impl Checkpoint {
    /// An empty checkpoint for a run.
    pub fn new(run_key: u64) -> Checkpoint {
        Checkpoint { run_key, cells: BTreeMap::new() }
    }

    /// Serialize to the on-disk JSON form.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_u64("schema_version", SCHEMA_VERSION as u64);
        j.kv_str("suite", "drs-checkpoint");
        j.kv_str("run_key", &format!("{:016x}", self.run_key));
        j.key("cells");
        j.begin_arr();
        for (id, cell) in &self.cells {
            cell.write_json(&mut j, *id);
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Atomically persist to `spec.path` (temp file + rename): a reader —
    /// including a resume after `kill -9` mid-write — sees either the old
    /// snapshot or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the pool treats them as non-fatal
    /// (the run continues, only resumability is lost).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        write_text(&tmp, &self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Load the checkpoint at `path` if it exists, parses, and was written
    /// by the run identified by `expected_key`. Any failure — missing
    /// file, corrupt JSON, schema or run-key mismatch, out-of-range
    /// counter — returns `None`: a bad checkpoint means "start fresh",
    /// never "merge garbage".
    pub fn load(path: &Path, expected_key: u64) -> Option<Checkpoint> {
        let text = std::fs::read_to_string(path).ok()?;
        let doc = check::parse(&text).ok()?;
        if get_u64(&doc, "schema_version")? != SCHEMA_VERSION as u64 {
            return None;
        }
        let key = u64::from_str_radix(doc.get("run_key")?.as_str()?, 16).ok()?;
        if key != expected_key {
            return None;
        }
        let mut cp = Checkpoint::new(key);
        for cell in doc.get("cells")?.as_arr()? {
            let (id, parsed) = CheckpointCell::parse(cell)?;
            cp.cells.insert(id, parsed);
        }
        Some(cp)
    }
}

/// A u64 read back through JSON's number type. Counters are exact while
/// `< 2^53`; anything larger means the file is not one of ours — reject
/// it so a resume never merges a silently-rounded counter.
fn num_to_u64(n: f64) -> Option<u64> {
    if n.fract() == 0.0 && (0.0..9007199254740992.0).contains(&n) {
        Some(n as u64)
    } else {
        None
    }
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    num_to_u64(v.get(key)?.as_num()?)
}

fn get_bool(v: &Value, key: &str) -> Option<bool> {
    match v.get(key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn parse_histogram(v: &Value) -> Option<ActiveHistogram> {
    let raw = v.get("buckets")?.as_arr()?;
    if raw.len() != 4 {
        return None;
    }
    let mut buckets = [0u64; 4];
    for (slot, item) in buckets.iter_mut().zip(raw) {
        *slot = num_to_u64(item.as_num()?)?;
    }
    Some(ActiveHistogram {
        buckets,
        total: get_u64(v, "total")?,
        active_sum: get_u64(v, "active_sum")?,
    })
}

fn parse_cache(v: &Value) -> Option<drs_sim::CacheStats> {
    Some(drs_sim::CacheStats { hits: get_u64(v, "hits")?, misses: get_u64(v, "misses")? })
}

/// Invert [`SimStats::write_json`]: field for field, so a checkpointed
/// cell round-trips bit-identically (all counters are integers `< 2^53`).
fn parse_stats(v: &Value) -> Option<SimStats> {
    let mut block_profile = Vec::new();
    for entry in v.get("block_profile")?.as_arr()? {
        block_profile.push((
            entry.get("block")?.as_str()?.to_string(),
            get_u64(entry, "issues")?,
            get_u64(entry, "active_sum")?,
        ));
    }
    Some(SimStats {
        cycles: get_u64(v, "cycles")?,
        rays_completed: get_u64(v, "rays_completed")?,
        issued: parse_histogram(v.get("issued")?)?,
        issued_si: parse_histogram(v.get("issued_si")?)?,
        loads: get_u64(v, "loads")?,
        stores: get_u64(v, "stores")?,
        mem_transactions: get_u64(v, "mem_transactions")?,
        rdctrl_stalls: get_u64(v, "rdctrl_stalls")?,
        rdctrl_issued: get_u64(v, "rdctrl_issued")?,
        regfile_reads: get_u64(v, "regfile_reads")?,
        regfile_writes: get_u64(v, "regfile_writes")?,
        bank_conflicts: get_u64(v, "bank_conflicts")?,
        swap_accesses: get_u64(v, "swap_accesses")?,
        swaps_completed: get_u64(v, "swaps_completed")?,
        swap_cycle_sum: get_u64(v, "swap_cycle_sum")?,
        spawn_bank_conflict_cycles: get_u64(v, "spawn_bank_conflict_cycles")?,
        sync_wait_cycles: get_u64(v, "sync_wait_cycles")?,
        l1t: parse_cache(v.get("l1t")?)?,
        l1d: parse_cache(v.get("l1d")?)?,
        l2: parse_cache(v.get("l2")?)?,
        block_profile,
    })
}

fn parse_u64_arr(v: &Value) -> Option<Vec<u64>> {
    v.as_arr()?.iter().map(|item| num_to_u64(item.as_num()?)).collect()
}

/// Invert [`ChipSummary::write_json`], field for field.
fn parse_chip(v: &Value) -> Option<ChipSummary> {
    Some(ChipSummary {
        sms: get_u64(v, "sms")? as usize,
        l2_hits: get_u64(v, "l2_hits")?,
        l2_misses: get_u64(v, "l2_misses")?,
        l2_evictions: get_u64(v, "l2_evictions")?,
        requests: get_u64(v, "requests")?,
        dram_lines: get_u64(v, "dram_lines")?,
        dram_busy_q: get_u64(v, "dram_busy_q")?,
        dram_queue_cycles: get_u64(v, "dram_queue_cycles")?,
        bank_conflict_cycles: get_u64(v, "bank_conflict_cycles")?,
        mshr_merges: get_u64(v, "mshr_merges")?,
        mshr_waits: get_u64(v, "mshr_waits")?,
        per_sm_cycles: parse_u64_arr(v.get("per_sm_cycles")?)?,
        per_sm_rays: parse_u64_arr(v.get("per_sm_rays")?)?,
    })
}

fn parse_failure(v: &Value) -> Option<CellFailure> {
    Some(CellFailure {
        kind: v.get("kind")?.as_str()?.to_string(),
        message: v.get("message")?.as_str()?.to_string(),
        cycle: match v.get("cycle") {
            Some(c) => Some(num_to_u64(c.as_num()?)?),
            None => None,
        },
        injected: get_bool(v, "injected")?,
        warp_dump: v.get("warp_dump").and_then(|d| d.as_str()).map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Method, Scale, WorkloadSpec};
    use drs_scene::SceneKind;

    fn sample_stats() -> SimStats {
        SimStats {
            cycles: 12345,
            rays_completed: 678,
            issued: ActiveHistogram { buckets: [1, 2, 3, 4], total: 10, active_sum: 200 },
            issued_si: ActiveHistogram { buckets: [0, 0, 1, 0], total: 1, active_sum: 20 },
            loads: 9,
            stores: 8,
            mem_transactions: 7,
            rdctrl_stalls: 6,
            rdctrl_issued: 5,
            regfile_reads: 4,
            regfile_writes: 3,
            bank_conflicts: 2,
            swap_accesses: 1,
            swaps_completed: 11,
            swap_cycle_sum: 22,
            spawn_bank_conflict_cycles: 33,
            sync_wait_cycles: 44,
            l1t: drs_sim::CacheStats { hits: 100, misses: 10 },
            l1d: drs_sim::CacheStats { hits: 200, misses: 20 },
            l2: drs_sim::CacheStats { hits: 300, misses: 30 },
            block_profile: vec![("outer".into(), 5, 80), ("inner".into(), 7, 160)],
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        let mut cp = Checkpoint::new(0xdead_beef);
        cp.cells.insert(
            JobId(0x1234),
            CheckpointCell {
                empty: false,
                completed: true,
                attempts: 1,
                wall_ms: 4.5,
                stats: sample_stats(),
                chip: Some(ChipSummary {
                    sms: 3,
                    l2_hits: 510,
                    l2_misses: 170,
                    l2_evictions: 25,
                    requests: 700,
                    dram_lines: 160,
                    dram_busy_q: 160 * 2048,
                    dram_queue_cycles: 42,
                    bank_conflict_cycles: 13,
                    mshr_merges: 20,
                    mshr_waits: 4,
                    per_sm_cycles: vec![4000, 4100, 3990],
                    per_sm_rays: vec![226, 226, 226],
                }),
                failure: None,
            },
        );
        cp.cells.insert(
            JobId(0x5678),
            CheckpointCell {
                empty: false,
                completed: false,
                attempts: 2,
                wall_ms: 1.0,
                stats: SimStats { cycles: 99, ..Default::default() },
                chip: None,
                failure: Some(CellFailure {
                    kind: "watchdog".into(),
                    message: "no instruction issued for 11 cycles".into(),
                    cycle: Some(99),
                    injected: true,
                    warp_dump: Some("warp 0: exited=false blocked_until=7\n".into()),
                }),
            },
        );
        cp
    }

    #[test]
    fn json_round_trip_is_exact() {
        let cp = sample_checkpoint();
        let dir = std::env::temp_dir()
            .join(format!("drs-checkpoint-test-{}", std::process::id()))
            .join("cp.json");
        cp.write_to(&dir).unwrap();
        let back = Checkpoint::load(&dir, cp.run_key).expect("round trip");
        assert_eq!(back.run_key, cp.run_key);
        assert_eq!(back.cells, cp.cells);
        assert!(back.cells[&JobId(0x1234)].is_clean());
        assert!(!back.cells[&JobId(0x5678)].is_clean());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn stale_corrupt_and_missing_checkpoints_are_ignored() {
        let dir = std::env::temp_dir().join(format!("drs-checkpoint-tol-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("cp.json");
        assert!(Checkpoint::load(&path, 1).is_none(), "missing file");

        let cp = sample_checkpoint();
        cp.write_to(&path).unwrap();
        assert!(Checkpoint::load(&path, cp.run_key ^ 1).is_none(), "run-key mismatch");

        write_text(&path, "{\"schema_version\":1,\"truncated").unwrap();
        assert!(Checkpoint::load(&path, cp.run_key).is_none(), "corrupt JSON");

        write_text(&path, "not json at all").unwrap();
        assert!(Checkpoint::load(&path, cp.run_key).is_none(), "garbage");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_key_tracks_jobs_and_fastpath() {
        let scale = Scale::default();
        let wl = WorkloadSpec::standard(SceneKind::Conference, &scale, 8);
        let jobs: Vec<SimJob> = (1..=3)
            .map(|b| SimJob { workload: wl, bounce: b, method: Method::Aila, warps: 8, chip: None })
            .collect();
        let base = run_key(&jobs, true);
        assert_eq!(base, run_key(&jobs, true), "stable");
        assert_ne!(base, run_key(&jobs, false), "fastpath is part of the key");
        assert_ne!(base, run_key(&jobs[..2], true), "grid is part of the key");
        let mut reordered = jobs.clone();
        reordered.swap(0, 2);
        assert_ne!(base, run_key(&reordered, true), "order is part of the key");
    }

    #[test]
    fn out_of_range_counters_reject_the_file() {
        // 2^53 + 1 is not exactly representable; a file claiming such a
        // counter is not one we wrote.
        assert_eq!(num_to_u64(9007199254740992.0), None);
        assert_eq!(num_to_u64(9007199254740991.0), Some(9007199254740991));
        assert_eq!(num_to_u64(1.5), None);
        assert_eq!(num_to_u64(-1.0), None);
    }
}
