//! Deterministic fault injection for the experiment pool.
//!
//! Fault tolerance that is only exercised by real hardware failures is
//! untestable. A [`FaultPlan`] makes every failure mode the pool defends
//! against — worker panics, corrupted capture-cache entries, watchdog
//! trips, cycle-budget exhaustion, corrupted full-chip configurations —
//! reproducible on demand: faults are
//! addressed either at a fixed job index (`panic@3`) or pseudo-randomly
//! from a seed and the job's content id (`watchdog~8` ≈ one job in eight),
//! so the same plan over the same grid always injects the same faults.
//!
//! A rule fires on every attempt by default (a *permanent* fault that
//! exhausts the retry budget and surfaces as a
//! [`CellFailure`](crate::results::CellFailure)), or only on the first `T`
//! attempts with an `xT` suffix (a *transient* fault the retry layer
//! recovers from): `panic@1x1` panics the first attempt of job 1 and lets
//! the retry succeed.
//!
//! Plans parse from a compact spec string (the `--inject` flag):
//!
//! ```text
//! seed=7,panic@1,cache~4x1,watchdog@2,budget@0
//! ```

use crate::job::{fnv1a64, JobId};
use std::fmt;

/// The failure modes the pool can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the worker closure (exercises `catch_unwind` isolation).
    WorkerPanic,
    /// A corrupted capture-cache read for this job's attempt.
    CacheCorrupt,
    /// Trip the simulator's no-progress watchdog early.
    WatchdogTrip,
    /// Exhaust a tiny per-job cycle budget.
    BudgetExhaust,
    /// Corrupt the full-chip configuration (zero SMs) so the attempt
    /// fails the simulator's typed `chip_config` validation.
    ChipConfigCorrupt,
    /// Flip a bit of this job's result-store entry before the pool's
    /// store lookup, exercising the footer-checksum detection and the
    /// quarantine-and-recompute path end-to-end. Absorbed silently when
    /// the run has no store (or the entry does not exist yet).
    StoreCorrupt,
    /// Server-side: force-close the submitting client's connection while
    /// streaming this job's progress event. The pool ignores it; only
    /// `experiments serve` acts on it (work continues, results still
    /// land in the store).
    ClientDisconnect,
}

impl FaultKind {
    /// Spec keyword and failure-record label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "panic",
            FaultKind::CacheCorrupt => "cache",
            FaultKind::WatchdogTrip => "watchdog",
            FaultKind::BudgetExhaust => "budget",
            FaultKind::ChipConfigCorrupt => "chipcfg",
            FaultKind::StoreCorrupt => "store",
            FaultKind::ClientDisconnect => "disconnect",
        }
    }

    fn from_keyword(word: &str) -> Option<FaultKind> {
        match word {
            "panic" => Some(FaultKind::WorkerPanic),
            "cache" => Some(FaultKind::CacheCorrupt),
            "watchdog" => Some(FaultKind::WatchdogTrip),
            "budget" => Some(FaultKind::BudgetExhaust),
            "chipcfg" => Some(FaultKind::ChipConfigCorrupt),
            "store" => Some(FaultKind::StoreCorrupt),
            "disconnect" => Some(FaultKind::ClientDisconnect),
            _ => None,
        }
    }
}

/// Which jobs a rule targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// The job at this index in the (deterministic) job order.
    Index(usize),
    /// Seed-addressed: jobs whose `fnv1a64(seed ‖ id ‖ kind) % n == 0`.
    OneIn(u64),
}

/// One injection rule: a fault kind, the jobs it hits, and how many
/// attempts it fires on (`None` = every attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    kind: FaultKind,
    target: Target,
    times: Option<u32>,
}

/// A deterministic set of injection rules. Equal plans over equal job
/// grids inject identical faults on every run and machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into the pseudo-random (`~n`) addressing.
    pub seed: u64,
    rules: Vec<FaultRule>,
}

/// A malformed `--inject` spec, with the offending clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault spec '{}': expected clauses like 'seed=N', 'panic@IDX[xT]' or \
             'watchdog~N[xT]' with kinds \
             panic|cache|watchdog|budget|chipcfg|store|disconnect",
            self.0
        )
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// Parse a comma-separated spec: `seed=N` sets the addressing seed;
    /// every other clause is `KIND@INDEX` or `KIND~ONE_IN`, optionally
    /// suffixed `xTIMES` to fire only on the first `TIMES` attempts.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] naming the first malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed.parse().map_err(|_| FaultSpecError(clause.to_string()))?;
                continue;
            }
            let err = || FaultSpecError(clause.to_string());
            let (head, times) = match clause.rsplit_once('x') {
                Some((head, t)) if !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit()) => {
                    (head, Some(t.parse().map_err(|_| err())?))
                }
                _ => (clause, None),
            };
            if let Some(t) = times {
                if t == 0 {
                    return Err(err());
                }
            }
            let (kind, target) = if let Some((k, idx)) = head.split_once('@') {
                (k, Target::Index(idx.parse().map_err(|_| err())?))
            } else if let Some((k, n)) = head.split_once('~') {
                let n: u64 = n.parse().map_err(|_| err())?;
                if n == 0 {
                    return Err(err());
                }
                (k, Target::OneIn(n))
            } else {
                return Err(err());
            };
            let kind = FaultKind::from_keyword(kind).ok_or_else(err)?;
            plan.rules.push(FaultRule { kind, target, times });
        }
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The fault (if any) to inject for attempt `attempt` (1-based) of the
    /// job at `index` with content id `id`. Pure: depends only on the
    /// arguments and the plan, never on timing or scheduling. The first
    /// matching rule wins.
    pub fn fault_for(&self, index: usize, id: JobId, attempt: u32) -> Option<FaultKind> {
        self.rules
            .iter()
            .find(|r| {
                let hits_job = match r.target {
                    Target::Index(i) => i == index,
                    Target::OneIn(n) => {
                        let key = format!("{};{};{}", self.seed, id, r.kind.label());
                        fnv1a64(key.as_bytes()).is_multiple_of(n)
                    }
                };
                hits_job && r.times.is_none_or(|t| attempt <= t)
            })
            .map(|r| r.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_clause_form() {
        let plan = FaultPlan::parse(
            "seed=7,panic@1,cache~4x1,watchdog@2x3,budget@0,chipcfg@4,store@5,disconnect~3",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 7);
        assert_eq!(
            plan.rules[0],
            FaultRule { kind: FaultKind::WorkerPanic, target: Target::Index(1), times: None }
        );
        assert_eq!(
            plan.rules[1],
            FaultRule { kind: FaultKind::CacheCorrupt, target: Target::OneIn(4), times: Some(1) }
        );
        assert_eq!(
            plan.rules[2],
            FaultRule { kind: FaultKind::WatchdogTrip, target: Target::Index(2), times: Some(3) }
        );
        assert_eq!(
            plan.rules[4],
            FaultRule { kind: FaultKind::ChipConfigCorrupt, target: Target::Index(4), times: None }
        );
        assert_eq!(
            plan.rules[5],
            FaultRule { kind: FaultKind::StoreCorrupt, target: Target::Index(5), times: None }
        );
        assert_eq!(
            plan.rules[6],
            FaultRule { kind: FaultKind::ClientDisconnect, target: Target::OneIn(3), times: None }
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in
            ["frob@1", "panic", "panic@", "panic@x", "panic~0", "panic@1x0", "seed=x", "@3", "~2"]
        {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.to_string().contains("bad fault spec"), "{bad}: {err}");
        }
    }

    #[test]
    fn index_rules_fire_on_the_right_job_and_attempts() {
        let plan = FaultPlan::parse("panic@2x1,watchdog@3").unwrap();
        let id = JobId(0xabcd);
        assert_eq!(plan.fault_for(2, id, 1), Some(FaultKind::WorkerPanic));
        assert_eq!(plan.fault_for(2, id, 2), None, "x1 rules stop after the first attempt");
        assert_eq!(plan.fault_for(3, id, 1), Some(FaultKind::WatchdogTrip));
        assert_eq!(plan.fault_for(3, id, 99), Some(FaultKind::WatchdogTrip));
        assert_eq!(plan.fault_for(0, id, 1), None);
    }

    #[test]
    fn seeded_rules_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::parse("seed=1,cache~2").unwrap();
        let b = FaultPlan::parse("seed=2,cache~2").unwrap();
        let ids: Vec<JobId> = (0..64).map(|i| JobId(0x1000 + i * 7919)).collect();
        let hit = |plan: &FaultPlan| -> Vec<bool> {
            ids.iter().map(|&id| plan.fault_for(0, id, 1).is_some()).collect()
        };
        assert_eq!(hit(&a), hit(&a), "same plan, same faults");
        assert_ne!(hit(&a), hit(&b), "different seeds address different jobs");
        let hits = hit(&a).iter().filter(|&&h| h).count();
        assert!(hits > 8 && hits < 56, "~one in two of 64 jobs, got {hits}");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::parse("budget@1,panic@1").unwrap();
        assert_eq!(plan.fault_for(1, JobId(1), 1), Some(FaultKind::BudgetExhaust));
    }
}
