//! Durable, content-addressed result store: finished cells survive the
//! process.
//!
//! The checkpoint file ([`crate::checkpoint`]) makes one *run* crash-safe;
//! this store makes completed work durable *across* runs and processes.
//! Every clean finished cell is memoized on disk keyed by its [`JobId`]
//! (itself a content hash over the job definition) plus the shared
//! [`SCHEMA_VERSION`], so a warm rerun of any grid — same scale, same
//! methods, same seeds — does zero simulation work and reproduces the
//! results document byte-for-byte.
//!
//! # Entry layout
//!
//! One file per cell at `<dir>/<id>.json`, exactly two lines:
//!
//! ```text
//! {"schema_version":4,"suite":"drs-store","cell":{...}}
//! #drs-store len=<body bytes> fnv=<16-hex FNV-1a of body>
//! ```
//!
//! The footer makes truncation (length mismatch) and bit rot (checksum
//! mismatch) detectable without trusting the JSON parser to notice.
//! Entries are written through a temp file + atomic rename, so a reader
//! never observes a half-written entry; a `kill -9` mid-write leaves at
//! worst an orphaned temp file.
//!
//! # Failure policy
//!
//! Reads never panic and never silently serve bad data: a corrupt,
//! truncated, or schema-mismatched entry yields a typed [`StoreError`],
//! the file is moved into `<dir>/quarantine/` (preserving the evidence),
//! and the cell is recomputed. Writes are serialized per entry via a
//! `<id>.lock` file; locks abandoned by a crashed writer are reclaimed
//! after [`STALE_LOCK_MS`]. A store that cannot be written degrades the
//! run to "results complete in memory, durability lost" — it never fails
//! the run.

use crate::checkpoint::CheckpointCell;
use crate::job::{fnv1a64, JobId};
use crate::SCHEMA_VERSION;
use drs_sim::JsonBuf;
use drs_telemetry::check;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

/// Age (milliseconds) past which another writer's lock file is presumed
/// abandoned (crashed writer) and reclaimed. Entry writes take well under
/// a millisecond, so ten seconds is orders of magnitude past any live
/// writer.
pub const STALE_LOCK_MS: u64 = 10_000;

/// Total time a writer waits for a contended lock before giving up with
/// [`StoreError::LockTimeout`] (the run continues without durability for
/// that cell).
const LOCK_WAIT_MS: u64 = 2_000;

/// Poll interval while waiting on a contended lock.
const LOCK_POLL_MS: u64 = 10;

/// Why a store read or write failed. Every variant is survivable: the
/// pool recomputes on read errors and warns on write errors.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error reading or writing an entry.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// Entry bytes fail validation: truncated, checksum mismatch, not
    /// UTF-8, unparseable JSON, or an id that does not match the file.
    Corrupt {
        /// Entry path.
        path: PathBuf,
        /// What failed, for the quarantine log line.
        why: String,
    },
    /// Entry was written by a different schema generation.
    SchemaMismatch {
        /// Entry path.
        path: PathBuf,
        /// The version the entry claims.
        found: u64,
    },
    /// A concurrent writer held the entry lock past the patience window.
    LockTimeout {
        /// Lock path.
        path: PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O error at {}: {source}", path.display())
            }
            StoreError::Corrupt { path, why } => {
                write!(f, "corrupt store entry {}: {why}", path.display())
            }
            StoreError::SchemaMismatch { path, found } => write!(
                f,
                "store entry {} has schema v{found}, expected v{SCHEMA_VERSION}",
                path.display()
            ),
            StoreError::LockTimeout { path } => {
                write!(f, "timed out waiting for store lock {}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Store traffic counters, snapshotted into the run document.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreCounters {
    /// Lookups served from disk (cells that skipped simulation).
    pub hits: u64,
    /// Lookups with no usable entry (includes quarantined entries).
    pub misses: u64,
    /// Entries successfully persisted.
    pub writes: u64,
    /// Corrupt / truncated / version-mismatched entries moved aside.
    pub quarantined: u64,
    /// Entry writes that failed (I/O error or lock timeout); the cell's
    /// result stayed in memory, only durability was lost.
    pub write_failures: u64,
    /// Abandoned writer locks reclaimed.
    pub lock_reclaims: u64,
}

/// A content-addressed on-disk store of finished cells. Cheap to create;
/// all state lives on disk plus a few counters. Safe to share across
/// threads and processes (writers serialize via lock files, readers rely
/// on atomic renames).
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    quarantined: AtomicU64,
    write_failures: AtomicU64,
    lock_reclaims: AtomicU64,
}

/// Removes the lock file when the writer is done, on success and error
/// paths alike.
struct LockGuard(PathBuf);

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

impl ResultStore {
    /// A store rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> ResultStore {
        ResultStore {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            lock_reclaims: AtomicU64::new(0),
        }
    }

    /// The conventional store location: `$DRS_STORE_DIR` if set, else
    /// `target/drs-store` (beside the capture cache).
    pub fn default_dir() -> PathBuf {
        match std::env::var_os("DRS_STORE_DIR") {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from("target/drs-store"),
        }
    }

    /// Store root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where the entry for `id` lives.
    pub fn entry_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    fn lock_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.lock"))
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Counter snapshot for the run document.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            lock_reclaims: self.lock_reclaims.load(Ordering::Relaxed),
        }
    }

    /// Serialize an entry: single-line JSON body + checksum footer.
    fn encode(id: JobId, cell: &CheckpointCell) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_u64("schema_version", SCHEMA_VERSION as u64);
        j.kv_str("suite", "drs-store");
        j.key("cell");
        cell.write_json(&mut j, id);
        j.end_obj();
        let body = j.finish();
        let sum = fnv1a64(body.as_bytes());
        format!("{body}\n#drs-store len={} fnv={sum:016x}\n", body.len())
    }

    /// Validate and parse raw entry bytes back into the cell.
    fn decode(path: &Path, bytes: &[u8], id: JobId) -> Result<CheckpointCell, StoreError> {
        let corrupt = |why: String| StoreError::Corrupt { path: path.to_path_buf(), why };
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt("not UTF-8".into()))?;
        let (body, footer) = text
            .split_once('\n')
            .ok_or_else(|| corrupt("missing checksum footer (truncated?)".into()))?;
        let footer = footer.trim_end_matches('\n');
        let rest = footer
            .strip_prefix("#drs-store len=")
            .ok_or_else(|| corrupt("malformed footer".into()))?;
        let (len_s, fnv_s) =
            rest.split_once(" fnv=").ok_or_else(|| corrupt("malformed footer".into()))?;
        let len: usize = len_s.parse().map_err(|_| corrupt("malformed footer length".into()))?;
        let sum = u64::from_str_radix(fnv_s, 16)
            .map_err(|_| corrupt("malformed footer checksum".into()))?;
        if body.len() != len {
            return Err(corrupt(format!("length {} != footer {len} (truncated?)", body.len())));
        }
        if fnv1a64(body.as_bytes()) != sum {
            return Err(corrupt("checksum mismatch".into()));
        }
        let doc = check::parse(body).map_err(|e| corrupt(format!("unparseable JSON: {e}")))?;
        let version = doc
            .get("schema_version")
            .and_then(check::Value::as_num)
            .ok_or_else(|| corrupt("missing schema_version".into()))?;
        if version != f64::from(SCHEMA_VERSION) {
            return Err(StoreError::SchemaMismatch {
                path: path.to_path_buf(),
                found: version as u64,
            });
        }
        if doc.get("suite").and_then(check::Value::as_str) != Some("drs-store") {
            return Err(corrupt("wrong suite".into()));
        }
        let cell_v = doc.get("cell").ok_or_else(|| corrupt("missing cell".into()))?;
        let (entry_id, cell) =
            CheckpointCell::parse(cell_v).ok_or_else(|| corrupt("unparseable cell".into()))?;
        if entry_id != id {
            return Err(corrupt(format!("id {entry_id} does not match requested {id}")));
        }
        Ok(cell)
    }

    /// Typed read of the entry for `id`. `Ok(None)` means "no entry";
    /// every error is survivable (the caller recomputes). No side
    /// effects beyond the filesystem read — quarantining is the caller's
    /// (or [`ResultStore::lookup`]'s) decision.
    pub fn read_entry(&self, id: JobId) -> Result<Option<CheckpointCell>, StoreError> {
        let path = self.entry_path(id);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io { path, source: e }),
        };
        Self::decode(&path, &bytes, id).map(Some)
    }

    /// Move a bad entry into the quarantine directory (best effort —
    /// falls back to deletion so a corrupt entry can never be served
    /// twice) and count it.
    fn quarantine(&self, id: JobId, err: &StoreError) {
        let from = self.entry_path(id);
        let qdir = self.quarantine_dir();
        let to = qdir.join(format!("{id}.{}.json", std::process::id()));
        let moved = std::fs::create_dir_all(&qdir).is_ok() && std::fs::rename(&from, &to).is_ok();
        if !moved {
            let _ = std::fs::remove_file(&from);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        eprintln!("warning: quarantined store entry for {id} ({err}); the cell will be recomputed");
    }

    /// The pool-facing read: a clean cell if the store has one, `None`
    /// otherwise. Never fails and never panics — corrupt, truncated, or
    /// version-mismatched entries are quarantined (moved to
    /// `quarantine/`, counted, warned) and reported as a miss so the
    /// cell is recomputed.
    pub fn lookup(&self, id: JobId) -> Option<CheckpointCell> {
        match self.read_entry(id) {
            Ok(Some(cell)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(err) => {
                self.quarantine(id, &err);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Acquire the per-entry writer lock, reclaiming stale ones.
    fn acquire_lock(&self, id: JobId) -> Result<LockGuard, StoreError> {
        let path = self.lock_path(id);
        let deadline = Instant::now() + Duration::from_millis(LOCK_WAIT_MS);
        loop {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    use std::io::Write;
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(LockGuard(path));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| SystemTime::now().duration_since(t).ok())
                        .is_some_and(|age| age >= Duration::from_millis(STALE_LOCK_MS));
                    if stale {
                        // Another reclaimer may race us to the unlink;
                        // both outcomes leave the lock free.
                        if std::fs::remove_file(&path).is_ok() {
                            self.lock_reclaims.fetch_add(1, Ordering::Relaxed);
                        }
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return Err(StoreError::LockTimeout { path });
                    }
                    std::thread::sleep(Duration::from_millis(LOCK_POLL_MS));
                }
                Err(e) => return Err(StoreError::Io { path, source: e }),
            }
        }
    }

    /// Persist a finished cell. Only clean cells belong in the store
    /// (failed ones must be re-attempted next run); non-clean cells are
    /// rejected as a programming error in debug builds and skipped in
    /// release builds.
    ///
    /// # Errors
    ///
    /// I/O failures and lock timeouts are returned (and counted as
    /// `write_failures`); callers treat them as "durability lost", never
    /// as a failed cell.
    pub fn store(&self, id: JobId, cell: &CheckpointCell) -> Result<(), StoreError> {
        debug_assert!(cell.is_clean(), "only clean cells are stored");
        if !cell.is_clean() {
            return Ok(());
        }
        let result = (|| {
            std::fs::create_dir_all(&self.dir)
                .map_err(|e| StoreError::Io { path: self.dir.clone(), source: e })?;
            let _lock = self.acquire_lock(id)?;
            let path = self.entry_path(id);
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, Self::encode(id, cell))
                .map_err(|e| StoreError::Io { path: tmp.clone(), source: e })?;
            std::fs::rename(&tmp, &path).map_err(|e| StoreError::Io { path, source: e })
        })();
        match &result {
            Ok(()) => self.writes.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.write_failures.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Chaos hook: flip one bit of the on-disk entry for `id`, if it
    /// exists. Used by the [`FaultKind::StoreCorrupt`](crate::FaultKind)
    /// injection and the golden tests to prove the quarantine path
    /// end-to-end; returns whether an entry was actually damaged.
    pub fn scramble(&self, id: JobId) -> bool {
        let path = self.entry_path(id);
        let Ok(mut bytes) = std::fs::read(&path) else { return false };
        if bytes.is_empty() {
            return false;
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, bytes).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::SimStats;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("drs-store-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn cell(cycles: u64) -> CheckpointCell {
        CheckpointCell {
            empty: false,
            completed: true,
            attempts: 1,
            wall_ms: 2.5,
            stats: SimStats { cycles, rays_completed: cycles / 2, ..Default::default() },
            chip: None,
            failure: None,
        }
    }

    #[test]
    fn round_trip_is_exact_and_counted() {
        let store = ResultStore::new(dir("roundtrip"));
        let id = JobId(0xabcd);
        assert!(store.lookup(id).is_none(), "cold store misses");
        store.store(id, &cell(100)).unwrap();
        assert_eq!(store.lookup(id), Some(cell(100)));
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.writes, c.quarantined), (1, 1, 1, 0));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_recomputable() {
        let store = ResultStore::new(dir("corrupt"));
        let id = JobId(1);
        store.store(id, &cell(7)).unwrap();
        assert!(store.scramble(id), "entry exists to damage");
        assert!(store.lookup(id).is_none(), "damaged entry must not be served");
        assert_eq!(store.counters().quarantined, 1);
        assert!(!store.entry_path(id).exists(), "entry moved aside");
        let quarantined: Vec<_> =
            std::fs::read_dir(store.dir().join("quarantine")).unwrap().collect();
        assert_eq!(quarantined.len(), 1, "evidence preserved");
        // The slot is reusable: store + read back works again.
        store.store(id, &cell(7)).unwrap();
        assert_eq!(store.lookup(id), Some(cell(7)));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_entries_are_detected_by_the_footer() {
        let store = ResultStore::new(dir("truncated"));
        let id = JobId(2);
        store.store(id, &cell(9)).unwrap();
        let path = store.entry_path(id);
        let text = std::fs::read_to_string(&path).unwrap();
        // Drop bytes from the middle of the body, keeping the footer: the
        // length check fires even when the JSON stays parseable-ish.
        let cut = text.replace("\"empty\":false,", "");
        std::fs::write(&path, cut).unwrap();
        let err = store.read_entry(id).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "got {err}");
        assert!(store.lookup(id).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn schema_mismatch_is_typed_and_quarantined() {
        let store = ResultStore::new(dir("schema"));
        let id = JobId(3);
        store.store(id, &cell(11)).unwrap();
        let path = store.entry_path(id);
        let text = std::fs::read_to_string(&path).unwrap();
        let (body, _) = text.split_once('\n').unwrap();
        let old =
            body.replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":1");
        // Re-checksum so only the version differs — a valid v1 entry.
        let sum = fnv1a64(old.as_bytes());
        std::fs::write(&path, format!("{old}\n#drs-store len={} fnv={sum:016x}\n", old.len()))
            .unwrap();
        match store.read_entry(id) {
            Err(StoreError::SchemaMismatch { found, .. }) => assert_eq!(found, 1),
            other => panic!("expected schema mismatch, got {other:?}"),
        }
        assert!(store.lookup(id).is_none(), "old-schema entries are never served");
        assert_eq!(store.counters().quarantined, 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stale_locks_are_reclaimed() {
        let store = ResultStore::new(dir("stale-lock"));
        let id = JobId(4);
        std::fs::create_dir_all(store.dir()).unwrap();
        let lock = store.dir().join(format!("{id}.lock"));
        std::fs::write(&lock, "dead-writer").unwrap();
        let past = SystemTime::now() - Duration::from_millis(STALE_LOCK_MS * 2);
        let f = std::fs::OpenOptions::new().write(true).open(&lock).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(past)).unwrap();
        drop(f);
        store.store(id, &cell(13)).unwrap();
        assert_eq!(store.counters().lock_reclaims, 1);
        assert_eq!(store.lookup(id), Some(cell(13)));
        assert!(!lock.exists(), "lock released after write");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn concurrent_writers_serialize_without_damage() {
        let store = std::sync::Arc::new(ResultStore::new(dir("concurrent")));
        let id = JobId(5);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || store.store(id, &cell(21)).is_ok())
            })
            .collect();
        let ok = threads.into_iter().filter_map(|t| t.join().unwrap().then_some(())).count();
        assert_eq!(ok, 8, "every writer should succeed within the lock window");
        assert_eq!(store.lookup(id), Some(cell(21)), "final entry is valid");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
