//! On-disk ray-stream capture cache.
//!
//! Capturing a workload (build scene, build BVH, path-trace thousands of
//! rays with instrumented traversal) dominates experiment start-up and is
//! identical across every figure that uses the same scene. The cache
//! persists each captured [`BounceStreams`] once, keyed by the workload's
//! content hash — (scene kind, triangle budget, ray budget, capture
//! depth, seed, trace format version) — so a full `experiments all` run
//! captures each scene exactly once *ever*, not once per figure per run.
//!
//! Corrupt, truncated, or stale files are detected by the typed
//! [`TraceIoError`] decoder, evicted, and transparently recaptured; a
//! cache can never make a run fail, only make it faster.
//!
//! Growth is bounded on request (`--cache-limit`): the cache becomes a
//! size-bounded LRU, with hits refreshing a file's mtime and stores
//! evicting least-recently-used entries until the directory fits the
//! byte budget again. Size evictions ride the same eviction path as
//! corruption evictions but are counted separately.

use crate::job::WorkloadSpec;
use drs_trace::{BounceStreams, TraceIoError};
use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Snapshot of cache activity for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Workloads served from disk.
    pub hits: u64,
    /// Workloads captured because no cache entry existed.
    pub misses: u64,
    /// Unreadable entries that were deleted and recaptured.
    pub evictions: u64,
    /// Readable entries evicted to keep the cache under its byte limit.
    pub size_evictions: u64,
    /// Captured workloads that could not be persisted (the run continues
    /// with the in-memory copy; the failure is recorded, not fatal).
    pub store_failures: u64,
}

/// A cache entry that could not be written: the destination path and the
/// underlying I/O error. Never fatal — the captured streams stay usable in
/// memory — but typed so callers can count and report it instead of the
/// failure vanishing into stderr.
#[derive(Debug)]
pub struct CacheStoreError {
    /// The entry path the write was aimed at.
    pub path: PathBuf,
    /// The I/O failure.
    pub source: std::io::Error,
}

impl std::fmt::Display for CacheStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to write cache entry {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for CacheStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A directory of serialized bounce streams, safe for concurrent use from
/// the worker pool (counters are atomic; writes go through a temp file +
/// rename so parallel processes never observe torn entries).
#[derive(Debug)]
pub struct StreamCache {
    dir: PathBuf,
    limit_bytes: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    size_evictions: AtomicU64,
    store_failures: AtomicU64,
}

impl StreamCache {
    /// A cache rooted at `dir` (created lazily on first store), with no
    /// size bound.
    pub fn new(dir: impl Into<PathBuf>) -> StreamCache {
        StreamCache::with_limit(dir, None)
    }

    /// A cache rooted at `dir`, LRU-bounded to `limit_bytes` total entry
    /// bytes when `Some` (`--cache-limit`). Hits refresh an entry's
    /// mtime; a store that pushes the directory over the budget evicts
    /// least-recently-used entries (never the one just written) until it
    /// fits.
    pub fn with_limit(dir: impl Into<PathBuf>, limit_bytes: Option<u64>) -> StreamCache {
        StreamCache {
            dir: dir.into(),
            limit_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            size_evictions: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
        }
    }

    /// The default cache location: `$DRS_CACHE_DIR` or `target/drs-cache`
    /// relative to the working directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("DRS_CACHE_DIR")
            .map_or_else(|| PathBuf::from("target").join("drs-cache"), PathBuf::from)
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cache file for a workload.
    pub fn path_for(&self, spec: &WorkloadSpec) -> PathBuf {
        self.dir.join(format!("{:016x}.bin", spec.content_key()))
    }

    /// Counters accumulated since construction.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            size_evictions: self.size_evictions.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
        }
    }

    /// Load `spec` from the cache, or capture it and populate the cache.
    ///
    /// Decode failures evict the entry (it is stale or corrupt — the key
    /// covers the format version, so this mostly means bit rot or a
    /// torn write from a crashed run) and fall through to recapture.
    /// Store failures are reported to stderr but never fail the run.
    pub fn get_or_capture(&self, spec: &WorkloadSpec) -> BounceStreams {
        let path = self.path_for(spec);
        if let Ok(file) = fs::File::open(&path) {
            match BounceStreams::load(BufReader::new(file)) {
                Ok(streams) if streams.depth() == spec.bounces => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if self.limit_bytes.is_some() {
                        Self::touch(&path);
                    }
                    return streams;
                }
                Ok(_) => {
                    // Key collision or hand-edited file: depth disagrees
                    // with the spec. Treat exactly like corruption.
                    self.evict(
                        &path,
                        &TraceIoError::Corrupt("cached depth mismatch"),
                        &self.evictions,
                    );
                }
                Err(e) => self.evict(&path, &e, &self.evictions),
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let streams = spec.capture();
        if let Err(e) = self.store(spec, &streams) {
            self.store_failures.fetch_add(1, Ordering::Relaxed);
            eprintln!("drs-harness: {e}");
        }
        streams
    }

    /// The single eviction path: corruption evictions and size evictions
    /// both delete through here, differing only in the counter charged.
    fn evict(&self, path: &Path, why: &dyn std::fmt::Display, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
        eprintln!("drs-harness: evicting cache entry {} ({why})", path.display());
        let _ = fs::remove_file(path);
    }

    /// Refresh an entry's mtime so LRU ordering tracks use, not just
    /// creation. Best effort: a failed touch only ages the entry.
    fn touch(path: &Path) {
        if let Ok(f) = fs::OpenOptions::new().append(true).open(path) {
            let _ = f.set_times(fs::FileTimes::new().set_modified(SystemTime::now()));
        }
    }

    /// Evict least-recently-used entries until the directory fits the
    /// byte budget again. `keep` (the entry just written) is never
    /// evicted, even if it alone exceeds the limit — evicting it would
    /// turn every oversized workload into a capture-per-use.
    fn enforce_limit(&self, keep: &Path) {
        let Some(limit) = self.limit_bytes else { return };
        let Ok(dir) = fs::read_dir(&self.dir) else { return };
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = dir
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "bin"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                Some((e.path(), meta.len(), meta.modified().ok()?))
            })
            .collect();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= limit {
            return;
        }
        // Oldest first; path as tie-break so same-mtime entries evict in
        // a deterministic order.
        entries.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        for (path, len, _) in entries {
            if total <= limit {
                break;
            }
            if path == keep {
                continue;
            }
            self.evict(&path, &format!("LRU: cache over {limit}-byte limit"), &self.size_evictions);
            total -= len;
        }
    }

    /// Persist a captured workload (temp file + rename for atomicity).
    ///
    /// # Errors
    ///
    /// Returns the typed [`CacheStoreError`] on any filesystem failure;
    /// the captured streams remain usable and the run continues.
    pub fn store(
        &self,
        spec: &WorkloadSpec,
        streams: &BounceStreams,
    ) -> Result<(), CacheStoreError> {
        let path = self.path_for(spec);
        let write = || -> std::io::Result<()> {
            fs::create_dir_all(&self.dir)?;
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            {
                let mut w = BufWriter::new(fs::File::create(&tmp)?);
                streams.save(&mut w)?;
            }
            fs::rename(&tmp, &path)?;
            Ok(())
        };
        let result = write().map_err(|source| CacheStoreError { path: path.clone(), source });
        if result.is_ok() {
            self.enforce_limit(&path);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Scale;
    use drs_scene::SceneKind;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_cache() -> StreamCache {
        let dir = std::env::temp_dir().join(format!(
            "drs-cache-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        StreamCache::new(dir)
    }

    fn tiny_spec() -> WorkloadSpec {
        let scale = Scale { rays: 120, tris_scale: 0.005, warps_scale: 1.0 };
        WorkloadSpec::standard(SceneKind::Conference, &scale, 2)
    }

    #[test]
    fn miss_then_hit_with_identical_content() {
        let cache = temp_cache();
        let spec = tiny_spec();
        let first = cache.get_or_capture(&spec);
        assert_eq!(cache.counters(), CacheCounters { hits: 0, misses: 1, ..Default::default() });
        let second = cache.get_or_capture(&spec);
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1, ..Default::default() });
        for b in 1..=spec.bounces {
            assert_eq!(first.bounce(b).scripts, second.bounce(b).scripts);
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_is_evicted_and_recaptured() {
        let cache = temp_cache();
        let spec = tiny_spec();
        let clean = cache.get_or_capture(&spec);
        // Truncate the cached file to garbage.
        let path = cache.path_for(&spec);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let recaptured = cache.get_or_capture(&spec);
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.misses, 2);
        assert_eq!(clean.bounce(1).scripts, recaptured.bounce(1).scripts);
        // The bad entry was replaced by a good one.
        let third = cache.get_or_capture(&spec);
        assert_eq!(cache.counters().hits, 1);
        assert_eq!(third.bounce(1).scripts, clean.bounce(1).scripts);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn store_failure_is_typed_counted_and_nonfatal() {
        // Root the cache under a path whose parent is a regular file:
        // create_dir_all must fail, so every store fails.
        let blocker = std::env::temp_dir().join(format!(
            "drs-cache-blocker-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&blocker, b"not a directory").unwrap();
        let cache = StreamCache::new(blocker.join("sub"));
        let spec = tiny_spec();
        let streams = cache.get_or_capture(&spec);
        assert!(streams.depth() >= 1, "capture still succeeds in memory");
        let c = cache.counters();
        assert_eq!(c.store_failures, 1, "failed persist must be counted");
        assert_eq!(c.misses, 1);
        let err = cache.store(&spec, &streams).unwrap_err();
        assert!(err.to_string().contains("failed to write cache entry"), "{err}");
        let _ = fs::remove_file(&blocker);
    }

    #[test]
    fn size_limit_evicts_least_recently_used_first() {
        let base = temp_cache();
        let dir = base.dir().to_path_buf();
        let specs: Vec<WorkloadSpec> = [120usize, 121, 122]
            .iter()
            .map(|&rays| {
                let scale = Scale { rays, tris_scale: 0.005, warps_scale: 1.0 };
                WorkloadSpec::standard(SceneKind::Conference, &scale, 1)
            })
            .collect();
        // Populate two entries with no limit, then learn the entry size.
        base.get_or_capture(&specs[0]);
        base.get_or_capture(&specs[1]);
        let entry_len = fs::metadata(base.path_for(&specs[0])).unwrap().len();
        // Budget for two entries: storing a third must evict exactly one.
        let cache = StreamCache::with_limit(&dir, Some(2 * entry_len + entry_len / 2));
        // Make spec[0] the older entry, then refresh it with a hit: LRU
        // order must follow use, so spec[1] becomes the victim.
        let old = SystemTime::now() - std::time::Duration::from_mins(5);
        for spec in &specs[..2] {
            let f = fs::OpenOptions::new().append(true).open(cache.path_for(spec)).unwrap();
            f.set_times(fs::FileTimes::new().set_modified(old)).unwrap();
        }
        cache.get_or_capture(&specs[0]);
        assert_eq!(cache.counters().hits, 1);
        cache.get_or_capture(&specs[2]);
        let c = cache.counters();
        assert_eq!(c.size_evictions, 1, "exactly one entry over budget");
        assert_eq!(c.evictions, 0, "size evictions are counted separately");
        assert!(cache.path_for(&specs[0]).exists(), "recently-used entry survives");
        assert!(!cache.path_for(&specs[1]).exists(), "LRU entry evicted");
        assert!(cache.path_for(&specs[2]).exists(), "just-written entry never evicted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn just_written_entry_survives_even_when_alone_over_budget() {
        let base = temp_cache();
        let dir = base.dir().to_path_buf();
        let spec = tiny_spec();
        let cache = StreamCache::with_limit(&dir, Some(1));
        cache.get_or_capture(&spec);
        assert!(cache.path_for(&spec).exists(), "sole oversized entry is kept");
        assert_eq!(cache.counters().size_evictions, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn depth_mismatch_is_treated_as_corruption() {
        let cache = temp_cache();
        let spec = tiny_spec();
        let streams = cache.get_or_capture(&spec);
        // Forge an entry under the wrong key: same bytes, different depth.
        let deeper = WorkloadSpec { bounces: 3, ..spec };
        let mut buf = Vec::new();
        streams.save(&mut buf).unwrap();
        fs::create_dir_all(cache.dir()).unwrap();
        fs::write(cache.path_for(&deeper), &buf).unwrap();
        let recaptured = cache.get_or_capture(&deeper);
        assert_eq!(recaptured.depth(), 3);
        assert_eq!(cache.counters().evictions, 1);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
