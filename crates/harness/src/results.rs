//! Machine-readable experiment results: the repo's perf trajectory.
//!
//! Every run of the `experiments` binary emits one JSON document
//! (`BENCH_experiments.json` by default) containing a record per cell —
//! Mrays/s, SIMD efficiency, the full counter set of
//! [`drs_sim::SimStats`], and per-cell wall-clock. CI uploads the file
//! as an artifact on every push, so regressions show up as a diffable
//! number series instead of a human eyeballing stdout tables.
//!
//! Run-volatile telemetry — whole-run wall clock, worker count, cache
//! and store counters, the aggregated metrics object — lives in a
//! separate run document ([`ResultsFile::run_json`], written to
//! `<out stem>_run.json`). Splitting the two is what makes a warm
//! result-store rerun emit a byte-identical `BENCH_experiments.json`:
//! stored cells replay their original wall-clock, while the numbers
//! that legitimately differ between a cold and a warm run never enter
//! the results document at all.

use crate::cache::CacheCounters;
use crate::job::SimJob;
use crate::pool::RunReport;
use crate::store::StoreCounters;
use crate::SCHEMA_VERSION;
use drs_sim::{GpuConfig, JsonBuf, SimStats, CHIP_TIME_Q};
use drs_telemetry::{ChipTelemetryReport, TelemetryReport};
use std::io::Write;
use std::path::Path;

/// A structured record of why a cell failed — attached to the cell's JSON
/// instead of being printed to stderr and lost.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Machine-readable failure class: `panic`, `cache_corrupt`,
    /// `capture`, or a [`SimErrorKind`](drs_sim::SimErrorKind) label
    /// (`watchdog`, `cycle_limit`, `invariant`, `deadline`).
    pub kind: String,
    /// Human-readable description of the final failed attempt.
    pub message: String,
    /// Simulation cycle the failure fired at (absent for panics and
    /// capture/cache errors, which happen outside the simulated clock).
    pub cycle: Option<u64>,
    /// True when the failure was deterministically injected via a
    /// [`FaultPlan`](crate::fault::FaultPlan).
    pub injected: bool,
    /// Rendered per-warp SIMT state at a watchdog trip (the dump that was
    /// previously printed to stderr), captured as data.
    pub warp_dump: Option<String>,
}

impl CellFailure {
    /// Append this failure as a JSON object. `attempts` is the total
    /// number of attempts the pool made on the cell.
    pub fn write_json(&self, j: &mut JsonBuf, attempts: u32) {
        j.begin_obj();
        j.kv_str("kind", &self.kind);
        j.kv_str("message", &self.message);
        j.kv_u64("attempts", attempts as u64);
        if let Some(cycle) = self.cycle {
            j.kv_u64("cycle", cycle);
        }
        j.kv_bool("injected", self.injected);
        if let Some(dump) = &self.warp_dump {
            j.kv_str("warp_dump", dump);
        }
        j.end_obj();
    }
}

/// Shared-memory-system outcome of a full-chip cell: the contention
/// counters no single-SMX run can produce, plus the per-SM completion
/// profile. Attached to [`CellResult`] when the job ran in chip mode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChipSummary {
    /// SM engines the cell ran with.
    pub sms: usize,
    /// Shared (banked) L2 hits, chip-wide.
    pub l2_hits: u64,
    /// Shared L2 misses, chip-wide.
    pub l2_misses: u64,
    /// Lines displaced from the shared L2 to make room for a fill.
    pub l2_evictions: u64,
    /// Line requests that reached the shared system.
    pub requests: u64,
    /// Lines fetched over the DRAM channel.
    pub dram_lines: u64,
    /// Total DRAM-channel busy time in 1/1024-cycle fixed point
    /// (`dram_lines × cycles_per_line_q`); divided by the chip's cycle
    /// count it yields the channel utilization.
    pub dram_busy_q: u64,
    /// Cycles requests spent queued behind a saturated DRAM channel.
    pub dram_queue_cycles: u64,
    /// Cycles lost to same-bank serialization at the L2.
    pub bank_conflict_cycles: u64,
    /// Requests merged into an in-flight fetch of the same line
    /// (cross-SM MSHR sharing).
    pub mshr_merges: u64,
    /// Requests that waited for a free MSHR (pool exhausted).
    pub mshr_waits: u64,
    /// Per-SM cycle counts, SM order (the chip's cycles is the max).
    pub per_sm_cycles: Vec<u64>,
    /// Per-SM completed rays, SM order.
    pub per_sm_rays: Vec<u64>,
}

impl ChipSummary {
    /// Shared-L2 hit rate across all SMs.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2_hits as f64 / (self.l2_hits + self.l2_misses).max(1) as f64
    }

    /// DRAM-channel utilization over `cycles` chip cycles (0.0–1.0+; a
    /// value above 1 means the channel owed busy time past the last
    /// request's issue — the queue never drained).
    pub fn dram_utilization(&self, cycles: u64) -> f64 {
        self.dram_busy_q as f64 / (cycles.max(1) * CHIP_TIME_Q) as f64
    }

    /// Append this summary as a JSON object.
    pub fn write_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.kv_u64("sms", self.sms as u64);
        j.kv_u64("l2_hits", self.l2_hits);
        j.kv_u64("l2_misses", self.l2_misses);
        j.kv_u64("l2_evictions", self.l2_evictions);
        j.kv_u64("requests", self.requests);
        j.kv_u64("dram_lines", self.dram_lines);
        j.kv_u64("dram_busy_q", self.dram_busy_q);
        j.kv_u64("dram_queue_cycles", self.dram_queue_cycles);
        j.kv_u64("bank_conflict_cycles", self.bank_conflict_cycles);
        j.kv_u64("mshr_merges", self.mshr_merges);
        j.kv_u64("mshr_waits", self.mshr_waits);
        j.key("per_sm_cycles");
        j.begin_arr();
        for &c in &self.per_sm_cycles {
            j.u64(c);
        }
        j.end_arr();
        j.key("per_sm_rays");
        j.begin_arr();
        for &r in &self.per_sm_rays {
            j.u64(r);
        }
        j.end_arr();
        j.end_obj();
    }
}

/// The outcome of one experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The job that produced this cell.
    pub job: SimJob,
    /// True when the workload had no surviving rays at this bounce (the
    /// stats are all zero and no simulation ran).
    pub empty: bool,
    /// False when the simulation ended short of full completion (see
    /// [`CellResult::failure`] for why).
    pub completed: bool,
    /// Full simulator counter set. For failed cells these are the partial
    /// counters up to the failure point (zeros for panics).
    pub stats: SimStats,
    /// Stall-attribution / timeline report, present when the run had
    /// telemetry enabled (see [`RunOptions::telemetry`](crate::RunOptions)).
    pub telemetry: Option<TelemetryReport>,
    /// Per-SM stall-attribution reports for full-chip cells run with
    /// telemetry, SM order (single-SMX cells leave this empty and use
    /// [`CellResult::telemetry`]).
    pub sm_telemetry: Vec<TelemetryReport>,
    /// Chip memory-system interval series (per-bank L2, MSHR pool, DRAM
    /// channel, NoC) plus the cross-SM interference matrix, for full-chip
    /// cells run with telemetry.
    pub chip_telemetry: Option<ChipTelemetryReport>,
    /// Why the cell failed, when it did. Every failed attempt's class and
    /// message survive into the results JSON instead of killing the run.
    pub failure: Option<CellFailure>,
    /// Shared-memory-system counters and the per-SM profile, for cells
    /// that ran in full-chip mode (`job.chip` set). In chip mode
    /// [`CellResult::stats`] is the chip-wide aggregate: rays are summed
    /// across SMs and `stats.l2` is the shared L2, so throughput uses an
    /// SMX scale factor of 1.
    pub chip: Option<ChipSummary>,
    /// Attempts the pool made on this cell (1 = first try succeeded).
    pub attempts: u32,
    /// Wall-clock of this cell's simulation in milliseconds (excluded
    /// from determinism comparisons — compare [`CellResult::stats`]).
    pub wall_ms: f64,
}

impl CellResult {
    /// Whole-GPU throughput for this cell. Single-SMX cells scale by
    /// `smx_count`; chip cells already aggregate every SM's rays, so
    /// their stats are whole-chip and scale by 1.
    pub fn mrays_per_sec(&self, gpu: &GpuConfig) -> f64 {
        let smx = if self.job.chip.is_some() { 1 } else { gpu.smx_count };
        self.stats.mrays_per_sec(gpu.clock_mhz, smx)
    }

    /// Short human label for logs and trace process names.
    pub fn cell_name(&self) -> String {
        format!(
            "{}/{}/b{}/w{}",
            self.job.workload.scene,
            self.job.method.label(),
            self.job.bounce,
            self.job.warps
        )
    }

    /// Append this cell as a JSON object. `figures` names the figures /
    /// tables that reference the cell (one cell can serve several).
    pub fn write_json(&self, j: &mut JsonBuf, figures: &[String], gpu: &GpuConfig) {
        j.begin_obj();
        j.kv_str("id", &self.job.id().to_string());
        j.key("figures");
        j.begin_arr();
        for f in figures {
            j.str(f);
        }
        j.end_arr();
        j.kv_str("scene", &self.job.workload.scene.to_string());
        j.kv_u64("tris", self.job.workload.tris as u64);
        j.kv_u64("rays_per_bounce", self.job.workload.rays as u64);
        j.kv_u64("capture_depth", self.job.workload.bounces as u64);
        j.kv_u64("seed", self.job.workload.seed);
        j.kv_u64("bounce", self.job.bounce as u64);
        j.kv_str("method", &self.job.method.label());
        j.kv_u64("warps", self.job.warps as u64);
        if let Some(chip) = &self.job.chip {
            j.key("chip_config");
            j.begin_obj();
            j.kv_u64("sms", chip.sms as u64);
            j.kv_u64("l2_banks", chip.l2_banks as u64);
            j.kv_u64("shared_mshrs", chip.shared_mshrs as u64);
            j.kv_u64("dram_gbps", u64::from(chip.dram_gbps));
            j.kv_u64("noc_latency", u64::from(chip.noc_latency));
            j.end_obj();
        }
        j.kv_bool("empty", self.empty);
        j.kv_bool("completed", self.completed);
        j.kv_u64("attempts", self.attempts as u64);
        if let Some(failure) = &self.failure {
            j.key("failure");
            failure.write_json(j, self.attempts);
        }
        if let Some(chip) = &self.chip {
            j.key("chip");
            chip.write_json(j);
        }
        if let Some(report) = &self.chip_telemetry {
            j.key("chip_telemetry");
            report.write_totals_json(j);
        }
        j.kv_f64("wall_ms", self.wall_ms);
        j.kv_f64("mrays_per_sec", self.mrays_per_sec(gpu));
        j.kv_f64("simd_efficiency", self.stats.simd_efficiency());
        j.key("stats");
        self.stats.write_json(j);
        j.end_obj();
    }
}

/// A complete results document ready to serialize.
#[derive(Debug)]
pub struct ResultsFile {
    /// The mode the binary ran (`fig10`, `all`, …).
    pub mode: String,
    /// Worker threads used.
    pub workers: usize,
    /// Capture-cache telemetry.
    pub cache: CacheCounters,
    /// Result-store telemetry (zeros when the run had no store).
    pub store: StoreCounters,
    /// Whole-run wall clock in milliseconds.
    pub wall_ms: f64,
    /// Cells reused from a checkpoint instead of being re-simulated.
    pub resumed: usize,
    /// Successful checkpoint-file writes during the run.
    pub checkpoint_writes: u64,
    /// `(figures-that-use-it, cell)` in deterministic job order.
    pub cells: Vec<(Vec<String>, CellResult)>,
}

impl ResultsFile {
    /// Assemble a document from a pool report. `figures_of` maps each job
    /// index to the figure names that requested it.
    pub fn from_report(
        mode: &str,
        workers: usize,
        report: RunReport,
        figures_of: Vec<Vec<String>>,
    ) -> ResultsFile {
        assert_eq!(report.cells.len(), figures_of.len(), "one figure list per cell");
        ResultsFile {
            mode: mode.to_string(),
            workers,
            cache: report.cache,
            store: report.store,
            wall_ms: report.wall_ms,
            resumed: report.resumed,
            checkpoint_writes: report.checkpoint_writes,
            cells: figures_of.into_iter().zip(report.cells).collect(),
        }
    }

    /// Run-level execution metrics aggregated over every cell: the
    /// fault-tolerance and caching story of the run as one object (cache
    /// traffic, retry attempts, checkpoint writes, per-cell wall-clock
    /// spread) — so CI can watch harness health, not just simulator
    /// counters.
    fn write_metrics_json(&self, j: &mut JsonBuf) {
        let attempts: u64 = self.cells.iter().map(|(_, c)| c.attempts as u64).sum();
        let cells = self.cells.len() as u64;
        let failed = self.cells.iter().filter(|(_, c)| c.failure.is_some()).count() as u64;
        let empty = self.cells.iter().filter(|(_, c)| c.empty).count() as u64;
        let wall: Vec<f64> = self.cells.iter().map(|(_, c)| c.wall_ms).collect();
        let wall_sum: f64 = wall.iter().sum();
        j.begin_obj();
        j.kv_u64("cells_total", cells);
        j.kv_u64("cells_failed", failed);
        j.kv_u64("cells_empty", empty);
        j.kv_u64("attempts", attempts);
        j.kv_u64("retries", attempts - cells.min(attempts));
        j.kv_u64("resumed", self.resumed as u64);
        j.kv_u64("checkpoint_writes", self.checkpoint_writes);
        j.kv_u64("cache_hits", self.cache.hits);
        j.kv_u64("cache_misses", self.cache.misses);
        j.kv_u64("cache_evictions", self.cache.evictions);
        j.kv_u64("cache_size_evictions", self.cache.size_evictions);
        j.kv_u64("cache_store_failures", self.cache.store_failures);
        j.kv_u64("store_hits", self.store.hits);
        j.kv_u64("store_misses", self.store.misses);
        j.kv_u64("store_writes", self.store.writes);
        j.kv_u64("store_quarantined", self.store.quarantined);
        j.kv_u64("store_write_failures", self.store.write_failures);
        j.kv_u64("store_lock_reclaims", self.store.lock_reclaims);
        j.kv_f64("cell_wall_ms_sum", wall_sum);
        j.kv_f64("cell_wall_ms_max", wall.iter().copied().fold(0.0, f64::max));
        j.kv_f64("cell_wall_ms_mean", wall_sum / (cells.max(1)) as f64);
        j.end_obj();
    }

    /// Serialize the results document. Deterministic given the cells:
    /// no worker count, run wall-clock, or cache/store counters — those
    /// live in [`ResultsFile::run_json`]. Per-cell `wall_ms` stays (a
    /// store-served cell replays its stored value byte-for-byte), so a
    /// warm rerun of a completed grid emits an identical document.
    pub fn to_json(&self) -> String {
        let gpu = GpuConfig::gtx780();
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_u64("schema_version", SCHEMA_VERSION as u64);
        j.kv_str("suite", "drs-experiments");
        j.kv_str("mode", &self.mode);
        j.key("gpu");
        j.begin_obj();
        j.kv_u64("clock_mhz", gpu.clock_mhz as u64);
        j.kv_u64("smx_count", gpu.smx_count as u64);
        j.end_obj();
        j.key("cells");
        j.begin_arr();
        for (figures, cell) in &self.cells {
            cell.write_json(&mut j, figures, &gpu);
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Serialize the run document: everything that legitimately differs
    /// between two executions of the same grid — worker count, whole-run
    /// wall clock, capture-cache and result-store counters, and the
    /// aggregated metrics object. Written beside the results file as
    /// `<out stem>_run.json`.
    pub fn run_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_u64("schema_version", SCHEMA_VERSION as u64);
        j.kv_str("suite", "drs-experiments-run");
        j.kv_str("mode", &self.mode);
        j.kv_u64("workers", self.workers as u64);
        j.key("capture_cache");
        j.begin_obj();
        j.kv_u64("hits", self.cache.hits);
        j.kv_u64("misses", self.cache.misses);
        j.kv_u64("evictions", self.cache.evictions);
        j.kv_u64("size_evictions", self.cache.size_evictions);
        j.kv_u64("store_failures", self.cache.store_failures);
        j.end_obj();
        j.key("store");
        j.begin_obj();
        j.kv_u64("hits", self.store.hits);
        j.kv_u64("misses", self.store.misses);
        j.kv_u64("writes", self.store.writes);
        j.kv_u64("quarantined", self.store.quarantined);
        j.kv_u64("write_failures", self.store.write_failures);
        j.kv_u64("lock_reclaims", self.store.lock_reclaims);
        j.end_obj();
        j.key("metrics");
        self.write_metrics_json(&mut j);
        j.kv_f64("wall_ms", self.wall_ms);
        j.end_obj();
        j.finish()
    }

    /// A deterministic, stats-only dump of every cell: job identity plus
    /// the full [`SimStats`] counter set and (when present) the telemetry
    /// report — no wall-clock, cache, or worker-count fields. Two runs
    /// over identical inputs produce byte-identical dumps regardless of
    /// machine speed, worker count, or the engine fast path; CI diffs
    /// this file across `--no-fastpath` to prove the fast path changes
    /// nothing observable.
    pub fn stats_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_u64("schema_version", SCHEMA_VERSION as u64);
        j.kv_str("suite", "drs-experiments-stats");
        j.kv_str("mode", &self.mode);
        j.key("cells");
        j.begin_arr();
        for (_, cell) in &self.cells {
            j.begin_obj();
            j.kv_str("id", &cell.job.id().to_string());
            j.kv_str("cell", &cell.cell_name());
            j.kv_bool("empty", cell.empty);
            j.kv_bool("completed", cell.completed);
            if let Some(failure) = &cell.failure {
                j.key("failure");
                failure.write_json(&mut j, cell.attempts);
            }
            if let Some(chip) = &cell.chip {
                j.key("chip");
                chip.write_json(&mut j);
            }
            j.key("stats");
            cell.stats.write_json(&mut j);
            if let Some(report) = &cell.telemetry {
                j.key("telemetry");
                report.write_json(&mut j);
            }
            if !cell.sm_telemetry.is_empty() {
                j.key("sm_telemetry");
                j.begin_arr();
                for report in &cell.sm_telemetry {
                    report.write_json(&mut j);
                }
                j.end_arr();
            }
            if let Some(report) = &cell.chip_telemetry {
                j.key("chip_telemetry");
                report.write_json(&mut j);
            }
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Write the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the caller decides whether a missing
    /// results file fails the run).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        write_text(path, &self.to_json())
    }

    /// True when the cell produced any telemetry artifact (single-SMX
    /// report, per-SM chip reports, or the chip memory-system report).
    fn instrumented(cell: &CellResult) -> bool {
        cell.telemetry.is_some() || !cell.sm_telemetry.is_empty() || cell.chip_telemetry.is_some()
    }

    /// The timeline artifact: one record per instrumented cell carrying
    /// its full [`TelemetryReport`] (stall-bucket totals + interval
    /// series). Chip cells carry the per-SM report array plus the full
    /// chip memory-system interval series and interference matrix.
    /// `None` when no cell has telemetry.
    pub fn timeline_json(&self) -> Option<String> {
        if !self.cells.iter().any(|(_, c)| Self::instrumented(c)) {
            return None;
        }
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_u64("schema_version", SCHEMA_VERSION as u64);
        j.kv_str("suite", "drs-telemetry-timeline");
        j.kv_str("mode", &self.mode);
        j.key("cells");
        j.begin_arr();
        for (_, cell) in &self.cells {
            if !Self::instrumented(cell) {
                continue;
            }
            j.begin_obj();
            j.kv_str("id", &cell.job.id().to_string());
            j.kv_str("cell", &cell.cell_name());
            j.kv_f64("simd_efficiency", cell.stats.simd_efficiency());
            if let Some(report) = &cell.telemetry {
                j.key("telemetry");
                report.write_json(&mut j);
            }
            if !cell.sm_telemetry.is_empty() {
                j.key("sm_telemetry");
                j.begin_arr();
                for report in &cell.sm_telemetry {
                    report.write_json(&mut j);
                }
                j.end_arr();
            }
            if let Some(report) = &cell.chip_telemetry {
                j.key("chip_telemetry");
                report.write_json(&mut j);
            }
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        Some(j.finish())
    }

    /// A Chrome trace-event document covering every instrumented cell.
    /// Single-SMX cells become one process; chip cells become one process
    /// per SM (`cell/smK` warp rows) plus the memory-system rows — one
    /// process per L2 bank and one for DRAM/MSHR/NoC counters. `None`
    /// when no cell has telemetry.
    pub fn chrome_trace_json(&self) -> Option<String> {
        if !self.cells.iter().any(|(_, c)| Self::instrumented(c)) {
            return None;
        }
        let mut b = drs_telemetry::chrome::TraceBuilder::new();
        for (_, cell) in &self.cells {
            let name = cell.cell_name();
            if let Some(report) = &cell.telemetry {
                b.add_cell(&name, report);
            }
            for (sm, report) in cell.sm_telemetry.iter().enumerate() {
                b.add_cell(&format!("{name}/sm{sm}"), report);
            }
            if let Some(report) = &cell.chip_telemetry {
                b.add_chip(&name, report);
            }
        }
        Some(b.finish())
    }
}

/// Write `text` (plus a trailing newline) to `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_text(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())?;
    f.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Method, Scale, WorkloadSpec};
    use drs_scene::SceneKind;

    fn sample_cell() -> CellResult {
        let scale = Scale::default();
        let wl = WorkloadSpec::standard(SceneKind::Conference, &scale, 8);
        CellResult {
            job: SimJob {
                workload: wl,
                bounce: 2,
                method: Method::drs_default(),
                warps: 58,
                chip: None,
            },
            empty: false,
            completed: true,
            stats: SimStats { cycles: 10, rays_completed: 5, ..Default::default() },
            telemetry: None,
            sm_telemetry: Vec::new(),
            chip_telemetry: None,
            failure: None,
            chip: None,
            attempts: 1,
            wall_ms: 1.25,
        }
    }

    fn file_with(mode: &str, workers: usize, wall_ms: f64, cache: CacheCounters) -> ResultsFile {
        ResultsFile {
            mode: mode.into(),
            workers,
            cache,
            store: StoreCounters::default(),
            wall_ms,
            resumed: 0,
            checkpoint_writes: 0,
            cells: Vec::new(),
        }
    }

    #[test]
    fn chip_cells_carry_summary_and_scale_by_one() {
        use drs_sim::ChipConfig;
        let mut cell = sample_cell();
        let plain_mrays = cell.mrays_per_sec(&GpuConfig::gtx780());
        cell.job.chip = Some(ChipConfig::gtx780(2));
        cell.chip = Some(ChipSummary {
            sms: 2,
            l2_hits: 30,
            l2_misses: 10,
            l2_evictions: 4,
            requests: 40,
            dram_lines: 10,
            dram_busy_q: 5 * 1024,
            dram_queue_cycles: 7,
            bank_conflict_cycles: 3,
            mshr_merges: 2,
            mshr_waits: 1,
            per_sm_cycles: vec![10, 9],
            per_sm_rays: vec![3, 2],
        });
        let gpu = GpuConfig::gtx780();
        assert!(
            (cell.mrays_per_sec(&gpu) - plain_mrays / gpu.smx_count as f64).abs() < 1e-12,
            "chip cells must not re-scale by smx_count"
        );
        assert!((cell.chip.as_ref().unwrap().l2_hit_rate() - 0.75).abs() < 1e-12);
        assert!((cell.chip.as_ref().unwrap().dram_utilization(10) - 0.5).abs() < 1e-12);
        let mut file = file_with("fig2", 1, 1.0, CacheCounters::default());
        file.cells = vec![(vec!["fig2".into()], cell)];
        for json in [file.to_json(), file.stats_json()] {
            for needle in [
                "\"chip\":{\"sms\":2",
                "\"l2_evictions\":4",
                "\"dram_busy_q\":5120",
                "\"dram_queue_cycles\":7",
                "\"bank_conflict_cycles\":3",
                "\"mshr_merges\":2",
                "\"per_sm_cycles\":[10,9]",
                "\"per_sm_rays\":[3,2]",
            ] {
                assert!(json.contains(needle), "missing {needle} in {json}");
            }
        }
        assert!(file.to_json().contains("\"chip_config\":{\"sms\":2"));
    }

    #[test]
    fn results_file_contains_required_fields() {
        let mut file =
            file_with("fig10", 4, 12.5, CacheCounters { hits: 3, misses: 1, ..Default::default() });
        file.cells = vec![(vec!["fig10".into(), "fig11".into()], sample_cell())];
        let json = file.to_json();
        for needle in [
            "\"schema_version\":4",
            "\"mode\":\"fig10\"",
            "\"mrays_per_sec\":",
            "\"simd_efficiency\":",
            "\"figures\":[\"fig10\",\"fig11\"]",
            "\"method\":\"DRS(M=1,B=6)\"",
            "\"stats\":{\"cycles\":10",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn run_doc_carries_the_volatile_fields_and_results_doc_does_not() {
        let mut file = file_with(
            "fig10",
            4,
            12.5,
            CacheCounters { hits: 3, misses: 1, size_evictions: 2, ..Default::default() },
        );
        file.store = StoreCounters { hits: 5, misses: 7, writes: 7, ..Default::default() };
        file.cells = vec![(vec!["fig10".into()], sample_cell())];
        let run = file.run_json();
        for needle in [
            "\"suite\":\"drs-experiments-run\"",
            "\"workers\":4",
            "\"capture_cache\":{\"hits\":3",
            "\"size_evictions\":2",
            "\"store\":{\"hits\":5,\"misses\":7,\"writes\":7",
            "\"metrics\":{\"cells_total\":1",
            "\"retries\":0",
            "\"cache_hits\":3",
            "\"store_hits\":5",
            "\"wall_ms\":12.5",
        ] {
            assert!(run.contains(needle), "missing {needle} in {run}");
        }
        // The results document is deterministic: none of the run-volatile
        // fields appear (per-cell wall_ms is the only timing it carries).
        let json = file.to_json();
        for stray in ["\"workers\"", "\"capture_cache\"", "\"metrics\"", "\"store\""] {
            assert!(!json.contains(stray), "results doc must not carry {stray}");
        }
    }

    #[test]
    fn results_doc_is_identical_across_worker_and_cache_variation() {
        let make = |workers: usize, hits: u64| {
            let mut f = file_with(
                "fig2",
                workers,
                workers as f64 * 7.0,
                CacheCounters { hits, ..Default::default() },
            );
            f.store = StoreCounters { hits, ..Default::default() };
            f.cells = vec![(vec!["fig2".into()], sample_cell())];
            f
        };
        assert_eq!(
            make(1, 0).to_json(),
            make(8, 9).to_json(),
            "warm-store byte-identity depends on this"
        );
    }

    #[test]
    fn stats_dump_excludes_timing_and_is_reproducible() {
        let make = |wall_ms: f64, workers: usize| {
            let mut f = file_with(
                "fig2",
                workers,
                wall_ms,
                CacheCounters { hits: workers as u64, ..Default::default() },
            );
            f.cells = vec![(vec!["fig2".into()], CellResult { wall_ms, ..sample_cell() })];
            f
        };
        let a = make(1.25, 1).stats_json();
        let b = make(99.0, 8).stats_json();
        assert_eq!(a, b, "stats dump must not depend on timing or worker count");
        assert!(!a.contains("wall_ms"));
        assert!(!a.contains("workers"));
        assert!(a.contains("\"suite\":\"drs-experiments-stats\""));
        assert!(a.contains("\"stats\":{\"cycles\":10"));
    }

    #[test]
    fn failed_cells_carry_structured_failure_records() {
        let mut cell = sample_cell();
        cell.completed = false;
        cell.attempts = 2;
        cell.failure = Some(CellFailure {
            kind: "watchdog".into(),
            message: "no progress for 40 cycles".into(),
            cycle: Some(123),
            injected: true,
            warp_dump: Some("warp 0: stalled".into()),
        });
        let mut file = file_with("fig2", 1, 1.0, CacheCounters::default());
        file.cells = vec![(vec!["fig2".into()], cell)];
        for json in [file.to_json(), file.stats_json()] {
            for needle in [
                "\"completed\":false",
                "\"failure\":{\"kind\":\"watchdog\"",
                "\"message\":\"no progress for 40 cycles\"",
                "\"attempts\":2",
                "\"cycle\":123",
                "\"injected\":true",
                "\"warp_dump\":\"warp 0: stalled\"",
            ] {
                assert!(json.contains(needle), "missing {needle} in {json}");
            }
        }
        // Clean cells stay failure-free in both documents.
        let mut clean = file_with("fig2", 1, 1.0, CacheCounters::default());
        clean.cells = vec![(vec!["fig2".into()], sample_cell())];
        assert!(!clean.to_json().contains("\"failure\""));
        assert!(!clean.stats_json().contains("\"failure\""));
    }

    #[test]
    fn artifacts_absent_without_telemetry() {
        let mut file = file_with("fig2", 1, 1.0, CacheCounters::default());
        file.cells = vec![(vec!["fig2".into()], sample_cell())];
        assert!(file.timeline_json().is_none());
        assert!(file.chrome_trace_json().is_none());
    }

    #[test]
    fn artifacts_cover_instrumented_cells() {
        let mut cell = sample_cell();
        cell.telemetry = Some(TelemetryReport {
            warps: 2,
            cycles: 10,
            interval: 5,
            totals: [20, 0, 0, 0, 0, 0, 0, 0],
            ..TelemetryReport::default()
        });
        let mut file = file_with("fig2", 1, 1.0, CacheCounters::default());
        file.cells = vec![(vec!["fig2".into()], sample_cell()), (vec!["fig2".into()], cell)];
        let timeline = file.timeline_json().expect("one instrumented cell");
        assert!(timeline.contains("\"suite\":\"drs-telemetry-timeline\""));
        assert!(timeline.contains("\"stall_buckets\""));
        // Only the instrumented cell is listed.
        assert_eq!(timeline.matches("\"cell\":").count(), 1);
        let trace = file.chrome_trace_json().expect("one instrumented cell");
        let summary = drs_telemetry::check::validate_chrome_trace(&trace).unwrap();
        assert_eq!(summary.pids, vec![0]);
        assert_eq!(summary.metadata_events, 3, "process + two warp threads");
    }

    #[test]
    fn chip_cells_fan_out_into_per_sm_and_memsys_trace_rows() {
        use drs_telemetry::{ChipIntervalSample, ChipTelemetryReport};
        let sm_report = TelemetryReport {
            warps: 2,
            cycles: 10,
            interval: 5,
            totals: [20, 0, 0, 0, 0, 0, 0, 0],
            ..TelemetryReport::default()
        };
        let mut sample = ChipIntervalSample::empty(2, 2);
        sample.end = 10;
        let chip_report = ChipTelemetryReport {
            sms: 2,
            banks: 2,
            line_bytes: 128,
            mshrs: 4,
            cycles_per_line_q: 2048,
            interval: 10,
            cycles: 10,
            interference: vec![0; 4],
            intervals: vec![sample],
        };
        let mut cell = sample_cell();
        cell.sm_telemetry = vec![sm_report.clone(), sm_report];
        cell.chip_telemetry = Some(chip_report);
        let mut file = file_with("fig2", 1, 1.0, CacheCounters::default());
        file.cells = vec![(vec!["fig2".into()], cell)];
        // Results JSON embeds the compact chip-telemetry totals.
        assert!(file.to_json().contains("\"chip_telemetry\":{\"sms\":2"));
        // The timeline carries the per-SM reports and the full chip series.
        let timeline = file.timeline_json().expect("instrumented chip cell");
        assert!(timeline.contains("\"sm_telemetry\":["));
        assert!(timeline.contains("\"intervals\":["));
        assert!(timeline.contains("\"interference\":["));
        // The trace fans out: 2 SM processes + 2 bank processes + 1 DRAM/MSHR.
        let trace = file.chrome_trace_json().expect("instrumented chip cell");
        let summary = drs_telemetry::check::validate_chrome_trace(&trace).unwrap();
        assert_eq!(summary.pids, vec![0, 1, 2, 3, 4]);
        assert!(trace.contains("/sm0"));
        assert!(trace.contains("/sm1"));
        assert!(trace.contains("/L2 bank 1"));
        assert!(trace.contains("/DRAM+MSHR"));
    }
}
