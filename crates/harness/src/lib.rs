//! Parallel experiment orchestration for the DRS reproduction.
//!
//! Every figure and table of the paper's evaluation is a grid of
//! independent single-threaded simulations — scene × bounce × method ×
//! hardware config. This crate turns that grid into data and machinery:
//!
//! - **Job model** ([`job`]): each cell is a [`SimJob`] with a stable
//!   content-derived [`JobId`]; figures are declarative [`JobSet`]s
//!   ([`figures`]).
//! - **Worker pool** ([`pool`]): a std-only (`std::thread` + atomics)
//!   executor. Results are slotted by job index, so serial and parallel
//!   runs produce bit-identical [`SimStats`](drs_sim::SimStats) — proven
//!   by the test suite, not just promised.
//! - **Capture cache** ([`cache`]): captured ray streams are persisted
//!   via the `drs-trace` binary codec to `target/drs-cache/<hash>.bin`,
//!   keyed by (scene, triangle budget, ray budget, depth, seed, trace
//!   format version). The expensive render+trace phase runs once per
//!   workload ever, instead of once per figure per run; corrupt entries
//!   are evicted and recaptured via the typed
//!   [`TraceIoError`](drs_trace::TraceIoError).
//! - **Results** ([`results`]): every cell is emitted as JSON
//!   (`BENCH_experiments.json`) — Mrays/s, SIMD efficiency, the complete
//!   simulator counter set, wall-clock — giving the repo a machine-
//!   readable perf trajectory across PRs.
//! - **Fault tolerance** ([`fault`], [`checkpoint`]): worker panics and
//!   typed simulator failures are isolated per cell (`catch_unwind`),
//!   retried with backoff when transient, and recorded as structured
//!   [`CellFailure`] data in the results JSON; a crash-safe checkpoint
//!   file lets an interrupted grid resume with bit-identical merged
//!   results. A deterministic [`FaultPlan`] makes every defended failure
//!   mode reproducible on demand.
//! - **Durable results** ([`store`]): finished clean cells are memoized
//!   on disk keyed by [`JobId`] + [`SCHEMA_VERSION`], checksummed and
//!   written atomically; a warm rerun of a completed grid does zero
//!   simulation work and emits byte-identical results JSON. Corrupt or
//!   stale entries are quarantined and recomputed, never served.
//! - **Experiment service** ([`server`]): `experiments serve` exposes
//!   the pool on a Unix-domain socket with a line-delimited JSON
//!   protocol — clients submit figure grids, stream per-cell progress,
//!   and fetch deterministic result documents; admission is bounded,
//!   scheduling is round-robin across clients, and SIGTERM drains
//!   gracefully. Crash recovery rides on the result store.
//! - **Full-chip mode** ([`runner::run_chip_cell`], `drs-chip`): a job
//!   with [`SimJob::chip`] set runs N per-SM engines against one shared
//!   L2/MSHR/DRAM memory system instead of a single scaled SMX; the cell
//!   carries a [`ChipSummary`] with the cross-SM contention counters.
//!   With telemetry enabled the cell additionally carries one
//!   stall-attribution report per SM and a chip memory-system report
//!   (per-bank L2 / MSHR / DRAM / NoC interval series plus the cross-SM
//!   interference matrix) — all purely observational.
//!
//! # Example
//!
//! ```
//! use drs_harness::{figures, pool, Scale};
//!
//! // A tiny fig2 slice: conference scene, Aila kernel, 3 bounces.
//! let scale = Scale { rays: 200, tris_scale: 0.005, warps_scale: 0.1 };
//! let mut set = figures::fig2(&scale);
//! set.jobs.truncate(3);
//! let report = pool::run_jobs(&set.jobs, &pool::RunOptions::parallel(2));
//! assert_eq!(report.cells.len(), 3);
//! assert!(report.cells.iter().all(|c| c.completed));
//! ```

#![warn(missing_docs)]

/// Version of every persisted harness artifact schema: the checkpoint
/// file, the durable result store, and the results / stats / timeline
/// JSON documents all carry this one constant. Bumping it invalidates
/// all three coherently — a resume, a store lookup, and a results diff
/// can never mix layouts from different schema generations.
///
/// History: v1–v3 were checkpoint-only (v2 added the per-cell `chip`
/// summary, v3 `l2_evictions`/`dram_busy_q`); v4 unified the checkpoint,
/// store, and results versions into this shared constant.
pub const SCHEMA_VERSION: u32 = 4;

pub mod cache;
pub mod checkpoint;
pub mod fault;
pub mod figures;
pub mod job;
pub mod pool;
pub mod results;
pub mod runner;
pub mod server;
pub mod store;

pub use cache::{CacheCounters, CacheStoreError, StreamCache};
pub use checkpoint::{Checkpoint, CheckpointCell, CheckpointSpec};
pub use drs_sim::ChipConfig;
pub use fault::{FaultKind, FaultPlan, FaultSpecError};
pub use job::{fnv1a64, JobId, JobSet, Method, Scale, SimJob, WorkloadSpec};
pub use pool::{
    parallel_map, parallel_map_catching, run_jobs, CaptureMode, CaughtPanic, RunOptions, RunReport,
};
pub use results::{write_text, CellFailure, CellResult, ChipSummary, ResultsFile};
pub use runner::{
    run_cell, run_chip_cell, run_method_with_warps, run_method_with_warps_telemetry, CellConfig,
};
pub use server::{Server, ServerControl, ServerOptions};
pub use store::{ResultStore, StoreCounters, StoreError};
