//! A std-only worker pool executing experiment jobs in parallel with
//! provably deterministic results.
//!
//! Each [`SimJob`] is an independent single-threaded simulation, so the
//! only thing parallelism could perturb is *which worker runs which job* —
//! and results are written into a slot indexed by the job's position, so
//! the output vector is identical for any worker count. `run_jobs` with
//! one worker and with N workers return bit-identical
//! [`SimStats`](drs_sim::SimStats) (asserted by the harness test suite).
//!
//! Execution happens in two phases sharing the pool:
//!
//! 1. **Capture**: the distinct workloads behind the job list are
//!    captured (or served from the [`StreamCache`]) in parallel;
//! 2. **Simulate**: every job runs against its workload's in-memory
//!    streams, fanned out over the same workers.

use crate::cache::{CacheCounters, StreamCache};
use crate::job::SimJob;
use crate::results::CellResult;
use drs_telemetry::TelemetryConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How a run obtains workload captures.
#[derive(Debug)]
pub enum CaptureMode {
    /// Always capture in-process; never touch the disk.
    Uncached,
    /// Serve from / populate an on-disk [`StreamCache`].
    Cached(StreamCache),
}

/// Execution options for [`run_jobs`].
#[derive(Debug)]
pub struct RunOptions {
    /// Worker threads (1 = fully serial on the calling thread).
    pub workers: usize,
    /// Capture caching policy.
    pub capture: CaptureMode,
    /// When set, every non-empty cell runs with a telemetry collector
    /// attached and its [`CellResult`] carries the report. `None` (the
    /// default) runs the engine with no attribution work at all.
    pub telemetry: Option<TelemetryConfig>,
    /// Print a per-job start/finish line to stderr (off by default so the
    /// binary's stdout/stderr stay unchanged).
    pub progress: bool,
    /// Engine event-driven fast path (on by default). `false` forces
    /// naive one-cycle stepping — the reference the perf harness and CI
    /// A/B smoke compare against; results are bit-identical either way.
    pub fastpath: bool,
}

impl RunOptions {
    /// Serial execution without a cache — the reference configuration
    /// parallel runs must match bit-for-bit.
    pub fn serial() -> RunOptions {
        RunOptions {
            workers: 1,
            capture: CaptureMode::Uncached,
            telemetry: None,
            progress: false,
            fastpath: true,
        }
    }

    /// Parallel execution with `workers` threads, no cache.
    pub fn parallel(workers: usize) -> RunOptions {
        RunOptions { workers, ..RunOptions::serial() }
    }
}

/// Everything a run produced: per-cell results (in job order) plus cache
/// and timing telemetry.
#[derive(Debug)]
pub struct RunReport {
    /// One result per input job, same order.
    pub cells: Vec<CellResult>,
    /// Capture-cache activity (all zeros when uncached).
    pub cache: CacheCounters,
    /// Wall-clock of the whole run in milliseconds.
    pub wall_ms: f64,
}

/// Map `f` over `items` with `workers` threads, preserving order.
///
/// Results land in per-index slots, so the output is independent of
/// scheduling; a single worker degenerates to a plain serial loop on the
/// calling thread. Worker panics propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every claimed slot"))
        .collect()
}

/// Execute `jobs` under `opts`, returning per-cell results in job order.
///
/// Distinct workloads are captured exactly once per run (and, with a
/// cache, once across runs); jobs over the same workload share one
/// in-memory copy of its streams.
pub fn run_jobs(jobs: &[SimJob], opts: &RunOptions) -> RunReport {
    let start = Instant::now();

    // Phase 1: capture the distinct workloads.
    let mut seen = std::collections::HashSet::new();
    let mut distinct = Vec::new();
    for j in jobs {
        if seen.insert(j.workload.content_key()) {
            distinct.push(j.workload);
        }
    }
    let captured = parallel_map(&distinct, opts.workers, |_, spec| match &opts.capture {
        CaptureMode::Uncached => spec.capture(),
        CaptureMode::Cached(cache) => cache.get_or_capture(spec),
    });
    let streams_by_key: HashMap<u64, Arc<drs_trace::BounceStreams>> = distinct
        .iter()
        .zip(captured)
        .map(|(spec, streams)| (spec.content_key(), Arc::new(streams)))
        .collect();

    // Phase 2: simulate every cell.
    let total = jobs.len();
    let cells = parallel_map(jobs, opts.workers, |i, job| {
        let streams = &streams_by_key[&job.workload.content_key()];
        let label =
            format!("{} {} b{} w{}", job.workload.scene, job.method.label(), job.bounce, job.warps);
        if opts.progress {
            eprintln!("[{}/{total}] start  {label}", i + 1);
        }
        let job_start = Instant::now();
        let cell =
            if job.bounce <= streams.depth() && !streams.bounce(job.bounce).scripts.is_empty() {
                let scripts = &streams.bounce(job.bounce).scripts;
                let (out, telemetry) = match opts.telemetry {
                    Some(cfg) => {
                        let (out, report) = crate::runner::run_method_with_warps_telemetry_fastpath(
                            job.method,
                            job.warps,
                            scripts,
                            cfg,
                            opts.fastpath,
                        );
                        (out, Some(report))
                    }
                    None => (
                        crate::runner::run_method_with_warps_fastpath(
                            job.method,
                            job.warps,
                            scripts,
                            opts.fastpath,
                        ),
                        None,
                    ),
                };
                CellResult {
                    job: *job,
                    empty: false,
                    completed: out.completed,
                    stats: out.stats,
                    telemetry,
                    wall_ms: job_start.elapsed().as_secs_f64() * 1e3,
                }
            } else {
                // No surviving rays at this depth (open scenes): a real,
                // reportable cell with zeroed counters.
                CellResult {
                    job: *job,
                    empty: true,
                    completed: true,
                    stats: Default::default(),
                    telemetry: None,
                    wall_ms: 0.0,
                }
            };
        if opts.progress {
            eprintln!("[{}/{total}] finish {label} ({:.1} ms)", i + 1, cell.wall_ms);
        }
        cell
    });

    let cache = match &opts.capture {
        CaptureMode::Uncached => CacheCounters::default(),
        CaptureMode::Cached(cache) => cache.counters(),
    };
    RunReport { cells, cache, wall_ms: start.elapsed().as_secs_f64() * 1e3 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 3, 8] {
            let out = parallel_map(&items, workers, |i, &v| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, v| *v).is_empty());
        let one = [7u32];
        assert_eq!(parallel_map(&one, 16, |_, v| *v + 1), vec![8]);
    }

    #[test]
    fn parallel_map_runs_every_item_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        parallel_map(&items, 7, |_, &i| counts[i].fetch_add(1, Ordering::Relaxed));
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }
}
