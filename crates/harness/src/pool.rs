//! A std-only worker pool executing experiment jobs in parallel with
//! provably deterministic results and fault-tolerant execution.
//!
//! Each [`SimJob`] is an independent single-threaded simulation, so the
//! only thing parallelism could perturb is *which worker runs which job* —
//! and results are written into a slot indexed by the job's position, so
//! the output vector is identical for any worker count. `run_jobs` with
//! one worker and with N workers return bit-identical
//! [`SimStats`] (asserted by the harness test suite).
//!
//! Execution happens in two phases sharing the pool:
//!
//! 1. **Capture**: the distinct workloads behind the job list are
//!    captured (or served from the [`StreamCache`]) in parallel;
//! 2. **Simulate**: every job runs against its workload's in-memory
//!    streams, fanned out over the same workers.
//!
//! A failing cell never takes the run down with it. Every attempt runs
//! under `catch_unwind`, so a panicking worker becomes a recorded
//! [`CellFailure`]; *transient* failures (panics, cache corruption,
//! injected faults) are retried with exponential backoff, while
//! *permanent* ones (an organic watchdog trip, cycle-cap, deadline, or
//! invariant failure — deterministic, so a retry would fail identically)
//! are recorded immediately. With a [`CheckpointSpec`] attached, every
//! finished cell is persisted through an atomic file rewrite, and a
//! resumed rerun reuses clean cells byte-for-byte while re-simulating
//! only the missing or failed ones.
//!
//! With a [`ResultStore`] attached, durability extends *across* runs:
//! every clean cell is memoized on disk by job id, consulted before
//! capture and simulation, and replayed byte-for-byte on a warm rerun —
//! a completed grid re-executes with zero engine invocations and zero
//! captures, and emits identical results JSON.

use crate::cache::{CacheCounters, StreamCache};
use crate::checkpoint::{run_key, Checkpoint, CheckpointCell, CheckpointSpec};
use crate::fault::{FaultKind, FaultPlan};
use crate::job::{JobId, SimJob};
use crate::results::{CellFailure, CellResult, ChipSummary};
use crate::runner::CellConfig;
use crate::store::{ResultStore, StoreCounters};
use drs_sim::{ChipConfig, SimError, SimErrorKind, SimStats};
use drs_telemetry::{ChipTelemetryReport, TelemetryConfig, TelemetryReport};
use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, PoisonError};
use std::time::{Duration, Instant};

/// Cycle at which an injected [`FaultKind::WatchdogTrip`] fires.
const INJECTED_TRIP_CYCLE: u64 = 64;
/// Cycle budget imposed by an injected [`FaultKind::BudgetExhaust`].
const INJECTED_CYCLE_BUDGET: u64 = 64;
/// Upper bound on a single retry backoff sleep.
const MAX_BACKOFF_MS: u64 = 2_000;

/// How a run obtains workload captures.
#[derive(Debug)]
pub enum CaptureMode {
    /// Always capture in-process; never touch the disk.
    Uncached,
    /// Serve from / populate an on-disk [`StreamCache`].
    Cached(StreamCache),
}

/// Execution options for [`run_jobs`].
#[derive(Debug)]
pub struct RunOptions {
    /// Worker threads (1 = fully serial on the calling thread).
    pub workers: usize,
    /// Capture caching policy.
    pub capture: CaptureMode,
    /// When set, every non-empty cell runs with a telemetry collector
    /// attached and its [`CellResult`] carries the report. `None` (the
    /// default) runs the engine with no attribution work at all.
    pub telemetry: Option<TelemetryConfig>,
    /// Print a per-job start/finish line to stderr (off by default so the
    /// binary's stdout/stderr stay unchanged).
    pub progress: bool,
    /// Engine event-driven fast path (on by default). `false` forces
    /// naive one-cycle stepping — the reference the perf harness and CI
    /// A/B smoke compare against; results are bit-identical either way.
    pub fastpath: bool,
    /// Extra attempts after the first for *transient* failures (worker
    /// panics, cache corruption, injected faults). Permanent simulation
    /// failures (watchdog, cycle cap, deadline, invariant) are never
    /// retried — they are deterministic and would fail identically.
    pub retries: u32,
    /// Base backoff before the first retry, doubled per subsequent
    /// attempt and capped at 2 s. Zero disables the sleep entirely.
    pub retry_backoff_ms: u64,
    /// Per-job cycle budget. A cell exceeding it fails with a typed
    /// `cycle_limit` record instead of running to the global safety cap.
    pub job_cycle_budget: Option<u64>,
    /// Per-job wall-clock budget in milliseconds. A cell exceeding it
    /// fails with a typed `deadline` record carrying partial stats.
    pub job_timeout_ms: Option<u64>,
    /// Worker threads sharding the SMs inside each full-chip cell's
    /// window loop (chip jobs only; single-SMX cells ignore it). Chip
    /// results are bit-identical for any value, so — unlike the chip
    /// config itself — this never enters job identity or the run key.
    pub chip_threads: usize,
    /// Deterministic fault injection (empty plan = no faults).
    pub faults: FaultPlan,
    /// Crash-safe checkpointing: persist every finished cell and
    /// optionally resume from a previous run's checkpoint. Ignored (with
    /// a warning) when telemetry is enabled — reports are not
    /// checkpointable.
    pub checkpoint: Option<CheckpointSpec>,
    /// Durable result store: clean cells are served from disk before any
    /// capture or simulation happens and persisted after they finish.
    /// Shared (`Arc`) so a server and its pool read one set of counters.
    /// Ignored (with a warning) when telemetry is enabled — stored cells
    /// carry counters, not telemetry reports, and must never silently
    /// satisfy an instrumented run.
    pub store: Option<Arc<ResultStore>>,
}

impl RunOptions {
    /// Serial execution without a cache — the reference configuration
    /// parallel runs must match bit-for-bit.
    pub fn serial() -> RunOptions {
        RunOptions {
            workers: 1,
            capture: CaptureMode::Uncached,
            telemetry: None,
            progress: false,
            fastpath: true,
            retries: 1,
            retry_backoff_ms: 10,
            job_cycle_budget: None,
            job_timeout_ms: None,
            chip_threads: 1,
            faults: FaultPlan::default(),
            checkpoint: None,
            store: None,
        }
    }

    /// Parallel execution with `workers` threads, no cache.
    pub fn parallel(workers: usize) -> RunOptions {
        RunOptions { workers, ..RunOptions::serial() }
    }
}

/// Everything a run produced: per-cell results (in job order) plus cache
/// and timing telemetry.
#[derive(Debug)]
pub struct RunReport {
    /// One result per input job, same order.
    pub cells: Vec<CellResult>,
    /// Capture-cache activity (all zeros when uncached).
    pub cache: CacheCounters,
    /// Cells reused from a checkpoint instead of being re-simulated.
    pub resumed: usize,
    /// Successful checkpoint-file writes during the run (0 without a
    /// [`CheckpointSpec`]).
    pub checkpoint_writes: u64,
    /// Result-store activity (all zeros without a store). `hits` counts
    /// cells served from disk with no engine invocation.
    pub store: StoreCounters,
    /// Wall-clock of the whole run in milliseconds.
    pub wall_ms: f64,
}

impl RunReport {
    /// Cells that ended in a recorded failure.
    pub fn failed_cells(&self) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(|c| c.failure.is_some())
    }

    /// True when every cell completed cleanly.
    pub fn all_clean(&self) -> bool {
        self.cells.iter().all(|c| c.completed && c.failure.is_none())
    }
}

/// The message a worker panic carried, extracted from the unwind payload
/// (`&str` and `String` cover `panic!` and friends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaughtPanic {
    /// The panic message, or a placeholder for non-string payloads.
    pub message: String,
}

impl CaughtPanic {
    fn from_payload(payload: &(dyn std::any::Any + Send)) -> CaughtPanic {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        };
        CaughtPanic { message }
    }
}

thread_local! {
    /// True while this thread is inside a pool `catch_unwind` region.
    static CATCHING: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` under `catch_unwind` with the default panic hook silenced for
/// this thread: a caught panic becomes data (the [`CaughtPanic`] message),
/// so the hook's "thread panicked" + backtrace spam on stderr would only
/// duplicate what lands in the failure record. Panics on other threads
/// (and outside catching regions) keep the normal hook behavior.
pub(crate) fn catch_quietly<R>(f: impl FnOnce() -> R) -> Result<R, CaughtPanic> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CATCHING.with(Cell::get) {
                prev(info);
            }
        }));
    });
    let was = CATCHING.with(|c| c.replace(true));
    let out = catch_unwind(AssertUnwindSafe(f));
    CATCHING.with(|c| c.set(was));
    out.map_err(|payload| CaughtPanic::from_payload(payload.as_ref()))
}

/// Map `f` over `items` with `workers` threads, preserving order.
///
/// Results land in per-index slots, so the output is independent of
/// scheduling; a single worker degenerates to a plain serial loop on the
/// calling thread. Worker panics propagate to the caller; use
/// [`parallel_map_catching`] to record them as data instead.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                // Poison-safe: a slot holds plain data, so a panic in a
                // sibling worker must not cascade into this thread.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Like [`parallel_map`], but each invocation of `f` runs under
/// `catch_unwind`: a panicking item yields `Err(CaughtPanic)` in its slot
/// while every other item completes normally — one poisoned job cannot
/// take down the run.
pub fn parallel_map_catching<T, R, F>(
    items: &[T],
    workers: usize,
    f: F,
) -> Vec<Result<R, CaughtPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map(items, workers, |i, t| catch_quietly(|| f(i, t)))
}

/// Shared checkpoint state: the accumulating snapshot plus its path.
struct CheckpointState {
    path: std::path::PathBuf,
    snapshot: Mutex<Checkpoint>,
    writes: AtomicUsize,
}

impl CheckpointState {
    /// Record a finished cell and atomically rewrite the file. Write
    /// failures cost resumability, never the run.
    fn record(&self, cell: &CellResult) {
        let mut snap = self.snapshot.lock().unwrap_or_else(PoisonError::into_inner);
        snap.cells.insert(cell.job.id(), CheckpointCell::from_cell(cell));
        match snap.write_to(&self.path) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!("drs-harness: checkpoint write failed ({}): {e}", self.path.display());
            }
        }
    }
}

/// Execute `jobs` under `opts`, returning per-cell results in job order.
///
/// Distinct workloads are captured exactly once per run (and, with a
/// cache, once across runs); jobs over the same workload share one
/// in-memory copy of its streams. Failures are isolated, retried when
/// transient, and recorded per cell — see the module docs.
pub fn run_jobs(jobs: &[SimJob], opts: &RunOptions) -> RunReport {
    let start = Instant::now();

    // Checkpointing binds to this exact grid; telemetry reports are not
    // checkpointable, so the two features are exclusive.
    let checkpoint = match (&opts.checkpoint, &opts.telemetry) {
        (Some(_), Some(_)) => {
            eprintln!("drs-harness: checkpointing disabled for telemetry runs");
            None
        }
        (spec, _) => spec.as_ref(),
    };
    let key = checkpoint.map(|_| run_key(jobs, opts.fastpath));
    let resumed_cells: HashMap<JobId, CheckpointCell> = match (checkpoint, key) {
        (Some(spec), Some(key)) if spec.resume => Checkpoint::load(&spec.path, key)
            .map(|cp| cp.cells.into_iter().filter(|(_, c)| c.is_clean()).collect())
            .unwrap_or_default(),
        _ => HashMap::new(),
    };

    // The result store is likewise telemetry-exclusive: stored cells
    // carry counters only, so serving one would silently drop the
    // reports an instrumented run exists to collect.
    let store = match (&opts.store, &opts.telemetry) {
        (Some(_), Some(_)) => {
            eprintln!("drs-harness: result store disabled for telemetry runs");
            None
        }
        (s, _) => s.as_deref(),
    };
    // Durable lookup: any cell the store already has skips capture and
    // simulation entirely. An injected StoreCorrupt fault damages the
    // entry first, proving the quarantine-and-recompute path end-to-end.
    let mut stored_cells: HashMap<JobId, CheckpointCell> = HashMap::new();
    if let Some(store) = store {
        for (i, job) in jobs.iter().enumerate() {
            let id = job.id();
            if resumed_cells.contains_key(&id) {
                continue;
            }
            if opts.faults.fault_for(i, id, 1) == Some(FaultKind::StoreCorrupt)
                && store.scramble(id)
            {
                eprintln!("drs-harness: injected store corruption for job {id}");
            }
            if let Some(cell) = store.lookup(id) {
                stored_cells.insert(id, cell);
            }
        }
    }

    let checkpoint_state = checkpoint.zip(key).map(|(spec, key)| {
        let mut snapshot = Checkpoint::new(key);
        // Seed the snapshot with the resumed and store-served cells so a
        // chain of resumes never loses earlier work.
        for (id, cell) in resumed_cells.iter().chain(&stored_cells) {
            snapshot.cells.insert(*id, cell.clone());
        }
        CheckpointState {
            path: spec.path.clone(),
            snapshot: Mutex::new(snapshot),
            writes: AtomicUsize::new(0),
        }
    });

    // Phase 1: capture the distinct workloads still needed (fully resumed
    // or store-served jobs contribute nothing to the capture set).
    let mut seen = std::collections::HashSet::new();
    let mut distinct = Vec::new();
    for j in jobs {
        if !resumed_cells.contains_key(&j.id())
            && !stored_cells.contains_key(&j.id())
            && seen.insert(j.workload.content_key())
        {
            distinct.push(j.workload);
        }
    }
    let captured = parallel_map_catching(&distinct, opts.workers, |_, spec| match &opts.capture {
        CaptureMode::Uncached => spec.capture(),
        CaptureMode::Cached(cache) => cache.get_or_capture(spec),
    });
    let streams_by_key: HashMap<u64, Result<Arc<drs_trace::BounceStreams>, String>> = distinct
        .iter()
        .zip(captured)
        .map(|(spec, streams)| (spec.content_key(), streams.map(Arc::new).map_err(|p| p.message)))
        .collect();

    // Phase 2: simulate every cell.
    let total = jobs.len();
    let resumed_count = AtomicUsize::new(0);
    let cells = parallel_map(jobs, opts.workers, |i, job| {
        let label =
            format!("{} {} b{} w{}", job.workload.scene, job.method.label(), job.bounce, job.warps);
        if let Some(prior) = resumed_cells.get(&job.id()) {
            resumed_count.fetch_add(1, Ordering::Relaxed);
            if opts.progress {
                eprintln!("[{}/{total}] resume {label} (from checkpoint)", i + 1);
            }
            return prior.to_cell(*job);
        }
        if let Some(prior) = stored_cells.get(&job.id()) {
            if opts.progress {
                eprintln!("[{}/{total}] reuse  {label} (from store)", i + 1);
            }
            return prior.to_cell(*job);
        }
        if opts.progress {
            eprintln!("[{}/{total}] start  {label}", i + 1);
        }
        let cell = match &streams_by_key[&job.workload.content_key()] {
            Ok(streams) => run_one_job(i, job, streams, opts),
            Err(message) => CellResult {
                job: *job,
                empty: false,
                completed: false,
                stats: SimStats::default(),
                telemetry: None,
                sm_telemetry: Vec::new(),
                chip_telemetry: None,
                chip: None,
                failure: Some(CellFailure {
                    kind: "capture".to_string(),
                    message: format!("workload capture failed: {message}"),
                    cycle: None,
                    injected: false,
                    warp_dump: None,
                }),
                attempts: 1,
                wall_ms: 0.0,
            },
        };
        if let Some(state) = &checkpoint_state {
            state.record(&cell);
        }
        if let Some(store) = store {
            if cell.completed && cell.failure.is_none() {
                if let Err(e) = store.store(job.id(), &CheckpointCell::from_cell(&cell)) {
                    eprintln!(
                        "drs-harness: store write failed for job {} ({e}); \
                         the result is complete in memory, only durability was lost",
                        job.id()
                    );
                }
            }
        }
        if opts.progress {
            match &cell.failure {
                Some(f) => eprintln!(
                    "[{}/{total}] FAILED {label} ({}, {} attempt(s))",
                    i + 1,
                    f.kind,
                    cell.attempts
                ),
                None => eprintln!("[{}/{total}] finish {label} ({:.1} ms)", i + 1, cell.wall_ms),
            }
        }
        cell
    });

    // A fully clean run needs no resume: drop the checkpoint so the next
    // run starts fresh instead of trusting a stale file.
    if let Some(state) = &checkpoint_state {
        if cells.iter().all(|c| c.completed && c.failure.is_none()) {
            let _ = std::fs::remove_file(&state.path);
        }
    }

    let cache = match &opts.capture {
        CaptureMode::Uncached => CacheCounters::default(),
        CaptureMode::Cached(cache) => cache.counters(),
    };
    RunReport {
        cells,
        cache,
        resumed: resumed_count.into_inner(),
        checkpoint_writes: checkpoint_state
            .as_ref()
            .map_or(0, |s| s.writes.load(Ordering::Relaxed) as u64),
        store: store.map(ResultStore::counters).unwrap_or_default(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Run one job to a final [`CellResult`], owning the retry loop. Shared
/// with the server, which schedules cells individually instead of
/// through [`run_jobs`].
pub(crate) fn run_one_job(
    index: usize,
    job: &SimJob,
    streams: &Arc<drs_trace::BounceStreams>,
    opts: &RunOptions,
) -> CellResult {
    let job_start = Instant::now();
    if job.bounce > streams.depth() || streams.bounce(job.bounce).scripts.is_empty() {
        // No surviving rays at this depth (open scenes): a real,
        // reportable cell with zeroed counters.
        return CellResult {
            job: *job,
            empty: true,
            completed: true,
            stats: SimStats::default(),
            telemetry: None,
            sm_telemetry: Vec::new(),
            chip_telemetry: None,
            chip: None,
            failure: None,
            attempts: 1,
            wall_ms: 0.0,
        };
    }
    let scripts = &streams.bounce(job.bounce).scripts;
    let max_attempts = 1 + opts.retries;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let fault = opts.faults.fault_for(index, job.id(), attempt);
        match run_attempt(job, scripts, fault, opts) {
            Ok(success) => {
                return CellResult {
                    job: *job,
                    empty: false,
                    completed: true,
                    stats: success.stats,
                    telemetry: success.telemetry,
                    sm_telemetry: success.sm_telemetry,
                    chip_telemetry: success.chip_telemetry,
                    chip: success.chip,
                    failure: None,
                    attempts: attempt,
                    wall_ms: job_start.elapsed().as_secs_f64() * 1e3,
                };
            }
            Err(boxed) => {
                let (failure, partial) = *boxed;
                let transient =
                    failure.injected || matches!(failure.kind.as_str(), "panic" | "cache_corrupt");
                if transient && attempt < max_attempts {
                    let backoff = opts
                        .retry_backoff_ms
                        .saturating_mul(1u64 << (attempt - 1).min(16))
                        .min(MAX_BACKOFF_MS);
                    if backoff > 0 {
                        std::thread::sleep(Duration::from_millis(backoff));
                    }
                    continue;
                }
                return CellResult {
                    job: *job,
                    empty: false,
                    completed: false,
                    stats: partial,
                    telemetry: None,
                    sm_telemetry: Vec::new(),
                    chip_telemetry: None,
                    chip: None,
                    failure: Some(failure),
                    attempts: attempt,
                    wall_ms: job_start.elapsed().as_secs_f64() * 1e3,
                };
            }
        }
    }
}

/// What a successful attempt produced: the stats plus whichever
/// telemetry artifacts the cell's mode yields (single-SMX report, or the
/// per-SM reports and chip memory-system report for full-chip cells).
struct AttemptSuccess {
    stats: SimStats,
    telemetry: Option<TelemetryReport>,
    sm_telemetry: Vec<TelemetryReport>,
    chip_telemetry: Option<ChipTelemetryReport>,
    chip: Option<ChipSummary>,
}

/// Outcome of a single cell attempt. The error side is boxed —
/// `SimStats` is large — and carries the partial stats accumulated
/// before the failure. The chip summary is `Some` exactly for
/// successful full-chip cells.
type AttemptOutcome = Result<AttemptSuccess, Box<(CellFailure, SimStats)>>;

/// Flatten a finished chip run into the per-cell summary row.
fn chip_summary(r: &drs_chip::ChipResult) -> ChipSummary {
    ChipSummary {
        sms: r.per_sm.len(),
        l2_hits: r.chip.l2.hits,
        l2_misses: r.chip.l2.misses,
        l2_evictions: r.chip.l2_evictions,
        requests: r.chip.requests,
        dram_lines: r.chip.dram_lines,
        dram_busy_q: r.chip.dram_busy_q,
        dram_queue_cycles: r.chip.dram_queue_cycles,
        bank_conflict_cycles: r.chip.bank_conflict_cycles,
        mshr_merges: r.chip.mshr_merges,
        mshr_waits: r.chip.mshr_waits,
        per_sm_cycles: r.per_sm.iter().map(|s| s.cycles).collect(),
        per_sm_rays: r.per_sm.iter().map(|s| s.rays_completed).collect(),
    }
}

/// One isolated attempt: inject the planned fault (if any), run the cell
/// under `catch_unwind`, and map every outcome to data.
fn run_attempt(
    job: &SimJob,
    scripts: &[drs_trace::RayScript],
    fault: Option<FaultKind>,
    opts: &RunOptions,
) -> AttemptOutcome {
    let injected = fault.is_some();
    if fault == Some(FaultKind::CacheCorrupt) {
        return Err(Box::new((
            CellFailure {
                kind: "cache_corrupt".to_string(),
                message: "injected corrupted capture-cache read".to_string(),
                cycle: None,
                injected: true,
                warp_dump: None,
            },
            SimStats::default(),
        )));
    }
    let mut cfg = CellConfig::new(job.method, job.warps);
    cfg.fastpath = opts.fastpath;
    cfg.cycle_budget = opts.job_cycle_budget;
    cfg.chip = job.chip;
    cfg.chip_threads = opts.chip_threads.max(1);
    if let Some(ms) = opts.job_timeout_ms {
        cfg.deadline = Some((Instant::now() + Duration::from_millis(ms), ms));
    }
    match fault {
        Some(FaultKind::WatchdogTrip) => cfg.watchdog_trip_at = Some(INJECTED_TRIP_CYCLE),
        Some(FaultKind::BudgetExhaust) => {
            cfg.cycle_budget = Some(
                cfg.cycle_budget.map_or(INJECTED_CYCLE_BUDGET, |b| b.min(INJECTED_CYCLE_BUDGET)),
            );
        }
        Some(FaultKind::ChipConfigCorrupt) => {
            // Corrupt the chip config (zero SMs) so the attempt trips
            // the simulator's typed `chip_config` validation error; a
            // non-chip job is forced onto the chip path for the purpose.
            cfg.chip =
                Some(ChipConfig { sms: 0, ..cfg.chip.unwrap_or_else(|| ChipConfig::gtx780(1)) });
        }
        _ => {}
    }
    let outcome = catch_quietly(|| {
        assert!(fault != Some(FaultKind::WorkerPanic), "injected worker panic (job {})", job.id());
        if cfg.chip.is_some() {
            let (result, sm_telemetry, chip_telemetry) =
                crate::runner::run_chip_cell(&cfg, scripts, opts.telemetry);
            match result {
                Ok(chip) => {
                    let summary = chip_summary(&chip);
                    (Ok(chip.aggregate), None, sm_telemetry, chip_telemetry, Some(summary))
                }
                Err(err) => (Err(err), None, Vec::new(), None, None),
            }
        } else {
            let (result, telemetry) = crate::runner::run_cell(&cfg, scripts, opts.telemetry);
            (result, telemetry, Vec::new(), None, None)
        }
    });
    match outcome {
        Ok((Ok(stats), telemetry, sm_telemetry, chip_telemetry, chip)) => {
            Ok(AttemptSuccess { stats, telemetry, sm_telemetry, chip_telemetry, chip })
        }
        Ok((Err(err), _, _, _, _)) => Err(Box::new(failure_from_sim_error(err, injected))),
        Err(caught) => Err(Box::new((
            CellFailure {
                kind: "panic".to_string(),
                message: caught.message,
                cycle: None,
                injected,
                warp_dump: None,
            },
            SimStats::default(),
        ))),
    }
}

/// Turn a typed simulator failure into a structured cell record, keeping
/// the partial stats and (for watchdog trips) the warp dump as data.
fn failure_from_sim_error(err: SimError, injected_fault: bool) -> (CellFailure, SimStats) {
    let message = err.to_string();
    let kind = err.kind.label().to_string();
    let (injected, warp_dump) = match &err.kind {
        SimErrorKind::Watchdog { injected, dump, .. } => {
            (*injected || injected_fault, Some(dump.to_string()))
        }
        _ => (injected_fault, None),
    };
    (CellFailure { kind, message, cycle: Some(err.cycle), injected, warp_dump }, *err.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 3, 8] {
            let out = parallel_map(&items, workers, |i, &v| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, v| *v).is_empty());
        let one = [7u32];
        assert_eq!(parallel_map(&one, 16, |_, v| *v + 1), vec![8]);
    }

    #[test]
    fn parallel_map_runs_every_item_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        parallel_map(&items, 7, |_, &i| counts[i].fetch_add(1, Ordering::Relaxed));
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn catching_map_isolates_panics_per_item() {
        let items: Vec<usize> = (0..40).collect();
        for workers in [1, 4] {
            let out = parallel_map_catching(&items, workers, |_, &v| {
                assert!(v % 7 != 3, "boom on {v}");
                v * 10
            });
            assert_eq!(out.len(), items.len());
            for (v, r) in items.iter().zip(&out) {
                if v % 7 == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.message, format!("boom on {v}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), v * 10);
                }
            }
        }
    }

    #[test]
    fn caught_panic_extracts_string_payloads() {
        let r = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(CaughtPanic::from_payload(r.as_ref()).message, "static str");
        let r = catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(CaughtPanic::from_payload(r.as_ref()).message, "formatted 7");
        let r = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(CaughtPanic::from_payload(r.as_ref()).message, "panic with non-string payload");
    }
}
