//! Executing one method over one ray stream — the leaf operation every
//! job in the pool performs.

use crate::job::Method;
use drs_baselines::{DmkConfig, DmkKernel, DmkUnit, TbcConfig, TbcUnit};
use drs_core::system::RowedWhileIf;
use drs_core::{DrsConfig, DrsUnit};
use drs_kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs_sim::{GpuConfig, NullSpecial, SimOutcome, Simulation, TelemetrySink};
use drs_telemetry::{TelemetryCollector, TelemetryConfig, TelemetryReport};
use drs_trace::RayScript;

/// Run `method` with `warps` resident warps over one ray stream to
/// completion. Deterministic: the simulator is single-threaded and all
/// inputs are explicit, so equal arguments give bit-identical
/// [`SimStats`](drs_sim::SimStats).
///
/// Unlike the pre-harness runner this does **not** panic when the safety
/// cycle cap fires; the caller decides how to report `completed == false`.
pub fn run_method_with_warps(method: Method, warps: usize, scripts: &[RayScript]) -> SimOutcome {
    run_inner(method, warps, scripts, None, true)
}

/// Like [`run_method_with_warps`], with explicit control over the engine's
/// event-driven fast path. `fastpath: false` forces naive one-cycle
/// stepping — the reference behavior the perf harness and the CI A/B smoke
/// diff against; results are bit-identical either way.
pub fn run_method_with_warps_fastpath(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    fastpath: bool,
) -> SimOutcome {
    run_inner(method, warps, scripts, None, fastpath)
}

/// Like [`run_method_with_warps`], but with a [`TelemetryCollector`]
/// attached: also returns the stall-attribution / timeline report.
///
/// Telemetry is observational — the [`SimOutcome`] is bit-identical to
/// the plain runner's (asserted by the harness test suite).
pub fn run_method_with_warps_telemetry(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    config: TelemetryConfig,
) -> (SimOutcome, TelemetryReport) {
    run_method_with_warps_telemetry_fastpath(method, warps, scripts, config, true)
}

/// Like [`run_method_with_warps_telemetry`], with explicit fast-path
/// control. The telemetry report — totals, interval timeline, trace spans
/// — is identical with the fast path on or off (asserted by the harness
/// test suite): skipped spans are bulk-charged to the same buckets naive
/// stepping would attribute cycle by cycle.
pub fn run_method_with_warps_telemetry_fastpath(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    config: TelemetryConfig,
    fastpath: bool,
) -> (SimOutcome, TelemetryReport) {
    let mut collector = TelemetryCollector::new(config);
    let out = run_inner(method, warps, scripts, Some(&mut collector), fastpath);
    (out, collector.into_report())
}

fn run_inner<'w>(
    method: Method,
    warps: usize,
    scripts: &'w [RayScript],
    sink: Option<&'w mut dyn TelemetrySink>,
    fastpath: bool,
) -> SimOutcome {
    let gpu = GpuConfig { max_warps: warps, max_cycles: 4_000_000_000, ..GpuConfig::gtx780() };
    let mut sim = match method {
        Method::Aila => {
            let k = WhileWhileKernel::new(WhileWhileConfig::default());
            Simulation::new(gpu, k.program(), Box::new(k.clone()), Box::new(NullSpecial), scripts)
        }
        Method::AilaVariant { speculative_traversal, replace_terminated } => {
            let k = WhileWhileKernel::new(WhileWhileConfig {
                speculative_traversal,
                replace_terminated,
            });
            Simulation::new(gpu, k.program(), Box::new(k.clone()), Box::new(NullSpecial), scripts)
        }
        Method::Dmk => {
            let cfg = DmkConfig { warps, lanes: 32, pool_slots: warps * 32 };
            let k = DmkKernel::new(cfg);
            Simulation::new(
                gpu,
                k.program(),
                Box::new(k.clone()),
                Box::new(DmkUnit::new(cfg)),
                scripts,
            )
        }
        Method::Tbc => {
            let k = WhileIfKernel::new();
            let cfg = TbcConfig { warps, lanes: 32, warps_per_block: 6.min(warps) };
            Simulation::new(
                gpu,
                k.program(),
                Box::new(k.clone()),
                Box::new(TbcUnit::new(cfg)),
                scripts,
            )
        }
        Method::Drs { backup_rows, swap_buffers, .. } => {
            let cfg = DrsConfig { warps, backup_rows, swap_buffers, ideal: false, lanes: 32 };
            let k = WhileIfKernel::new();
            let behavior = RowedWhileIf::new(cfg.rows());
            Simulation::new(
                gpu,
                k.program(),
                Box::new(behavior),
                Box::new(DrsUnit::new(cfg)),
                scripts,
            )
        }
        Method::IdealDrs => {
            let cfg = DrsConfig { warps, backup_rows: 1, swap_buffers: 6, ideal: true, lanes: 32 };
            let k = WhileIfKernel::new();
            let behavior = RowedWhileIf::new(cfg.rows());
            Simulation::new(
                gpu,
                k.program(),
                Box::new(behavior),
                Box::new(DrsUnit::new(cfg)),
                scripts,
            )
        }
    };
    if let Some(sink) = sink {
        sim.attach_telemetry(sink);
    }
    sim.set_fastpath(fastpath);
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_scene::SceneKind;
    use drs_trace::BounceStreams;

    #[test]
    fn aila_variant_with_defaults_matches_aila() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(2).scripts;
        let a = run_method_with_warps(Method::Aila, 8, scripts);
        let b = run_method_with_warps(
            Method::AilaVariant { speculative_traversal: true, replace_terminated: true },
            8,
            scripts,
        );
        assert_eq!(a.stats, b.stats);
        assert!(a.completed);
    }

    #[test]
    fn telemetry_runner_is_observational_and_balanced() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(1).scripts;
        let plain = run_method_with_warps(Method::Aila, 8, scripts);
        let (out, report) = run_method_with_warps_telemetry(
            Method::Aila,
            8,
            scripts,
            TelemetryConfig { interval: 500, trace: true, ..TelemetryConfig::default() },
        );
        assert_eq!(plain.stats, out.stats, "attaching telemetry must not change results");
        assert_eq!(report.warps, 8);
        assert_eq!(report.cycles, out.stats.cycles);
        report.check_identity().unwrap();
        assert!(
            (report.weighted_simd_efficiency() - out.stats.simd_efficiency()).abs() < 1e-9,
            "interval series must reproduce the aggregate efficiency"
        );
        assert!(report.trace.as_ref().is_some_and(|t| !t.spans.is_empty()));
    }
}
