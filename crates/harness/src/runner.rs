//! Executing one method over one ray stream — the leaf operation every
//! job in the pool performs.

use crate::job::Method;
use drs_baselines::{DmkConfig, DmkKernel, DmkUnit, TbcConfig, TbcUnit};
use drs_core::system::RowedWhileIf;
use drs_core::{DrsConfig, DrsUnit};
use drs_kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs_sim::{GpuConfig, NullSpecial, SimError, SimStats, Simulation, TelemetrySink};
use drs_telemetry::{TelemetryCollector, TelemetryConfig, TelemetryReport};
use drs_trace::RayScript;
use std::time::Instant;

/// Everything needed to execute one experiment cell, including the
/// fault-tolerance knobs the pool threads through: an optional per-job
/// cycle budget, a wall-clock deadline, and a deterministic injected
/// watchdog trip (fault-injection testing).
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    /// Method / hardware configuration under test.
    pub method: Method,
    /// Resident warps.
    pub warps: usize,
    /// Engine event-driven fast path (`false` forces naive stepping).
    pub fastpath: bool,
    /// Per-job cycle budget overriding the default safety cap.
    pub cycle_budget: Option<u64>,
    /// Wall-clock deadline: (absolute instant, budget in ms for reporting).
    pub deadline: Option<(Instant, u64)>,
    /// Trip the no-progress watchdog at this cycle (deterministic fault
    /// injection; see [`FaultPlan`](crate::fault::FaultPlan)).
    pub watchdog_trip_at: Option<u64>,
}

impl CellConfig {
    /// A plain cell: no budgets, no injection, fast path on.
    pub fn new(method: Method, warps: usize) -> CellConfig {
        CellConfig {
            method,
            warps,
            fastpath: true,
            cycle_budget: None,
            deadline: None,
            watchdog_trip_at: None,
        }
    }
}

/// Run one cell to completion or typed failure. Deterministic for equal
/// inputs (deadlines excepted — they depend on wall-clock): the simulator
/// is single-threaded and all inputs are explicit, so equal arguments give
/// bit-identical [`SimStats`].
///
/// On failure the [`SimError`] carries the failure kind, cycle, and the
/// partial counter set — the caller records it as data instead of losing
/// the run.
pub fn run_cell(
    cfg: &CellConfig,
    scripts: &[RayScript],
    telemetry: Option<TelemetryConfig>,
) -> (Result<SimStats, SimError>, Option<TelemetryReport>) {
    match telemetry {
        Some(tcfg) => {
            let mut collector = TelemetryCollector::new(tcfg);
            let out = run_inner(cfg, scripts, Some(&mut collector));
            (out, Some(collector.into_report()))
        }
        None => (run_inner(cfg, scripts, None), None),
    }
}

/// Run `method` with `warps` resident warps over one ray stream to
/// completion, with the default safety cycle cap and no injection.
///
/// # Errors
///
/// Returns the typed [`SimError`] (cycle cap, watchdog, invariant) with
/// partial stats instead of panicking; the caller decides how to report it.
pub fn run_method_with_warps(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
) -> Result<SimStats, SimError> {
    run_inner(&CellConfig::new(method, warps), scripts, None)
}

/// Like [`run_method_with_warps`], with explicit control over the engine's
/// event-driven fast path. `fastpath: false` forces naive one-cycle
/// stepping — the reference behavior the perf harness and the CI A/B smoke
/// diff against; results are bit-identical either way.
///
/// # Errors
///
/// See [`run_method_with_warps`].
pub fn run_method_with_warps_fastpath(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    fastpath: bool,
) -> Result<SimStats, SimError> {
    run_inner(&CellConfig { fastpath, ..CellConfig::new(method, warps) }, scripts, None)
}

/// Like [`run_method_with_warps`], but with a [`TelemetryCollector`]
/// attached: also returns the stall-attribution / timeline report.
///
/// Telemetry is observational — the stats are bit-identical to the plain
/// runner's (asserted by the harness test suite).
pub fn run_method_with_warps_telemetry(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    config: TelemetryConfig,
) -> (Result<SimStats, SimError>, TelemetryReport) {
    run_method_with_warps_telemetry_fastpath(method, warps, scripts, config, true)
}

/// Like [`run_method_with_warps_telemetry`], with explicit fast-path
/// control. The telemetry report — totals, interval timeline, trace spans
/// — is identical with the fast path on or off (asserted by the harness
/// test suite): skipped spans are bulk-charged to the same buckets naive
/// stepping would attribute cycle by cycle.
pub fn run_method_with_warps_telemetry_fastpath(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    config: TelemetryConfig,
    fastpath: bool,
) -> (Result<SimStats, SimError>, TelemetryReport) {
    let cfg = CellConfig { fastpath, ..CellConfig::new(method, warps) };
    let (out, report) = run_cell(&cfg, scripts, Some(config));
    (out, report.expect("telemetry was requested"))
}

fn run_inner<'w>(
    cfg: &CellConfig,
    scripts: &'w [RayScript],
    sink: Option<&'w mut dyn TelemetrySink>,
) -> Result<SimStats, SimError> {
    let warps = cfg.warps;
    let gpu = GpuConfig {
        max_warps: warps,
        max_cycles: cfg.cycle_budget.unwrap_or(4_000_000_000),
        ..GpuConfig::gtx780()
    };
    let mut sim = match cfg.method {
        Method::Aila => {
            let k = WhileWhileKernel::new(WhileWhileConfig::default());
            Simulation::new(gpu, k.program(), Box::new(k.clone()), Box::new(NullSpecial), scripts)
        }
        Method::AilaVariant { speculative_traversal, replace_terminated } => {
            let k = WhileWhileKernel::new(WhileWhileConfig {
                speculative_traversal,
                replace_terminated,
            });
            Simulation::new(gpu, k.program(), Box::new(k.clone()), Box::new(NullSpecial), scripts)
        }
        Method::Dmk => {
            let cfg = DmkConfig { warps, lanes: 32, pool_slots: warps * 32 };
            let k = DmkKernel::new(cfg);
            Simulation::new(
                gpu,
                k.program(),
                Box::new(k.clone()),
                Box::new(DmkUnit::new(cfg)),
                scripts,
            )
        }
        Method::Tbc => {
            let k = WhileIfKernel::new();
            let cfg = TbcConfig { warps, lanes: 32, warps_per_block: 6.min(warps) };
            Simulation::new(
                gpu,
                k.program(),
                Box::new(k.clone()),
                Box::new(TbcUnit::new(cfg)),
                scripts,
            )
        }
        Method::Drs { backup_rows, swap_buffers, .. } => {
            let cfg = DrsConfig { warps, backup_rows, swap_buffers, ideal: false, lanes: 32 };
            let k = WhileIfKernel::new();
            let behavior = RowedWhileIf::new(cfg.rows());
            Simulation::new(
                gpu,
                k.program(),
                Box::new(behavior),
                Box::new(DrsUnit::new(cfg)),
                scripts,
            )
        }
        Method::IdealDrs => {
            let cfg = DrsConfig { warps, backup_rows: 1, swap_buffers: 6, ideal: true, lanes: 32 };
            let k = WhileIfKernel::new();
            let behavior = RowedWhileIf::new(cfg.rows());
            Simulation::new(
                gpu,
                k.program(),
                Box::new(behavior),
                Box::new(DrsUnit::new(cfg)),
                scripts,
            )
        }
    };
    if let Some(sink) = sink {
        sim.attach_telemetry(sink);
    }
    sim.set_fastpath(cfg.fastpath);
    if let Some(at) = cfg.watchdog_trip_at {
        sim.inject_watchdog_trip(at);
    }
    if let Some((instant, budget_ms)) = cfg.deadline {
        sim.set_deadline(instant, budget_ms);
    }
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_scene::SceneKind;
    use drs_sim::SimErrorKind;
    use drs_trace::BounceStreams;

    #[test]
    fn aila_variant_with_defaults_matches_aila() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(2).scripts;
        let a = run_method_with_warps(Method::Aila, 8, scripts).expect("completes");
        let b = run_method_with_warps(
            Method::AilaVariant { speculative_traversal: true, replace_terminated: true },
            8,
            scripts,
        )
        .expect("completes");
        assert_eq!(a, b);
    }

    #[test]
    fn telemetry_runner_is_observational_and_balanced() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(1).scripts;
        let plain = run_method_with_warps(Method::Aila, 8, scripts).expect("completes");
        let (out, report) = run_method_with_warps_telemetry(
            Method::Aila,
            8,
            scripts,
            TelemetryConfig { interval: 500, trace: true, ..TelemetryConfig::default() },
        );
        let stats = out.expect("completes");
        assert_eq!(plain, stats, "attaching telemetry must not change results");
        assert_eq!(report.warps, 8);
        assert_eq!(report.cycles, stats.cycles);
        report.check_identity().unwrap();
        assert!(
            (report.weighted_simd_efficiency() - stats.simd_efficiency()).abs() < 1e-9,
            "interval series must reproduce the aggregate efficiency"
        );
        assert!(report.trace.as_ref().is_some_and(|t| !t.spans.is_empty()));
    }

    #[test]
    fn cycle_budget_returns_typed_error_with_partial_stats() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(1).scripts;
        let cfg = CellConfig { cycle_budget: Some(50), ..CellConfig::new(Method::Aila, 8) };
        let (out, _) = run_cell(&cfg, scripts, None);
        let err = out.expect_err("50 cycles cannot finish the stream");
        assert!(matches!(err.kind, SimErrorKind::CycleLimit { max_cycles: 50 }));
        assert_eq!(err.stats.cycles, 50, "partial stats must be populated");
    }

    #[test]
    fn injected_watchdog_trip_carries_warp_dump() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(1).scripts;
        let cfg = CellConfig { watchdog_trip_at: Some(40), ..CellConfig::new(Method::Aila, 4) };
        let (out, _) = run_cell(&cfg, scripts, None);
        let err = out.expect_err("injected trip must fire");
        match err.kind {
            SimErrorKind::Watchdog { injected, dump, .. } => {
                assert!(injected);
                assert_eq!(dump.warps.len(), 4, "one dump entry per warp");
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
    }
}
