//! Executing one method over one ray stream — the leaf operation every
//! job in the pool performs.

use crate::job::Method;
use drs_baselines::{DmkConfig, DmkKernel, DmkUnit, TbcConfig, TbcUnit};
use drs_chip::{run_chip_observed, ChipResult};
use drs_core::system::RowedWhileIf;
use drs_core::{DrsConfig, DrsUnit, RAY_REGISTERS};
use drs_kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs_sim::{
    ChipConfig, GpuConfig, NullSpecial, Program, SimError, SimStats, Simulation, TelemetrySink,
};
use drs_telemetry::{
    ChipTelemetryCollector, ChipTelemetryReport, TelemetryCollector, TelemetryConfig,
    TelemetryReport,
};
use drs_trace::RayScript;
use std::time::Instant;

/// Everything needed to execute one experiment cell, including the
/// fault-tolerance knobs the pool threads through: an optional per-job
/// cycle budget, a wall-clock deadline, and a deterministic injected
/// watchdog trip (fault-injection testing).
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    /// Method / hardware configuration under test.
    pub method: Method,
    /// Resident warps.
    pub warps: usize,
    /// Engine event-driven fast path (`false` forces naive stepping).
    pub fastpath: bool,
    /// Per-job cycle budget overriding the default safety cap.
    pub cycle_budget: Option<u64>,
    /// Wall-clock deadline: (absolute instant, budget in ms for reporting).
    pub deadline: Option<(Instant, u64)>,
    /// Trip the no-progress watchdog at this cycle (deterministic fault
    /// injection; see [`FaultPlan`](crate::fault::FaultPlan)).
    pub watchdog_trip_at: Option<u64>,
    /// Derive the DRS swap engine's per-ray transfer cost from the
    /// kernel's shuffle live sets (`drs-verify`) instead of the paper's
    /// fixed 17 registers. Results are bit-identical whenever the derived
    /// count equals the constant — asserted by the golden test.
    pub derived_transfer_cost: bool,
    /// Full-chip mode: shard the stream over `chip.sms` SM engines
    /// sharing one banked L2 / MSHR pool / DRAM channel (`drs-chip`).
    pub chip: Option<ChipConfig>,
    /// Worker threads sharding the SMs inside each chip window (chip mode
    /// only). Results are bit-identical for any value, so this is an
    /// execution knob, never part of job identity.
    pub chip_threads: usize,
}

impl CellConfig {
    /// A plain cell: no budgets, no injection, fast path on, constant
    /// transfer cost, single-SMX mode.
    pub fn new(method: Method, warps: usize) -> CellConfig {
        CellConfig {
            method,
            warps,
            fastpath: true,
            cycle_budget: None,
            deadline: None,
            watchdog_trip_at: None,
            derived_transfer_cost: false,
            chip: None,
            chip_threads: 1,
        }
    }
}

/// The DRS per-ray transfer cost for a kernel program: statically derived
/// from its shuffle-point live sets when `derived` is set, the paper's
/// fixed [`RAY_REGISTERS`] otherwise.
fn transfer_regs(program: &Program, derived: bool) -> u8 {
    if derived {
        let regs = drs_verify::live_set_summary(program).transfer_regs();
        u8::try_from(regs).expect("live sets fit the 64-register scoreboard")
    } else {
        RAY_REGISTERS as u8
    }
}

/// Build the simulation, arming the verifier's static resource bounds as
/// runtime cross-checks when the `validate` feature is on.
fn new_sim<'w>(
    gpu: GpuConfig,
    program: Program,
    behavior: Box<dyn drs_sim::KernelBehavior + 'w>,
    special: Box<dyn drs_sim::SpecialUnit + 'w>,
    scripts: &'w [RayScript],
) -> Simulation<'w> {
    #[cfg(feature = "validate")]
    let bounds = {
        let summary = drs_verify::live_set_summary(&program);
        (summary.stack_depth_bound(gpu.simd_lanes), summary.distinct_dsts)
    };
    #[cfg_attr(not(feature = "validate"), allow(unused_mut))]
    let mut sim = Simulation::new(gpu, program, behavior, special, scripts);
    #[cfg(feature = "validate")]
    {
        sim.set_stack_depth_bound(bounds.0);
        sim.set_inflight_regs_bound(bounds.1);
    }
    sim
}

/// Run one cell to completion or typed failure. Deterministic for equal
/// inputs (deadlines excepted — they depend on wall-clock): the simulator
/// is single-threaded and all inputs are explicit, so equal arguments give
/// bit-identical [`SimStats`].
///
/// On failure the [`SimError`] carries the failure kind, cycle, and the
/// partial counter set — the caller records it as data instead of losing
/// the run.
pub fn run_cell(
    cfg: &CellConfig,
    scripts: &[RayScript],
    telemetry: Option<TelemetryConfig>,
) -> (Result<SimStats, SimError>, Option<TelemetryReport>) {
    match telemetry {
        Some(tcfg) => {
            let mut collector = TelemetryCollector::new(tcfg);
            let out = run_inner(cfg, scripts, Some(&mut collector));
            (out, Some(collector.into_report()))
        }
        None => (run_inner(cfg, scripts, None), None),
    }
}

/// Run `method` with `warps` resident warps over one ray stream to
/// completion, with the default safety cycle cap and no injection.
///
/// # Errors
///
/// Returns the typed [`SimError`] (cycle cap, watchdog, invariant) with
/// partial stats instead of panicking; the caller decides how to report it.
pub fn run_method_with_warps(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
) -> Result<SimStats, SimError> {
    run_inner(&CellConfig::new(method, warps), scripts, None)
}

/// Like [`run_method_with_warps`], with explicit control over the engine's
/// event-driven fast path. `fastpath: false` forces naive one-cycle
/// stepping — the reference behavior the perf harness and the CI A/B smoke
/// diff against; results are bit-identical either way.
///
/// # Errors
///
/// See [`run_method_with_warps`].
pub fn run_method_with_warps_fastpath(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    fastpath: bool,
) -> Result<SimStats, SimError> {
    run_inner(&CellConfig { fastpath, ..CellConfig::new(method, warps) }, scripts, None)
}

/// Like [`run_method_with_warps`], but with a [`TelemetryCollector`]
/// attached: also returns the stall-attribution / timeline report.
///
/// Telemetry is observational — the stats are bit-identical to the plain
/// runner's (asserted by the harness test suite).
pub fn run_method_with_warps_telemetry(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    config: TelemetryConfig,
) -> (Result<SimStats, SimError>, TelemetryReport) {
    run_method_with_warps_telemetry_fastpath(method, warps, scripts, config, true)
}

/// Like [`run_method_with_warps_telemetry`], with explicit fast-path
/// control. The telemetry report — totals, interval timeline, trace spans
/// — is identical with the fast path on or off (asserted by the harness
/// test suite): skipped spans are bulk-charged to the same buckets naive
/// stepping would attribute cycle by cycle.
pub fn run_method_with_warps_telemetry_fastpath(
    method: Method,
    warps: usize,
    scripts: &[RayScript],
    config: TelemetryConfig,
    fastpath: bool,
) -> (Result<SimStats, SimError>, TelemetryReport) {
    let cfg = CellConfig { fastpath, ..CellConfig::new(method, warps) };
    let (out, report) = run_cell(&cfg, scripts, Some(config));
    (out, report.expect("telemetry was requested"))
}

fn run_inner<'w>(
    cfg: &CellConfig,
    scripts: &'w [RayScript],
    sink: Option<&'w mut dyn TelemetrySink>,
) -> Result<SimStats, SimError> {
    let gpu = gpu_for(cfg);
    let mut sim = build_method_sim(cfg, gpu, scripts);
    if let Some(sink) = sink {
        sim.attach_telemetry(sink);
    }
    arm_sim(&mut sim, cfg);
    sim.run()
}

/// The per-SMX GPU configuration a cell runs with.
fn gpu_for(cfg: &CellConfig) -> GpuConfig {
    GpuConfig {
        max_warps: cfg.warps,
        max_cycles: cfg.cycle_budget.unwrap_or(4_000_000_000),
        ..GpuConfig::gtx780()
    }
}

/// Apply the execution knobs (fast path, injected watchdog, deadline) to
/// a constructed engine — shared by the single-SMX and per-SM chip paths.
fn arm_sim(sim: &mut Simulation<'_>, cfg: &CellConfig) {
    sim.set_fastpath(cfg.fastpath);
    if let Some(at) = cfg.watchdog_trip_at {
        sim.inject_watchdog_trip(at);
    }
    if let Some((instant, budget_ms)) = cfg.deadline {
        sim.set_deadline(instant, budget_ms);
    }
}

/// Construct the engine for a cell's method over one ray stream.
fn build_method_sim<'w>(
    cfg: &CellConfig,
    gpu: GpuConfig,
    scripts: &'w [RayScript],
) -> Simulation<'w> {
    let warps = cfg.warps;
    match cfg.method {
        Method::Aila => {
            let k = WhileWhileKernel::new(WhileWhileConfig::default());
            new_sim(gpu, k.program(), Box::new(k.clone()), Box::new(NullSpecial), scripts)
        }
        Method::AilaVariant { speculative_traversal, replace_terminated } => {
            let k = WhileWhileKernel::new(WhileWhileConfig {
                speculative_traversal,
                replace_terminated,
            });
            new_sim(gpu, k.program(), Box::new(k.clone()), Box::new(NullSpecial), scripts)
        }
        Method::Dmk => {
            let dmk = DmkConfig { warps, lanes: 32, pool_slots: warps * 32 };
            let k = DmkKernel::new(dmk);
            new_sim(gpu, k.program(), Box::new(k.clone()), Box::new(DmkUnit::new(dmk)), scripts)
        }
        Method::Tbc => {
            let k = WhileIfKernel::new();
            let tbc = TbcConfig { warps, lanes: 32, warps_per_block: 6.min(warps) };
            new_sim(gpu, k.program(), Box::new(k.clone()), Box::new(TbcUnit::new(tbc)), scripts)
        }
        Method::Drs { backup_rows, swap_buffers, .. } => {
            let drs = DrsConfig { warps, backup_rows, swap_buffers, ideal: false, lanes: 32 };
            let k = WhileIfKernel::new();
            let program = k.program();
            let behavior = RowedWhileIf::new(drs.rows());
            let unit =
                DrsUnit::with_ray_regs(drs, transfer_regs(&program, cfg.derived_transfer_cost));
            new_sim(gpu, program, Box::new(behavior), Box::new(unit), scripts)
        }
        Method::IdealDrs => {
            let drs = DrsConfig { warps, backup_rows: 1, swap_buffers: 6, ideal: true, lanes: 32 };
            let k = WhileIfKernel::new();
            let program = k.program();
            let behavior = RowedWhileIf::new(drs.rows());
            let unit =
                DrsUnit::with_ray_regs(drs, transfer_regs(&program, cfg.derived_transfer_cost));
            new_sim(gpu, program, Box::new(behavior), Box::new(unit), scripts)
        }
    }
}

/// The contiguous shard of `scripts` SM `sm` of `sms` owns — the same
/// stream split the chip determinism tests assert on.
fn shard(scripts: &[RayScript], sm: usize, sms: usize) -> &[RayScript] {
    &scripts[sm * scripts.len() / sms..(sm + 1) * scripts.len() / sms]
}

/// Run one cell in full-chip mode: shard the stream over `chip.sms` SM
/// engines (same method, same per-SM GPU config) against one shared
/// memory system. When telemetry is requested, one collector is attached
/// per SM (the per-SM reports come back in SM order — each satisfies the
/// Σ-buckets identity for its own SM) and a [`ChipTelemetryCollector`]
/// is attached to the shared memory system, yielding the chip-wide
/// interval series and interference matrix.
///
/// Results are bit-identical for any `cfg.chip_threads` and for any
/// telemetry setting — the sinks are purely observational.
pub fn run_chip_cell(
    cfg: &CellConfig,
    scripts: &[RayScript],
    telemetry: Option<TelemetryConfig>,
) -> (Result<ChipResult, SimError>, Vec<TelemetryReport>, Option<ChipTelemetryReport>) {
    let chip = cfg.chip.expect("run_chip_cell needs CellConfig::chip");
    let gpu = gpu_for(cfg);
    // An invalid SM count would make sharding below panic; let run_chip
    // turn it into the typed chip_config error instead.
    if chip.validate().is_err() {
        let out = run_chip_observed(Vec::new(), &gpu, &chip, cfg.chip_threads.max(1), None);
        return (out, Vec::new(), None);
    }
    let mut collectors: Vec<TelemetryCollector> = match telemetry {
        Some(tcfg) => (0..chip.sms).map(|_| TelemetryCollector::new(tcfg)).collect(),
        None => Vec::new(),
    };
    let mut chip_collector = telemetry.map(|tcfg| ChipTelemetryCollector::new(tcfg.interval));
    let mut lanes: Vec<Simulation<'_>> = (0..chip.sms)
        .map(|sm| {
            let mut sim = build_method_sim(cfg, gpu.clone(), shard(scripts, sm, chip.sms));
            arm_sim(&mut sim, cfg);
            sim
        })
        .collect();
    for (lane, collector) in lanes.iter_mut().zip(collectors.iter_mut()) {
        lane.attach_telemetry(collector);
    }
    let sink = chip_collector.as_mut().map(|c| c as &mut dyn drs_sim::ChipTelemetrySink);
    let out = run_chip_observed(lanes, &gpu, &chip, cfg.chip_threads.max(1), sink);
    let chip_report = match &out {
        Ok(_) => chip_collector.map(ChipTelemetryCollector::into_report),
        // A failed chip run never reached `on_finish`; there is no
        // consistent report to build.
        Err(_) => None,
    };
    (out, collectors.into_iter().map(TelemetryCollector::into_report).collect(), chip_report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_scene::SceneKind;
    use drs_sim::SimErrorKind;
    use drs_trace::BounceStreams;

    #[test]
    fn aila_variant_with_defaults_matches_aila() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(2).scripts;
        let a = run_method_with_warps(Method::Aila, 8, scripts).expect("completes");
        let b = run_method_with_warps(
            Method::AilaVariant { speculative_traversal: true, replace_terminated: true },
            8,
            scripts,
        )
        .expect("completes");
        assert_eq!(a, b);
    }

    #[test]
    fn telemetry_runner_is_observational_and_balanced() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(1).scripts;
        let plain = run_method_with_warps(Method::Aila, 8, scripts).expect("completes");
        let (out, report) = run_method_with_warps_telemetry(
            Method::Aila,
            8,
            scripts,
            TelemetryConfig { interval: 500, trace: true, ..TelemetryConfig::default() },
        );
        let stats = out.expect("completes");
        assert_eq!(plain, stats, "attaching telemetry must not change results");
        assert_eq!(report.warps, 8);
        assert_eq!(report.cycles, stats.cycles);
        report.check_identity().unwrap();
        assert!(
            (report.weighted_simd_efficiency() - stats.simd_efficiency()).abs() < 1e-9,
            "interval series must reproduce the aggregate efficiency"
        );
        assert!(report.trace.as_ref().is_some_and(|t| !t.spans.is_empty()));
    }

    /// Golden: the statically derived transfer cost for the while-if
    /// kernel is exactly the paper's 17 registers, so grid results with
    /// `derived_transfer_cost` on are bit-identical to the constant-cost
    /// baseline.
    #[test]
    fn derived_transfer_cost_is_bit_identical() {
        let program = WhileIfKernel::new().program();
        assert_eq!(transfer_regs(&program, true), RAY_REGISTERS as u8);
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(2).scripts;
        for method in [Method::drs_default(), Method::IdealDrs] {
            let constant = CellConfig::new(method, 8);
            let derived = CellConfig { derived_transfer_cost: true, ..constant };
            let (a, _) = run_cell(&constant, scripts, None);
            let (b, _) = run_cell(&derived, scripts, None);
            assert_eq!(
                a.expect("constant-cost run completes"),
                b.expect("derived-cost run completes"),
                "derived transfer cost must not change {method:?} results"
            );
        }
    }

    #[test]
    fn cycle_budget_returns_typed_error_with_partial_stats() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(1).scripts;
        let cfg = CellConfig { cycle_budget: Some(50), ..CellConfig::new(Method::Aila, 8) };
        let (out, _) = run_cell(&cfg, scripts, None);
        let err = out.expect_err("50 cycles cannot finish the stream");
        assert!(matches!(err.kind, SimErrorKind::CycleLimit { max_cycles: 50 }));
        assert_eq!(err.stats.cycles, 50, "partial stats must be populated");
    }

    #[test]
    fn injected_watchdog_trip_carries_warp_dump() {
        let scene = SceneKind::Conference.build_with_tris(2_000);
        let streams = BounceStreams::capture(&scene, 300, 2, 7);
        let scripts = &streams.bounce(1).scripts;
        let cfg = CellConfig { watchdog_trip_at: Some(40), ..CellConfig::new(Method::Aila, 4) };
        let (out, _) = run_cell(&cfg, scripts, None);
        let err = out.expect_err("injected trip must fire");
        match err.kind {
            SimErrorKind::Watchdog { injected, dump, .. } => {
                assert!(injected);
                assert_eq!(dump.warps.len(), 4, "one dump entry per warp");
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
    }
}
