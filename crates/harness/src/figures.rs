//! Declarative job sets: each figure/table of the paper's evaluation as a
//! plain enumeration of [`SimJob`]s.
//!
//! All sets share [`CANONICAL_DEPTH`]-bounce workloads per scene. Capture
//! fills each bounce bucket independently up to the ray budget, so the
//! first `k` bounces of a depth-8 capture are bit-identical to a depth-4
//! capture — which lets figures that only need bounces 1–4 (fig8, fig9,
//! table2) share one cached workload with the depth-8 figures instead of
//! recapturing per figure.

use crate::job::{JobSet, Method, Scale, SimJob, WorkloadSpec};
use drs_scene::SceneKind;

/// Capture depth shared by every figure's workloads.
pub const CANONICAL_DEPTH: usize = 8;

/// The four-method comparison grid of fig10/fig11/energy.
pub fn comparison_methods() -> [Method; 4] {
    [Method::Aila, Method::Dmk, Method::Tbc, Method::drs_default()]
}

fn job(wl: WorkloadSpec, bounce: usize, method: Method, scale: &Scale) -> SimJob {
    SimJob { workload: wl, bounce, method, warps: scale.warps(method.paper_warps()), chip: None }
}

/// Figure 2: Aila kernel per-bounce SIMD efficiency on the conference room.
pub fn fig2(scale: &Scale) -> JobSet {
    let mut set = JobSet::new("fig2");
    let wl = WorkloadSpec::standard(SceneKind::Conference, scale, CANONICAL_DEPTH);
    for b in 1..=CANONICAL_DEPTH {
        set.push(job(wl, b, Method::Aila, scale));
    }
    set
}

/// The method column of Figure 8: Aila, DRS backup-row sweep, ideal DRS.
pub fn fig8_methods() -> Vec<(String, Method)> {
    vec![
        ("Aila".into(), Method::Aila),
        (
            "DRS M=1 (no xbank, 58w)".into(),
            Method::Drs { backup_rows: 1, swap_buffers: 9, extra_bank: false },
        ),
        ("DRS M=1".into(), Method::Drs { backup_rows: 1, swap_buffers: 9, extra_bank: true }),
        ("DRS M=2".into(), Method::Drs { backup_rows: 2, swap_buffers: 9, extra_bank: true }),
        ("DRS M=4".into(), Method::Drs { backup_rows: 4, swap_buffers: 9, extra_bank: true }),
        ("DRS M=8".into(), Method::Drs { backup_rows: 8, swap_buffers: 9, extra_bank: true }),
        ("DRS ideal".into(), Method::IdealDrs),
    ]
}

/// Figure 8: Mrays/s for bounces 1–4 under different backup-row configs.
pub fn fig8(scale: &Scale) -> JobSet {
    let mut set = JobSet::new("fig8");
    for kind in SceneKind::ALL {
        let wl = WorkloadSpec::standard(kind, scale, CANONICAL_DEPTH);
        for (_, method) in fig8_methods() {
            for b in 1..=4 {
                set.push(job(wl, b, method, scale));
            }
        }
    }
    set
}

/// Figure 9: rdctrl stall rate vs backup rows (conference, fairy).
pub fn fig9(scale: &Scale) -> JobSet {
    let mut set = JobSet::new("fig9");
    for kind in [SceneKind::Conference, SceneKind::FairyForest] {
        let wl = WorkloadSpec::standard(kind, scale, CANONICAL_DEPTH);
        for m in [1usize, 2, 4, 8] {
            let method = Method::Drs { backup_rows: m, swap_buffers: 9, extra_bank: true };
            for b in 1..=4 {
                set.push(job(wl, b, method, scale));
            }
        }
    }
    set
}

/// The swap-buffer counts Table 2 sweeps.
pub const TABLE2_BUFFERS: [usize; 4] = [6, 9, 12, 18];

/// Table 2: Mrays/s vs swap-buffer count (1 backup row).
pub fn table2(scale: &Scale) -> JobSet {
    let mut set = JobSet::new("table2");
    for kind in SceneKind::ALL {
        let wl = WorkloadSpec::standard(kind, scale, CANONICAL_DEPTH);
        for b in 1..=4 {
            for buffers in TABLE2_BUFFERS {
                let method =
                    Method::Drs { backup_rows: 1, swap_buffers: buffers, extra_bank: false };
                set.push(job(wl, b, method, scale));
            }
        }
    }
    set
}

/// Figure 10: SIMD efficiency and utilization breakdown for all methods.
pub fn fig10(scale: &Scale) -> JobSet {
    comparison_grid("fig10", scale)
}

/// Figure 11: performance and speedups vs Aila — the same cell grid as
/// Figure 10, so in a combined run every cell is simulated once.
pub fn fig11(scale: &Scale) -> JobSet {
    comparison_grid("fig11", scale)
}

fn comparison_grid(name: &str, scale: &Scale) -> JobSet {
    let mut set = JobSet::new(name);
    for kind in SceneKind::ALL {
        let wl = WorkloadSpec::standard(kind, scale, CANONICAL_DEPTH);
        for method in comparison_methods() {
            for b in 1..=CANONICAL_DEPTH {
                set.push(job(wl, b, method, scale));
            }
        }
    }
    set
}

/// The Aila software-optimization ablation grid (conference, bounce 2).
pub fn ablation_variants() -> [(&'static str, Method); 4] {
    [
        (
            "while-while (plain)        ",
            Method::AilaVariant { speculative_traversal: false, replace_terminated: false },
        ),
        (
            "+ terminated-ray replace   ",
            Method::AilaVariant { speculative_traversal: false, replace_terminated: true },
        ),
        (
            "+ speculative traversal    ",
            Method::AilaVariant { speculative_traversal: true, replace_terminated: false },
        ),
        (
            "+ both (paper baseline)    ",
            Method::AilaVariant { speculative_traversal: true, replace_terminated: true },
        ),
    ]
}

/// Ablation: Aila's software-optimization knobs on conference bounce 2.
/// (The acceleration-structure ablations are functional, not simulation
/// cells, and stay in the `experiments` binary.)
pub fn ablation(scale: &Scale) -> JobSet {
    let mut set = JobSet::new("ablation");
    let wl = WorkloadSpec::standard(SceneKind::Conference, scale, CANONICAL_DEPTH);
    for (_, method) in ablation_variants() {
        set.push(job(wl, 2, method, scale));
    }
    set
}

/// Energy comparison: conference bounces 1–2 across the method grid.
pub fn energy(scale: &Scale) -> JobSet {
    let mut set = JobSet::new("energy");
    let wl = WorkloadSpec::standard(SceneKind::Conference, scale, CANONICAL_DEPTH);
    for b in 1..=2 {
        for method in comparison_methods() {
            set.push(job(wl, b, method, scale));
        }
    }
    set
}

/// Build the job set for a named figure, or `None` for unknown /
/// simulation-free modes (`table1`, `overhead`).
pub fn by_name(name: &str, scale: &Scale) -> Option<JobSet> {
    match name {
        "fig2" => Some(fig2(scale)),
        "fig8" => Some(fig8(scale)),
        "fig9" => Some(fig9(scale)),
        "table2" => Some(table2(scale)),
        "fig10" => Some(fig10(scale)),
        "fig11" => Some(fig11(scale)),
        "ablation" => Some(ablation(scale)),
        "energy" => Some(energy(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_expected_cell_counts() {
        let scale = Scale::default();
        assert_eq!(fig2(&scale).jobs.len(), 8);
        assert_eq!(fig8(&scale).jobs.len(), 4 * 7 * 4);
        assert_eq!(fig9(&scale).jobs.len(), 2 * 4 * 4);
        assert_eq!(table2(&scale).jobs.len(), 4 * 4 * 4);
        assert_eq!(fig10(&scale).jobs.len(), 4 * 4 * 8);
        assert_eq!(ablation(&scale).jobs.len(), 4);
        assert_eq!(energy(&scale).jobs.len(), 8);
    }

    #[test]
    fn fig10_and_fig11_share_every_cell() {
        let scale = Scale::default();
        let a: Vec<_> = fig10(&scale).jobs.iter().map(super::super::job::SimJob::id).collect();
        let b: Vec<_> = fig11(&scale).jobs.iter().map(super::super::job::SimJob::id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn one_workload_per_scene_across_all_figures() {
        // The point of the canonical depth: a whole `all` run needs
        // exactly four captures.
        let scale = Scale::default();
        let mut keys = std::collections::HashSet::new();
        for name in ["fig2", "fig8", "fig9", "table2", "fig10", "fig11", "ablation", "energy"] {
            for wl in by_name(name, &scale).unwrap().distinct_workloads() {
                keys.insert(wl.content_key());
            }
        }
        assert_eq!(keys.len(), SceneKind::ALL.len());
    }

    #[test]
    fn by_name_rejects_unknown_and_simulation_free_modes() {
        let scale = Scale::default();
        assert!(by_name("table1", &scale).is_none());
        assert!(by_name("overhead", &scale).is_none());
        assert!(by_name("nonsense", &scale).is_none());
    }
}
