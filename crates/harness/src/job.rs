//! The experiment job model: workloads, jobs, and content-derived ids.
//!
//! Every cell of the paper's evaluation — one (scene, bounce, method,
//! hardware-config) point of a figure or table — is a [`SimJob`]. Jobs are
//! plain data: building one costs nothing, so figure definitions can be
//! fully declarative ([`crate::figures`]) and the executor
//! ([`crate::pool`]) is free to dedupe, cache, and parallelize.

use drs_scene::SceneKind;
use drs_sim::ChipConfig;
use drs_trace::BounceStreams;

/// 64-bit FNV-1a over a byte string — the content hash behind [`JobId`]
/// and the capture-cache file names. Stable across platforms and runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The ray-tracing methods the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Aila-style software while-while kernel (48 warps).
    Aila,
    /// Aila's kernel with its software optimizations toggled — the
    /// ablation grid of DESIGN.md (48 warps, like [`Method::Aila`]).
    AilaVariant {
        /// Postpone one leaf and keep traversing while warp-mates traverse.
        speculative_traversal: bool,
        /// Fetch replacement rays for terminated lanes each outer iteration.
        replace_terminated: bool,
    },
    /// Dynamic Micro-Kernels (54 warps — spawn memory sized per the paper).
    Dmk,
    /// Thread Block Compaction (48 warps, 6-warp blocks).
    Tbc,
    /// Dynamic Ray Shuffling with explicit parameters.
    Drs {
        /// Backup ray rows.
        backup_rows: usize,
        /// Total swap buffers.
        swap_buffers: usize,
        /// Use the extra register bank (60 warps) or shrink to 58 warps.
        extra_bank: bool,
    },
    /// DRS with zero-cost shuffling.
    IdealDrs,
}

impl Method {
    /// The paper's default DRS configuration.
    pub fn drs_default() -> Method {
        Method::Drs { backup_rows: 1, swap_buffers: 6, extra_bank: false }
    }

    /// Display label used in the printed tables and JSON records.
    pub fn label(&self) -> String {
        match self {
            Method::Aila => "Aila".into(),
            Method::AilaVariant { speculative_traversal, replace_terminated } => format!(
                "Aila(spec={},repl={})",
                *speculative_traversal as u8, *replace_terminated as u8
            ),
            Method::Dmk => "DMK".into(),
            Method::Tbc => "TBC".into(),
            Method::Drs { backup_rows, swap_buffers, extra_bank } => {
                format!(
                    "DRS(M={backup_rows},B={swap_buffers}{})",
                    if *extra_bank { ",xbank" } else { "" }
                )
            }
            Method::IdealDrs => "DRS(ideal)".into(),
        }
    }

    /// Resident warps for this method before [`Scale::warps`] is applied.
    pub fn paper_warps(&self) -> usize {
        match self {
            Method::Aila | Method::AilaVariant { .. } => 48,
            Method::Dmk => 54,
            Method::Tbc => 48,
            // One backup row without the extra register bank costs two
            // warps' worth of registers (60 -> 58); the extra bank keeps 60.
            Method::Drs { extra_bank: false, .. } => 58,
            Method::Drs { extra_bank: true, .. } | Method::IdealDrs => 60,
        }
    }
}

/// The workload scaling knobs, resolved once at process start instead of
/// being re-read from the environment deep inside capture loops — so job
/// identity is explicit and tests never race on env mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Rays captured per bounce (`DRS_RAYS`, default 24000).
    pub rays: usize,
    /// Scene triangle count as a fraction of the original asset
    /// (`DRS_TRIS_SCALE`, default 0.1).
    pub tris_scale: f64,
    /// Scales the resident-warp counts (`DRS_WARPS_SCALE`, default 1.0).
    pub warps_scale: f64,
}

impl Default for Scale {
    fn default() -> Scale {
        Scale { rays: 24_000, tris_scale: 0.1, warps_scale: 1.0 }
    }
}

impl Scale {
    /// Resolve the scaling knobs from `DRS_RAYS`, `DRS_TRIS_SCALE`,
    /// `DRS_WARPS_SCALE`.
    pub fn from_env() -> Scale {
        fn env_f64(name: &str, default: f64) -> f64 {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        let d = Scale::default();
        Scale {
            rays: env_f64("DRS_RAYS", d.rays as f64) as usize,
            tris_scale: env_f64("DRS_TRIS_SCALE", d.tris_scale),
            warps_scale: env_f64("DRS_WARPS_SCALE", d.warps_scale),
        }
    }

    /// Triangle budget for a scene at this scale (floored at 2000 so the
    /// procedural generators always produce sensible geometry).
    pub fn tris(&self, kind: SceneKind) -> usize {
        ((kind.paper_triangle_count() as f64 * self.tris_scale) as usize).max(2_000)
    }

    /// Resident-warp count for a method at this scale (floored at 2).
    pub fn warps(&self, paper_warps: usize) -> usize {
        ((paper_warps as f64 * self.warps_scale) as usize).max(2)
    }
}

/// One capturable render+trace workload: the expensive input shared by
/// every simulation cell over the same scene.
///
/// All fields participate in [`WorkloadSpec::content_key`], which — with
/// the trace [`FORMAT_VERSION`](drs_trace::FORMAT_VERSION) — keys the
/// on-disk capture cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Which benchmark scene.
    pub scene: SceneKind,
    /// Triangle budget fed to the procedural generator.
    pub tris: usize,
    /// Target rays per bounce.
    pub rays: usize,
    /// Capture depth (number of bounces walked).
    pub bounces: usize,
    /// Path-tracing seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The standard workload for a scene at a given scale and depth, with
    /// the seed formula the experiment suite has always used.
    pub fn standard(scene: SceneKind, scale: &Scale, bounces: usize) -> WorkloadSpec {
        let tris = scale.tris(scene);
        WorkloadSpec { scene, tris, rays: scale.rays, bounces, seed: 0xD125_0000 + tris as u64 }
    }

    /// Canonical text form: the hash input for [`Self::content_key`] and a
    /// human-readable identity for logs.
    pub fn canonical(&self) -> String {
        format!(
            "scene={};tris={};rays={};bounces={};seed={:#x};fmt={}",
            self.scene,
            self.tris,
            self.rays,
            self.bounces,
            self.seed,
            drs_trace::FORMAT_VERSION
        )
    }

    /// Stable content-derived key (also the cache file stem).
    pub fn content_key(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// Run the render+trace capture for this workload (the expensive path
    /// the cache exists to skip).
    pub fn capture(&self) -> BounceStreams {
        let scene = self.scene.build_with_tris(self.tris);
        BounceStreams::capture(&scene, self.rays, self.bounces, self.seed)
    }
}

/// Stable content-derived identifier of a [`SimJob`] — equal inputs give
/// equal ids across runs, machines, and worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One experiment cell: run `method` with `warps` resident warps over
/// bounce `bounce` of `workload`'s captured ray streams.
///
/// Jobs are plain data with content-derived identity, so equal inputs
/// dedupe across figures and cache across runs:
///
/// ```
/// use drs_harness::{Method, Scale, SimJob, WorkloadSpec};
/// use drs_scene::SceneKind;
///
/// let scale = Scale::default();
/// let workload = WorkloadSpec::standard(SceneKind::Conference, &scale, 8);
/// let job = SimJob {
///     workload,
///     bounce: 2,
///     method: Method::drs_default(),
///     warps: 58,
///     chip: None,
/// };
///
/// // Identity is derived from the job's content, not its address: the
/// // same cell built twice (e.g. by two different figures) is one job.
/// let again = SimJob { chip: None, ..job };
/// assert_eq!(job.id(), again.id());
/// assert_ne!(job.id(), SimJob { bounce: 3, ..job }.id());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimJob {
    /// The captured input stream this job consumes.
    pub workload: WorkloadSpec,
    /// 1-based bounce index into the workload's streams.
    pub bounce: usize,
    /// Method / hardware configuration under test.
    pub method: Method,
    /// Resident warps (already scaled).
    pub warps: usize,
    /// Full-chip mode: shard the stream over `chip.sms` SM engines
    /// against one shared L2/MSHR/DRAM system instead of one SMX with a
    /// private L2 slice. Every chip knob affects results, so a chip job
    /// hashes to a different [`JobId`] than its single-SMX twin.
    pub chip: Option<ChipConfig>,
}

impl SimJob {
    /// Content-derived id covering every input that affects the result.
    /// Single-SMX jobs (`chip: None`) keep the historical canonical form,
    /// so existing checkpoint and cache identities survive unchanged.
    pub fn id(&self) -> JobId {
        let mut canon = format!(
            "{};bounce={};method={};warps={}",
            self.workload.canonical(),
            self.bounce,
            self.method.label(),
            self.warps
        );
        if let Some(chip) = &self.chip {
            canon.push_str(";chip=");
            canon.push_str(&chip.canonical());
        }
        JobId(fnv1a64(canon.as_bytes()))
    }
}

/// A named, ordered collection of jobs — one figure or table of the paper.
#[derive(Debug, Clone)]
pub struct JobSet {
    /// Figure/table name (`fig10`, `table2`, …).
    pub name: String,
    /// The cells, in enumeration order.
    pub jobs: Vec<SimJob>,
}

impl JobSet {
    /// A new named set.
    pub fn new(name: impl Into<String>) -> JobSet {
        JobSet { name: name.into(), jobs: Vec::new() }
    }

    /// Append a cell.
    pub fn push(&mut self, job: SimJob) {
        self.jobs.push(job);
    }

    /// The same set with every cell switched to full-chip mode — the
    /// `--chip` decoration applied before job ids are taken.
    pub fn with_chip(mut self, chip: ChipConfig) -> JobSet {
        for job in &mut self.jobs {
            job.chip = Some(chip);
        }
        self
    }

    /// The distinct workloads this set needs, in first-use order.
    pub fn distinct_workloads(&self) -> Vec<WorkloadSpec> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for j in &self.jobs {
            if seen.insert(j.workload.content_key()) {
                out.push(j.workload);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn job_ids_are_stable_and_distinct() {
        let scale = Scale::default();
        let wl = WorkloadSpec::standard(SceneKind::Conference, &scale, 8);
        let job = |method: Method, bounce| SimJob {
            workload: wl,
            bounce,
            method,
            warps: scale.warps(method.paper_warps()),
            chip: None,
        };
        let a = job(Method::Aila, 1);
        assert_eq!(a.id(), job(Method::Aila, 1).id());
        let mut ids: Vec<JobId> = vec![
            a.id(),
            job(Method::Aila, 2).id(),
            job(Method::Dmk, 1).id(),
            job(Method::drs_default(), 1).id(),
            job(Method::Drs { backup_rows: 2, swap_buffers: 6, extra_bank: false }, 1).id(),
        ];
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn workload_key_tracks_every_field() {
        let scale = Scale::default();
        let base = WorkloadSpec::standard(SceneKind::Plants, &scale, 4);
        let variants = [
            WorkloadSpec { tris: base.tris + 1, ..base },
            WorkloadSpec { rays: base.rays + 1, ..base },
            WorkloadSpec { bounces: base.bounces + 1, ..base },
            WorkloadSpec { seed: base.seed + 1, ..base },
            WorkloadSpec { scene: SceneKind::Conference, ..base },
        ];
        for v in variants {
            assert_ne!(v.content_key(), base.content_key(), "{}", v.canonical());
        }
    }

    #[test]
    fn chip_config_is_part_of_job_identity() {
        let scale = Scale::default();
        let wl = WorkloadSpec::standard(SceneKind::Conference, &scale, 8);
        let base = SimJob { workload: wl, bounce: 1, method: Method::Aila, warps: 48, chip: None };
        let chip = SimJob { chip: Some(ChipConfig::gtx780(15)), ..base };
        assert_ne!(base.id(), chip.id(), "chip mode must change the cell identity");
        // Every chip knob is result-affecting, so every knob must hash.
        let knobs = [
            ChipConfig { sms: 2, ..ChipConfig::gtx780(15) },
            ChipConfig { l2_banks: 8, ..ChipConfig::gtx780(15) },
            ChipConfig { shared_mshrs: 64, ..ChipConfig::gtx780(15) },
            ChipConfig { dram_gbps: 100, ..ChipConfig::gtx780(15) },
            ChipConfig { noc_latency: 2, ..ChipConfig::gtx780(15) },
        ];
        let mut ids: Vec<JobId> = knobs
            .iter()
            .map(|&c| SimJob { chip: Some(c), ..base }.id())
            .chain([base.id(), chip.id()])
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 7, "all chip variants must be distinct jobs");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            Method::Aila,
            Method::AilaVariant { speculative_traversal: false, replace_terminated: false },
            Method::Dmk,
            Method::Tbc,
            Method::drs_default(),
            Method::IdealDrs,
        ]
        .iter()
        .map(super::Method::label)
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn jobset_distinct_workloads_dedupe() {
        let scale = Scale::default();
        let wl = WorkloadSpec::standard(SceneKind::Conference, &scale, 8);
        let wl2 = WorkloadSpec::standard(SceneKind::Plants, &scale, 8);
        let mut set = JobSet::new("t");
        for b in 1..=3 {
            set.push(SimJob {
                workload: wl,
                bounce: b,
                method: Method::Aila,
                warps: 48,
                chip: None,
            });
            set.push(SimJob {
                workload: wl2,
                bounce: b,
                method: Method::Aila,
                warps: 48,
                chip: None,
            });
        }
        assert_eq!(set.distinct_workloads().len(), 2);
    }
}
