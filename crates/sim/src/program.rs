//! Kernel programs: basic blocks with explicit reconvergence points.

use crate::isa::MicroOp;

/// Index of a basic block within a [`Program`].
pub type BlockId = u32;

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Per-lane conditional branch. `cond` is a token evaluated by the
    /// kernel behavior for each active lane; `reconverge` is the branch's
    /// immediate post-dominator, where diverged lanes re-join.
    Branch {
        /// Condition token.
        cond: u16,
        /// Successor for lanes whose condition is true.
        on_true: BlockId,
        /// Successor for lanes whose condition is false.
        on_false: BlockId,
        /// The IPDOM block where the two paths reconverge.
        reconverge: BlockId,
    },
    /// The warp finishes the program (must be reached warp-uniformly).
    Exit,
}

/// A basic block: straight-line micro-ops plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Human-readable label for debugging and stats breakdowns.
    pub label: &'static str,
    /// Straight-line micro-ops.
    pub ops: Vec<MicroOp>,
    /// Control-flow exit.
    pub terminator: Terminator,
}

impl Block {
    /// Build a block.
    pub fn new(label: &'static str, ops: Vec<MicroOp>, terminator: Terminator) -> Block {
        Block { label, ops, terminator }
    }
}

/// A kernel program: blocks with block 0 as the entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    blocks: Vec<Block>,
}

impl Program {
    /// Assemble a program from blocks; block 0 is the entry.
    ///
    /// # Panics
    ///
    /// Panics if the program is empty or any terminator targets a
    /// nonexistent block.
    pub fn new(blocks: Vec<Block>) -> Program {
        assert!(!blocks.is_empty(), "program needs at least one block");
        let n = blocks.len() as u32;
        for (i, b) in blocks.iter().enumerate() {
            let check = |id: BlockId, what: &str| {
                assert!(id < n, "block {i} ({}) {what} target {id} out of range", b.label);
            };
            match b.terminator {
                Terminator::Jump(t) => check(t, "jump"),
                Terminator::Branch { on_true, on_false, reconverge, .. } => {
                    check(on_true, "branch-true");
                    check(on_false, "branch-false");
                    check(reconverge, "reconverge");
                }
                Terminator::Exit => {}
            }
        }
        Program { blocks }
    }

    /// Borrow a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id as usize]
    }

    /// All blocks in id order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total static micro-op count (the paper quotes its kernel's main loop
    /// at over 300 instructions; this lets tests check our kernels are in
    /// a comparable regime).
    pub fn static_op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len() + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::MicroOp;

    fn tiny() -> Program {
        Program::new(vec![
            Block::new(
                "entry",
                vec![MicroOp::alu(0, &[], 1)],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            Block::new("body", vec![MicroOp::alu(1, &[0], 1)], Terminator::Jump(2)),
            Block::new("exit", vec![], Terminator::Exit),
        ])
    }

    #[test]
    fn valid_program_builds() {
        let p = tiny();
        assert_eq!(p.blocks().len(), 3);
        assert_eq!(p.block(1).label, "body");
        assert_eq!(p.static_op_count(), 2 + 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_target_panics() {
        Program::new(vec![Block::new("bad", vec![], Terminator::Jump(5))]);
    }

    #[test]
    #[should_panic]
    fn empty_program_panics() {
        Program::new(vec![]);
    }
}
