//! The cycle loop: schedulers, SIMT stack, scoreboard and memory pipeline.

use crate::banks::RegisterBanks;
use crate::behavior::{KernelBehavior, SpecialOutcome, SpecialUnit};
use crate::cache::MemoryHierarchy;
use crate::config::GpuConfig;
use crate::error::{FrameDump, SimError, SimErrorKind, WarpDump, WarpDumpEntry};
use crate::isa::{MemSpace, MicroOp, OpKind, OpTag};
use crate::program::{BlockId, Program, Terminator};
use crate::state::MachineState;
use crate::stats::SimStats;
use crate::telemetry::{CycleSnapshot, StallBucket, TelemetrySink};
use drs_trace::RayScript;
use std::collections::HashMap;
use std::time::Instant;

/// Architectural registers tracked per warp (micro-op reg ids must be below
/// this).
pub const TRACKED_REGS: usize = 64;

/// One entry of a warp's SIMT reconvergence stack.
#[derive(Debug, Clone, Copy)]
struct StackEntry {
    /// Current block.
    pc: BlockId,
    /// Next op within the block (`ops.len()` = the terminator).
    op_idx: usize,
    /// Lanes this entry executes.
    mask: u32,
    /// Block at which this entry reconverges into its parent
    /// (`u32::MAX` for the base entry).
    reconv: BlockId,
}

const NO_RECONV: BlockId = u32::MAX;

/// Per-warp timing state.
#[derive(Debug, Clone)]
struct WarpTiming {
    stack: Vec<StackEntry>,
    reg_ready: [u64; TRACKED_REGS],
    blocked_until: u64,
    exited: bool,
}

impl WarpTiming {
    fn new(entry: BlockId, mask: u32) -> WarpTiming {
        WarpTiming {
            stack: vec![StackEntry { pc: entry, op_idx: 0, mask, reconv: NO_RECONV }],
            reg_ready: [0; TRACKED_REGS],
            blocked_until: 0,
            exited: false,
        }
    }

    /// Pop reconverged entries; afterwards the top entry is executable.
    fn settle(&mut self) {
        while self.stack.len() > 1 {
            let top = *self.stack.last().expect("nonempty stack");
            if top.op_idx == 0 && top.pc == top.reconv {
                self.stack.pop();
            } else {
                break;
            }
        }
    }

    fn top(&self) -> &StackEntry {
        self.stack.last().expect("SIMT stack never empties")
    }

    fn top_mut(&mut self) -> &mut StackEntry {
        self.stack.last_mut().expect("SIMT stack never empties")
    }

    /// The entry [`WarpTiming::settle`] would leave on top, without
    /// mutating the stack (read-only view for stall attribution).
    fn effective_top(&self) -> &StackEntry {
        let mut i = self.stack.len() - 1;
        while i > 0 && self.stack[i].op_idx == 0 && self.stack[i].pc == self.stack[i].reconv {
            i -= 1;
        }
        &self.stack[i]
    }
}

/// Why a warp's `blocked_until` lies in the future (telemetry only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum BlockReason {
    /// Never blocked yet.
    #[default]
    None,
    /// Branch-redirect penalty (SIMT stack update).
    Branch,
    /// Special-unit (`rdctrl`) refusal backoff.
    Rdctrl,
    /// Serialized behind the shared spawn scratchpad.
    SpawnMem,
}

/// What produced a register's pending value (telemetry only).
#[derive(Debug, Clone, Copy, Default)]
struct RegProducer {
    /// Produced by a load (in-flight memory) rather than an ALU/special op.
    mem: bool,
    /// The producing load had to queue for a free MSHR.
    mshr_queued: bool,
    /// Ready time excluding operand-collector (bank-conflict) extra
    /// cycles: past this point only collector serialization remains.
    base_ready: u64,
}

/// Per-warp bookkeeping behind the stall-attribution pass. Allocated only
/// when a [`TelemetrySink`] is attached; the hot loop never touches it
/// otherwise, so detached runs do zero attribution work.
struct Attribution {
    /// Warp issued ≥ 1 instruction this cycle.
    issued: Vec<bool>,
    /// Warp was refused by the special unit this cycle.
    rdctrl: Vec<bool>,
    /// Reason for the warp's latest `blocked_until` assignment.
    block_reason: Vec<BlockReason>,
    /// Producer metadata per (warp, register).
    producers: Vec<[RegProducer; TRACKED_REGS]>,
    /// This cycle's charge per warp (reused buffer handed to the sink).
    buckets: Vec<StallBucket>,
}

impl Attribution {
    fn new(warps: usize) -> Attribution {
        Attribution {
            issued: vec![false; warps],
            rdctrl: vec![false; warps],
            block_reason: vec![BlockReason::None; warps],
            producers: vec![[RegProducer::default(); TRACKED_REGS]; warps],
            buckets: vec![StallBucket::Idle; warps],
        }
    }

    fn begin_cycle(&mut self) {
        self.issued.fill(false);
        self.rdctrl.fill(false);
    }
}

/// One coalesced cache-line request leaving an SM for the chip's shared
/// memory system (full-chip mode; see `drs-chip`).
///
/// In chip mode the engine probes its private L1s locally and emits one
/// `PortRequest` per L1-missing line instead of resolving latency against
/// its own L2 slice. The chip loop drains these with
/// [`Simulation::drain_requests`], arbitrates them through the shared
/// L2/MSHR/DRAM model, and answers loads via
/// [`Simulation::chip_complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRequest {
    /// Load group the response belongs to. All lines of one load
    /// instruction share a group; the group's destination register
    /// releases when every line has been answered. Stores also consume a
    /// group id (keeps ids per-instruction) but expect no response.
    pub group: u64,
    /// Per-SM issue sequence number: a total order over this SM's
    /// requests, used as the final arbitration tie-breaker.
    pub seq: u64,
    /// Line-aligned byte address.
    pub line: u64,
    /// Memory space the access came from (never [`MemSpace::Spawn`] —
    /// spawn scratch stays on-core).
    pub space: MemSpace,
    /// True for loads; a response must be delivered via
    /// [`Simulation::chip_complete`].
    pub is_load: bool,
    /// Cycle the SM's LSU put the request on the wire (pre-NoC).
    pub issue: u64,
}

/// An in-flight chip-mode load: one load instruction whose L1-missing
/// lines await responses from the shared memory system.
#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    /// Issuing warp.
    warp: usize,
    /// Destination register (bound just after issue by `chip_bind_load`).
    dst: Option<u8>,
    /// Operand-collector extra cycles, applied on top of the last
    /// response (mirrors `ready + extra` on the non-chip path).
    extra: u32,
    /// Outstanding line responses.
    remaining: usize,
    /// Max ready time seen so far (seeded with the L1-hit ready time).
    ready_acc: u64,
}

/// Engine-side half of the SM ↔ shared-memory-system connection
/// (attached by [`Simulation::attach_chip_port`]).
#[derive(Debug, Default)]
struct ChipPort {
    /// Next load-group id.
    next_group: u64,
    /// Next per-SM request sequence number.
    next_seq: u64,
    /// Requests issued since the last drain.
    outbox: Vec<PortRequest>,
    /// Load groups awaiting responses, by group id.
    pending: HashMap<u64, PendingLoad>,
    /// Group created by the current `memory_access` call, so the load
    /// issue arm can bind its destination register to it.
    open: Option<u64>,
    /// Latest response ready time delivered so far (drain horizon for the
    /// `validate` end-of-run checks).
    max_response: u64,
}

/// A configured single-SMX simulation, generic over kernel behavior and an
/// optional special hardware unit.
pub struct Simulation<'w> {
    cfg: GpuConfig,
    program: Program,
    behavior: Box<dyn KernelBehavior + 'w>,
    special: Box<dyn SpecialUnit + 'w>,
    /// Architectural machine state (public so harnesses can inspect it).
    pub machine: MachineState<'w>,
    mem: MemoryHierarchy,
    banks: RegisterBanks,
    warps: Vec<WarpTiming>,
    stats: SimStats,
    /// Per-block (issues, active_sum) counters.
    block_counters: Vec<(u64, u64)>,
    /// The on-chip spawn scratchpad is a single shared resource; spawn
    /// accesses serialize through it (their latency cannot be hidden by
    /// other warps' spawn traffic).
    spawn_busy_until: u64,
    cycle: u64,
    /// Greedy warp per scheduler.
    sched_current: Vec<usize>,
    /// Event-driven cycle skipping (on by default). When every warp is
    /// provably unable to issue and the special unit is quiescent, the
    /// engine jumps straight to the next wake-up cycle instead of stepping
    /// through the dead span. Results are bit-identical either way.
    fastpath: bool,
    /// Failed-skip backoff: number of upcoming dead cycles for which we
    /// won't attempt a skip. A failed `try_fast_forward` is pure overhead
    /// (an O(warps) scoreboard scan), so after each failure we sit out
    /// `skip_penalty` dead cycles before trying again.
    skip_cooldown: u64,
    /// Current backoff penalty; doubles on each consecutive failure (to a
    /// small cap) and resets whenever a skip succeeds or anything issues.
    /// Purely a heuristic — skipping is optional, so backoff can never
    /// change results.
    skip_penalty: u64,
    /// Reusable idle-bank scratch handed to the special unit each cycle.
    idle_scratch: Vec<bool>,
    /// Attached telemetry sink (observational; never affects results).
    sink: Option<&'w mut dyn TelemetrySink>,
    /// Stall-attribution state; `Some` iff a sink is attached.
    attr: Option<Attribution>,
    /// Full active mask for the configured lane count.
    #[cfg(feature = "validate")]
    full_mask: u32,
    /// Statically derived worst-case SIMT-stack depth (entries), when the
    /// caller ran the verifier; every divergence push is checked against it.
    #[cfg(feature = "validate")]
    stack_depth_bound: Option<usize>,
    /// Deepest SIMT stack observed on any warp this run.
    #[cfg(feature = "validate")]
    max_stack_depth: usize,
    /// Statically derived bound on distinct in-flight destination
    /// registers per warp (scoreboard pressure), when the caller ran the
    /// verifier.
    #[cfg(feature = "validate")]
    inflight_regs_bound: Option<usize>,
    /// Last cycle any instruction issued (watchdog baseline).
    last_issue_cycle: u64,
    /// Fault injection: trip the watchdog once `cycle` reaches this value.
    watchdog_trip_at: Option<u64>,
    /// Wall-clock budget: `(deadline, budget_ms)`; checked cooperatively
    /// every 1024 loop iterations.
    deadline: Option<(Instant, u64)>,
    /// Loop-iteration counter backing the deadline check; persists across
    /// `advance_to` windows so chip runs keep the 1024-iteration cadence.
    deadline_iters: u64,
    /// Full-chip mode: the SM side of the shared-memory-system port.
    chip: Option<ChipPort>,
    /// A failure observed by `advance_to`, reported by `finish`. Once set
    /// the engine is done and refuses to advance further.
    pending_failure: Option<SimErrorKind>,
    /// `DRS_SKIP_DEBUG` counters (dead cycles, skip attempts/successes,
    /// cycles skipped), kept on the struct so incremental driving
    /// accumulates them across windows.
    dbg_skip: [u64; 4],
}

impl<'w> Simulation<'w> {
    /// Build a simulation of `program` over `scripts`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a micro-op references a
    /// register `>= 64`.
    pub fn new(
        cfg: GpuConfig,
        program: Program,
        behavior: Box<dyn KernelBehavior + 'w>,
        special: Box<dyn SpecialUnit + 'w>,
        scripts: &'w [RayScript],
    ) -> Simulation<'w> {
        cfg.validate();
        for b in program.blocks() {
            for op in &b.ops {
                if let Some(d) = op.dst {
                    assert!((d as usize) < TRACKED_REGS, "register {d} out of range");
                }
                for s in op.sources() {
                    assert!((s as usize) < TRACKED_REGS, "register {s} out of range");
                }
            }
        }
        let full_mask = if cfg.simd_lanes == 32 { u32::MAX } else { (1u32 << cfg.simd_lanes) - 1 };
        let warps = (0..cfg.max_warps).map(|_| WarpTiming::new(0, full_mask)).collect();
        let slot_count = behavior.slot_count(cfg.max_warps, cfg.simd_lanes);
        let mut machine = MachineState::new(scripts, cfg.max_warps, cfg.simd_lanes, slot_count);
        behavior.initialize(&mut machine);
        let mem = MemoryHierarchy::new(&cfg);
        let banks = RegisterBanks::new(cfg.register_banks);
        let sched_current = (0..cfg.warp_schedulers).collect();
        let block_counters = vec![(0, 0); program.blocks().len()];
        Simulation {
            cfg,
            program,
            behavior,
            special,
            machine,
            mem,
            banks,
            warps,
            stats: SimStats::default(),
            block_counters,
            spawn_busy_until: 0,
            cycle: 0,
            sched_current,
            fastpath: true,
            skip_cooldown: 0,
            skip_penalty: 1,
            idle_scratch: Vec::new(),
            sink: None,
            attr: None,
            #[cfg(feature = "validate")]
            full_mask,
            #[cfg(feature = "validate")]
            stack_depth_bound: None,
            #[cfg(feature = "validate")]
            max_stack_depth: 1,
            #[cfg(feature = "validate")]
            inflight_regs_bound: None,
            last_issue_cycle: 0,
            watchdog_trip_at: None,
            deadline: None,
            deadline_iters: 0,
            chip: None,
            pending_failure: None,
            dbg_skip: [0; 4],
        }
    }

    /// Attach a telemetry sink: from now on every cycle charges each warp
    /// to exactly one [`StallBucket`] and forwards the attribution to the
    /// sink. Attach before [`Simulation::run`]; attribution of cycles
    /// simulated earlier is not reconstructed.
    ///
    /// The sink observes — it cannot alter simulation results, and runs
    /// without a sink skip the attribution pass entirely.
    pub fn attach_telemetry(&mut self, sink: &'w mut dyn TelemetrySink) {
        self.attr = Some(Attribution::new(self.cfg.max_warps));
        self.sink = Some(sink);
    }

    /// Enable or disable the event-driven fast path (on by default).
    ///
    /// The fast path skips spans of cycles in which no warp can possibly
    /// issue, charging them to telemetry in bulk; [`SimStats`] and
    /// telemetry output are bit-identical with it on or off (asserted by
    /// the engine and harness A/B tests). Turning it off (`--no-fastpath`
    /// in the experiments binary) forces naive one-cycle-at-a-time
    /// stepping — the reference behavior for debugging and benchmarking.
    pub fn set_fastpath(&mut self, on: bool) {
        self.fastpath = on;
    }

    /// Arm the runtime cross-check of a statically derived worst-case
    /// SIMT-stack depth (in stack entries, counting the base entry): every
    /// divergence push asserts the warp's stack stays within `bound`, and
    /// the end-of-run invariant check re-asserts the observed maximum.
    ///
    /// The bound comes from `drs-verify`'s abstract interpretation of the
    /// kernel CFG (`LiveSetSummary::stack_depth_bound`); a violation means
    /// either the engine's reconvergence discipline or the verifier's
    /// model is wrong, which is exactly what `validate` runs exist to
    /// catch.
    #[cfg(feature = "validate")]
    pub fn set_stack_depth_bound(&mut self, bound: usize) {
        self.stack_depth_bound = Some(bound);
    }

    /// Arm the runtime cross-check of the verifier's scoreboard-pressure
    /// bound: at every issue, the number of this warp's registers with a
    /// pending ready time must not exceed the program's distinct
    /// destination-register count (`LiveSetSummary::distinct_dsts`).
    #[cfg(feature = "validate")]
    pub fn set_inflight_regs_bound(&mut self, bound: usize) {
        self.inflight_regs_bound = Some(bound);
    }

    /// Inject a watchdog trip: once the simulation reaches `at_cycle`, the
    /// next step fails with [`SimErrorKind::Watchdog`] (`injected: true`)
    /// carrying a real [`WarpDump`] of the machine state at that point.
    ///
    /// Fault-injection hook for exercising harness recovery paths; if every
    /// warp exits before `at_cycle`, the run completes normally.
    pub fn inject_watchdog_trip(&mut self, at_cycle: u64) {
        self.watchdog_trip_at = Some(at_cycle);
    }

    /// Set a wall-clock deadline: if `deadline` passes before the run
    /// completes, it fails with [`SimErrorKind::Deadline`]. `budget_ms` is
    /// reported in the error (the original budget, for context). The check
    /// is cooperative — every 1024 loop iterations — so overshoot is
    /// bounded by ~1024 stepped cycles of wall time.
    pub fn set_deadline(&mut self, deadline: Instant, budget_ms: u64) {
        self.deadline = Some((deadline, budget_ms));
    }

    /// Package a failure kind with the current cycle and finalized partial
    /// statistics.
    fn fail(&mut self, kind: SimErrorKind) -> SimError {
        SimError { kind, cycle: self.cycle, stats: Box::new(self.stats.clone()) }
    }

    /// Run to completion (all warps exited), or fail with a typed
    /// [`SimError`] on the safety cycle cap, a watchdog trip, a wall-clock
    /// deadline, or (under the `validate` feature) an end-of-run invariant
    /// violation. Errors carry the finalized partial statistics.
    pub fn run(mut self) -> Result<SimStats, SimError> {
        self.advance_to(u64::MAX);
        self.finish()
    }

    /// Full-chip mode: advance the simulated clock to `target` (or until
    /// all warps exit, or a failure fires). Failures are stored and
    /// reported by [`Simulation::finish`]; once one is stored — or the
    /// kernel has drained — further calls are no-ops, so the chip loop can
    /// keep ticking a finished SM safely.
    pub fn advance_to(&mut self, target: u64) {
        if self.pending_failure.is_some() {
            return;
        }
        if let Err(kind) = self.drive(target) {
            self.pending_failure = Some(kind);
        }
    }

    /// True when this engine needs no more cycles: every warp has exited,
    /// or a failure was recorded.
    pub fn done(&self) -> bool {
        self.pending_failure.is_some() || self.warps.iter().all(|w| w.exited)
    }

    /// True when a failure has been recorded and is waiting for
    /// [`Simulation::finish`] to report it.
    pub fn failed(&self) -> bool {
        self.pending_failure.is_some()
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Earliest future cycle at which this engine's state can change on
    /// its own (scoreboard release or special-unit event) — the chip
    /// loop's per-SM contribution to the chip-level `next_wake`.
    /// `u64::MAX` when the engine is done, or when every live warp waits
    /// on a shared-memory response (only [`Simulation::chip_complete`] can
    /// unblock it).
    pub fn wake_hint(&self) -> u64 {
        if self.done() {
            return u64::MAX;
        }
        self.next_wake(self.cycle)
    }

    /// The run loop: step (and fast-forward) until all warps exit, the
    /// clock reaches `target`, or a failure fires.
    fn drive(&mut self, target: u64) -> Result<(), SimErrorKind> {
        while !self.warps.iter().all(|w| w.exited) && self.cycle < target {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimErrorKind::CycleLimit { max_cycles: self.cfg.max_cycles });
            }
            self.deadline_iters = self.deadline_iters.wrapping_add(1);
            if self.deadline_iters.is_multiple_of(1024) {
                if let Some((deadline, budget_ms)) = self.deadline {
                    if Instant::now() >= deadline {
                        return Err(SimErrorKind::Deadline { budget_ms });
                    }
                }
            }
            let issued_before = self.stats.issued.total + self.stats.issued_si.total;
            self.step()?;
            // Only bother computing a wake-up target after a dead cycle: a
            // cycle that issued usually has more ready work right behind it.
            // Failed attempts back off exponentially — compute-bound phases
            // produce long runs of dead-but-unskippable cycles, and paying
            // the O(warps) wake scan on each one erases the fast path's win.
            if self.stats.issued.total + self.stats.issued_si.total == issued_before {
                self.dbg_skip[0] += 1;
                if self.fastpath {
                    if self.skip_cooldown > 0 {
                        self.skip_cooldown -= 1;
                    } else {
                        self.dbg_skip[1] += 1;
                        let before = self.cycle;
                        if self.try_fast_forward(target) {
                            self.dbg_skip[2] += 1;
                            self.dbg_skip[3] += self.cycle - before;
                            self.skip_penalty = 1;
                        } else {
                            self.skip_cooldown = self.skip_penalty;
                            self.skip_penalty = (self.skip_penalty * 2).min(32);
                        }
                    }
                }
            } else {
                self.skip_cooldown = 0;
                self.skip_penalty = 1;
            }
        }
        Ok(())
    }

    /// Finalize: fill derived statistics, notify the sink, and surface any
    /// stored failure. The terminal half of [`Simulation::run`], split out
    /// so incrementally driven (chip-mode) engines share one epilogue.
    pub fn finish(mut self) -> Result<SimStats, SimError> {
        if std::env::var_os("DRS_SKIP_DEBUG").is_some() {
            let [dead, attempts, successes, skipped] = self.dbg_skip;
            eprintln!(
                "[skipdbg] cycles={} dead={} attempts={} successes={} skipped={} avg_span={:.1}",
                self.cycle,
                dead,
                attempts,
                successes,
                skipped,
                skipped as f64 / successes.max(1) as f64
            );
        }
        self.stats.cycles = self.cycle;
        self.stats.rays_completed = self.machine.rays_completed;
        self.stats.l1t = self.mem.l1t.stats;
        self.stats.l1d = self.mem.l1d.stats;
        self.stats.l2 = self.mem.l2.stats;
        self.stats.regfile_reads = self.banks.total_reads;
        self.stats.regfile_writes = self.banks.total_writes;
        self.stats.bank_conflicts = self.banks.total_conflicts;
        self.stats.block_profile = self
            .program
            .blocks()
            .iter()
            .zip(self.block_counters.iter())
            .map(|(b, &(n, a))| (b.label.to_string(), n, a))
            .collect();
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.on_finish(&Self::snapshot(&self.stats, self.cycle, self.machine.rays_completed));
        }
        if let Some(kind) = self.pending_failure.take() {
            return Err(self.fail(kind));
        }
        #[cfg(feature = "validate")]
        if let Err(kind) = self.check_drained() {
            return Err(self.fail(kind));
        }
        Ok(self.stats)
    }

    /// Switch this engine into full-chip mode: L1 lookups stay local, but
    /// every L1-missing line becomes a [`PortRequest`] for the chip's
    /// shared L2/MSHR/DRAM system instead of resolving against the
    /// private L2 slice. Call before any cycles run; the chip loop then
    /// drives the engine with [`Simulation::advance_to`] /
    /// [`Simulation::drain_requests`] / [`Simulation::chip_complete`].
    ///
    /// In chip mode the per-SM `SimStats::l2` counters stay zero (the
    /// shared system owns them) and MSHR-full attribution is folded into
    /// `MemoryPending` (the shared pool queues centrally).
    pub fn attach_chip_port(&mut self) {
        assert_eq!(self.cycle, 0, "attach the chip port before any cycles run");
        self.chip = Some(ChipPort::default());
    }

    /// Move all port requests issued since the last drain into `into`,
    /// preserving per-SM issue order.
    ///
    /// # Panics
    ///
    /// Panics without a chip port attached.
    pub fn drain_requests(&mut self, into: &mut Vec<PortRequest>) {
        let port = self.chip.as_mut().expect("chip port attached");
        into.append(&mut port.outbox);
    }

    /// Deliver the shared memory system's response for one line of load
    /// group `group`: its data is ready at cycle `ready`. When the last
    /// line of the group lands, the destination register releases at the
    /// group's max ready time plus its operand-collector extra.
    ///
    /// # Panics
    ///
    /// Panics without a chip port, or for an unknown (already completed)
    /// group — the chip loop must answer every line of every load exactly
    /// once.
    pub fn chip_complete(&mut self, group: u64, ready: u64) {
        let port = self.chip.as_mut().expect("chip port attached");
        port.max_response = port.max_response.max(ready);
        let entry = port.pending.get_mut(&group).expect("response for an open load group");
        entry.ready_acc = entry.ready_acc.max(ready);
        entry.remaining -= 1;
        if entry.remaining == 0 {
            let entry = port.pending.remove(&group).expect("entry exists");
            if let Some(d) = entry.dst {
                let ready = entry.ready_acc + entry.extra as u64;
                self.warps[entry.warp].reg_ready[d as usize] = ready;
                if let Some(attr) = &mut self.attr {
                    attr.producers[entry.warp][d as usize] =
                        RegProducer { mem: true, mshr_queued: false, base_ready: entry.ready_acc };
                }
            }
        }
    }

    /// Bind the load that `memory_access` just turned into port requests
    /// to its destination register and operand-collector extra (chip mode
    /// only; the sentinel `u64::MAX` scoreboard entry set at issue keeps
    /// dependents blocked until `chip_complete` fills the real time).
    fn chip_bind_load(&mut self, w: usize, dst: Option<u8>, extra: u32) {
        let port = self.chip.as_mut().expect("chip port attached");
        let group = port.open.take().expect("memory_access opened a group");
        let entry = port.pending.get_mut(&group).expect("open group is pending");
        entry.warp = w;
        entry.dst = dst;
        entry.extra = extra;
    }

    /// A cheap copy of the live counters for the telemetry sink.
    fn snapshot(stats: &SimStats, cycle: u64, rays_completed: u64) -> CycleSnapshot {
        CycleSnapshot {
            cycle,
            issued: stats.issued,
            issued_si: stats.issued_si,
            rdctrl_stalls: stats.rdctrl_stalls,
            rdctrl_issued: stats.rdctrl_issued,
            mem_transactions: stats.mem_transactions,
            loads: stats.loads,
            stores: stats.stores,
            rays_completed,
        }
    }

    /// Advance one cycle. Fails on a watchdog trip (organic no-progress or
    /// injected); the cycle is left un-incremented so the caller reports
    /// the failing cycle accurately.
    fn step(&mut self) -> Result<(), SimErrorKind> {
        if let Some(at) = self.watchdog_trip_at {
            if self.cycle >= at {
                return Err(self.watchdog_kind(true));
            }
        }
        self.banks.new_cycle();
        if let Some(attr) = &mut self.attr {
            attr.begin_cycle();
        }
        let issued_before = self.stats.issued.total + self.stats.issued_si.total;
        for s in 0..self.cfg.warp_schedulers {
            self.schedule(s);
        }
        if self.stats.issued.total + self.stats.issued_si.total > issued_before {
            self.last_issue_cycle = self.cycle;
        } else if self.cycle - self.last_issue_cycle > self.cfg.watchdog_cycles {
            return Err(self.watchdog_kind(false));
        }
        let mut idle = std::mem::take(&mut self.idle_scratch);
        self.banks.idle_banks_into(&mut idle);
        self.special.tick(self.cycle, &idle, &mut self.machine, &mut self.stats);
        self.idle_scratch = idle;
        if self.attr.is_some() {
            self.cycle_telemetry();
        }
        self.cycle += 1;
        Ok(())
    }

    /// The event-driven fast path: called between steps (at the
    /// post-increment cycle) after a cycle in which nothing issued. If no
    /// warp can possibly issue before some future cycle `t` and the
    /// special unit is quiescent until then, jump `self.cycle` straight to
    /// `t`, charging the skipped span to telemetry in bulk.
    ///
    /// Skipping is *optional* at every point — correctness never depends
    /// on how far (or whether) we jump, only on never jumping past a cycle
    /// where state could change. With a sink attached, the jump is
    /// additionally capped at the earliest per-warp stall-bucket
    /// breakpoint so the bulk-charged buckets are constant over the span
    /// (preserving `Σ buckets == cycles × warps` and interval timelines
    /// exactly; see DESIGN.md "Simulator fast path").
    ///
    /// Returns `true` iff the cycle counter actually advanced, so the run
    /// loop can back off after failed attempts.
    fn try_fast_forward(&mut self, cap: u64) -> bool {
        let now = self.cycle;
        let wake = self.next_wake(now);
        if wake == u64::MAX && self.chip.is_none() {
            // All warps exited (the run loop is about to terminate).
            return false;
        }
        // In chip mode `wake == u64::MAX` means every live warp waits on a
        // shared-memory response, which can only arrive at the window
        // barrier — jump straight to the window end (`cap`).
        let mut target = wake.min(self.cfg.max_cycles).min(cap);
        if self.attr.is_some() {
            target = target.min(self.next_bucket_breakpoint(now));
        }
        if target <= now {
            return false;
        }
        if self.attr.is_some() {
            self.span_buckets();
            let snap = Self::snapshot(&self.stats, now, self.machine.rays_completed);
            let attr = self.attr.as_ref().expect("checked above");
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.on_cycles(&snap, &attr.buckets, target - now);
            }
        }
        self.cycle = target;
        true
    }

    /// Earliest cycle `>= now` at which any warp could issue, or the
    /// special unit needs its tick. Returns `now` as soon as any warp is
    /// issuable (no skip), and `u64::MAX` iff every warp has exited.
    ///
    /// Per warp: an exited warp never wakes; a blocked warp wakes at
    /// `blocked_until`; otherwise the warp wakes when the last scoreboard
    /// timestamp among its next op's registers releases (a warp at a block
    /// terminator, or with all operands ready, is issuable *now* — this
    /// deliberately covers ready `Special` ops, whose issue attempt
    /// mutates unit state even when refused). Loads encode their full
    /// memory latency — MSHR fill included — into `reg_ready` at issue
    /// time, so no separate memory-subsystem wake is needed.
    fn next_wake(&self, now: u64) -> u64 {
        // Consult the special unit before the O(warps) scoreboard scan:
        // during DRS swap/transfer phases it demands a tick every cycle,
        // which vetoes any skip in O(1).
        let special_wake = match self.special.next_event(now) {
            Some(t) if t <= now => return now,
            Some(t) => t,
            None => u64::MAX,
        };
        let mut wake = u64::MAX;
        let mut alive = false;
        for warp in &self.warps {
            if warp.exited {
                continue;
            }
            alive = true;
            let w_wake = if warp.blocked_until > now {
                warp.blocked_until
            } else {
                let top = warp.effective_top();
                match self.program.block(top.pc).ops.get(top.op_idx) {
                    None => now, // terminators always issue
                    Some(op) => {
                        let mut t = now;
                        for r in op.sources().chain(op.dst) {
                            t = t.max(warp.reg_ready[r as usize]);
                        }
                        t
                    }
                }
            };
            if w_wake <= now {
                return now;
            }
            wake = wake.min(w_wake);
        }
        if !alive {
            // Every warp exited: quiescent regardless of the special unit
            // (the run loop is about to terminate).
            return u64::MAX;
        }
        if wake == u64::MAX {
            // Live warps, but every one waits on a chip-mode sentinel
            // (`reg_ready == u64::MAX`): only the special unit — or a
            // shared-memory response at the window barrier — wakes us.
            return special_wake;
        }
        wake.min(special_wake)
    }

    /// Earliest cycle `> now` at which any warp's stall bucket could
    /// change, given that no instruction issues in between. Per warp, the
    /// bucket is piecewise-constant with breakpoints at `blocked_until`,
    /// at each pending register's `reg_ready`, and at each pending
    /// register's producer `base_ready` (where a memory charge hands over
    /// to the operand collector). Only used with telemetry attached.
    fn next_bucket_breakpoint(&self, now: u64) -> u64 {
        let attr = self.attr.as_ref().expect("telemetry attached");
        let mut t = u64::MAX;
        for (w, warp) in self.warps.iter().enumerate() {
            if warp.exited {
                continue;
            }
            if warp.blocked_until > now {
                t = t.min(warp.blocked_until);
                continue;
            }
            let top = warp.effective_top();
            if let Some(op) = self.program.block(top.pc).ops.get(top.op_idx) {
                for r in op.sources().chain(op.dst) {
                    let ready = warp.reg_ready[r as usize];
                    if ready > now {
                        t = t.min(ready);
                        let base = attr.producers[w][r as usize].base_ready;
                        if base > now {
                            t = t.min(base);
                        }
                    }
                }
            }
        }
        t
    }

    /// Fill `attr.buckets` with the charge for a skipped (no-issue,
    /// no-rdctrl-attempt) cycle — the same attribution
    /// [`Simulation::cycle_telemetry`] computes after a stepped cycle, with
    /// `issued` and `rdctrl` necessarily false (naive stepping clears both
    /// at the start of every cycle and nothing sets them in a dead span).
    fn span_buckets(&mut self) {
        let now = self.cycle;
        let attr = self.attr.as_mut().expect("telemetry attached");
        for (w, warp) in self.warps.iter().enumerate() {
            attr.buckets[w] = Self::warp_bucket(
                &self.program,
                warp,
                &attr.producers[w],
                attr.block_reason[w],
                false,
                false,
                now,
            );
        }
    }

    /// Charge every warp's cycle to exactly one [`StallBucket`] and hand
    /// the attribution to the sink. Only runs with telemetry attached.
    ///
    /// The charging priority order is documented on [`StallBucket`]; the
    /// per-warp sum over a whole run satisfies
    /// `Σ buckets == cycles × warps` by construction (one bucket per warp
    /// per call, one call per cycle).
    fn cycle_telemetry(&mut self) {
        let attr = self.attr.as_mut().expect("guarded by caller");
        let now = self.cycle;
        for (w, warp) in self.warps.iter().enumerate() {
            attr.buckets[w] = Self::warp_bucket(
                &self.program,
                warp,
                &attr.producers[w],
                attr.block_reason[w],
                attr.issued[w],
                attr.rdctrl[w],
                now,
            );
        }
        let snap = Self::snapshot(&self.stats, now, self.machine.rays_completed);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.on_cycle(&snap, &attr.buckets);
        }
    }

    /// The bucket one warp-cycle is charged to — shared by the per-cycle
    /// pass and the fast path's bulk span charge.
    fn warp_bucket(
        program: &Program,
        warp: &WarpTiming,
        producers: &[RegProducer; TRACKED_REGS],
        reason: BlockReason,
        issued: bool,
        rdctrl: bool,
        now: u64,
    ) -> StallBucket {
        if issued {
            StallBucket::Issued
        } else if warp.exited {
            // Drained out of the kernel; the slot idles until grid end.
            StallBucket::SimtDrain
        } else if rdctrl || (warp.blocked_until > now && reason == BlockReason::Rdctrl) {
            StallBucket::RdctrlStall
        } else if warp.blocked_until > now {
            match reason {
                BlockReason::SpawnMem => StallBucket::MemoryPending,
                // Branch-redirect penalty: the SIMT stack update drains
                // the front end.
                _ => StallBucket::SimtDrain,
            }
        } else {
            // No explicit block: consult the scoreboard for the next op
            // the warp would execute.
            let top = warp.effective_top();
            let block = program.block(top.pc);
            match block.ops.get(top.op_idx) {
                None => StallBucket::Idle, // ready at the terminator
                Some(op) => {
                    // The binding operand is the one released last.
                    let mut worst: Option<(u64, StallBucket)> = None;
                    for r in op.sources().chain(op.dst) {
                        let ready = warp.reg_ready[r as usize];
                        if ready <= now {
                            continue;
                        }
                        let p = producers[r as usize];
                        let b = if now >= p.base_ready {
                            // Base latency elapsed: only register-bank
                            // serialization keeps the value away.
                            StallBucket::OperandCollector
                        } else if p.mem {
                            if p.mshr_queued {
                                StallBucket::MshrFull
                            } else {
                                StallBucket::MemoryPending
                            }
                        } else {
                            StallBucket::Scoreboard
                        };
                        if worst.is_none_or(|(t, _)| ready > t) {
                            worst = Some((ready, b));
                        }
                    }
                    match worst {
                        Some((_, b)) => b,
                        // Operands ready: the warp was simply not
                        // selected by its scheduler this cycle.
                        None => StallBucket::Idle,
                    }
                }
            }
        }
    }

    /// Watchdog trip: no warp has issued for `watchdog_cycles` (or an
    /// injected trip fired). Capture every warp's SIMT stack as a
    /// [`WarpDump`] — data in the error payload, not a stderr print — so a
    /// livelocked kernel is debuggable from the failed cell's record.
    fn watchdog_kind(&self, injected: bool) -> SimErrorKind {
        let warps = self
            .warps
            .iter()
            .enumerate()
            .map(|(w, warp)| WarpDumpEntry {
                warp: w,
                exited: warp.exited,
                blocked_until: warp.blocked_until,
                stack: warp
                    .stack
                    .iter()
                    .map(|e| FrameDump {
                        block: e.pc,
                        label: self.program.block(e.pc).label.to_string(),
                        op_idx: e.op_idx,
                        mask: e.mask,
                        reconv: e.reconv,
                    })
                    .collect(),
            })
            .collect();
        SimErrorKind::Watchdog {
            stalled_cycles: self.cycle - self.last_issue_cycle,
            watchdog_cycles: self.cfg.watchdog_cycles,
            injected,
            dump: WarpDump { warps },
        }
    }

    /// End-of-run invariants: SIMT stacks unwound, all rays drained, no
    /// scoreboard timestamp or MSHR fill implausibly far in the future.
    #[cfg(feature = "validate")]
    fn check_drained(&self) -> Result<(), SimErrorKind> {
        let fail = |message: String| Err(SimErrorKind::Invariant { message });
        let slack = (self.cfg.dram_latency
            + self.cfg.l2_latency
            + self.cfg.l1_latency
            + self.cfg.alu_latency) as u64
            + 64;
        // Chip mode: DRAM-channel queueing can push a response past the
        // flat-latency slack, so the drain horizon starts at the latest
        // delivered response; and no load group may still await one.
        let mut horizon_base = self.cycle;
        if let Some(port) = &self.chip {
            if !port.pending.is_empty() {
                return fail(format!(
                    "{} chip load groups still await shared-memory responses",
                    port.pending.len()
                ));
            }
            horizon_base = horizon_base.max(port.max_response);
        }
        for (w, warp) in self.warps.iter().enumerate() {
            if warp.stack.len() != 1 {
                return fail(format!(
                    "warp {w} exited with {} reconvergence entries still stacked",
                    warp.stack.len() - 1
                ));
            }
            for (r, &ready) in warp.reg_ready.iter().enumerate() {
                if ready > horizon_base + slack {
                    return fail(format!(
                        "warp {w} scoreboard r{r} ready at {ready}, past cycle {horizon_base} + {slack}"
                    ));
                }
            }
        }
        if !self.machine.all_work_drained() {
            return fail(format!(
                "rays remain after all warps exited ({} queued, {} resident)",
                self.machine.queue.remaining(),
                self.machine.slots.iter().filter(|s| s.ray.is_some()).count()
            ));
        }
        let horizon = self.cycle + 2 * slack;
        let outstanding = self.mem.outstanding_misses(horizon);
        if outstanding != 0 {
            return fail(format!("{outstanding} MSHR fills outstanding past kernel end"));
        }
        if let Some(bound) = self.stack_depth_bound {
            if self.max_stack_depth > bound {
                return fail(format!(
                    "observed SIMT stack depth {} exceeds the statically derived bound {bound}",
                    self.max_stack_depth
                ));
            }
        }
        Ok(())
    }

    /// One scheduler's issue attempt for this cycle.
    ///
    /// A scheduler owns warps `w ≡ sched (mod warp_schedulers)`, i.e. warp
    /// `i` of scheduler `sched` is `sched + i * nsched` — computed on the
    /// fly so the candidate scan allocates nothing.
    fn schedule(&mut self, sched: usize) {
        let nsched = self.cfg.warp_schedulers;
        // Number of warps owned by this scheduler.
        let n = self.cfg.max_warps.saturating_sub(sched).div_ceil(nsched);
        if n == 0 {
            return;
        }
        // Candidate order by policy: GTO prefers the current (greedy) warp
        // then the oldest; LRR rotates the preferred warp every cycle.
        match self.cfg.scheduler_policy {
            crate::config::SchedulerPolicy::GreedyThenOldest => {
                let current = self.sched_current[sched];
                debug_assert_eq!(current % nsched, sched, "greedy warp owned by its scheduler");
                if self.try_schedule_warp(sched, current) {
                    return;
                }
                for i in 0..n {
                    let w = sched + i * nsched;
                    if w != current && self.try_schedule_warp(sched, w) {
                        return;
                    }
                }
            }
            crate::config::SchedulerPolicy::LooseRoundRobin => {
                let start = (self.cycle as usize) % n;
                for i in 0..n {
                    let w = sched + ((start + i) % n) * nsched;
                    if self.try_schedule_warp(sched, w) {
                        return;
                    }
                }
            }
        }
    }

    /// Attempt to issue from candidate warp `w`; true ends the scan.
    fn try_schedule_warp(&mut self, sched: usize, w: usize) -> bool {
        if self.warps[w].exited || self.warps[w].blocked_until > self.cycle {
            return false;
        }
        let issued = self.issue_from_warp(w);
        if issued > 0 {
            if let Some(attr) = &mut self.attr {
                attr.issued[w] = true;
            }
            self.sched_current[sched] = w;
            return true;
        }
        false
    }

    /// Try to issue up to the per-scheduler dual-issue limit from warp `w`.
    /// Returns how many instructions issued.
    fn issue_from_warp(&mut self, w: usize) -> usize {
        let limit = self.cfg.issues_per_scheduler();
        let mut issued = 0;
        let mut last_dst: Option<u8> = None;
        while issued < limit {
            self.warps[w].settle();
            let top = *self.warps[w].top();
            let block = self.program.block(top.pc);
            if top.op_idx < block.ops.len() {
                let op = block.ops[top.op_idx];
                // Dual-issue restriction: the second op must not read the
                // first op's (not yet ready) result, and specials issue alone.
                if issued > 0 {
                    if matches!(op.kind, OpKind::Special { .. }) {
                        break;
                    }
                    if let Some(d) = last_dst {
                        if op.sources().any(|s| s == d) || op.dst == Some(d) {
                            break;
                        }
                    }
                }
                if !self.operands_ready(w, &op) {
                    break;
                }
                match self.try_issue_op(w, &op, top.mask) {
                    IssueResult::Issued => {
                        self.warps[w].top_mut().op_idx += 1;
                        last_dst = op.dst;
                        issued += 1;
                        let c = &mut self.block_counters[top.pc as usize];
                        c.0 += 1;
                        c.1 += top.mask.count_ones() as u64;
                    }
                    IssueResult::Stalled => {
                        // The special unit refused the warp; re-arbitration
                        // takes a few cycles in hardware, and backing off
                        // also keeps the scheduler from burning its issue
                        // slot on the same stalled warp every cycle.
                        self.warps[w].blocked_until = self.cycle + 3;
                        if let Some(attr) = &mut self.attr {
                            attr.block_reason[w] = BlockReason::Rdctrl;
                        }
                        break;
                    }
                }
            } else {
                // Terminator: issues alone.
                if issued > 0 {
                    break;
                }
                self.issue_terminator(w, top.pc, top.mask);
                let c = &mut self.block_counters[top.pc as usize];
                c.0 += 1;
                c.1 += top.mask.count_ones() as u64;
                issued += 1;
                break;
            }
        }
        issued
    }

    /// Scoreboard check: all sources and the destination are ready.
    fn operands_ready(&self, w: usize, op: &MicroOp) -> bool {
        let ready = &self.warps[w].reg_ready;
        if op.sources().any(|s| ready[s as usize] > self.cycle) {
            return false;
        }
        if let Some(d) = op.dst {
            if ready[d as usize] > self.cycle {
                return false;
            }
        }
        true
    }

    /// Issue one micro-op for warp `w` under `mask`.
    fn try_issue_op(&mut self, w: usize, op: &MicroOp, mask: u32) -> IssueResult {
        let now = self.cycle;
        // Active lanes on the stack: at most 32 (config-validated).
        let mut active_buf = [0usize; 32];
        let mut na = 0;
        for l in 0..self.cfg.simd_lanes {
            if mask & (1 << l) != 0 {
                active_buf[na] = l;
                na += 1;
            }
        }
        let active = &active_buf[..na];
        debug_assert!(!active.is_empty(), "issue with empty mask");
        #[cfg(feature = "validate")]
        {
            assert_ne!(mask, 0, "validate: issue with empty active mask");
            assert_eq!(
                mask & !self.full_mask,
                0,
                "validate: active mask {mask:#010x} names lanes beyond the {} live lanes",
                self.cfg.simd_lanes
            );
            if let Some(bound) = self.inflight_regs_bound {
                let inflight = self.warps[w].reg_ready.iter().filter(|&&ready| ready > now).count();
                assert!(
                    inflight <= bound,
                    "validate: warp {w} has {inflight} registers in flight, exceeding the \
                     program's {bound} distinct destination registers"
                );
            }
        }
        match op.kind {
            OpKind::Special { token } => {
                match self.special.issue(w, token, &mut self.machine, &mut self.stats) {
                    SpecialOutcome::Stall => {
                        self.stats.rdctrl_stalls += 1;
                        if let Some(attr) = &mut self.attr {
                            attr.rdctrl[w] = true;
                        }
                        return IssueResult::Stalled;
                    }
                    SpecialOutcome::Proceed { ctrl } => {
                        self.machine.warp_ctrl[w] = ctrl;
                        self.stats.rdctrl_issued += 1;
                        if let Some(d) = op.dst {
                            let ready = now + self.cfg.alu_latency as u64;
                            self.warps[w].reg_ready[d as usize] = ready;
                            self.banks.write(w, d);
                            self.note_producer(w, d, false, false, ready);
                        }
                    }
                }
            }
            OpKind::Effect { token } => {
                for &lane in active {
                    self.behavior.apply_effect(token, w, lane, &mut self.machine);
                }
            }
            OpKind::Alu { latency } => {
                let extra = self.collect_operands(w, op);
                if let Some(d) = op.dst {
                    let base = now + latency as u64;
                    self.warps[w].reg_ready[d as usize] = base + extra as u64;
                    self.banks.write(w, d);
                    self.note_producer(w, d, false, false, base);
                }
            }
            OpKind::Load { space, addr } => {
                let extra = self.collect_operands(w, op);
                let (ready, mshr_queued) = self.memory_access(w, space, addr, active, true);
                if ready == u64::MAX {
                    // Chip mode, L1 miss(es): the shared memory system
                    // answers later. Park the destination at the sentinel
                    // (no `+ extra` — that would overflow; the extra is
                    // applied when the last response lands).
                    if let Some(d) = op.dst {
                        self.warps[w].reg_ready[d as usize] = u64::MAX;
                        self.banks.write(w, d);
                        self.note_producer(w, d, true, false, u64::MAX);
                    }
                    self.chip_bind_load(w, op.dst, extra);
                } else if let Some(d) = op.dst {
                    self.warps[w].reg_ready[d as usize] = ready + extra as u64;
                    self.banks.write(w, d);
                    self.note_producer(w, d, true, mshr_queued, ready);
                }
                self.stats.loads += 1;
            }
            OpKind::Store { space, addr } => {
                let _extra = self.collect_operands(w, op);
                let _ = self.memory_access(w, space, addr, active, false);
                self.stats.stores += 1;
            }
        }
        // Record the issue in the right histogram.
        match op.tag {
            OpTag::Normal => self.stats.issued.record(active.len()),
            OpTag::SpawnOverhead => self.stats.issued_si.record(active.len()),
        }
        IssueResult::Issued
    }

    /// Record what produced register `d`'s pending value (telemetry only;
    /// no-op when no sink is attached).
    #[inline]
    fn note_producer(&mut self, w: usize, d: u8, mem: bool, mshr_queued: bool, base_ready: u64) {
        if let Some(attr) = &mut self.attr {
            attr.producers[w][d as usize] = RegProducer { mem, mshr_queued, base_ready };
        }
    }

    /// Read source operands through the banked register file; returns extra
    /// operand-collection cycles caused by bank conflicts.
    fn collect_operands(&mut self, w: usize, op: &MicroOp) -> u32 {
        let mut extra = 0;
        for s in op.sources() {
            extra += self.banks.read(w, s);
        }
        extra
    }

    /// Coalesce the active lanes' addresses and access the hierarchy;
    /// returns the cycle the last line's data arrives plus whether any
    /// line's miss had to queue for an MSHR (telemetry attribution).
    fn memory_access(
        &mut self,
        w: usize,
        space: MemSpace,
        addr_token: u16,
        active: &[usize],
        is_load: bool,
    ) -> (u64, bool) {
        let now = self.cycle;
        // Coalescing scratch on the stack: ≤ 32 lanes → ≤ 32 distinct lines.
        let mut line_buf = [0u64; 32];
        let mut nl = 0;
        let mut spawn_banks = [0u32; 32];
        for &lane in active {
            let addr = self.behavior.eval_addr(addr_token, w, lane, &self.machine);
            if space == MemSpace::Spawn {
                spawn_banks[(addr / 4 % 32) as usize] += 1;
            }
            let line = self.mem.line_of(addr);
            if !line_buf[..nl].contains(&line) {
                line_buf[nl] = line;
                nl += 1;
            }
        }
        let lines = &line_buf[..nl];
        if space == MemSpace::Spawn {
            // On-chip scratch: a warp instruction occupies the scratchpad
            // for one cycle plus its bank-conflict serialization, and the
            // scratchpad is shared — concurrent spawns queue behind each
            // other, so this latency cannot be hidden by warp parallelism.
            let max_per_bank = spawn_banks.iter().copied().max().unwrap_or(0);
            let conflict_cycles = max_per_bank.saturating_sub(1) as u64;
            self.stats.spawn_bank_conflict_cycles += conflict_cycles;
            // Conflict-free accesses pipeline normally; the serialization
            // cycles of a conflicted access occupy the shared scratchpad
            // and stall both the issuing warp and later spawn traffic (the
            // paper: conflicts consume 8-20% of SMX cycles and cannot be
            // hidden because the data movement is explicit instructions).
            let start = self.spawn_busy_until.max(now);
            let end = start + 1 + conflict_cycles;
            self.spawn_busy_until = end;
            self.warps[w].blocked_until = end;
            if let Some(attr) = &mut self.attr {
                attr.block_reason[w] = BlockReason::SpawnMem;
            }
            return (end + self.cfg.l1_latency as u64, false);
        }
        // The load/store unit is shared: spawn-memory conflict serialization
        // (DMK) occupies it, so ordinary loads issued meanwhile queue behind
        // it — the paper's "extra cycles incurred by bank conflicts cannot
        // be hidden".
        let start = self.spawn_busy_until.max(now);
        if let Some(port) = &mut self.chip {
            // Full-chip mode: probe the private L1s locally; every missing
            // line becomes a request for the shared memory system. The LSU
            // still emits one line per cycle.
            let mut hit_ready = start;
            let mut misses = 0usize;
            for (i, line) in lines.iter().enumerate() {
                let at = start + i as u64;
                let l1 = match space {
                    MemSpace::Global => &mut self.mem.l1d,
                    _ => &mut self.mem.l1t,
                };
                if l1.access(*line) {
                    hit_ready = hit_ready.max(at + self.cfg.l1_latency as u64);
                } else {
                    port.outbox.push(PortRequest {
                        group: port.next_group,
                        seq: port.next_seq,
                        line: *line,
                        space,
                        is_load,
                        issue: at,
                    });
                    port.next_seq += 1;
                    misses += 1;
                }
                self.stats.mem_transactions += 1;
            }
            let group = port.next_group;
            port.next_group += 1;
            if is_load && misses > 0 {
                port.pending.insert(
                    group,
                    PendingLoad {
                        warp: w,
                        dst: None,
                        extra: 0,
                        remaining: misses,
                        ready_acc: hit_ready,
                    },
                );
                port.open = Some(group);
                // Sentinel: the destination's real ready time is unknown
                // until the shared system answers at a window barrier.
                return (u64::MAX, false);
            }
            return (hit_ready, false);
        }
        let mut last_ready = start;
        let mut any_mshr_queued = false;
        // The LSU processes one line per cycle; memory divergence serializes.
        for (i, line) in lines.iter().enumerate() {
            let (ready, mshr_queued) = self.mem.access_probed(space, *line, start + i as u64);
            last_ready = last_ready.max(ready);
            any_mshr_queued |= mshr_queued;
            self.stats.mem_transactions += 1;
        }
        (last_ready, any_mshr_queued)
    }

    /// Execute a block terminator for warp `w`.
    fn issue_terminator(&mut self, w: usize, pc: BlockId, mask: u32) {
        let now = self.cycle;
        let active = mask.count_ones() as usize;
        self.stats.issued.record(active);
        match self.program.block(pc).terminator {
            Terminator::Jump(t) => {
                let top = self.warps[w].top_mut();
                top.pc = t;
                top.op_idx = 0;
                self.warps[w].blocked_until = now + self.cfg.branch_penalty as u64;
                if let Some(attr) = &mut self.attr {
                    attr.block_reason[w] = BlockReason::Branch;
                }
            }
            Terminator::Exit => {
                self.warps[w].exited = true;
            }
            Terminator::Branch { cond, on_true, on_false, reconverge } => {
                let mut t_mask = 0u32;
                for l in 0..self.cfg.simd_lanes {
                    if mask & (1 << l) != 0 && self.behavior.eval_cond(cond, w, l, &self.machine) {
                        t_mask |= 1 << l;
                    }
                }
                let f_mask = mask & !t_mask;
                #[cfg(feature = "validate")]
                {
                    assert_eq!(t_mask & f_mask, 0, "validate: divergent masks overlap");
                    assert_eq!(
                        t_mask | f_mask,
                        mask,
                        "validate: divergence must partition the parent mask"
                    );
                }
                let warp = &mut self.warps[w];
                if f_mask == 0 {
                    let top = warp.top_mut();
                    top.pc = on_true;
                    top.op_idx = 0;
                } else if t_mask == 0 {
                    let top = warp.top_mut();
                    top.pc = on_false;
                    top.op_idx = 0;
                } else {
                    // Divergence: parent waits at the reconvergence point;
                    // execute the false path after the true path.
                    {
                        let top = warp.top_mut();
                        top.pc = reconverge;
                        top.op_idx = 0;
                    }
                    warp.stack.push(StackEntry {
                        pc: on_false,
                        op_idx: 0,
                        mask: f_mask,
                        reconv: reconverge,
                    });
                    warp.stack.push(StackEntry {
                        pc: on_true,
                        op_idx: 0,
                        mask: t_mask,
                        reconv: reconverge,
                    });
                    #[cfg(feature = "validate")]
                    {
                        let depth = warp.stack.len();
                        self.max_stack_depth = self.max_stack_depth.max(depth);
                        if let Some(bound) = self.stack_depth_bound {
                            assert!(
                                depth <= bound,
                                "validate: warp {w} SIMT stack reached {depth} entries, \
                                 exceeding the statically derived bound of {bound}"
                            );
                        }
                    }
                }
                self.warps[w].blocked_until = now + self.cfg.branch_penalty as u64;
                if let Some(attr) = &mut self.attr {
                    attr.block_reason[w] = BlockReason::Branch;
                }
            }
        }
    }
}

enum IssueResult {
    Issued,
    Stalled,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::NullSpecial;
    use crate::isa::MicroOp;
    use crate::program::Block;
    use drs_trace::{RayScript, Step, Termination};

    /// A toy kernel: each lane consumes its script's steps one per loop
    /// iteration (cond 0 = "lane's slot still has steps"; effect 0 =
    /// consume + retire/fetch as needed; addr 0 = current step address).
    pub(super) struct ToyBehavior;

    const COND_HAS_WORK: u16 = 0;
    const EFF_CONSUME: u16 = 0;
    const ADDR_NODE: u16 = 0;

    impl KernelBehavior for ToyBehavior {
        fn eval_cond(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> bool {
            assert_eq!(token, COND_HAS_WORK);
            let Some(slot) = m.slot_of(warp, lane) else { return false };
            m.peek_step(slot).is_some() || !m.queue.is_empty()
        }

        fn eval_addr(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> u64 {
            assert_eq!(token, ADDR_NODE);
            let slot = m.slot_of(warp, lane).expect("mapped lane");
            match m.peek_step(slot) {
                Some(Step::Inner { node_addr, .. }) => *node_addr,
                Some(Step::Leaf { node_addr, .. }) => *node_addr,
                None => 0x7000_0000,
            }
        }

        fn apply_effect(&self, token: u16, warp: usize, lane: usize, m: &mut MachineState<'_>) {
            assert_eq!(token, EFF_CONSUME);
            let slot = m.slot_of(warp, lane).expect("mapped lane");
            if m.slots[slot].ray.is_none() {
                m.fetch_into(slot);
                return;
            }
            if m.peek_step(slot).is_some() {
                m.consume_step(slot);
            }
            if m.peek_step(slot).is_none() && m.slots[slot].ray.is_some() {
                m.retire_ray(slot);
            }
        }

        fn initialize(&self, m: &mut MachineState<'_>) {
            for s in 0..m.slots.len() {
                m.fetch_into(s);
            }
        }
    }

    pub(super) fn toy_program() -> Program {
        Program::new(vec![
            // 0: loop head
            Block::new(
                "head",
                vec![],
                Terminator::Branch { cond: COND_HAS_WORK, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            // 1: body — a load from the script address, some ALU, consume.
            Block::new(
                "body",
                vec![
                    MicroOp::load(1, MemSpace::Texture, ADDR_NODE, &[]),
                    MicroOp::alu(2, &[1], 9),
                    MicroOp::alu(3, &[2], 9),
                    MicroOp::effect(EFF_CONSUME),
                ],
                Terminator::Jump(0),
            ),
            // 2: exit
            Block::new("exit", vec![], Terminator::Exit),
        ])
    }

    pub(super) fn scripts_uniform(n: usize, steps: usize) -> Vec<RayScript> {
        (0..n)
            .map(|i| {
                RayScript::new(
                    (0..steps)
                        .map(|s| Step::Inner {
                            node_addr: 0x1000_0000 + ((i * steps + s) as u64) * 64,
                            both_children_hit: false,
                        })
                        .collect(),
                    Termination::Escaped,
                )
            })
            .collect()
    }

    pub(super) fn small_cfg(warps: usize) -> GpuConfig {
        GpuConfig { max_warps: warps, max_cycles: 2_000_000, ..GpuConfig::gtx780() }
    }

    #[test]
    fn toy_kernel_completes_all_rays() {
        let scripts = scripts_uniform(256, 10);
        let sim = Simulation::new(
            small_cfg(4),
            toy_program(),
            Box::new(ToyBehavior),
            Box::new(NullSpecial),
            &scripts,
        );
        let stats = sim.run().expect("simulation hit the cycle cap");
        assert_eq!(stats.rays_completed, 256);
        assert!(stats.cycles > 0);
        assert!(stats.issued.total > 0);
        assert!(stats.loads > 0);
    }

    #[test]
    fn uniform_scripts_give_full_simd_efficiency() {
        // Every lane has identical-length scripts: no divergence at the loop
        // branch, so every issue has 32 active lanes.
        let scripts = scripts_uniform(128, 6);
        let sim = Simulation::new(
            small_cfg(4),
            toy_program(),
            Box::new(ToyBehavior),
            Box::new(NullSpecial),
            &scripts,
        );
        let stats = sim.run().expect("completes");
        assert!(stats.issued.simd_efficiency() > 0.999, "got {}", stats.issued.simd_efficiency());
    }

    #[test]
    fn ragged_scripts_reduce_simd_efficiency() {
        // Lane i's ray has i%16+1 steps: heavy divergence at the loop branch.
        let scripts: Vec<RayScript> = (0..128usize)
            .map(|i| {
                RayScript::new(
                    (0..=(i % 16))
                        .map(|s| Step::Inner {
                            node_addr: 0x1000_0000 + ((i * 31 + s) as u64) * 64,
                            both_children_hit: false,
                        })
                        .collect(),
                    Termination::Escaped,
                )
            })
            .collect();
        let sim = Simulation::new(
            small_cfg(4),
            toy_program(),
            Box::new(ToyBehavior),
            Box::new(NullSpecial),
            &scripts,
        );
        let stats = sim.run().expect("completes");
        let eff = stats.issued.simd_efficiency();
        assert!(eff < 0.95, "ragged work should diverge, got {eff}");
        assert!(eff > 0.2, "sanity lower bound, got {eff}");
        assert_eq!(stats.rays_completed, 128);
    }

    #[test]
    fn deterministic_cycle_counts() {
        let scripts = scripts_uniform(64, 5);
        let run = || {
            Simulation::new(
                small_cfg(2),
                toy_program(),
                Box::new(ToyBehavior),
                Box::new(NullSpecial),
                &scripts,
            )
            .run()
            .expect("completes")
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.issued.total, b.issued.total);
    }

    #[test]
    fn cache_locality_speeds_up_reruns() {
        // Identical addresses across rays: second warp set hits in L1.
        let mut scripts = scripts_uniform(32, 8);
        let clone = scripts.clone();
        scripts.extend(clone); // same addresses again
        let sim = Simulation::new(
            small_cfg(2),
            toy_program(),
            Box::new(ToyBehavior),
            Box::new(NullSpecial),
            &scripts,
        );
        let stats = sim.run().expect("completes");
        assert!(stats.l1t.hits > 0, "expected texture-cache hits");
    }

    /// Special unit that stalls the first `n` attempts.
    struct StallingUnit {
        remaining: u32,
    }
    impl SpecialUnit for StallingUnit {
        fn issue(
            &mut self,
            _w: usize,
            _t: u16,
            _m: &mut MachineState<'_>,
            _s: &mut SimStats,
        ) -> SpecialOutcome {
            if self.remaining > 0 {
                self.remaining -= 1;
                SpecialOutcome::Stall
            } else {
                SpecialOutcome::Proceed { ctrl: 7 }
            }
        }
        fn tick(&mut self, _c: u64, _i: &[bool], _m: &mut MachineState<'_>, _s: &mut SimStats) {}
    }

    #[test]
    fn special_stalls_are_counted_and_retried() {
        struct SpecialToy;
        impl KernelBehavior for SpecialToy {
            fn eval_cond(&self, _t: u16, _w: usize, _l: usize, _m: &MachineState<'_>) -> bool {
                false
            }
            fn eval_addr(&self, _t: u16, _w: usize, _l: usize, _m: &MachineState<'_>) -> u64 {
                0
            }
            fn apply_effect(&self, _t: u16, _w: usize, _l: usize, _m: &mut MachineState<'_>) {}
        }
        let program =
            Program::new(vec![Block::new("only", vec![MicroOp::special(0, 0)], Terminator::Exit)]);
        let scripts: Vec<RayScript> = vec![];
        let cfg = GpuConfig { max_warps: 1, ..GpuConfig::gtx780() };
        let sim = Simulation::new(
            cfg,
            program,
            Box::new(SpecialToy),
            Box::new(StallingUnit { remaining: 5 }),
            &scripts,
        );
        let stats = sim.run().expect("completes");
        assert_eq!(stats.rdctrl_stalls, 5);
        assert_eq!(stats.rdctrl_issued, 1);
        assert!((stats.rdctrl_stall_rate() - 5.0 / 6.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::tests::{scripts_uniform, small_cfg, toy_program, ToyBehavior};
    use super::*;
    use crate::behavior::NullSpecial;
    use crate::telemetry::NUM_STALL_BUCKETS;

    /// Sink that tallies buckets and checks per-call invariants.
    #[derive(Default)]
    struct Recorder {
        cycles: u64,
        warps: usize,
        counts: [u64; NUM_STALL_BUCKETS],
        finished: bool,
        last_cycle: Option<u64>,
    }

    impl TelemetrySink for Recorder {
        fn on_cycle(&mut self, snap: &CycleSnapshot, warp_buckets: &[StallBucket]) {
            // Cycles arrive strictly in order, exactly once each.
            if let Some(prev) = self.last_cycle {
                assert_eq!(snap.cycle, prev + 1);
            } else {
                assert_eq!(snap.cycle, 0);
            }
            self.last_cycle = Some(snap.cycle);
            self.cycles += 1;
            self.warps = warp_buckets.len();
            for &b in warp_buckets {
                self.counts[b as usize] += 1;
            }
        }

        fn on_finish(&mut self, snap: &CycleSnapshot) {
            assert!(!self.finished, "on_finish must fire once");
            self.finished = true;
            assert_eq!(snap.cycle, self.cycles);
        }
    }

    fn run_with_recorder(scripts: &[RayScript]) -> (SimStats, Recorder) {
        let mut rec = Recorder::default();
        let mut sim = Simulation::new(
            small_cfg(4),
            toy_program(),
            Box::new(ToyBehavior),
            Box::new(NullSpecial),
            scripts,
        );
        sim.attach_telemetry(&mut rec);
        let stats = sim.run().expect("completes");
        (stats, rec)
    }

    #[test]
    fn accounting_identity_holds_every_cycle() {
        let scripts = scripts_uniform(256, 10);
        let (stats, rec) = run_with_recorder(&scripts);
        assert!(rec.finished);
        assert_eq!(rec.cycles, stats.cycles);
        assert_eq!(rec.warps, 4);
        let total: u64 = rec.counts.iter().sum();
        assert_eq!(
            total,
            stats.cycles * 4,
            "Σ buckets must equal cycles × warps; got {:?}",
            rec.counts
        );
        // The toy kernel issues, waits on loads and drains at the end.
        assert!(rec.counts[StallBucket::Issued as usize] > 0);
        assert!(rec.counts[StallBucket::MemoryPending as usize] > 0);
        assert!(rec.counts[StallBucket::SimtDrain as usize] > 0);
    }

    #[test]
    fn detached_and_attached_runs_are_bit_identical() {
        let scripts = scripts_uniform(128, 6);
        let plain = Simulation::new(
            small_cfg(4),
            toy_program(),
            Box::new(ToyBehavior),
            Box::new(NullSpecial),
            &scripts,
        )
        .run()
        .expect("completes");
        let (observed, _) = run_with_recorder(&scripts);
        assert_eq!(plain, observed, "telemetry must be purely observational");
    }

    #[test]
    fn issued_cycles_bounded_by_issue_histogram() {
        // A warp-cycle charged `issued` implies ≥ 1 issue, and one warp
        // issues at most `issues_per_scheduler` ops per cycle.
        let scripts = scripts_uniform(64, 5);
        let (stats, rec) = run_with_recorder(&scripts);
        let issued_cycles = rec.counts[StallBucket::Issued as usize];
        let issued_insts = stats.issued.total + stats.issued_si.total;
        assert!(issued_cycles <= issued_insts);
        assert!(issued_insts <= issued_cycles * small_cfg(4).issues_per_scheduler() as u64);
    }
}

#[cfg(test)]
mod fastpath_tests {
    use super::tests::{scripts_uniform, small_cfg, toy_program, ToyBehavior};
    use super::*;
    use crate::behavior::NullSpecial;
    use crate::telemetry::NUM_STALL_BUCKETS;

    /// Sink recording the exact per-cycle bucket stream (via the default
    /// `on_cycles` expansion) so fast-path and naive runs can be compared
    /// cycle for cycle, not just in aggregate.
    #[derive(Default)]
    struct Stream {
        buckets: Vec<Vec<StallBucket>>,
        counts: [u64; NUM_STALL_BUCKETS],
        final_cycle: Option<u64>,
    }

    impl TelemetrySink for Stream {
        fn on_cycle(&mut self, snap: &CycleSnapshot, warp_buckets: &[StallBucket]) {
            assert_eq!(snap.cycle, self.buckets.len() as u64, "cycles in order, exactly once");
            self.buckets.push(warp_buckets.to_vec());
            for &b in warp_buckets {
                self.counts[b as usize] += 1;
            }
        }
        fn on_finish(&mut self, snap: &CycleSnapshot) {
            self.final_cycle = Some(snap.cycle);
        }
    }

    fn run_toy(warps: usize, fastpath: bool) -> SimStats {
        let scripts = scripts_uniform(192, 9);
        let mut sim = Simulation::new(
            small_cfg(warps),
            toy_program(),
            Box::new(ToyBehavior),
            Box::new(NullSpecial),
            &scripts,
        );
        sim.set_fastpath(fastpath);
        sim.run().expect("completes")
    }

    #[test]
    fn fastpath_stats_bit_identical() {
        for warps in [1, 2, 4] {
            let fast = run_toy(warps, true);
            let naive = run_toy(warps, false);
            assert_eq!(fast, naive, "fast path must not change results ({warps} warps)");
        }
    }

    #[test]
    fn fastpath_telemetry_stream_identical() {
        let scripts = scripts_uniform(128, 7);
        let run = |fastpath: bool| {
            let mut s = Stream::default();
            let mut sim = Simulation::new(
                small_cfg(4),
                toy_program(),
                Box::new(ToyBehavior),
                Box::new(NullSpecial),
                &scripts,
            );
            sim.set_fastpath(fastpath);
            sim.attach_telemetry(&mut s);
            let stats = sim.run().expect("completes");
            (stats, s)
        };
        let (fast, fs) = run(true);
        let (naive, ns) = run(false);
        assert_eq!(fast, naive);
        assert_eq!(fs.final_cycle, ns.final_cycle);
        assert_eq!(fs.counts, ns.counts, "bulk-charged buckets must match naive attribution");
        assert_eq!(fs.buckets, ns.buckets, "per-cycle bucket streams must be identical");
        let total: u64 = fs.counts.iter().sum();
        assert_eq!(total, fast.cycles * 4, "accounting identity survives skipping");
    }

    #[test]
    fn fastpath_skips_memory_latency_spans() {
        // One warp waiting on DRAM-latency loads: the naive loop steps
        // through hundreds of dead cycles per load, the fast path must
        // reach the identical end state. (The real speedup assertion lives
        // in the perf harness; here we only prove equivalence on the most
        // skip-friendly shape.)
        let fast = run_toy(1, true);
        let naive = run_toy(1, false);
        assert_eq!(fast, naive);
        assert!(fast.cycles > 1000, "the workload must have dead spans worth skipping");
    }

    /// A special unit with a non-trivial tick that mutates stats every
    /// cycle while any warp is live: its conservative default
    /// `next_event` (`Some(now)`) must disable skipping so the fast path
    /// cannot miss those ticks.
    struct CountingUnit;
    impl SpecialUnit for CountingUnit {
        fn issue(
            &mut self,
            _w: usize,
            _t: u16,
            _m: &mut MachineState<'_>,
            _s: &mut SimStats,
        ) -> SpecialOutcome {
            SpecialOutcome::Proceed { ctrl: 0 }
        }
        fn tick(&mut self, _c: u64, _i: &[bool], _m: &mut MachineState<'_>, s: &mut SimStats) {
            s.sync_wait_cycles += 1;
        }
    }

    #[test]
    fn conservative_default_next_event_disables_skipping() {
        let scripts = scripts_uniform(64, 6);
        let run = |fastpath: bool| {
            let mut sim = Simulation::new(
                small_cfg(2),
                toy_program(),
                Box::new(ToyBehavior),
                Box::new(CountingUnit),
                &scripts,
            );
            sim.set_fastpath(fastpath);
            sim.run().expect("completes")
        };
        let fast = run(true);
        let naive = run(false);
        assert_eq!(fast, naive);
        // The tick ran on every single cycle in both runs.
        assert_eq!(fast.sync_wait_cycles, fast.cycles);
    }
}

#[cfg(test)]
mod more_engine_tests {
    use super::*;
    use crate::behavior::NullSpecial;
    use crate::config::SchedulerPolicy;
    use crate::isa::MicroOp;
    use crate::program::Block;
    use drs_trace::{RayScript, Step, Termination};

    /// Behavior whose single load reads either one shared line or one line
    /// per lane, depending on the address token.
    struct CoalesceProbe;
    const A_SHARED: u16 = 0;
    const A_SCATTER: u16 = 1;

    impl KernelBehavior for CoalesceProbe {
        fn eval_cond(&self, _t: u16, _w: usize, _l: usize, _m: &MachineState<'_>) -> bool {
            false
        }
        fn eval_addr(&self, token: u16, _w: usize, lane: usize, _m: &MachineState<'_>) -> u64 {
            match token {
                A_SHARED => 0x1000_0000,
                _ => 0x2000_0000 + lane as u64 * 4096,
            }
        }
        fn apply_effect(&self, _t: u16, _w: usize, _l: usize, _m: &mut MachineState<'_>) {}
    }

    fn one_load_program(addr: u16) -> Program {
        Program::new(vec![Block::new(
            "only",
            vec![MicroOp::load(1, MemSpace::Texture, addr, &[])],
            Terminator::Exit,
        )])
    }

    fn run_probe(addr: u16) -> SimStats {
        let scripts: Vec<RayScript> = vec![];
        let cfg = GpuConfig { max_warps: 1, ..GpuConfig::gtx780() };
        Simulation::new(
            cfg,
            one_load_program(addr),
            Box::new(CoalesceProbe),
            Box::new(NullSpecial),
            &scripts,
        )
        .run()
        .expect("probe completes")
    }

    #[test]
    fn coalescer_merges_shared_lines_and_splits_scattered_ones() {
        let shared = run_probe(A_SHARED);
        assert_eq!(shared.mem_transactions, 1, "32 lanes, one line");
        let scattered = run_probe(A_SCATTER);
        assert_eq!(scattered.mem_transactions, 32, "one line per lane");
    }

    /// Scheduler-policy ablation: LRR and GTO produce different (but both
    /// complete) schedules on a divergent workload.
    #[test]
    fn lrr_and_gto_schedules_differ() {
        // Enough rays, script-length spread and cache pressure that the
        // pick order visibly changes the schedule.
        let scripts: Vec<RayScript> = (0..1024usize)
            .map(|i| {
                RayScript::new(
                    (0..=(i % 37))
                        .map(|k| Step::Inner {
                            node_addr: 0x1000_0000 + ((i * 131 + k * 7) % 16384) as u64 * 64,
                            both_children_hit: false,
                        })
                        .collect(),
                    Termination::Escaped,
                )
            })
            .collect();
        // Reuse the toy kernel from the main engine tests via a local copy.
        struct Toy;
        impl KernelBehavior for Toy {
            fn eval_cond(&self, _t: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> bool {
                let Some(s) = m.slot_of(warp, lane) else { return false };
                m.peek_step(s).is_some() || !m.queue.is_empty()
            }
            fn eval_addr(&self, _t: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> u64 {
                let s = m.slot_of(warp, lane).expect("mapped");
                match m.peek_step(s) {
                    Some(Step::Inner { node_addr, .. }) => *node_addr,
                    Some(Step::Leaf { node_addr, .. }) => *node_addr,
                    None => 0x7000_0000,
                }
            }
            fn apply_effect(&self, _t: u16, warp: usize, lane: usize, m: &mut MachineState<'_>) {
                let s = m.slot_of(warp, lane).expect("mapped");
                if m.slots[s].ray.is_none() {
                    m.fetch_into(s);
                    return;
                }
                if m.peek_step(s).is_some() {
                    m.consume_step(s);
                }
                if m.peek_step(s).is_none() && m.slots[s].ray.is_some() {
                    m.retire_ray(s);
                }
            }
            fn initialize(&self, m: &mut MachineState<'_>) {
                for s in 0..m.slots.len() {
                    m.fetch_into(s);
                }
            }
        }
        let program = Program::new(vec![
            Block::new(
                "head",
                vec![],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            Block::new(
                "body",
                vec![
                    MicroOp::load(1, MemSpace::Texture, 0, &[]),
                    MicroOp::alu(2, &[1], 9),
                    MicroOp::effect(0),
                ],
                Terminator::Jump(0),
            ),
            Block::new("exit", vec![], Terminator::Exit),
        ]);
        let run = |policy| {
            // More warps than schedulers so the pick order matters.
            let cfg = GpuConfig {
                max_warps: 8,
                scheduler_policy: policy,
                max_cycles: 10_000_000,
                ..GpuConfig::gtx780()
            };
            Simulation::new(cfg, program.clone(), Box::new(Toy), Box::new(NullSpecial), &scripts)
                .run()
                .expect("completes")
        };
        let gto = run(SchedulerPolicy::GreedyThenOldest);
        let lrr = run(SchedulerPolicy::LooseRoundRobin);
        assert_eq!(gto.rays_completed, 1024);
        assert_eq!(lrr.rays_completed, 1024);
        assert_ne!(gto.cycles, lrr.cycles, "policies must differ");
    }
}

#[cfg(test)]
mod failure_tests {
    use super::tests::{scripts_uniform, small_cfg, toy_program, ToyBehavior};
    use super::*;
    use crate::behavior::NullSpecial;
    use crate::isa::MicroOp;
    use crate::program::Block;

    fn toy_sim(scripts: &[RayScript], cfg: GpuConfig) -> Simulation<'_> {
        Simulation::new(cfg, toy_program(), Box::new(ToyBehavior), Box::new(NullSpecial), scripts)
    }

    #[test]
    fn cycle_limit_yields_typed_error_with_partial_stats() {
        let scripts = scripts_uniform(256, 10);
        let cfg = GpuConfig { max_cycles: 200, ..small_cfg(4) };
        let err = toy_sim(&scripts, cfg).run().expect_err("200 cycles is far too few");
        assert_eq!(err.kind.label(), "cycle_limit");
        assert!(matches!(err.kind, SimErrorKind::CycleLimit { max_cycles: 200 }));
        assert_eq!(err.cycle, 200);
        // Partial stats are finalized: the truncated run still reports
        // cycles, issue counts and a block profile.
        assert_eq!(err.stats.cycles, 200);
        assert!(err.stats.issued.total > 0, "something issued before the cap");
        assert!(!err.stats.block_profile.is_empty());
        assert!(err.stats.rays_completed < 256);
    }

    /// A special unit that refuses every issue attempt: the kernel can
    /// never make progress, which is exactly the livelock the watchdog
    /// exists to catch.
    struct AlwaysStall;
    impl SpecialUnit for AlwaysStall {
        fn issue(
            &mut self,
            _w: usize,
            _t: u16,
            _m: &mut MachineState<'_>,
            _s: &mut SimStats,
        ) -> SpecialOutcome {
            SpecialOutcome::Stall
        }
        fn tick(&mut self, _c: u64, _i: &[bool], _m: &mut MachineState<'_>, _s: &mut SimStats) {}
    }

    struct NoWork;
    impl KernelBehavior for NoWork {
        fn eval_cond(&self, _t: u16, _w: usize, _l: usize, _m: &MachineState<'_>) -> bool {
            false
        }
        fn eval_addr(&self, _t: u16, _w: usize, _l: usize, _m: &MachineState<'_>) -> u64 {
            0
        }
        fn apply_effect(&self, _t: u16, _w: usize, _l: usize, _m: &mut MachineState<'_>) {}
    }

    #[test]
    fn organic_livelock_trips_watchdog_with_warp_dump() {
        let program =
            Program::new(vec![Block::new("spin", vec![MicroOp::special(0, 0)], Terminator::Exit)]);
        let scripts: Vec<RayScript> = vec![];
        let cfg = GpuConfig { max_warps: 2, watchdog_cycles: 500, ..GpuConfig::gtx780() };
        let sim = Simulation::new(cfg, program, Box::new(NoWork), Box::new(AlwaysStall), &scripts);
        let err = sim.run().expect_err("livelocked kernel must trip the watchdog");
        match &err.kind {
            SimErrorKind::Watchdog { stalled_cycles, watchdog_cycles, injected, dump } => {
                assert!(*stalled_cycles > 500);
                assert_eq!(*watchdog_cycles, 500);
                assert!(!injected);
                assert_eq!(dump.warps.len(), 2);
                let w0 = &dump.warps[0];
                assert!(!w0.exited);
                assert_eq!(w0.stack.len(), 1);
                assert_eq!(w0.stack[0].label, "spin");
                let text = dump.to_string();
                assert!(text.contains("`spin`"), "{text}");
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
    }

    #[test]
    fn injected_watchdog_trip_fires_with_real_dump() {
        let scripts = scripts_uniform(128, 8);
        let mut sim = toy_sim(&scripts, small_cfg(4));
        sim.inject_watchdog_trip(50);
        let err = sim.run().expect_err("injected trip must fire");
        match &err.kind {
            SimErrorKind::Watchdog { injected, dump, .. } => {
                assert!(injected);
                assert_eq!(dump.warps.len(), 4);
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
        assert!(err.cycle >= 50, "trip fires once the cycle reaches the mark");
    }

    #[test]
    fn injected_trip_after_completion_never_fires() {
        let scripts = scripts_uniform(64, 4);
        let mut sim = toy_sim(&scripts, small_cfg(4));
        sim.inject_watchdog_trip(u64::MAX);
        let stats = sim.run().expect("completes before the trip point");
        assert_eq!(stats.rays_completed, 64);
    }

    #[test]
    fn expired_deadline_fails_with_deadline_error() {
        let scripts = scripts_uniform(512, 12);
        let mut sim = toy_sim(&scripts, small_cfg(2));
        // Naive stepping so loop iterations == cycles, guaranteeing the
        // cooperative check (every 1024 iterations) actually runs.
        sim.set_fastpath(false);
        sim.set_deadline(Instant::now(), 0);
        let err = sim.run().expect_err("already-expired deadline");
        assert!(matches!(err.kind, SimErrorKind::Deadline { budget_ms: 0 }));
        assert!(err.cycle > 0, "some cycles ran before the cooperative check");
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let scripts = scripts_uniform(64, 4);
        let mut sim = toy_sim(&scripts, small_cfg(4));
        let budget = std::time::Duration::from_hours(1);
        sim.set_deadline(Instant::now() + budget, 3_600_000);
        let stats = sim.run().expect("one-hour budget is ample for a toy run");
        assert_eq!(stats.rays_completed, 64);
    }
}
