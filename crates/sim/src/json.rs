//! A minimal hand-rolled JSON emitter (std-only, no dependencies).
//!
//! The experiment harness records every simulation cell to
//! `BENCH_experiments.json` so the repo accumulates a machine-readable
//! perf trajectory across PRs. The simulator owns the emitter because the
//! bulk of each record is [`SimStats`](crate::SimStats); keeping the
//! serialization next to the counters means a new counter and its JSON
//! field are added in one place.
//!
//! The writer produces compact, valid JSON: string escaping per RFC 8259,
//! non-finite floats mapped to `null` (JSON has no NaN/Infinity), and
//! comma placement tracked by a container stack. It is append-only — there
//! is no DOM — which is all the harness needs.
//!
//! # Example
//!
//! ```
//! use drs_sim::JsonBuf;
//!
//! let mut j = JsonBuf::new();
//! j.begin_obj();
//! j.kv_str("scene", "conference room");
//! j.kv_u64("rays", 24_000);
//! j.key("buckets");
//! j.begin_arr();
//! j.u64(1);
//! j.u64(2);
//! j.end_arr();
//! j.end_obj();
//! assert_eq!(j.finish(), r#"{"scene":"conference room","rays":24000,"buckets":[1,2]}"#);
//! ```

use crate::cache::CacheStats;
use crate::stats::{ActiveHistogram, SimStats};

/// An append-only JSON string builder.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// One entry per open container: `true` once it has an element (so the
    /// next element needs a leading comma).
    stack: Vec<bool>,
}

impl JsonBuf {
    /// An empty buffer.
    pub fn new() -> JsonBuf {
        JsonBuf::default()
    }

    /// Consume the buffer, returning the JSON text.
    ///
    /// # Panics
    ///
    /// Panics if a container opened with `begin_obj`/`begin_arr` was never
    /// closed — that is a bug in the emitting code, not in the data.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    /// Write the comma separating this element from its predecessor (if
    /// any) and mark the enclosing container non-empty.
    fn separate(&mut self) {
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
    }

    /// Open an object (`{`).
    pub fn begin_obj(&mut self) {
        self.separate();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Close the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.stack.pop().expect("end_obj with no open container");
        self.out.push('}');
    }

    /// Open an array (`[`).
    pub fn begin_arr(&mut self) {
        self.separate();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Close the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.stack.pop().expect("end_arr with no open container");
        self.out.push(']');
    }

    /// Write an object key. The following value call supplies the value
    /// (key/value separation is the caller's responsibility to pair up).
    pub fn key(&mut self, k: &str) {
        self.separate();
        self.push_escaped(k);
        self.out.push(':');
        // The value following the key must not emit a comma of its own:
        // temporarily mark the container "empty" again.
        if let Some(has_elems) = self.stack.last_mut() {
            *has_elems = false;
        }
    }

    fn value_written(&mut self) {
        if let Some(has_elems) = self.stack.last_mut() {
            *has_elems = true;
        }
    }

    /// Write a string value.
    pub fn str(&mut self, v: &str) {
        self.separate();
        self.push_escaped(v);
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.separate();
        self.out.push_str(&v.to_string());
    }

    /// Write a float value; NaN and infinities become `null`.
    pub fn f64(&mut self, v: f64) {
        self.separate();
        if v.is_finite() {
            // Rust's shortest-roundtrip formatting is valid JSON for
            // finite values (always contains a digit, never an exponent
            // JSON can't parse).
            let s = v.to_string();
            self.out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.separate();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// `key: string` shorthand.
    pub fn kv_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str(v);
        self.value_written();
    }

    /// `key: u64` shorthand.
    pub fn kv_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
        self.value_written();
    }

    /// `key: f64` shorthand.
    pub fn kv_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
        self.value_written();
    }

    /// `key: bool` shorthand.
    pub fn kv_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool(v);
        self.value_written();
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

impl ActiveHistogram {
    /// Append this histogram as a JSON object (buckets, total, efficiency).
    pub fn write_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.key("buckets");
        j.begin_arr();
        for b in self.buckets {
            j.u64(b);
        }
        j.end_arr();
        j.kv_u64("total", self.total);
        j.kv_u64("active_sum", self.active_sum);
        j.kv_f64("simd_efficiency", self.simd_efficiency());
        j.end_obj();
    }
}

impl CacheStats {
    /// Append hit/miss counters as a JSON object.
    pub fn write_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.kv_u64("hits", self.hits);
        j.kv_u64("misses", self.misses);
        j.kv_f64("hit_rate", self.hit_rate());
        j.end_obj();
    }
}

impl SimStats {
    /// Append every counter of this run as a JSON object — the complete
    /// machine-readable record of one simulation cell.
    pub fn write_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.kv_u64("cycles", self.cycles);
        j.kv_u64("rays_completed", self.rays_completed);
        j.key("issued");
        self.issued.write_json(j);
        j.key("issued_si");
        self.issued_si.write_json(j);
        j.kv_u64("loads", self.loads);
        j.kv_u64("stores", self.stores);
        j.kv_u64("mem_transactions", self.mem_transactions);
        j.kv_u64("rdctrl_stalls", self.rdctrl_stalls);
        j.kv_u64("rdctrl_issued", self.rdctrl_issued);
        j.kv_u64("regfile_reads", self.regfile_reads);
        j.kv_u64("regfile_writes", self.regfile_writes);
        j.kv_u64("bank_conflicts", self.bank_conflicts);
        j.kv_u64("swap_accesses", self.swap_accesses);
        j.kv_u64("swaps_completed", self.swaps_completed);
        j.kv_u64("swap_cycle_sum", self.swap_cycle_sum);
        j.kv_u64("spawn_bank_conflict_cycles", self.spawn_bank_conflict_cycles);
        j.kv_u64("sync_wait_cycles", self.sync_wait_cycles);
        j.key("l1t");
        self.l1t.write_json(j);
        j.key("l1d");
        self.l1d.write_json(j);
        j.key("l2");
        self.l2.write_json(j);
        j.key("block_profile");
        j.begin_arr();
        for (label, issues, active_sum) in &self.block_profile {
            j.begin_obj();
            j.kv_str("block", label);
            j.kv_u64("issues", *issues);
            j.kv_u64("active_sum", *active_sum);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure_and_commas() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_str("a", "x");
        j.key("b");
        j.begin_arr();
        j.u64(1);
        j.begin_obj();
        j.kv_bool("t", true);
        j.end_obj();
        j.end_arr();
        j.kv_f64("c", 1.5);
        j.end_obj();
        assert_eq!(j.finish(), r#"{"a":"x","b":[1,{"t":true}],"c":1.5}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let mut j = JsonBuf::new();
        j.str("quote\" slash\\ nl\n tab\t ctrl\u{1}");
        assert_eq!(j.finish(), "\"quote\\\" slash\\\\ nl\\n tab\\t ctrl\\u0001\"");
    }

    #[test]
    fn floats_are_json_safe() {
        let mut j = JsonBuf::new();
        j.begin_arr();
        j.f64(1.0);
        j.f64(0.25);
        j.f64(f64::NAN);
        j.f64(f64::INFINITY);
        j.end_arr();
        assert_eq!(j.finish(), "[1.0,0.25,null,null]");
    }

    #[test]
    #[should_panic]
    fn unclosed_container_is_a_bug() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        let _ = j.finish();
    }

    #[test]
    fn simstats_serializes_every_counter() {
        let stats = SimStats {
            cycles: 100,
            rays_completed: 42,
            loads: 7,
            block_profile: vec![("inner".to_string(), 5, 100)],
            ..Default::default()
        };
        let mut j = JsonBuf::new();
        stats.write_json(&mut j);
        let s = j.finish();
        assert!(s.contains("\"cycles\":100"));
        assert!(s.contains("\"rays_completed\":42"));
        assert!(s.contains("\"block\":\"inner\""));
        assert!(s.contains("\"l1t\":{"));
        // Braces and brackets balance.
        let open = s.matches(['{', '[']).count();
        let close = s.matches(['}', ']']).count();
        assert_eq!(open, close);
    }
}
