//! A cycle-level SIMT GPU core simulator.
//!
//! This crate models one streaming multiprocessor (SMX) of a Kepler-class
//! GPU at cycle granularity — the simulation substrate standing in for the
//! execution-driven simulator used by the paper. It models:
//!
//! - **warps** executing micro-op programs under an IPDOM SIMT
//!   reconvergence stack,
//! - **four greedy-then-oldest (GTO) warp schedulers** with dual-issue
//!   dispatch (eight instructions per cycle peak),
//! - an in-order **register scoreboard** per warp,
//! - a **banked register file** whose per-cycle port usage is visible to
//!   attached hardware units (the DRS swap engine steals idle ports),
//! - **L1 data / L1 texture / L2 caches** with MSHR merging and a flat DRAM
//!   latency, fed by a per-warp memory coalescer,
//! - **statistics** matching the paper's reporting: the W*m*:*n* active-lane
//!   issue histogram, SIMD efficiency, stall and cache counters,
//! - **telemetry hooks**: an attachable [`TelemetrySink`] receives a
//!   per-cycle charge of every warp to one [`StallBucket`] (stall
//!   attribution) plus live counter snapshots; with no sink attached the
//!   hot loop does zero attribution work and results are bit-identical.
//!
//! Kernels are expressed as [`Program`]s of basic blocks of [`MicroOp`]s.
//! Per-lane branch outcomes and memory addresses are *oracle-driven*: each
//! lane holds a cursor into a captured ray traversal script
//! (see `drs-trace`), and the kernel's [`KernelBehavior`] implementation
//! interprets condition/address/effect tokens against that cursor. This is
//! the trace-driven methodology the paper itself uses ("we streamed traces
//! of rays captured from PBRT and fed these traces to ray tracing kernels").
//!
//! Hardware proposals (DRS, DMK, TBC) plug in as [`SpecialUnit`]s: they see
//! every `Special` micro-op issue attempt (e.g. `rdctrl`), can stall the
//! warp, remap lanes to ray slots, and get a per-cycle `tick` with access to
//! idle register-file bank ports.

#![warn(missing_docs)]

mod banks;
mod behavior;
mod cache;
mod config;
mod energy;
mod engine;
mod error;
mod isa;
mod json;
mod program;
mod state;
mod stats;
mod telemetry;

pub use banks::RegisterBanks;
pub use behavior::{KernelBehavior, NullSpecial, SpecialOutcome, SpecialUnit};
pub use cache::{Cache, CacheConfig, CacheStats, MemoryHierarchy};
pub use config::{ChipConfig, ChipConfigError, GpuConfig, SchedulerPolicy, L2_TOTAL_BYTES};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use engine::{PortRequest, Simulation, TRACKED_REGS};
pub use error::{FrameDump, SimError, SimErrorKind, WarpDump, WarpDumpEntry};
pub use isa::{MemSpace, MicroOp, OpKind, OpTag, Reg};
pub use json::JsonBuf;
pub use program::{Block, BlockId, Program, Terminator};
pub use state::{MachineState, RayQueue, RayRef, RaySlot, RayState, NO_POSTPONED, NO_SLOT};
pub use stats::{ActiveHistogram, SimStats};
pub use telemetry::{
    ChipDramCharge, ChipRequestEvent, ChipTelemetrySink, ChipTopology, CycleSnapshot, StallBucket,
    TelemetrySink, CHIP_TIME_Q, NUM_STALL_BUCKETS,
};
