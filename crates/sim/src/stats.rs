//! Simulation statistics matching the paper's reporting.

/// Histogram of issued warp instructions by active-lane count, using the
/// paper's W*m*:*n* buckets (W1:8, W9:16, W17:24, W25:32) plus an exact sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActiveHistogram {
    /// Issue counts per bucket: `[W1:8, W9:16, W17:24, W25:32]`.
    pub buckets: [u64; 4],
    /// Total issued instructions recorded.
    pub total: u64,
    /// Sum of active-lane counts over all issues.
    pub active_sum: u64,
}

impl ActiveHistogram {
    /// Record one issued instruction with `active` active lanes.
    ///
    /// # Panics
    ///
    /// Panics if `active` is zero or exceeds 32 (an issue with no active
    /// lanes is a simulator bug).
    pub fn record(&mut self, active: usize) {
        assert!((1..=32).contains(&active), "active lanes out of range: {active}");
        self.buckets[(active - 1) / 8] += 1;
        self.total += 1;
        self.active_sum += active as u64;
    }

    /// SIMD efficiency: mean active lanes / 32.
    pub fn simd_efficiency(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.active_sum as f64 / (self.total as f64 * 32.0)
    }

    /// Fraction of issues landing in bucket `i` (0 → W1:8 … 3 → W25:32).
    pub fn bucket_fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.buckets[i] as f64 / self.total as f64
    }

    /// The element-wise difference `self - earlier` — the issues recorded
    /// between two snapshots of the same growing histogram (interval
    /// sampling).
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not a prefix state of `self` (any counter
    /// would go negative) — snapshots taken out of order are a bug.
    pub fn delta(&self, earlier: &ActiveHistogram) -> ActiveHistogram {
        let sub = |a: u64, b: u64| {
            a.checked_sub(b).expect("histogram delta: earlier snapshot is not a prefix")
        };
        let mut buckets = [0u64; 4];
        for (d, (a, b)) in buckets.iter_mut().zip(self.buckets.iter().zip(earlier.buckets.iter())) {
            *d = sub(*a, *b);
        }
        ActiveHistogram {
            buckets,
            total: sub(self.total, earlier.total),
            active_sum: sub(self.active_sum, earlier.active_sum),
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &ActiveHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.active_sum += other.active_sum;
    }

    /// The paper's bucket labels.
    pub const BUCKET_LABELS: [&'static str; 4] = ["W1:8", "W9:16", "W17:24", "W25:32"];
}

/// All counters produced by one simulation run.
///
/// Derives `PartialEq` so the harness can prove bit-identical results
/// between serial and parallel experiment runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Issue histogram for ordinary kernel instructions.
    pub issued: ActiveHistogram,
    /// Issue histogram for spawn-overhead (SI) instructions — DMK only.
    pub issued_si: ActiveHistogram,
    /// Loads issued (warp instructions).
    pub loads: u64,
    /// Stores issued (warp instructions).
    pub stores: u64,
    /// Memory transactions after coalescing (cache-line requests).
    pub mem_transactions: u64,
    /// `rdctrl` issue attempts that stalled.
    pub rdctrl_stalls: u64,
    /// `rdctrl` instructions successfully issued.
    pub rdctrl_issued: u64,
    /// Register-file reads from instruction operands.
    pub regfile_reads: u64,
    /// Register-file writes from instruction results.
    pub regfile_writes: u64,
    /// Operand-collector bank conflicts.
    pub bank_conflicts: u64,
    /// Register-file accesses performed by the DRS swap engine.
    pub swap_accesses: u64,
    /// Rays moved by the DRS swap engine.
    pub swaps_completed: u64,
    /// Total cycles spent on completed ray swaps (start→finish, summed).
    pub swap_cycle_sum: u64,
    /// Spawn-memory bank-conflict cycles — DMK only.
    pub spawn_bank_conflict_cycles: u64,
    /// Cycles any TBC block spent synchronizing at a compaction point.
    pub sync_wait_cycles: u64,
    /// L1 texture cache hit/miss (filled from the hierarchy at run end).
    pub l1t: crate::cache::CacheStats,
    /// L1 data cache hit/miss.
    pub l1d: crate::cache::CacheStats,
    /// L2 hit/miss.
    pub l2: crate::cache::CacheStats,
    /// Rays fully traced.
    pub rays_completed: u64,
    /// Per-block issue profile: `(label, issues, active_lane_sum)` —
    /// which kernel blocks issue and at what occupancy.
    pub block_profile: Vec<(String, u64, u64)>,
}

impl SimStats {
    /// Combined (normal + SI) issue histogram.
    pub fn issued_all(&self) -> ActiveHistogram {
        let mut h = self.issued;
        h.merge(&self.issued_si);
        h
    }

    /// Overall SIMD efficiency including spawn-overhead instructions.
    pub fn simd_efficiency(&self) -> f64 {
        self.issued_all().simd_efficiency()
    }

    /// Throughput in millions of rays per second for a whole GPU of
    /// `smx_count` cores at `clock_mhz`, given this single-SMX run.
    pub fn mrays_per_sec(&self, clock_mhz: u32, smx_count: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let rays_per_cycle = self.rays_completed as f64 / self.cycles as f64;
        rays_per_cycle * clock_mhz as f64 * smx_count as f64
    }

    /// Fraction of `rdctrl` issue attempts that stalled.
    pub fn rdctrl_stall_rate(&self) -> f64 {
        let attempts = self.rdctrl_stalls + self.rdctrl_issued;
        if attempts == 0 {
            return 0.0;
        }
        self.rdctrl_stalls as f64 / attempts as f64
    }

    /// Mean cycles per completed ray swap.
    pub fn avg_swap_cycles(&self) -> f64 {
        if self.swaps_completed == 0 {
            return 0.0;
        }
        self.swap_cycle_sum as f64 / self.swaps_completed as f64
    }

    /// Fraction of register-file traffic caused by ray shuffling.
    pub fn swap_regfile_fraction(&self) -> f64 {
        let total = self.regfile_reads + self.regfile_writes + self.swap_accesses;
        if total == 0 {
            return 0.0;
        }
        self.swap_accesses as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = ActiveHistogram::default();
        h.record(1);
        h.record(8);
        h.record(9);
        h.record(24);
        h.record(25);
        h.record(32);
        assert_eq!(h.buckets, [2, 1, 1, 2]);
        assert_eq!(h.total, 6);
        assert_eq!(h.active_sum, 1 + 8 + 9 + 24 + 25 + 32);
    }

    #[test]
    fn simd_efficiency_full_warps() {
        let mut h = ActiveHistogram::default();
        for _ in 0..10 {
            h.record(32);
        }
        assert!((h.simd_efficiency() - 1.0).abs() < 1e-12);
        let mut h2 = ActiveHistogram::default();
        h2.record(16);
        assert!((h2.simd_efficiency() - 0.5).abs() < 1e-12);
        assert_eq!(ActiveHistogram::default().simd_efficiency(), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_active_is_a_bug() {
        ActiveHistogram::default().record(0);
    }

    #[test]
    fn delta_recovers_interval_counts() {
        let mut early = ActiveHistogram::default();
        early.record(32);
        early.record(4);
        let mut late = early;
        late.record(16);
        late.record(1);
        let d = late.delta(&early);
        assert_eq!(d.total, 2);
        assert_eq!(d.active_sum, 17);
        assert_eq!(d.buckets, [1, 1, 0, 0]);
        // Zero-width interval.
        let z = late.delta(&late);
        assert_eq!(z, ActiveHistogram::default());
    }

    #[test]
    #[should_panic]
    fn delta_rejects_reordered_snapshots() {
        let mut late = ActiveHistogram::default();
        late.record(8);
        let _ = ActiveHistogram::default().delta(&late);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ActiveHistogram::default();
        a.record(32);
        let mut b = ActiveHistogram::default();
        b.record(4);
        a.merge(&b);
        assert_eq!(a.total, 2);
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[3], 1);
    }

    #[test]
    fn mrays_scaling() {
        let stats = SimStats { cycles: 980, rays_completed: 980, ..Default::default() };
        // 1 ray/cycle at 980 MHz on 15 SMXs = 980 * 15 Mrays/s.
        let m = stats.mrays_per_sec(980, 15);
        assert!((m - 980.0 * 15.0).abs() < 1e-9);
        assert_eq!(SimStats::default().mrays_per_sec(980, 15), 0.0);
    }

    #[test]
    fn stall_rate() {
        let s = SimStats { rdctrl_stalls: 90, rdctrl_issued: 10, ..Default::default() };
        assert!((s.rdctrl_stall_rate() - 0.9).abs() < 1e-12);
        assert_eq!(SimStats::default().rdctrl_stall_rate(), 0.0);
    }

    #[test]
    fn swap_metrics() {
        let s = SimStats {
            swaps_completed: 4,
            swap_cycle_sum: 100,
            swap_accesses: 34,
            regfile_reads: 33,
            regfile_writes: 33,
            ..Default::default()
        };
        assert!((s.avg_swap_cycles() - 25.0).abs() < 1e-12);
        assert!((s.swap_regfile_fraction() - 0.34).abs() < 1e-12);
    }
}
