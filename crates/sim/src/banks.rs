//! Per-cycle register-file bank port tracking.
//!
//! Kepler-style register files are built from single-ported SRAM banks
//! behind an operand collector. We model the first-order effect: operand
//! reads of instructions issued in the same cycle contend for bank read
//! ports (each collision adds a cycle of operand-collection latency), and
//! ports left idle in a cycle are what the DRS swap engine may use to move
//! ray registers without perturbing the pipeline.

/// Tracks bank port usage within the current cycle.
#[derive(Debug, Clone)]
pub struct RegisterBanks {
    banks: usize,
    usage: Vec<u32>,
    /// True when any port was used since the last [`RegisterBanks::new_cycle`],
    /// so an all-idle cycle's reset is a no-op instead of a `fill`.
    dirty: bool,
    /// Lifetime counters.
    pub total_reads: u64,
    /// Total writes observed (writes are counted but, having a dedicated
    /// write port per bank in this model, do not add collision latency).
    pub total_writes: u64,
    /// Total read collisions (extra operand-collection cycles).
    pub total_conflicts: u64,
}

impl RegisterBanks {
    /// A register file with `banks` banks.
    pub fn new(banks: usize) -> RegisterBanks {
        assert!(banks > 0, "need at least one bank");
        RegisterBanks {
            banks,
            usage: vec![0; banks],
            dirty: false,
            total_reads: 0,
            total_writes: 0,
            total_conflicts: 0,
        }
    }

    /// Bank holding register `reg` of warp `warp` (warp-interleaved layout).
    #[inline]
    pub fn bank_of(&self, warp: usize, reg: u8) -> usize {
        (reg as usize + warp) % self.banks
    }

    /// Record an operand read this cycle; returns the number of *extra*
    /// cycles this read adds due to a port collision.
    pub fn read(&mut self, warp: usize, reg: u8) -> u32 {
        let b = self.bank_of(warp, reg);
        let prior = self.usage[b];
        self.usage[b] += 1;
        self.dirty = true;
        self.total_reads += 1;
        if prior > 0 {
            self.total_conflicts += 1;
        }
        prior
    }

    /// Record a result write this cycle.
    pub fn write(&mut self, warp: usize, reg: u8) {
        let b = self.bank_of(warp, reg);
        // Writes use the dedicated write port; tracked for energy/stats.
        let _ = b;
        self.total_writes += 1;
    }

    /// Record `n` raw accesses on an explicit bank (used by the swap engine
    /// which addresses rows directly).
    pub fn raw_access(&mut self, bank: usize, n: u32) {
        self.usage[bank % self.banks] += n;
        if n > 0 {
            self.dirty = true;
        }
        self.total_reads += n as u64;
    }

    /// Banks whose read port went unused this cycle.
    pub fn idle_banks(&self) -> Vec<bool> {
        self.usage.iter().map(|&u| u == 0).collect()
    }

    /// Like [`RegisterBanks::idle_banks`], but into a caller-owned buffer
    /// so the per-cycle hot loop allocates nothing.
    pub fn idle_banks_into(&self, buf: &mut Vec<bool>) {
        buf.clear();
        buf.extend(self.usage.iter().map(|&u| u == 0));
    }

    /// Reset per-cycle usage (call once per simulated cycle). A no-op on
    /// cycles with no port activity.
    pub fn new_cycle(&mut self) {
        if self.dirty {
            self.usage.fill(0);
            self.dirty = false;
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collisions_add_latency() {
        let mut rb = RegisterBanks::new(4);
        assert_eq!(rb.read(0, 0), 0);
        assert_eq!(rb.read(0, 4), 1, "same bank, second read collides");
        assert_eq!(rb.read(0, 8), 2);
        assert_eq!(rb.read(0, 1), 0, "different bank is free");
        assert_eq!(rb.total_conflicts, 2);
        assert_eq!(rb.total_reads, 4);
    }

    #[test]
    fn warp_offset_spreads_banks() {
        let rb = RegisterBanks::new(8);
        assert_ne!(rb.bank_of(0, 0), rb.bank_of(1, 0));
        assert_eq!(rb.bank_of(0, 8), rb.bank_of(0, 0));
    }

    #[test]
    fn idle_banks_reflect_usage() {
        let mut rb = RegisterBanks::new(4);
        rb.read(0, 1);
        let idle = rb.idle_banks();
        assert!(!idle[1]);
        assert!(idle[0] && idle[2] && idle[3]);
        rb.new_cycle();
        assert!(rb.idle_banks().iter().all(|&b| b));
    }

    #[test]
    fn writes_do_not_collide() {
        let mut rb = RegisterBanks::new(2);
        rb.write(0, 0);
        rb.write(0, 2);
        assert_eq!(rb.total_conflicts, 0);
        assert_eq!(rb.total_writes, 2);
        assert!(rb.idle_banks().iter().all(|&b| b), "writes do not consume read ports");
    }
}
