//! GPU microarchitectural configuration (the paper's Table 1).

use std::fmt;

/// Total shared L2 capacity of the chip in bytes (Table 1: 1536 KB).
/// Single-SMX runs see their `1 / smx_count` slice; full-chip runs
/// (`drs-chip`) model the whole capacity as one banked cache.
pub const L2_TOTAL_BYTES: usize = 1536 * 1024;

/// Warp scheduling policy of each scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest (the paper's Table 1 configuration): keep issuing
    /// from the current warp until it stalls, then fall back to the oldest
    /// (lowest-id) ready warp.
    #[default]
    GreedyThenOldest,
    /// Loose round-robin: rotate the preferred warp every cycle. Kept as an
    /// ablation — GTO's latency-hiding bias is worth measuring against.
    LooseRoundRobin,
}

/// Configuration of the simulated GPU core and memory system.
///
/// Defaults come from the paper's Table 1 (an NVIDIA GeForce GTX 780,
/// Kepler). Only one SMX is simulated; `smx_count` scales reported
/// whole-GPU throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// SMX core clock in MHz (Table 1: 980 MHz).
    pub clock_mhz: u32,
    /// SIMD lanes per warp (Table 1: 32).
    pub simd_lanes: usize,
    /// Number of SMXs on the GPU (Table 1: 15).
    pub smx_count: usize,
    /// Warp schedulers per SMX (Table 1: 4).
    pub warp_schedulers: usize,
    /// Scheduling policy (Table 1: greedy-then-oldest).
    pub scheduler_policy: SchedulerPolicy,
    /// Instruction dispatch units per SMX (Table 1: 8) — i.e. each
    /// scheduler may dual-issue.
    pub dispatch_units: usize,
    /// 32-bit registers per SMX (Table 1: 65536).
    pub registers_per_smx: usize,
    /// Register file banks per SMX.
    pub register_banks: usize,
    /// Maximum resident warps the kernel launches on this SMX.
    pub max_warps: usize,
    /// L1 data cache size in bytes (Table 1: 48 KB).
    pub l1d_bytes: usize,
    /// L1 texture cache size in bytes (Table 1: 48 KB) — BVH nodes and
    /// triangle data are read through this cache.
    pub l1t_bytes: usize,
    /// L2 cache size in bytes (Table 1: 1536 KB). One SMX sees its share.
    pub l2_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Cache associativity (all levels).
    pub cache_ways: usize,
    /// ALU result latency in cycles.
    pub alu_latency: u32,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// DRAM access latency in cycles.
    pub dram_latency: u32,
    /// Taken-branch redirect penalty in cycles.
    pub branch_penalty: u32,
    /// Miss-status holding registers: distinct cache lines that may be in
    /// flight at once; further misses queue behind the earliest fill.
    pub mshr_entries: usize,
    /// Safety cap on simulated cycles (guards against livelock bugs).
    pub max_cycles: u64,
    /// Cycles without a single issued instruction before the `validate`
    /// feature's watchdog dumps warp states and aborts instead of spinning
    /// to `max_cycles`.
    pub watchdog_cycles: u64,
}

impl GpuConfig {
    /// The paper's baseline: a GTX 780 (Kepler) as configured in Table 1.
    pub fn gtx780() -> GpuConfig {
        let smx_count = 15;
        GpuConfig {
            clock_mhz: 980,
            simd_lanes: 32,
            smx_count,
            warp_schedulers: 4,
            scheduler_policy: SchedulerPolicy::GreedyThenOldest,
            dispatch_units: 8,
            registers_per_smx: 65_536,
            register_banks: 32,
            max_warps: 48,
            l1d_bytes: 48 * 1024,
            l1t_bytes: 48 * 1024,
            // One SMX's slice of the shared L2 (full-chip runs replace this
            // with the whole banked capacity; see `ChipConfig`).
            l2_bytes: L2_TOTAL_BYTES / smx_count,
            line_bytes: 128,
            cache_ways: 8,
            alu_latency: 9,
            l1_latency: 30,
            l2_latency: 190,
            dram_latency: 440,
            branch_penalty: 2,
            mshr_entries: 4096,
            max_cycles: 2_000_000_000,
            watchdog_cycles: 1_000_000,
        }
    }

    /// Peak instructions issued per cycle (dispatch units).
    pub fn peak_ipc(&self) -> usize {
        self.dispatch_units
    }

    /// How many instructions one scheduler may issue per cycle.
    pub fn issues_per_scheduler(&self) -> usize {
        (self.dispatch_units / self.warp_schedulers).max(1)
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (zero lanes, schedulers that
    /// outnumber dispatch units, non-power-of-two line size).
    pub fn validate(&self) {
        assert!(self.simd_lanes > 0 && self.simd_lanes <= 32, "lanes in 1..=32");
        assert!(self.warp_schedulers > 0, "need at least one scheduler");
        assert!(self.dispatch_units >= self.warp_schedulers, "dispatch < schedulers");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.max_warps > 0, "need at least one warp");
        assert!(self.register_banks > 0, "need at least one register bank");
        assert!(self.mshr_entries >= 1, "need at least one MSHR entry");
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::gtx780()
    }
}

/// Full-chip simulation knobs: how many SMs share the memory system and
/// how that memory system is provisioned.
///
/// `None` (the usual single-SMX mode) keeps today's behavior — one SMX
/// against its private L2 slice, whole-GPU throughput scaled by
/// `smx_count`. `Some(chip)` makes `drs-chip` instantiate `chip.sms`
/// engines against one banked L2 with a shared MSHR pool and a
/// finite-bandwidth DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipConfig {
    /// Number of SM cores sharing the memory system.
    pub sms: usize,
    /// L2 banks; each bank accepts one line request per cycle, so
    /// same-bank traffic from different SMs serializes.
    pub l2_banks: usize,
    /// Shared MSHR pool (distinct lines in flight chip-wide).
    pub shared_mshrs: usize,
    /// DRAM channel bandwidth in GB/s; converted to cycles-per-line at
    /// the core clock, so requests queue when the channel saturates.
    pub dram_gbps: u32,
    /// One-way interconnect (NoC) latency between an SM and the L2, in
    /// cycles. Every request pays it twice (request + response).
    pub noc_latency: u32,
}

impl ChipConfig {
    /// The paper's GTX 780 chip provisioning for `sms` cores: 16 L2
    /// banks, 4096 shared MSHRs, 336 GB/s DRAM, 8-cycle NoC hop.
    pub fn gtx780(sms: usize) -> ChipConfig {
        ChipConfig { sms, l2_banks: 16, shared_mshrs: 4096, dram_gbps: 336, noc_latency: 8 }
    }

    /// Check internal consistency, returning a typed error instead of
    /// panicking — chip misconfiguration must surface as a recordable
    /// cell failure, not a worker abort.
    ///
    /// # Errors
    ///
    /// Returns [`ChipConfigError`] when any provisioning knob is zero
    /// (no SMs, no L2 banks, no MSHRs, or zero DRAM bandwidth).
    pub fn validate(&self) -> Result<(), ChipConfigError> {
        if self.sms == 0 {
            return Err(ChipConfigError("chip has 0 SMs".into()));
        }
        if self.l2_banks == 0 {
            return Err(ChipConfigError("chip has 0 L2 banks".into()));
        }
        if self.shared_mshrs == 0 {
            return Err(ChipConfigError("chip has 0 shared MSHRs".into()));
        }
        if self.dram_gbps == 0 {
            return Err(ChipConfigError("chip DRAM bandwidth is 0 GB/s".into()));
        }
        Ok(())
    }

    /// Canonical text form — the hash input for content-derived job ids
    /// (every field affects results, so every field appears).
    pub fn canonical(&self) -> String {
        format!(
            "sms={};l2_banks={};mshrs={};dram_gbps={};noc={}",
            self.sms, self.l2_banks, self.shared_mshrs, self.dram_gbps, self.noc_latency
        )
    }
}

/// An inconsistent [`ChipConfig`], with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipConfigError(pub String);

impl fmt::Display for ChipConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inconsistent chip config: {}", self.0)
    }
}

impl std::error::Error for ChipConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = GpuConfig::gtx780();
        assert_eq!(c.clock_mhz, 980);
        assert_eq!(c.simd_lanes, 32);
        assert_eq!(c.smx_count, 15);
        assert_eq!(c.warp_schedulers, 4);
        assert_eq!(c.dispatch_units, 8);
        assert_eq!(c.registers_per_smx, 65_536);
        assert_eq!(c.l1d_bytes, 48 * 1024);
        assert_eq!(c.l1t_bytes, 48 * 1024);
        c.validate();
    }

    #[test]
    fn dual_issue_per_scheduler() {
        let c = GpuConfig::gtx780();
        assert_eq!(c.issues_per_scheduler(), 2);
        assert_eq!(c.peak_ipc(), 8);
    }

    #[test]
    #[should_panic]
    fn bad_config_panics() {
        let mut c = GpuConfig::gtx780();
        c.line_bytes = 100;
        c.validate();
    }

    #[test]
    fn l2_slice_is_derived_from_smx_count() {
        let c = GpuConfig::gtx780();
        assert_eq!(c.l2_bytes, L2_TOTAL_BYTES / c.smx_count);
        // The historical literal: deriving the slice must not move any
        // previously published number.
        assert_eq!(c.l2_bytes, 1536 * 1024 / 15);
    }

    #[test]
    fn chip_config_validates_and_hashes_every_field() {
        let c = ChipConfig::gtx780(15);
        assert!(c.validate().is_ok());
        for bad in [
            ChipConfig { sms: 0, ..c },
            ChipConfig { l2_banks: 0, ..c },
            ChipConfig { shared_mshrs: 0, ..c },
            ChipConfig { dram_gbps: 0, ..c },
        ] {
            let err = bad.validate().unwrap_err();
            assert!(err.to_string().contains("inconsistent chip config"), "{err}");
        }
        let canons: Vec<String> = [
            c,
            ChipConfig { sms: 2, ..c },
            ChipConfig { l2_banks: 8, ..c },
            ChipConfig { shared_mshrs: 64, ..c },
            ChipConfig { dram_gbps: 100, ..c },
            ChipConfig { noc_latency: 0, ..c },
        ]
        .iter()
        .map(ChipConfig::canonical)
        .collect();
        let mut dedup = canons.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), canons.len(), "every field must reach the canonical form");
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    #[test]
    fn default_policy_is_gto() {
        assert_eq!(GpuConfig::gtx780().scheduler_policy, SchedulerPolicy::GreedyThenOldest);
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::GreedyThenOldest);
    }
}
