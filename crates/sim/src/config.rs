//! GPU microarchitectural configuration (the paper's Table 1).

/// Warp scheduling policy of each scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest (the paper's Table 1 configuration): keep issuing
    /// from the current warp until it stalls, then fall back to the oldest
    /// (lowest-id) ready warp.
    #[default]
    GreedyThenOldest,
    /// Loose round-robin: rotate the preferred warp every cycle. Kept as an
    /// ablation — GTO's latency-hiding bias is worth measuring against.
    LooseRoundRobin,
}

/// Configuration of the simulated GPU core and memory system.
///
/// Defaults come from the paper's Table 1 (an NVIDIA GeForce GTX 780,
/// Kepler). Only one SMX is simulated; `smx_count` scales reported
/// whole-GPU throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// SMX core clock in MHz (Table 1: 980 MHz).
    pub clock_mhz: u32,
    /// SIMD lanes per warp (Table 1: 32).
    pub simd_lanes: usize,
    /// Number of SMXs on the GPU (Table 1: 15).
    pub smx_count: usize,
    /// Warp schedulers per SMX (Table 1: 4).
    pub warp_schedulers: usize,
    /// Scheduling policy (Table 1: greedy-then-oldest).
    pub scheduler_policy: SchedulerPolicy,
    /// Instruction dispatch units per SMX (Table 1: 8) — i.e. each
    /// scheduler may dual-issue.
    pub dispatch_units: usize,
    /// 32-bit registers per SMX (Table 1: 65536).
    pub registers_per_smx: usize,
    /// Register file banks per SMX.
    pub register_banks: usize,
    /// Maximum resident warps the kernel launches on this SMX.
    pub max_warps: usize,
    /// L1 data cache size in bytes (Table 1: 48 KB).
    pub l1d_bytes: usize,
    /// L1 texture cache size in bytes (Table 1: 48 KB) — BVH nodes and
    /// triangle data are read through this cache.
    pub l1t_bytes: usize,
    /// L2 cache size in bytes (Table 1: 1536 KB). One SMX sees its share.
    pub l2_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Cache associativity (all levels).
    pub cache_ways: usize,
    /// ALU result latency in cycles.
    pub alu_latency: u32,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// DRAM access latency in cycles.
    pub dram_latency: u32,
    /// Taken-branch redirect penalty in cycles.
    pub branch_penalty: u32,
    /// Miss-status holding registers: distinct cache lines that may be in
    /// flight at once; further misses queue behind the earliest fill.
    pub mshr_entries: usize,
    /// Safety cap on simulated cycles (guards against livelock bugs).
    pub max_cycles: u64,
    /// Cycles without a single issued instruction before the `validate`
    /// feature's watchdog dumps warp states and aborts instead of spinning
    /// to `max_cycles`.
    pub watchdog_cycles: u64,
}

impl GpuConfig {
    /// The paper's baseline: a GTX 780 (Kepler) as configured in Table 1.
    pub fn gtx780() -> GpuConfig {
        GpuConfig {
            clock_mhz: 980,
            simd_lanes: 32,
            smx_count: 15,
            warp_schedulers: 4,
            scheduler_policy: SchedulerPolicy::GreedyThenOldest,
            dispatch_units: 8,
            registers_per_smx: 65_536,
            register_banks: 32,
            max_warps: 48,
            l1d_bytes: 48 * 1024,
            l1t_bytes: 48 * 1024,
            l2_bytes: 1536 * 1024 / 15, // one SMX's slice of the shared L2
            line_bytes: 128,
            cache_ways: 8,
            alu_latency: 9,
            l1_latency: 30,
            l2_latency: 190,
            dram_latency: 440,
            branch_penalty: 2,
            mshr_entries: 4096,
            max_cycles: 2_000_000_000,
            watchdog_cycles: 1_000_000,
        }
    }

    /// Peak instructions issued per cycle (dispatch units).
    pub fn peak_ipc(&self) -> usize {
        self.dispatch_units
    }

    /// How many instructions one scheduler may issue per cycle.
    pub fn issues_per_scheduler(&self) -> usize {
        (self.dispatch_units / self.warp_schedulers).max(1)
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (zero lanes, schedulers that
    /// outnumber dispatch units, non-power-of-two line size).
    pub fn validate(&self) {
        assert!(self.simd_lanes > 0 && self.simd_lanes <= 32, "lanes in 1..=32");
        assert!(self.warp_schedulers > 0, "need at least one scheduler");
        assert!(self.dispatch_units >= self.warp_schedulers, "dispatch < schedulers");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.max_warps > 0, "need at least one warp");
        assert!(self.register_banks > 0, "need at least one register bank");
        assert!(self.mshr_entries >= 1, "need at least one MSHR entry");
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::gtx780()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = GpuConfig::gtx780();
        assert_eq!(c.clock_mhz, 980);
        assert_eq!(c.simd_lanes, 32);
        assert_eq!(c.smx_count, 15);
        assert_eq!(c.warp_schedulers, 4);
        assert_eq!(c.dispatch_units, 8);
        assert_eq!(c.registers_per_smx, 65_536);
        assert_eq!(c.l1d_bytes, 48 * 1024);
        assert_eq!(c.l1t_bytes, 48 * 1024);
        c.validate();
    }

    #[test]
    fn dual_issue_per_scheduler() {
        let c = GpuConfig::gtx780();
        assert_eq!(c.issues_per_scheduler(), 2);
        assert_eq!(c.peak_ipc(), 8);
    }

    #[test]
    #[should_panic]
    fn bad_config_panics() {
        let mut c = GpuConfig::gtx780();
        c.line_bytes = 100;
        c.validate();
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    #[test]
    fn default_policy_is_gto() {
        assert_eq!(GpuConfig::gtx780().scheduler_policy, SchedulerPolicy::GreedyThenOldest);
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::GreedyThenOldest);
    }
}
