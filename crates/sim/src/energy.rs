//! First-order dynamic-energy accounting over simulation statistics.
//!
//! The paper argues DRS is a net energy win: ray shuffling adds register
//! file traffic (7.36 % of RF accesses for primary rays, 18.79 % for
//! secondary in their measurements), but the improved SIMD utilization
//! removes so many redundant instruction issues that *total* RF accesses
//! fall. This module turns a [`SimStats`] into a per-component energy
//! estimate so that trade-off can be quantified per method.
//!
//! Constants are per-event dynamic energies in picojoules, in the range
//! published for 28–45 nm GPU datapaths. Absolute joules are indicative
//! only; the meaningful output is the *ratio between methods on the same
//! ray set*.

use crate::stats::SimStats;

/// Per-event dynamic energy constants (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One lane-instruction executed (ALU datapath + pipeline overhead).
    pub per_lane_op_pj: f64,
    /// One 32-bit register-file access (read or write).
    pub per_rf_access_pj: f64,
    /// One L1 (data or texture) cache access.
    pub per_l1_access_pj: f64,
    /// One L2 access (on L1 miss).
    pub per_l2_access_pj: f64,
    /// One DRAM access (on L2 miss).
    pub per_dram_access_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Representative 28 nm-class numbers (order-of-magnitude correct;
        // see e.g. energy tables in GPU architecture literature).
        EnergyModel {
            per_lane_op_pj: 1.0,
            per_rf_access_pj: 1.5,
            per_l1_access_pj: 20.0,
            per_l2_access_pj: 80.0,
            per_dram_access_pj: 640.0,
        }
    }
}

/// Estimated dynamic energy, split by component (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Execution lanes (instruction issues × active lanes).
    pub lanes_pj: f64,
    /// Register file, instruction operands and results.
    pub regfile_pj: f64,
    /// Register file, DRS swap-engine traffic.
    pub swap_pj: f64,
    /// L1 caches.
    pub l1_pj: f64,
    /// L2 cache.
    pub l2_pj: f64,
    /// DRAM.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total across components.
    pub fn total_pj(&self) -> f64 {
        self.lanes_pj + self.regfile_pj + self.swap_pj + self.l1_pj + self.l2_pj + self.dram_pj
    }

    /// Energy per completed ray in nanojoules.
    pub fn nj_per_ray(&self, rays: u64) -> f64 {
        self.total_pj() / 1000.0 / rays.max(1) as f64
    }
}

impl EnergyModel {
    /// Estimate the dynamic energy of a finished simulation.
    pub fn estimate(&self, stats: &SimStats) -> EnergyBreakdown {
        let all = stats.issued_all();
        let l1_accesses = stats.l1t.hits + stats.l1t.misses + stats.l1d.hits + stats.l1d.misses;
        let l2_accesses = stats.l2.hits + stats.l2.misses;
        let dram_accesses = stats.l2.misses;
        EnergyBreakdown {
            lanes_pj: all.active_sum as f64 * self.per_lane_op_pj,
            regfile_pj: (stats.regfile_reads + stats.regfile_writes) as f64 * self.per_rf_access_pj,
            swap_pj: stats.swap_accesses as f64 * self.per_rf_access_pj,
            l1_pj: l1_accesses as f64 * self.per_l1_access_pj,
            l2_pj: l2_accesses as f64 * self.per_l2_access_pj,
            dram_pj: dram_accesses as f64 * self.per_dram_access_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use crate::stats::ActiveHistogram;

    fn stats_with(active: u64, rf: u64, swap: u64) -> SimStats {
        // Encode `active` as active_sum via direct field construction.
        let mut issued =
            ActiveHistogram { total: 1, active_sum: active, ..ActiveHistogram::default() };
        issued.buckets[3] = 1;
        SimStats {
            issued,
            regfile_reads: rf,
            regfile_writes: rf,
            swap_accesses: swap,
            l1t: CacheStats { hits: 10, misses: 2 },
            l1d: CacheStats { hits: 5, misses: 1 },
            l2: CacheStats { hits: 2, misses: 1 },
            ..Default::default()
        }
    }

    #[test]
    fn totals_add_up() {
        let m = EnergyModel::default();
        let b = m.estimate(&stats_with(32, 100, 34));
        let manual = b.lanes_pj + b.regfile_pj + b.swap_pj + b.l1_pj + b.l2_pj + b.dram_pj;
        assert!((b.total_pj() - manual).abs() < 1e-9);
        assert!(b.total_pj() > 0.0);
    }

    #[test]
    fn component_magnitudes() {
        let m = EnergyModel::default();
        let b = m.estimate(&stats_with(32, 100, 0));
        assert_eq!(b.swap_pj, 0.0);
        assert!((b.lanes_pj - 32.0).abs() < 1e-9);
        assert!((b.regfile_pj - 200.0 * 1.5).abs() < 1e-9);
        assert!((b.l1_pj - 18.0 * 20.0).abs() < 1e-9);
        assert!((b.l2_pj - 3.0 * 80.0).abs() < 1e-9);
        assert!((b.dram_pj - 640.0).abs() < 1e-9);
    }

    #[test]
    fn per_ray_normalization() {
        let m = EnergyModel::default();
        let b = m.estimate(&stats_with(32, 100, 0));
        assert!((b.nj_per_ray(2) * 2.0 - b.total_pj() / 1000.0).abs() < 1e-9);
        // Zero rays guarded.
        assert!(b.nj_per_ray(0).is_finite());
    }

    #[test]
    fn swap_traffic_is_separated_from_operand_traffic() {
        let m = EnergyModel::default();
        let with_swap = m.estimate(&stats_with(32, 100, 50));
        let without = m.estimate(&stats_with(32, 100, 0));
        assert!(with_swap.swap_pj > 0.0);
        assert_eq!(with_swap.regfile_pj, without.regfile_pj);
    }
}
