//! Architectural data state: ray slots, the ray queue and lane mappings.

use drs_trace::{RayScript, Step};

/// The traversal state of a ray slot, as the DRS ray-state table tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RayState {
    /// No ray is resident; the slot (or its thread) must fetch one.
    Fetching,
    /// The resident ray's next step traverses inner nodes.
    Inner,
    /// The resident ray's next step tests a leaf's primitives.
    Leaf,
    /// No ray and the global queue is exhausted — nothing left to do.
    Done,
    /// The slot holds no ray and is not expected to (an empty DRS row slot).
    Empty,
}

/// A resident ray: an index into the captured script array plus a cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RayRef {
    /// Index into [`MachineState::scripts`].
    pub script: u32,
    /// Next unconsumed step.
    pub pos: u32,
}

/// One ray slot: the register-file row-entry a lane operates on.
///
/// For software kernels a slot is simply "the registers of thread *i*"; for
/// DRS the slot lives in a logical ray row and warps are renamed onto rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaySlot {
    /// The resident ray, if any.
    pub ray: Option<RayRef>,
    /// Primitives still untested in the ray's current leaf step (used by
    /// kernels that loop per primitive inside the leaf body).
    pub leaf_prims_left: u16,
    /// Primitive count of the leaf currently being tested.
    pub leaf_total: u16,
    /// Device base address of the current leaf's primitive records.
    pub leaf_base_addr: u64,
    /// Step index of a speculatively postponed leaf (Aila's speculative
    /// traversal), or [`NO_POSTPONED`] when none.
    pub postponed_pos: u32,
    /// Work units consumed in the current kernel round (kernels with
    /// bounded-unroll bodies reset this each `rdctrl`).
    pub round_work: u16,
    /// Whether this slot may ever hold rays (false for pure padding slots).
    pub usable: bool,
}

/// Sentinel for [`RaySlot::postponed_pos`]: no postponed leaf.
pub const NO_POSTPONED: u32 = u32::MAX;

impl RaySlot {
    /// An empty, usable slot.
    pub fn empty() -> RaySlot {
        RaySlot {
            ray: None,
            leaf_prims_left: 0,
            leaf_total: 0,
            leaf_base_addr: 0,
            postponed_pos: NO_POSTPONED,
            round_work: 0,
            usable: true,
        }
    }

    /// A slot that never holds rays (structural padding).
    pub fn unusable() -> RaySlot {
        RaySlot { usable: false, ..RaySlot::empty() }
    }

    /// Reset per-leaf progress (on ray replacement).
    pub fn clear_leaf_progress(&mut self) {
        self.leaf_prims_left = 0;
        self.leaf_total = 0;
        self.leaf_base_addr = 0;
        self.postponed_pos = NO_POSTPONED;
    }
}

/// The global queue of rays awaiting dispatch (persistent-threads style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RayQueue {
    next: u32,
    total: u32,
}

impl RayQueue {
    /// A queue over `total` rays (script indices `0..total`).
    pub fn new(total: usize) -> RayQueue {
        RayQueue { next: 0, total: total as u32 }
    }

    /// Pop the next ray index, if any remain.
    #[inline]
    pub fn fetch(&mut self) -> Option<u32> {
        if self.next < self.total {
            let i = self.next;
            self.next += 1;
            Some(i)
        } else {
            None
        }
    }

    /// True when every ray has been handed out.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next >= self.total
    }

    /// Rays not yet handed out.
    #[inline]
    pub fn remaining(&self) -> usize {
        (self.total - self.next) as usize
    }

    /// Total rays this queue started with.
    #[inline]
    pub fn total(&self) -> usize {
        self.total as usize
    }
}

/// The architectural (non-timing) machine state shared between the engine,
/// the kernel behavior and any attached special unit.
#[derive(Debug)]
pub struct MachineState<'w> {
    /// The captured ray scripts this simulation replays.
    pub scripts: &'w [RayScript],
    /// The dispatch queue of script indices.
    pub queue: RayQueue,
    /// All ray slots. Layout is kernel-defined (rows × 32 for DRS, warps ×
    /// 32 for software kernels).
    pub slots: Vec<RaySlot>,
    /// `lane_slot[warp * lanes + lane]` = index into `slots` (or `u32::MAX`
    /// for an unmapped lane).
    pub lane_slot: Vec<u32>,
    /// Lanes per warp.
    pub lanes: usize,
    /// Per-warp latched control value (what `rdctrl` last returned).
    pub warp_ctrl: Vec<u32>,
    /// Rays fully traced to completion (for Mrays/s).
    pub rays_completed: u64,
    /// Cached per-slot state, kept current by the mutating helpers.
    /// `Fetching` doubles as "no ray" (the queue decides Fetching vs Done).
    pub state_cache: Vec<RayState>,
    /// When true, slots whose cached state changed are appended to `dirty`
    /// (the DRS control drains this to maintain its row-state counts).
    pub track_dirty: bool,
    /// Slots whose state changed since the last drain.
    pub dirty: Vec<u32>,
}

/// Sentinel for an unmapped lane.
pub const NO_SLOT: u32 = u32::MAX;

impl<'w> MachineState<'w> {
    /// Create machine state with `slot_count` empty slots and an identity
    /// lane map for `warps` warps of `lanes` lanes.
    pub fn new(
        scripts: &'w [RayScript],
        warps: usize,
        lanes: usize,
        slot_count: usize,
    ) -> MachineState<'w> {
        assert!(slot_count >= warps * lanes, "need at least one slot per lane");
        MachineState {
            scripts,
            queue: RayQueue::new(scripts.len()),
            slots: vec![RaySlot::empty(); slot_count],
            lane_slot: (0..warps * lanes).map(|i| i as u32).collect(),
            lanes,
            warp_ctrl: vec![0; warps],
            rays_completed: 0,
            state_cache: vec![RayState::Fetching; slot_count],
            track_dirty: false,
            dirty: Vec::new(),
        }
    }

    /// Recompute a slot's raw state from its fields (no queue dependence:
    /// "no ray" is reported as `Fetching`, `!usable` as `Empty`).
    pub fn compute_state(&self, slot_index: usize) -> RayState {
        let slot = &self.slots[slot_index];
        if !slot.usable {
            return RayState::Empty;
        }
        if slot.leaf_prims_left > 0 {
            return RayState::Leaf;
        }
        match slot.ray {
            None => RayState::Fetching,
            Some(r) => match self.scripts[r.script as usize].steps().get(r.pos as usize) {
                None => RayState::Fetching, // exhausted, pending retire
                Some(Step::Inner { .. }) => RayState::Inner,
                Some(Step::Leaf { .. }) => RayState::Leaf,
            },
        }
    }

    /// Refresh the cached state of a slot after mutating it, recording it
    /// in the dirty list when tracking is on. Behaviors that poke slot
    /// fields directly must call this.
    pub fn refresh_state(&mut self, slot_index: usize) {
        let s = self.compute_state(slot_index);
        if self.state_cache[slot_index] != s {
            self.state_cache[slot_index] = s;
            if self.track_dirty {
                self.dirty.push(slot_index as u32);
            }
        }
    }

    /// Slot index a lane currently operates on.
    #[inline]
    pub fn slot_of(&self, warp: usize, lane: usize) -> Option<usize> {
        let s = self.lane_slot[warp * self.lanes + lane];
        (s != NO_SLOT).then_some(s as usize)
    }

    /// Remap a lane to a slot (used by shuffling/compaction hardware).
    #[inline]
    pub fn map_lane(&mut self, warp: usize, lane: usize, slot: Option<usize>) {
        self.lane_slot[warp * self.lanes + lane] = slot.map_or(NO_SLOT, |s| s as u32);
    }

    /// Derive a slot's [`RayState`] from its cursor and the queue
    /// (`Fetching` becomes `Done` once the queue is drained).
    pub fn slot_state(&self, slot_index: usize) -> RayState {
        match self.compute_state(slot_index) {
            RayState::Fetching if self.queue.is_empty() => RayState::Done,
            s => s,
        }
    }

    /// The next unconsumed step of the ray in `slot_index`, if any.
    #[inline]
    pub fn peek_step(&self, slot_index: usize) -> Option<&'w Step> {
        let r = self.slots[slot_index].ray?;
        self.scripts[r.script as usize].steps().get(r.pos as usize)
    }

    /// Consume the current step of the ray in `slot_index`.
    ///
    /// # Panics
    ///
    /// Panics if the slot has no ray or its script is exhausted.
    pub fn consume_step(&mut self, slot_index: usize) -> &'w Step {
        let r = self.slots[slot_index].ray.expect("consume on empty slot");
        let step = self.scripts[r.script as usize]
            .steps()
            .get(r.pos as usize)
            .expect("consume past end of script");
        self.slots[slot_index].ray = Some(RayRef { script: r.script, pos: r.pos + 1 });
        self.refresh_state(slot_index);
        step
    }

    /// Retire the ray in `slot_index` (its script is exhausted) and count it.
    ///
    /// # Panics
    ///
    /// Panics if the slot has no ray or the script still has steps.
    pub fn retire_ray(&mut self, slot_index: usize) {
        let r = self.slots[slot_index].ray.expect("retire on empty slot");
        assert!(
            self.scripts[r.script as usize].steps().len() as u32 == r.pos,
            "retiring a ray with unconsumed steps"
        );
        self.slots[slot_index].ray = None;
        self.slots[slot_index].clear_leaf_progress();
        self.rays_completed += 1;
        self.refresh_state(slot_index);
    }

    /// Fetch the next queued ray into `slot_index`. Returns false when the
    /// queue is empty. Rays whose scripts are empty (immediate miss of the
    /// scene bounds) are retired on the spot, and fetching continues.
    pub fn fetch_into(&mut self, slot_index: usize) -> bool {
        loop {
            match self.queue.fetch() {
                None => return false,
                Some(idx) => {
                    if self.scripts[idx as usize].steps().is_empty() {
                        self.rays_completed += 1;
                        continue;
                    }
                    self.slots[slot_index].ray = Some(RayRef { script: idx, pos: 0 });
                    self.slots[slot_index].clear_leaf_progress();
                    self.refresh_state(slot_index);
                    return true;
                }
            }
        }
    }

    /// True when no ray remains anywhere: queue empty and every slot clear.
    pub fn all_work_drained(&self) -> bool {
        self.queue.is_empty() && self.slots.iter().all(|s| s.ray.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_trace::Termination;

    fn scripts() -> Vec<RayScript> {
        vec![
            RayScript::new(
                vec![
                    Step::Inner { node_addr: 0x100, both_children_hit: false },
                    Step::Leaf { node_addr: 0x140, prim_base_addr: 0x4000, prim_count: 2 },
                ],
                Termination::Hit,
            ),
            RayScript::new(vec![], Termination::Escaped),
            RayScript::new(
                vec![Step::Inner { node_addr: 0x180, both_children_hit: true }],
                Termination::Escaped,
            ),
        ]
    }

    #[test]
    fn queue_pops_in_order() {
        let mut q = RayQueue::new(2);
        assert_eq!(q.remaining(), 2);
        assert_eq!(q.fetch(), Some(0));
        assert_eq!(q.fetch(), Some(1));
        assert_eq!(q.fetch(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fetch_skips_empty_scripts_and_counts_them() {
        let s = scripts();
        let mut m = MachineState::new(&s, 1, 2, 2);
        assert!(m.fetch_into(0));
        assert_eq!(m.slots[0].ray.unwrap().script, 0);
        // Script 1 is empty: fetch skips it, retires it, lands on script 2.
        assert!(m.fetch_into(1));
        assert_eq!(m.slots[1].ray.unwrap().script, 2);
        assert_eq!(m.rays_completed, 1);
        assert!(!m.fetch_into(0) || m.slots[0].ray.is_some());
    }

    #[test]
    fn states_derive_from_cursor() {
        let s = scripts();
        let mut m = MachineState::new(&s, 1, 2, 2);
        assert_eq!(m.slot_state(0), RayState::Fetching);
        m.fetch_into(0);
        assert_eq!(m.slot_state(0), RayState::Inner);
        m.consume_step(0);
        assert_eq!(m.slot_state(0), RayState::Leaf);
        m.consume_step(0);
        // Exhausted, queue still has rays -> Fetching.
        assert_eq!(m.slot_state(0), RayState::Fetching);
        m.retire_ray(0);
        assert_eq!(m.rays_completed, 1);
    }

    #[test]
    fn done_when_queue_empty() {
        let s = scripts();
        let mut m = MachineState::new(&s, 1, 2, 2);
        m.fetch_into(0);
        m.fetch_into(1);
        assert!(m.queue.is_empty());
        // Slot 0 holds a ray; draining not complete.
        assert!(!m.all_work_drained());
        m.consume_step(0);
        m.consume_step(0);
        m.retire_ray(0);
        assert_eq!(m.slot_state(0), RayState::Done);
        m.consume_step(1);
        m.retire_ray(1);
        assert!(m.all_work_drained());
    }

    #[test]
    fn lane_mapping_roundtrip() {
        let s = scripts();
        let mut m = MachineState::new(&s, 2, 2, 8);
        assert_eq!(m.slot_of(1, 1), Some(3));
        m.map_lane(1, 1, Some(7));
        assert_eq!(m.slot_of(1, 1), Some(7));
        m.map_lane(1, 1, None);
        assert_eq!(m.slot_of(1, 1), None);
    }

    #[test]
    #[should_panic]
    fn retire_with_steps_left_panics() {
        let s = scripts();
        let mut m = MachineState::new(&s, 1, 1, 1);
        m.fetch_into(0);
        m.retire_ray(0);
    }
}
