//! The kernel-behavior and special-unit extension traits.

use crate::state::MachineState;
use crate::stats::SimStats;

/// Interprets a program's condition / address / effect tokens against the
/// machine's ray slots. Implemented by each ray-tracing kernel.
///
/// `Send` so a full-chip run (`drs-chip`) can shard its per-SM engines —
/// each owning a boxed behavior — across worker threads. Behaviors are
/// plain data plus lookups, so the bound costs implementors nothing.
pub trait KernelBehavior: Send {
    /// Evaluate branch condition `token` for `lane` of `warp`.
    fn eval_cond(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> bool;

    /// Produce the byte address for address token `token` on `lane`.
    fn eval_addr(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> u64;

    /// Apply effect `token` for `lane` of `warp` (consume a step, fetch a
    /// ray, retire, update state registers, …).
    fn apply_effect(&self, token: u16, warp: usize, lane: usize, m: &mut MachineState<'_>);

    /// Number of ray slots the kernel wants (defaults to one per lane).
    fn slot_count(&self, warps: usize, lanes: usize) -> usize {
        warps * lanes
    }

    /// Prepare machine state before cycle 0 (pre-fetch rays, mark padding
    /// slots unusable, …). Default: nothing.
    fn initialize(&self, m: &mut MachineState<'_>) {
        let _ = m;
    }
}

/// Result of presenting a `Special` micro-op to the attached unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialOutcome {
    /// The warp cannot issue this cycle; the scheduler will retry.
    Stall,
    /// The op issues; `ctrl` is latched into the warp's control register.
    Proceed {
        /// Warp-wide value returned by the unit (e.g. `rdctrl`'s
        /// `trav_ctrl_val`).
        ctrl: u32,
    },
}

/// A hardware unit attached to the core (DRS control, DMK spawn unit, TBC
/// compactor). Sees every `Special` issue attempt and ticks every cycle.
///
/// `Send` for the same reason as [`KernelBehavior`]: full-chip runs move
/// whole engines (and their boxed units) across threads.
pub trait SpecialUnit: Send {
    /// A warp attempts to issue `Special { token }`. May inspect and mutate
    /// machine state (remap lanes, move rays) and must decide whether the
    /// warp stalls or proceeds.
    fn issue(
        &mut self,
        warp: usize,
        token: u16,
        m: &mut MachineState<'_>,
        stats: &mut SimStats,
    ) -> SpecialOutcome;

    /// Per-cycle tick, after instruction issue. `idle_banks[b]` is true when
    /// register-file bank `b` had a free port this cycle (the DRS swap
    /// engine moves ray registers through exactly these free ports).
    fn tick(
        &mut self,
        cycle: u64,
        idle_banks: &[bool],
        m: &mut MachineState<'_>,
        stats: &mut SimStats,
    );

    /// The engine's event-driven fast path asks, at the start of cycle
    /// `now` (the previous cycle's [`tick`](SpecialUnit::tick) has already
    /// run), when the unit next needs to be ticked, assuming no warp
    /// issues in the meantime.
    ///
    /// - `None` means the unit is **quiescent**: as long as no instruction
    ///   issues, every subsequent `tick` would be a pure no-op (no machine,
    ///   stats, or internal-state mutation), so the engine may skip ticking
    ///   it entirely.
    /// - `Some(t)` promises that ticks at cycles in `now..t` are no-ops;
    ///   the engine will not skip past `t`. `Some(now)` means "tick me
    ///   this very cycle" and disables skipping entirely.
    ///
    /// The conservative default returns `Some(now)`, which disables cycle
    /// skipping whenever this unit may have pending work the engine cannot
    /// see. Units whose `tick` does real work must only report quiescence
    /// when that work is provably drained; the A/B bit-identity tests
    /// (fast path on vs. off) enforce this.
    fn next_event(&self, now: u64) -> Option<u64> {
        Some(now)
    }
}

/// A no-op special unit for kernels without hardware assistance.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSpecial;

impl SpecialUnit for NullSpecial {
    fn issue(
        &mut self,
        _warp: usize,
        _token: u16,
        _m: &mut MachineState<'_>,
        _stats: &mut SimStats,
    ) -> SpecialOutcome {
        SpecialOutcome::Proceed { ctrl: 0 }
    }

    fn tick(
        &mut self,
        _cycle: u64,
        _idle: &[bool],
        _m: &mut MachineState<'_>,
        _stats: &mut SimStats,
    ) {
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        None // the tick is empty, so the unit is always quiescent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_trace::{RayScript, Termination};

    #[test]
    fn null_special_never_stalls() {
        let scripts = [RayScript::new(vec![], Termination::Escaped)];
        let mut m = MachineState::new(&scripts, 1, 1, 1);
        let mut stats = SimStats::default();
        let mut u = NullSpecial;
        assert_eq!(u.issue(0, 0, &mut m, &mut stats), SpecialOutcome::Proceed { ctrl: 0 });
        u.tick(0, &[true; 4], &mut m, &mut stats);
    }
}
