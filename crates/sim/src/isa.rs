//! The micro-op "ISA" kernels are expressed in.
//!
//! Micro-ops carry abstract register operands (for scoreboard dependences
//! and register-bank traffic) plus *tokens* — small integers the kernel's
//! [`crate::KernelBehavior`] interprets per lane to produce branch outcomes,
//! memory addresses and architectural side effects. This keeps the timing
//! model exact (issue slots, latencies, bank ports, cache lines) while the
//! data-dependent behaviour comes from captured ray traces.

/// An architectural register identifier (per warp, per lane).
pub type Reg = u8;

/// Which memory space a load/store accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Global memory through the L1 data cache (ray buffers).
    Global,
    /// Read-only data through the L1 texture cache (BVH nodes, triangles).
    Texture,
    /// On-chip spawn memory (DMK's micro-kernel scratch); banked, not cached.
    Spawn,
}

/// How an issued micro-op is attributed in statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpTag {
    /// Ordinary kernel work.
    Normal,
    /// Micro-kernel spawn overhead (DMK's data dumping/loading — the "SI"
    /// category in the paper's Figure 10).
    SpawnOverhead,
}

/// The operation class of a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Arithmetic with a fixed result latency.
    Alu {
        /// Cycles until the destination is ready.
        latency: u32,
    },
    /// A per-lane load; addresses come from the behavior's address oracle.
    Load {
        /// Target memory space.
        space: MemSpace,
        /// Address token interpreted by the kernel behavior.
        addr: u16,
    },
    /// A per-lane store (no destination register).
    Store {
        /// Target memory space.
        space: MemSpace,
        /// Address token interpreted by the kernel behavior.
        addr: u16,
    },
    /// An instruction handled by the attached [`crate::SpecialUnit`]
    /// (e.g. the DRS `rdctrl`); may stall the warp at issue.
    Special {
        /// Token identifying which special operation this is.
        token: u16,
    },
    /// A zero-latency architectural side effect applied at issue (consume a
    /// trace step, fetch a ray, update `reg_ray_state`, …).
    Effect {
        /// Token interpreted by the kernel behavior.
        token: u16,
    },
}

/// One micro-op: an operation plus register operands and a stats tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Operation class.
    pub kind: OpKind,
    /// Destination register, if the op writes one.
    pub dst: Option<Reg>,
    /// Source registers (unused slots are `None`).
    pub srcs: [Option<Reg>; 3],
    /// Statistics attribution.
    pub tag: OpTag,
}

impl MicroOp {
    /// An ALU op `dst = f(srcs)` with the given latency.
    pub fn alu(dst: Reg, srcs: &[Reg], latency: u32) -> MicroOp {
        MicroOp {
            kind: OpKind::Alu { latency },
            dst: Some(dst),
            srcs: pack_srcs(srcs),
            tag: OpTag::Normal,
        }
    }

    /// A load into `dst` from `space` using address token `addr`.
    pub fn load(dst: Reg, space: MemSpace, addr: u16, srcs: &[Reg]) -> MicroOp {
        MicroOp {
            kind: OpKind::Load { space, addr },
            dst: Some(dst),
            srcs: pack_srcs(srcs),
            tag: OpTag::Normal,
        }
    }

    /// A store of `srcs` to `space` using address token `addr`.
    pub fn store(space: MemSpace, addr: u16, srcs: &[Reg]) -> MicroOp {
        MicroOp {
            kind: OpKind::Store { space, addr },
            dst: None,
            srcs: pack_srcs(srcs),
            tag: OpTag::Normal,
        }
    }

    /// A special op writing its warp-wide result into `dst`.
    pub fn special(dst: Reg, token: u16) -> MicroOp {
        MicroOp {
            kind: OpKind::Special { token },
            dst: Some(dst),
            srcs: [None; 3],
            tag: OpTag::Normal,
        }
    }

    /// A zero-latency effect op.
    pub fn effect(token: u16) -> MicroOp {
        MicroOp { kind: OpKind::Effect { token }, dst: None, srcs: [None; 3], tag: OpTag::Normal }
    }

    /// Retag this op for statistics (builder style).
    pub fn with_tag(mut self, tag: OpTag) -> MicroOp {
        self.tag = tag;
        self
    }

    /// Iterate over the populated source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// True if this op reads or writes memory.
    pub fn is_memory(&self) -> bool {
        matches!(self.kind, OpKind::Load { .. } | OpKind::Store { .. })
    }
}

fn pack_srcs(srcs: &[Reg]) -> [Option<Reg>; 3] {
    assert!(srcs.len() <= 3, "micro-ops take at most 3 sources");
    let mut out = [None; 3];
    for (slot, &s) in out.iter_mut().zip(srcs.iter()) {
        *slot = Some(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_fields() {
        let a = MicroOp::alu(5, &[1, 2], 9);
        assert_eq!(a.dst, Some(5));
        assert_eq!(a.sources().collect::<Vec<_>>(), vec![1, 2]);
        assert!(!a.is_memory());

        let l = MicroOp::load(7, MemSpace::Texture, 3, &[1]);
        assert!(l.is_memory());
        assert_eq!(l.dst, Some(7));

        let s = MicroOp::store(MemSpace::Spawn, 4, &[1, 2, 3]);
        assert!(s.is_memory());
        assert_eq!(s.dst, None);
        assert_eq!(s.sources().count(), 3);

        let sp = MicroOp::special(0, 1);
        assert_eq!(sp.kind, OpKind::Special { token: 1 });

        let e = MicroOp::effect(9);
        assert_eq!(e.dst, None);
        assert_eq!(e.sources().count(), 0);
    }

    #[test]
    fn tags() {
        let op = MicroOp::alu(1, &[], 1).with_tag(OpTag::SpawnOverhead);
        assert_eq!(op.tag, OpTag::SpawnOverhead);
        assert_eq!(MicroOp::alu(1, &[], 1).tag, OpTag::Normal);
    }

    #[test]
    #[should_panic]
    fn too_many_sources_panics() {
        MicroOp::alu(0, &[1, 2, 3, 4], 1);
    }
}
