//! Typed simulation failures.
//!
//! [`Simulation::run`](crate::Simulation::run) returns `Result<SimStats,
//! SimError>`: every way a run can end short of full completion — the
//! no-progress watchdog, the safety cycle cap, a `validate` invariant
//! violation, a wall-clock deadline — is a [`SimError`] value carrying the
//! failure kind, the cycle it fired at, and the partial counter set, so
//! harnesses can record the failure as data instead of losing the whole
//! process to an abort.

use crate::program::BlockId;
use crate::stats::SimStats;
use std::fmt;

/// One frame of a warp's SIMT reconvergence stack, captured for a
/// [`WarpDump`]. Rendered top-of-stack first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDump {
    /// Block the frame sits at.
    pub block: BlockId,
    /// The block's label.
    pub label: String,
    /// Next op index within the block.
    pub op_idx: usize,
    /// Lanes the frame executes.
    pub mask: u32,
    /// Reconvergence block (`u32::MAX` for the base frame).
    pub reconv: BlockId,
}

/// One warp's state at the moment a watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpDumpEntry {
    /// Warp index.
    pub warp: usize,
    /// The warp had already exited the kernel.
    pub exited: bool,
    /// The warp's `blocked_until` timestamp.
    pub blocked_until: u64,
    /// SIMT stack, base frame first.
    pub stack: Vec<FrameDump>,
}

/// Every warp's SIMT stack and block state, captured as data when the
/// no-progress watchdog fires (previously this was printed to stderr and
/// the process aborted; now the harness attaches it to the failed cell's
/// JSON record).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpDump {
    /// One entry per warp, in warp order.
    pub warps: Vec<WarpDumpEntry>,
}

impl fmt::Display for WarpDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in &self.warps {
            writeln!(f, "warp {}: exited={} blocked_until={}", w.warp, w.exited, w.blocked_until)?;
            for (d, e) in w.stack.iter().enumerate().rev() {
                writeln!(
                    f,
                    "  [{d}] block {} `{}` op {} mask {:#010x} reconv {}",
                    e.block, e.label, e.op_idx, e.mask, e.reconv
                )?;
            }
        }
        Ok(())
    }
}

/// Why a simulation ended short of full completion.
#[derive(Debug, Clone, PartialEq)]
pub enum SimErrorKind {
    /// No instruction issued for more than the configured watchdog window
    /// (livelock), or an injected watchdog trip fired.
    Watchdog {
        /// Cycles since the last issue when the watchdog fired.
        stalled_cycles: u64,
        /// The configured no-progress window.
        watchdog_cycles: u64,
        /// True when the trip was injected via
        /// [`Simulation::inject_watchdog_trip`](crate::Simulation::inject_watchdog_trip)
        /// (fault-injection testing) rather than detected organically.
        injected: bool,
        /// Every warp's SIMT state at the trip, captured as data.
        dump: WarpDump,
    },
    /// The safety cycle cap (`GpuConfig::max_cycles` or a per-job cycle
    /// budget) fired before all warps exited.
    CycleLimit {
        /// The cap that fired.
        max_cycles: u64,
    },
    /// A `validate`-feature end-of-run invariant failed.
    Invariant {
        /// Human-readable description of the violated invariant.
        message: String,
    },
    /// The wall-clock deadline set via
    /// [`Simulation::set_deadline`](crate::Simulation::set_deadline) passed
    /// before the run completed.
    Deadline {
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// A full-chip run was asked for with an inconsistent
    /// [`ChipConfig`](crate::ChipConfig) (0 SMs, 0 banks, 0 bandwidth).
    /// Typed rather than panicking so the harness records it as a cell
    /// failure.
    ChipConfig {
        /// Human-readable description of the inconsistency.
        message: String,
    },
}

impl SimErrorKind {
    /// Short machine-readable label (`watchdog`, `cycle_limit`,
    /// `invariant`, `deadline`, `chip_config`) used in failure records.
    pub fn label(&self) -> &'static str {
        match self {
            SimErrorKind::Watchdog { .. } => "watchdog",
            SimErrorKind::CycleLimit { .. } => "cycle_limit",
            SimErrorKind::Invariant { .. } => "invariant",
            SimErrorKind::Deadline { .. } => "deadline",
            SimErrorKind::ChipConfig { .. } => "chip_config",
        }
    }
}

/// A failed simulation: the kind of failure, where it happened, and the
/// counters accumulated up to that point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimError {
    /// What went wrong.
    pub kind: SimErrorKind,
    /// Cycle at which the failure fired.
    pub cycle: u64,
    /// Partial statistics at the failure point (finalized: cache counters,
    /// block profile and cycle count are filled in, so a truncated run is
    /// still reportable).
    pub stats: Box<SimStats>,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SimErrorKind::Watchdog { stalled_cycles, watchdog_cycles, injected, .. } => write!(
                f,
                "{}watchdog: no instruction issued for {stalled_cycles} cycles \
                 (window {watchdog_cycles}, at cycle {})",
                if *injected { "injected " } else { "" },
                self.cycle
            ),
            SimErrorKind::CycleLimit { max_cycles } => {
                write!(f, "cycle limit: {max_cycles} cycles elapsed before all warps exited")
            }
            SimErrorKind::Invariant { message } => {
                write!(f, "invariant violated at cycle {}: {message}", self.cycle)
            }
            SimErrorKind::Deadline { budget_ms } => {
                write!(f, "wall-clock budget of {budget_ms} ms exceeded at cycle {}", self.cycle)
            }
            SimErrorKind::ChipConfig { message } => {
                write!(f, "inconsistent chip config: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_display() {
        let dump = WarpDump {
            warps: vec![WarpDumpEntry {
                warp: 0,
                exited: false,
                blocked_until: 7,
                stack: vec![FrameDump {
                    block: 1,
                    label: "body".into(),
                    op_idx: 2,
                    mask: 0xff,
                    reconv: u32::MAX,
                }],
            }],
        };
        let e = SimError {
            kind: SimErrorKind::Watchdog {
                stalled_cycles: 11,
                watchdog_cycles: 10,
                injected: false,
                dump: dump.clone(),
            },
            cycle: 42,
            stats: Box::default(),
        };
        assert_eq!(e.kind.label(), "watchdog");
        let msg = e.to_string();
        assert!(msg.contains("no instruction issued for 11 cycles"), "{msg}");
        let rendered = dump.to_string();
        assert!(rendered.contains("warp 0: exited=false blocked_until=7"), "{rendered}");
        assert!(rendered.contains("block 1 `body` op 2 mask 0x000000ff"), "{rendered}");

        let e = SimError {
            kind: SimErrorKind::CycleLimit { max_cycles: 100 },
            cycle: 100,
            stats: Box::default(),
        };
        assert_eq!(e.kind.label(), "cycle_limit");
        assert!(e.to_string().contains("100 cycles elapsed"));

        let e = SimError {
            kind: SimErrorKind::Deadline { budget_ms: 5 },
            cycle: 9,
            stats: Box::default(),
        };
        assert_eq!(e.kind.label(), "deadline");
        let e = SimError {
            kind: SimErrorKind::Invariant { message: "rays remain".into() },
            cycle: 9,
            stats: Box::default(),
        };
        assert_eq!(e.kind.label(), "invariant");
        assert!(e.to_string().contains("rays remain"));

        let e = SimError {
            kind: SimErrorKind::ChipConfig { message: "chip has 0 SMs".into() },
            cycle: 0,
            stats: Box::default(),
        };
        assert_eq!(e.kind.label(), "chip_config");
        assert!(e.to_string().contains("chip has 0 SMs"));
    }
}
