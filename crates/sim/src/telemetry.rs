//! The engine-side telemetry hook: per-cycle stall attribution.
//!
//! Every simulated cycle, each resident warp's state is charged to exactly
//! one [`StallBucket`], and an attached [`TelemetrySink`] receives the
//! per-warp bucket vector plus a cheap copy of the live counters
//! ([`CycleSnapshot`]). The charging priority order is documented on
//! [`StallBucket`] and in DESIGN.md's "Observability" section.
//!
//! The hook is *observational*: a sink can never change simulation
//! results, and with no sink attached the engine performs no attribution
//! work at all — [`SimStats`] are bit-identical either way (asserted by
//! the harness test suite).
//!
//! Collectors (interval sampling, Chrome-trace export) live in the
//! `drs-telemetry` crate; this module only defines the contract so the
//! simulator stays dependency-free.

use crate::stats::ActiveHistogram;

/// Number of stall-attribution buckets.
pub const NUM_STALL_BUCKETS: usize = 8;

/// Where one warp-cycle went. Exactly one bucket is charged per resident
/// warp per cycle, so `Σ buckets == cycles × warps` (the accounting
/// identity the telemetry tests enforce).
///
/// Charging priority (first match wins):
///
/// 1. [`Issued`](StallBucket::Issued) — the warp issued ≥ 1 instruction.
/// 2. [`SimtDrain`](StallBucket::SimtDrain) — the warp has exited and its
///    slot drains until kernel end, or it is serving a branch-redirect
///    penalty (SIMT stack update).
/// 3. [`RdctrlStall`](StallBucket::RdctrlStall) — the special unit
///    refused the warp's `rdctrl` this cycle, or the warp is in the
///    re-arbitration backoff that follows such a refusal.
/// 4. [`MemoryPending`](StallBucket::MemoryPending) /
///    [`MshrFull`](StallBucket::MshrFull) — the warp is serialized behind
///    the shared spawn scratchpad, or its next op waits on a register
///    whose producing load is still in flight (`MshrFull` when that load
///    had to queue for a miss-status holding register).
/// 5. [`OperandCollector`](StallBucket::OperandCollector) — the producing
///    op's base latency has elapsed; only register-bank conflict
///    serialization keeps the operand unavailable.
/// 6. [`Scoreboard`](StallBucket::Scoreboard) — the next op waits on an
///    ALU-produced register still inside its latency.
/// 7. [`Idle`](StallBucket::Idle) — no hazard blocks the warp; either the
///    schedulers issued from other warps this cycle or the warp is ready
///    at a terminator awaiting its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StallBucket {
    /// The warp issued at least one instruction this cycle.
    Issued = 0,
    /// Blocked on a scoreboard dependence from an ALU-produced register.
    Scoreboard = 1,
    /// Blocked only on register-bank conflict serialization.
    OperandCollector = 2,
    /// Blocked on a load whose miss had to queue for an MSHR.
    MshrFull = 3,
    /// Blocked on in-flight memory (load latency or spawn scratchpad).
    MemoryPending = 4,
    /// Refused by the special unit (`rdctrl`) or in its issue backoff.
    RdctrlStall = 5,
    /// Exited (draining until kernel end) or serving a branch penalty.
    SimtDrain = 6,
    /// Ready but not selected, or nothing to do.
    Idle = 7,
}

impl StallBucket {
    /// Stable labels, indexable by `bucket as usize`.
    pub const LABELS: [&'static str; NUM_STALL_BUCKETS] = [
        "issued",
        "scoreboard",
        "operand_collector",
        "mshr_full",
        "memory_pending",
        "rdctrl_stall",
        "simt_drain",
        "idle",
    ];

    /// Every bucket, in index order.
    pub const ALL: [StallBucket; NUM_STALL_BUCKETS] = [
        StallBucket::Issued,
        StallBucket::Scoreboard,
        StallBucket::OperandCollector,
        StallBucket::MshrFull,
        StallBucket::MemoryPending,
        StallBucket::RdctrlStall,
        StallBucket::SimtDrain,
        StallBucket::Idle,
    ];

    /// This bucket's label.
    pub fn label(self) -> &'static str {
        Self::LABELS[self as usize]
    }
}

/// A cheap copy of the live counters a sink may want to sample — taken
/// every cycle while telemetry is attached, so interval collectors can
/// slice [`SimStats`](crate::SimStats)-style series at any window without
/// the engine knowing the window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleSnapshot {
    /// The cycle this snapshot describes (0-based; taken at end of cycle).
    pub cycle: u64,
    /// Issue histogram for ordinary instructions so far.
    pub issued: ActiveHistogram,
    /// Issue histogram for spawn-overhead (SI) instructions so far.
    pub issued_si: ActiveHistogram,
    /// `rdctrl` stalls so far.
    pub rdctrl_stalls: u64,
    /// `rdctrl` issues so far.
    pub rdctrl_issued: u64,
    /// Coalesced memory transactions so far.
    pub mem_transactions: u64,
    /// Load instructions so far.
    pub loads: u64,
    /// Store instructions so far.
    pub stores: u64,
    /// Rays fully traced so far.
    pub rays_completed: u64,
}

/// Receiver of per-cycle attribution events.
///
/// Implementations must not assume anything about call timing beyond:
/// every simulated cycle is delivered exactly once, in order — either via
/// `on_cycle` (one call per cycle) or via `on_cycles` (one call per
/// constant-attribution span) — with one bucket per resident warp;
/// `on_finish` fires exactly once after the last cycle with the final
/// snapshot.
///
/// # Example
///
/// A minimal sink that proves the accounting identity
/// `Σ buckets == cycles × warps` for a run:
///
/// ```
/// use drs_sim::{CycleSnapshot, StallBucket, TelemetrySink, NUM_STALL_BUCKETS};
///
/// #[derive(Default)]
/// struct Tally {
///     counts: [u64; NUM_STALL_BUCKETS],
///     cycles: u64,
///     warps: usize,
/// }
///
/// impl TelemetrySink for Tally {
///     fn on_cycle(&mut self, _snap: &CycleSnapshot, warp_buckets: &[StallBucket]) {
///         self.cycles += 1;
///         self.warps = warp_buckets.len();
///         for &b in warp_buckets {
///             self.counts[b as usize] += 1;
///         }
///     }
///     fn on_finish(&mut self, _snap: &CycleSnapshot) {
///         let total: u64 = self.counts.iter().sum();
///         assert_eq!(total, self.cycles * self.warps as u64);
///     }
/// }
///
/// let mut t = Tally::default();
/// let snap = CycleSnapshot::default();
/// t.on_cycle(&snap, &[StallBucket::Issued, StallBucket::Idle]);
/// // The engine's fast path delivers skipped spans in bulk; the default
/// // `on_cycles` expands them into ordinary per-cycle calls.
/// t.on_cycles(&CycleSnapshot { cycle: 1, ..snap }, &[StallBucket::Idle, StallBucket::Idle], 3);
/// t.on_finish(&CycleSnapshot { cycle: 4, ..snap });
/// ```
///
/// `Send` so full-chip runs can move per-SM engines — each carrying its
/// attached sink — across worker threads; sinks are accumulators, so the
/// bound is free in practice.
pub trait TelemetrySink: Send {
    /// One simulated cycle: counters snapshot + per-warp charge.
    fn on_cycle(&mut self, snap: &CycleSnapshot, warp_buckets: &[StallBucket]);

    /// `span` consecutive cycles (`snap.cycle .. snap.cycle + span`) over
    /// which every warp's bucket — and every counter in `snap` — is
    /// constant. Emitted by the engine's event-driven fast path when it
    /// skips a no-issue region in one jump.
    ///
    /// The default implementation expands the span into `span` ordinary
    /// [`on_cycle`](TelemetrySink::on_cycle) calls with consecutive cycle
    /// numbers, so existing sinks observe exactly the naive cycle stream.
    /// Collectors may override it to charge the whole span at once (see
    /// `drs-telemetry`'s `TelemetryCollector`).
    fn on_cycles(&mut self, snap: &CycleSnapshot, warp_buckets: &[StallBucket], span: u64) {
        let mut s = *snap;
        for i in 0..span {
            s.cycle = snap.cycle + i;
            self.on_cycle(&s, warp_buckets);
        }
    }

    /// The run ended (all warps exited or the cycle cap fired).
    fn on_finish(&mut self, snap: &CycleSnapshot);
}

/// Fixed-point scale for chip-level DRAM channel time: every quantity
/// suffixed `_q` counts 1/1024ths of a cycle, so non-integer byte rates
/// stay exact and deterministic in integer arithmetic.
pub const CHIP_TIME_Q: u64 = 1024;

/// Static shape of the chip's shared memory system, delivered once via
/// [`ChipTelemetrySink::on_start`] before any request event, so collectors
/// can size per-bank and per-SM-pair series up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipTopology {
    /// Number of SMs feeding the shared system.
    pub sms: usize,
    /// Number of L2 banks (one request per bank per cycle).
    pub l2_banks: usize,
    /// Cache-line size in bytes (one line per request, per DRAM transfer).
    pub line_bytes: u64,
    /// Chip-wide MSHR pool capacity (distinct in-flight DRAM fills).
    pub mshrs: usize,
    /// DRAM channel occupancy per transferred line, in [`CHIP_TIME_Q`]ths
    /// of a cycle.
    pub cycles_per_line_q: u64,
    /// One-way NoC hop latency in cycles (paid on request and response).
    pub noc_latency: u64,
}

/// The DRAM-channel charge of one L2-missing request: the half-open busy
/// span the line occupies the channel for, in [`CHIP_TIME_Q`] fixed point,
/// plus the whole cycles the request queued waiting for the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipDramCharge {
    /// Channel busy from this instant (1/1024ths of a cycle)...
    pub busy_from_q: u64,
    /// ...up to (exclusive) this instant.
    pub busy_to_q: u64,
    /// Whole cycles spent queued for the channel (bandwidth contention).
    pub queue_cycles: u64,
}

/// One arbitrated request through the chip's shared memory system, emitted
/// to an attached [`ChipTelemetrySink`] after the request is fully served.
/// Events arrive in the chip loop's deterministic arbitration order, with
/// `arrival` non-decreasing across events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipRequestEvent {
    /// The requesting SM.
    pub sm: u32,
    /// The requested cache line (line-aligned address).
    pub line: u64,
    /// The L2 bank that served the request.
    pub bank: u32,
    /// Post-NoC arrival cycle at the L2 (issue + `noc_latency`).
    pub arrival: u64,
    /// Cycle the bank accepted the request (≥ `arrival`; the difference is
    /// bank-conflict serialization).
    pub slot: u64,
    /// Cycle the lookup began (≥ `slot`; the difference is MSHR-exhaustion
    /// queueing).
    pub start: u64,
    /// Cycle the requesting SM has the data (response NoC hop included).
    pub ready: u64,
    /// The request hit in the shared L2.
    pub l2_hit: bool,
    /// The request merged into an already-in-flight fill of the same line
    /// (no L2 lookup, no second DRAM transfer).
    pub merged: bool,
    /// A miss evicted a resident line: the SM that last touched the victim
    /// line (the eviction's *victim* in the interference matrix).
    pub evicted_victim: Option<u32>,
    /// The request queued for a free MSHR: the SM owning the
    /// earliest-completing in-flight fill it waited on (the stall's
    /// *aggressor* in the interference matrix).
    pub mshr_wait_aggressor: Option<u32>,
    /// DRAM charge when the request missed L2 and was not merged.
    pub dram: Option<ChipDramCharge>,
    /// MSHR pool entries in flight at `slot`, after this request's effect
    /// (occupancy gauge for high-water sampling).
    pub mshrs_in_use: u64,
}

/// Receiver of per-request chip memory-system events — the chip-level
/// mirror of [`TelemetrySink`].
///
/// The hook is *observational*: the shared memory system performs the
/// attribution bookkeeping (line-ownership tracking, occupancy gauges)
/// only while a sink is attached, and a sink can never change timing —
/// chip results are bit-identical with and without one attached (asserted
/// by the harness test suite).
///
/// `Send` for symmetry with [`TelemetrySink`]; collectors are
/// accumulators, so the bound is free in practice.
pub trait ChipTelemetrySink: Send {
    /// The shared memory system's static shape, before any event.
    fn on_start(&mut self, topo: &ChipTopology);

    /// One fully-served request, in deterministic arbitration order.
    fn on_request(&mut self, ev: &ChipRequestEvent);

    /// The chip run ended; `cycles` is the slowest SM's cycle count.
    fn on_finish(&mut self, cycles: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_align_with_discriminants() {
        for (i, b) in StallBucket::ALL.iter().enumerate() {
            assert_eq!(*b as usize, i);
            assert_eq!(b.label(), StallBucket::LABELS[i]);
        }
        assert_eq!(StallBucket::ALL.len(), NUM_STALL_BUCKETS);
    }

    #[test]
    fn labels_are_distinct() {
        let mut l = StallBucket::LABELS.to_vec();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), NUM_STALL_BUCKETS);
    }
}
