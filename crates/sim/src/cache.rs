//! Set-associative caches with MSHR merging and a flat-latency DRAM.

use crate::config::GpuConfig;
use crate::isa::MemSpace;
use std::collections::HashMap;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    fn sets(&self) -> usize {
        (self.bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0,1]`; zero for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative LRU cache over line addresses.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets × ways` tags; `u64::MAX` = invalid. LRU order kept per set via
    /// a parallel timestamp array.
    tags: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
    /// Statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Build a cache of the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let n = config.sets() * config.ways;
        Cache {
            config,
            tags: vec![u64::MAX; n],
            stamps: vec![0; n],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Access `line_addr` (already line-aligned); returns true on hit and
    /// fills the line on miss (LRU victim).
    pub fn access(&mut self, line_addr: u64) -> bool {
        self.access_probed(line_addr).0
    }

    /// [`access`](Cache::access), additionally reporting the valid line a
    /// miss evicted (`None` on a hit, or when the fill took an invalid
    /// way). The probe is observational — timing and [`CacheStats`] are
    /// identical to `access` — and exists so the chip's shared L2 can
    /// attribute evictions to the SM whose line was displaced.
    pub fn access_probed(&mut self, line_addr: u64) -> (bool, Option<u64>) {
        self.tick += 1;
        let sets = self.config.sets() as u64;
        let set = (line_addr / self.config.line_bytes as u64 % sets) as usize;
        let base = set * self.config.ways;
        let ways = &mut self.tags[base..base + self.config.ways];
        if let Some(w) = ways.iter().position(|&t| t == line_addr) {
            self.stamps[base + w] = self.tick;
            self.stats.hits += 1;
            return (true, None);
        }
        self.stats.misses += 1;
        // Evict LRU (or an invalid way).
        let victim =
            (0..self.config.ways)
                .min_by_key(|&w| {
                    if self.tags[base + w] == u64::MAX {
                        0
                    } else {
                        self.stamps[base + w] + 1
                    }
                })
                .expect("at least one way");
        let evicted = self.tags[base + victim];
        self.tags[base + victim] = line_addr;
        self.stamps[base + victim] = self.tick;
        (false, (evicted != u64::MAX).then_some(evicted))
    }

    /// Invalidate everything (between simulation phases).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
    }
}

/// The SMX's view of the memory system: L1D + L1T over a shared L2 slice
/// over DRAM, with MSHR merging of in-flight lines.
#[derive(Debug)]
pub struct MemoryHierarchy {
    /// L1 data cache (ray buffers).
    pub l1d: Cache,
    /// L1 texture cache (BVH nodes and triangles).
    pub l1t: Cache,
    /// This SMX's slice of the L2.
    pub l2: Cache,
    line_bytes: u64,
    l1_latency: u32,
    l2_latency: u32,
    dram_latency: u32,
    /// MSHR capacity: distinct lines that may be in flight at once.
    mshr_entries: usize,
    /// In-flight fills: line address -> cycle the data arrives.
    inflight: HashMap<u64, u64>,
}

impl MemoryHierarchy {
    /// Build the hierarchy from the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> MemoryHierarchy {
        let line = cfg.line_bytes;
        let mk = |bytes| Cache::new(CacheConfig { bytes, line_bytes: line, ways: cfg.cache_ways });
        MemoryHierarchy {
            l1d: mk(cfg.l1d_bytes),
            l1t: mk(cfg.l1t_bytes),
            l2: mk(cfg.l2_bytes),
            line_bytes: line as u64,
            l1_latency: cfg.l1_latency,
            l2_latency: cfg.l2_latency,
            dram_latency: cfg.dram_latency,
            mshr_entries: cfg.mshr_entries.max(1),
            inflight: HashMap::new(),
        }
    }

    /// Align a byte address down to its cache line.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Access one line from `space` at cycle `now`; returns the cycle the
    /// requesting warp's data is ready.
    ///
    /// Spawn memory is on-chip scratch, not cached here (the DMK unit
    /// models its banking separately) — it completes at L1 speed.
    pub fn access(&mut self, space: MemSpace, addr: u64, now: u64) -> u64 {
        self.access_probed(space, addr, now).0
    }

    /// Like [`MemoryHierarchy::access`], but also reports whether the
    /// request had to queue for a free miss-status holding register —
    /// the signal the telemetry layer charges to its MSHR-full bucket.
    pub fn access_probed(&mut self, space: MemSpace, addr: u64, now: u64) -> (u64, bool) {
        let line = self.line_of(addr);
        match space {
            MemSpace::Spawn => (now + self.l1_latency as u64, false),
            MemSpace::Global | MemSpace::Texture => {
                let l1 = match space {
                    MemSpace::Global => &mut self.l1d,
                    _ => &mut self.l1t,
                };
                if l1.access(line) {
                    return (now + self.l1_latency as u64, false);
                }
                // L1 miss: check for an already-outstanding fill (MSHR merge).
                if let Some(&ready) = self.inflight.get(&line) {
                    if ready > now {
                        return (ready, false);
                    }
                    self.inflight.remove(&line);
                }
                // A new fill needs a free MSHR. Completed fills free theirs;
                // if every entry is still pending, the request queues behind
                // the earliest completion.
                if self.inflight.len() >= self.mshr_entries {
                    self.inflight.retain(|_, &mut r| r > now);
                }
                let mshr_queued = self.inflight.len() >= self.mshr_entries;
                let start = if mshr_queued {
                    let free_at = self.inflight.values().copied().min().unwrap_or(now);
                    self.inflight.retain(|_, &mut r| r > free_at);
                    free_at.max(now)
                } else {
                    now
                };
                let ready = if self.l2.access(line) {
                    start + self.l2_latency as u64
                } else {
                    start + self.dram_latency as u64
                };
                self.inflight.insert(line, ready);
                (ready, mshr_queued)
            }
        }
    }

    /// Fills still outstanding at cycle `now` (occupied MSHRs).
    pub fn outstanding_misses(&self, now: u64) -> usize {
        self.inflight.values().filter(|&&r| r > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig { bytes: 1024, line_bytes: 128, ways: 2 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small(); // 4 sets x 2 ways
        let sets = 4u64;
        let line = 128u64;
        // Three lines mapping to set 0: 0, sets*line, 2*sets*line.
        let (a, b, d) = (0, sets * line, 2 * sets * line);
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU now
        assert!(!c.access(d)); // evicts b (LRU)
        assert!(c.access(a), "a must survive");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for i in 0..4u64 {
            assert!(!c.access(i * 128));
        }
        for i in 0..4u64 {
            assert!(c.access(i * 128));
        }
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn hierarchy_latencies_order() {
        let cfg = GpuConfig::gtx780();
        let mut m = MemoryHierarchy::new(&cfg);
        // Cold: DRAM latency.
        let t0 = m.access(MemSpace::Texture, 0x1000_0000, 0);
        assert_eq!(t0, cfg.dram_latency as u64);
        // Warm L1: L1 latency.
        let t1 = m.access(MemSpace::Texture, 0x1000_0000, 100);
        assert_eq!(t1, 100 + cfg.l1_latency as u64);
        // Spawn space is scratch.
        let t2 = m.access(MemSpace::Spawn, 0x42, 7);
        assert_eq!(t2, 7 + cfg.l1_latency as u64);
    }

    #[test]
    fn mshr_merges_inflight_lines() {
        let cfg = GpuConfig::gtx780();
        let mut m = MemoryHierarchy::new(&cfg);
        let t0 = m.access(MemSpace::Texture, 0x2000_0000, 0);
        // A second miss to the same line while in flight completes at the
        // same cycle, not later.
        // Force an L1 conflict so the second access misses L1: access many
        // lines in the same L1 set. Simpler: same line, flush L1 only.
        m.l1t.flush();
        let t1 = m.access(MemSpace::Texture, 0x2000_0000, 1);
        assert_eq!(t1, t0, "second in-flight miss must merge");
    }

    #[test]
    fn l2_hit_faster_than_dram() {
        let cfg = GpuConfig::gtx780();
        let mut m = MemoryHierarchy::new(&cfg);
        m.access(MemSpace::Texture, 0x3000_0000, 0);
        m.l1t.flush();
        let t = m.access(MemSpace::Texture, 0x3000_0000, 10_000);
        assert_eq!(t, 10_000 + cfg.l2_latency as u64);
    }

    #[test]
    fn mshr_capacity_queues_extra_misses() {
        let cfg = GpuConfig { mshr_entries: 1, ..GpuConfig::gtx780() };
        let mut m = MemoryHierarchy::new(&cfg);
        let t0 = m.access(MemSpace::Texture, 0x5000_0000, 0);
        assert_eq!(m.outstanding_misses(1), 1);
        // A different line misses while the only MSHR is occupied: it must
        // wait for the first fill to complete before starting its own.
        let t1 = m.access(MemSpace::Texture, 0x6000_0000, 1);
        assert!(t1 >= t0 + cfg.dram_latency as u64, "got {t1} vs fill at {t0}");
        assert_eq!(m.outstanding_misses(t1), 0);
        // With ample MSHRs the same pattern overlaps.
        let mut wide = MemoryHierarchy::new(&GpuConfig::gtx780());
        let a = wide.access(MemSpace::Texture, 0x5000_0000, 0);
        let b = wide.access(MemSpace::Texture, 0x6000_0000, 1);
        assert_eq!(a, cfg.dram_latency as u64);
        assert_eq!(b, 1 + cfg.dram_latency as u64);
    }

    #[test]
    fn line_alignment() {
        let cfg = GpuConfig::gtx780();
        let m = MemoryHierarchy::new(&cfg);
        assert_eq!(m.line_of(0), 0);
        assert_eq!(m.line_of(127), 0);
        assert_eq!(m.line_of(128), 128);
        assert_eq!(m.line_of(300), 256);
    }
}
