//! Thread Block Compaction (TBC): block-synchronized, lane-aligned
//! thread compaction.
//!
//! Warps of a thread block share a block-wide reconvergence stack: at each
//! divergence point every warp of the block synchronizes, then threads
//! taking the same path are compacted into as few warps as possible —
//! *within their SIMD lane* (a thread in lane 3 can only move to lane 3 of
//! another warp, because the register file is addressed per lane). No ray
//! data moves; only the thread→warp mapping changes.
//!
//! The two structural limits the paper highlights both emerge here: the
//! block-wide synchronization adds latency (small blocks keep it bounded,
//! which in turn bounds the compaction opportunity), and lane alignment
//! leaves residual divergence that unconstrained schemes (DMK, DRS) avoid.

use drs_kernels::{CTRL_EXIT, CTRL_TRAV_BOTH, TOKEN_RDCTRL};
use drs_sim::{MachineState, RayState, SimStats, SpecialOutcome, SpecialUnit};

/// Configuration of the TBC compactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbcConfig {
    /// Resident warps.
    pub warps: usize,
    /// Lanes per warp.
    pub lanes: usize,
    /// Warps per thread block (the paper configures 6, following the TBC
    /// paper's own setup).
    pub warps_per_block: usize,
}

impl TbcConfig {
    /// The paper's configuration: 6-warp blocks.
    pub fn paper_default(warps: usize) -> TbcConfig {
        TbcConfig { warps, lanes: 32, warps_per_block: 6 }
    }

    /// Number of blocks (the last may be short).
    pub fn blocks(&self) -> usize {
        self.warps.div_ceil(self.warps_per_block)
    }

    /// The warps belonging to `block`.
    pub fn block_warps(&self, block: usize) -> std::ops::Range<usize> {
        let lo = block * self.warps_per_block;
        lo..(lo + self.warps_per_block).min(self.warps)
    }
}

/// Per-block synchronization state.
#[derive(Debug, Clone, Default)]
struct BlockState {
    /// Round counter per member warp (index within the block).
    rounds: Vec<u64>,
    /// Member warps that have received `CTRL_EXIT`.
    done: Vec<bool>,
    /// Last round at which the block compacted.
    last_compact: u64,
}

/// The TBC compaction unit.
///
/// The block-wide reconvergence stack is modelled as *round lockstep with
/// slack*: a warp may run at most [`TbcUnit::ROUND_WINDOW`] loop rounds
/// ahead of the slowest warp of its block (stalling otherwise — the
/// synchronization latency the paper identifies), and once per round the
/// block's threads are compacted lane-aligned by traversal state.
#[derive(Debug)]
pub struct TbcUnit {
    cfg: TbcConfig,
    blocks: Vec<BlockState>,
}

impl TbcUnit {
    /// How many rounds a warp may run ahead of its block's slowest warp.
    pub const ROUND_WINDOW: u64 = 6;

    /// Build the unit.
    pub fn new(cfg: TbcConfig) -> TbcUnit {
        TbcUnit {
            cfg,
            blocks: (0..cfg.blocks())
                .map(|b| BlockState {
                    rounds: vec![0; cfg.block_warps(b).len()],
                    done: vec![false; cfg.block_warps(b).len()],
                    last_compact: 0,
                })
                .collect(),
        }
    }

    fn block_of(&self, warp: usize) -> usize {
        warp / self.cfg.warps_per_block
    }

    /// Lane-aligned compaction of `block`: for each lane, stack the block's
    /// slots by state and re-deal them to warps in order.
    fn compact(&self, block: usize, m: &mut MachineState<'_>) {
        let warps: Vec<usize> = self.cfg.block_warps(block).collect();
        let state_rank = |s: RayState| match s {
            RayState::Inner => 0u8,
            RayState::Leaf => 1,
            _ => 2,
        };
        // Reorder slot assignments lane by lane (thread movement only — no
        // ray data moves, which is TBC's key cost advantage over DMK).
        for lane in 0..self.cfg.lanes {
            let mut slots: Vec<usize> = warps.iter().filter_map(|&w| m.slot_of(w, lane)).collect();
            slots.sort_by_key(|&s| state_rank(m.state_cache[s]));
            for (w, s) in warps.iter().zip(slots) {
                m.map_lane(*w, lane, Some(s));
            }
        }
    }

    /// Control decision for one warp: TBC's block-wide stack executes all
    /// phases under lane masks, so a live warp always runs the combined
    /// pass; it exits only when neither it nor the queue has work.
    fn warp_ctrl(&self, warp: usize, m: &MachineState<'_>) -> u32 {
        let has_rays = (0..self.cfg.lanes)
            .any(|l| m.slot_of(warp, l).is_some_and(|s| m.slots[s].ray.is_some()));
        if has_rays || !m.queue.is_empty() {
            CTRL_TRAV_BOTH
        } else {
            CTRL_EXIT
        }
    }
}

impl SpecialUnit for TbcUnit {
    fn issue(
        &mut self,
        warp: usize,
        token: u16,
        m: &mut MachineState<'_>,
        _stats: &mut SimStats,
    ) -> SpecialOutcome {
        debug_assert_eq!(token, TOKEN_RDCTRL);
        let b = self.block_of(warp);
        let idx = warp - self.cfg.block_warps(b).start;
        // Round lockstep: stall a warp that would run too far ahead of the
        // slowest live warp in its block.
        let min_round = self.blocks[b]
            .rounds
            .iter()
            .zip(self.blocks[b].done.iter())
            .filter(|&(_, &d)| !d)
            .map(|(&r, _)| r)
            .min()
            .unwrap_or(0);
        if self.blocks[b].rounds[idx] >= min_round + Self::ROUND_WINDOW {
            return SpecialOutcome::Stall;
        }
        // Once per round, the block compacts (lane-aligned thread remap).
        if min_round > self.blocks[b].last_compact || self.blocks[b].last_compact == 0 {
            self.blocks[b].last_compact = min_round + 1;
            self.compact(b, m);
        }
        let ctrl = self.warp_ctrl(warp, m);
        // A warp only exits when its whole block has drained, so its lanes
        // stay available for compaction until the end.
        let block_live = self.cfg.block_warps(b).any(|w| {
            (0..self.cfg.lanes).any(|l| m.slot_of(w, l).is_some_and(|s| m.slots[s].ray.is_some()))
        }) || !m.queue.is_empty();
        let ctrl = if ctrl == CTRL_EXIT && block_live { CTRL_TRAV_BOTH } else { ctrl };
        if ctrl == CTRL_EXIT {
            self.blocks[b].done[idx] = true;
        }
        self.blocks[b].rounds[idx] += 1;
        SpecialOutcome::Proceed { ctrl }
    }

    fn tick(
        &mut self,
        _cycle: u64,
        _idle: &[bool],
        m: &mut MachineState<'_>,
        stats: &mut SimStats,
    ) {
        let _ = m;
        // Synchronization accounting: a warp-cycle of waiting for every
        // warp currently held back by the round window.
        for b in &self.blocks {
            let min_round = b
                .rounds
                .iter()
                .zip(b.done.iter())
                .filter(|&(_, &d)| !d)
                .map(|(&r, _)| r)
                .min()
                .unwrap_or(0);
            stats.sync_wait_cycles += b
                .rounds
                .iter()
                .zip(b.done.iter())
                .filter(|&(&r, &d)| !d && r >= min_round + Self::ROUND_WINDOW)
                .count() as u64;
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // The tick accrues `sync_wait_cycles` for every warp currently held
        // back by the round window; round counters only change on `rdctrl`
        // issue, so the per-cycle accrual is constant across a no-issue
        // span. If any warp is accruing, the tick must run every cycle
        // (no skipping); otherwise the tick is a pure no-op.
        let accruing = self.blocks.iter().any(|b| {
            let min_round = b
                .rounds
                .iter()
                .zip(b.done.iter())
                .filter(|&(_, &d)| !d)
                .map(|(&r, _)| r)
                .min()
                .unwrap_or(0);
            b.rounds
                .iter()
                .zip(b.done.iter())
                .any(|(&r, &d)| !d && r >= min_round + Self::ROUND_WINDOW)
        });
        if accruing {
            Some(now)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_kernels::WhileIfKernel;
    use drs_sim::{GpuConfig, Simulation};
    use drs_trace::{RayScript, Step, Termination};

    fn scripts(n: usize) -> Vec<RayScript> {
        (0..n)
            .map(|i| {
                let mut steps = Vec::new();
                for k in 0..2 + (i * 3 % 9) {
                    steps.push(Step::Inner {
                        node_addr: 0x1000_0000 + ((i * 41 + k * 7) % 2048) as u64 * 64,
                        both_children_hit: (i + k) % 4 == 0,
                    });
                    if (i + k) % 3 == 1 {
                        steps.push(Step::Leaf {
                            node_addr: 0x1100_0000 + ((i * 3 + k) % 512) as u64 * 64,
                            prim_base_addr: 0x4000_0000 + ((i + k * 5) % 512) as u64 * 48,
                            prim_count: 1 + ((i + k) % 3) as u16,
                        });
                    }
                }
                RayScript::new(steps, Termination::Hit)
            })
            .collect()
    }

    fn run_tbc(n: usize, warps: usize) -> drs_sim::SimStats {
        let s = scripts(n);
        let kernel = WhileIfKernel::new();
        let cfg = TbcConfig { warps, lanes: 32, warps_per_block: 6.min(warps) };
        let gpu = GpuConfig { max_warps: warps, max_cycles: 150_000_000, ..GpuConfig::gtx780() };
        Simulation::new(
            gpu,
            kernel.program(),
            Box::new(kernel.clone()),
            Box::new(TbcUnit::new(cfg)),
            &s,
        )
        .run()
        .expect("TBC hit the cycle cap")
    }

    #[test]
    fn block_partitioning() {
        let cfg = TbcConfig::paper_default(14);
        assert_eq!(cfg.blocks(), 3);
        assert_eq!(cfg.block_warps(0), 0..6);
        assert_eq!(cfg.block_warps(2), 12..14);
    }

    #[test]
    fn tbc_completes_all_rays() {
        let out = run_tbc(600, 6);
        assert_eq!(out.rays_completed, 600);
    }

    #[test]
    fn tbc_accumulates_sync_wait() {
        let out = run_tbc(600, 6);
        assert!(out.sync_wait_cycles > 0, "block sync must cost something");
    }

    #[test]
    fn tbc_never_moves_ray_data() {
        let out = run_tbc(400, 6);
        assert_eq!(out.swaps_completed, 0);
        assert_eq!(out.swap_accesses, 0);
        assert_eq!(out.issued_si.total, 0, "TBC has no SI instructions");
    }

    #[test]
    fn tbc_handles_partial_last_block() {
        // 8 warps with 6-warp blocks → one full block + one 2-warp block.
        let out = run_tbc(500, 8);
        assert_eq!(out.rays_completed, 500);
    }
}
