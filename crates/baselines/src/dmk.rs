//! Dynamic Micro-Kernels (DMK): warp re-formation through spawn memory.
//!
//! When a warp's rays diverge in traversal state, the warp *respawns*: it
//! dumps each lane's live ray registers into on-chip spawn memory (explicit
//! store instructions, tagged SI), the spawn unit re-forms the warp from
//! pooled rays sharing one state, and the lanes load their new rays back
//! (explicit SI loads). Regrouping is unconstrained (any ray to any lane),
//! so post-spawn warps are state-uniform like DRS rows — but the SI
//! instructions and spawn-memory bank conflicts are pure overhead that DRS
//! avoids by moving data with its autonomous swap engine.

use drs_kernels::{
    costs::{alu_chain, load},
    WhileIfKernel, CTRL_EXIT, CTRL_FETCH, CTRL_TRAV_INNER, CTRL_TRAV_LEAF, EFFECT_NEW_ROUND,
    TOKEN_RDCTRL,
};
use drs_sim::{
    Block, KernelBehavior, MachineState, MemSpace, MicroOp, OpTag, Program, RayState, SimStats,
    SpecialOutcome, SpecialUnit, Terminator,
};

/// Control value directing the warp into the spawn (dump/reload) block.
pub const CTRL_SPAWN: u32 = 4;

/// Minimum minority-lane count before a respawn pays for itself.
const SPAWN_THRESHOLD: u32 = 8;

// DMK-specific address tokens (the while-if kernel owns 0..=3).
const A_SPAWN_BASE: u16 = 16;
/// Store/load groups per ray dump: the spawn scratch is word-banked, so
/// each of the 17 live ray registers is one explicit store and one load.
const SPAWN_GROUPS: u16 = 17;

/// Configuration of the DMK spawn unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmkConfig {
    /// Resident warps.
    pub warps: usize,
    /// Lanes per warp.
    pub lanes: usize,
    /// Ray capacity of the spawn-memory pool (slots beyond the resident
    /// thread slots). The paper sizes spawn memory for 54 warps of rays.
    pub pool_slots: usize,
}

impl DmkConfig {
    /// A pool matching the paper's spawn-memory sizing: one pooled ray per
    /// resident thread.
    pub fn paper_default(warps: usize) -> DmkConfig {
        DmkConfig { warps, lanes: 32, pool_slots: warps * 32 }
    }

    /// Total ray slots (thread slots + pool).
    pub fn slot_count(&self) -> usize {
        self.warps * self.lanes + self.pool_slots
    }
}

/// The while-if kernel augmented with the DMK spawn block.
#[derive(Debug, Clone)]
pub struct DmkKernel {
    inner: WhileIfKernel,
    cfg: DmkConfig,
}

impl DmkKernel {
    /// Build the DMK kernel for a configuration.
    pub fn new(cfg: DmkConfig) -> DmkKernel {
        DmkKernel { inner: WhileIfKernel::new(), cfg }
    }

    /// The program: the while-if skeleton with a spawn block between the
    /// control read and the work bodies.
    ///
    /// Block map: 0 = read ctrl, 1 = spawn check, 2 = spawn body (SI),
    /// 3.. = the while-if fetch/inner/leaf structure, rebuilt here so block
    /// ids stay self-contained.
    pub fn program(&self) -> Program {
        let program = self.build_program();
        #[cfg(debug_assertions)]
        drs_verify::assert_program_valid("dmk", &program);
        program
    }

    fn build_program(&self) -> Program {
        // Rebuild the while-if program with two extra blocks at the front
        // of the loop for the spawn path. We reuse the inner kernel's
        // condition/effect/address tokens by delegating at eval time; the
        // spawn path uses DMK-local tokens.
        let base = self.inner.program();
        let mut blocks: Vec<Block> = Vec::new();
        // 0: read ctrl (same special token; the DMK unit answers it).
        blocks.push(Block::new(
            "read_ctrl",
            vec![MicroOp::special(0, TOKEN_RDCTRL), MicroOp::effect(EFFECT_NEW_ROUND)],
            Terminator::Branch {
                cond: C_NOT_EXIT,
                on_true: 1,
                on_false: EXIT_BLK,
                reconverge: EXIT_BLK,
            },
        ));
        // 1: spawn check. The spawn body jumps straight back to the control
        // read, so the two paths first rejoin at block 0 — that, not the
        // fall-through block, is the immediate post-dominator.
        blocks.push(Block::new(
            "spawn_if",
            vec![],
            Terminator::Branch { cond: C_IS_SPAWN, on_true: 2, on_false: 3, reconverge: 0 },
        ));
        // 2: spawn body — dump 17 words, reload 17 words, all SI-tagged.
        let si = OpTag::SpawnOverhead;
        let mut spawn_ops = Vec::new();
        for g in 0..SPAWN_GROUPS {
            spawn_ops
                .push(MicroOp::store(MemSpace::Spawn, A_SPAWN_BASE + g, &[10, 11]).with_tag(si));
        }
        // Micro-kernel bookkeeping: spawn-table lookup and thread metadata.
        alu_chain(&mut spawn_ops, 6, &[10, 11], si);
        spawn_ops.push(MicroOp::effect(E_REGROUP));
        for g in 0..SPAWN_GROUPS {
            load(&mut spawn_ops, 10 + (g % 3) as u8, MemSpace::Spawn, A_SPAWN_BASE + g, si);
        }
        alu_chain(&mut spawn_ops, 4, &[10, 11], si);
        // Loop back to re-read control (now uniform).
        blocks.push(Block::new("spawn_body", spawn_ops, Terminator::Jump(0)));
        // 3..: splice the while-if body blocks. The mapping is computed
        // from the base program itself so kernel restructurings cannot
        // silently break the splice: old block 0 (read_ctrl) becomes our
        // block 0, the old exit block becomes the final exit block, and
        // every other block shifts up by the two inserted spawn blocks.
        let old_exit = base
            .blocks()
            .iter()
            .position(|b| matches!(b.terminator, Terminator::Exit))
            .expect("while-if program has an exit block") as u32;
        let mut new_id = vec![0u32; base.blocks().len()];
        let mut next = 3u32; // after read_ctrl, spawn_if, spawn_body
        for (i, id) in new_id.iter_mut().enumerate() {
            if i == 0 {
                *id = 0;
            } else if i as u32 == old_exit {
                *id = EXIT_BLK;
            } else {
                *id = next;
                next += 1;
            }
        }
        assert_eq!(next, EXIT_BLK, "EXIT_BLK must be the final block id");
        let remap = |old: u32| -> u32 { new_id[old as usize] };
        for (i, b) in base.blocks().iter().enumerate() {
            if i == 0 || i as u32 == old_exit {
                continue; // replaced by our blocks 0 and EXIT_BLK
            }
            let terminator = match b.terminator {
                Terminator::Jump(t) => Terminator::Jump(remap(t)),
                Terminator::Branch { cond, on_true, on_false, reconverge } => Terminator::Branch {
                    cond,
                    on_true: remap(on_true),
                    on_false: remap(on_false),
                    reconverge: remap(reconverge),
                },
                Terminator::Exit => Terminator::Exit,
            };
            blocks.push(Block::new(b.label, b.ops.clone(), terminator));
        }
        // EXIT_BLK (last): exit.
        blocks.push(Block::new("exit", vec![], Terminator::Exit));
        Program::new(blocks)
    }
}

// DMK-local condition/effect tokens live above the while-if kernel's range.
const C_NOT_EXIT: u16 = 32;
const C_IS_SPAWN: u16 = 33;
const E_REGROUP: u16 = 32;
/// Exit block id in the spliced program: 3 DMK blocks + the while-if
/// blocks minus its read-ctrl and exit; the exit goes last.
const EXIT_BLK: u32 = 14;

impl KernelBehavior for DmkKernel {
    fn eval_cond(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> bool {
        match token {
            C_NOT_EXIT => m.warp_ctrl[warp] != CTRL_EXIT,
            C_IS_SPAWN => m.warp_ctrl[warp] == CTRL_SPAWN,
            t => self.inner.eval_cond(t, warp, lane, m),
        }
    }

    fn eval_addr(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> u64 {
        if (A_SPAWN_BASE..A_SPAWN_BASE + SPAWN_GROUPS).contains(&token) {
            // Spawn-memory address of this lane's ray record: keyed by the
            // ray's identity, so scattered regrouped rays hit scattered
            // banks (the conflict behaviour the paper measures).
            let word = (token - A_SPAWN_BASE) as u64;
            let ray_id = m
                .slot_of(warp, lane)
                .and_then(|s| m.slots[s].ray)
                .map_or((warp * 32 + lane) as u64, |r| r.script as u64);
            return ray_id * 68 + word * 4;
        }
        self.inner.eval_addr(token, warp, lane, m)
    }

    fn apply_effect(&self, token: u16, warp: usize, lane: usize, m: &mut MachineState<'_>) {
        if token == E_REGROUP {
            // Data movement is modelled in the unit at the rdctrl that
            // requested the spawn; the effect marks the architectural point.
            return;
        }
        self.inner.apply_effect(token, warp, lane, m);
    }

    fn slot_count(&self, _warps: usize, lanes: usize) -> usize {
        self.cfg.warps * lanes + self.cfg.pool_slots
    }

    fn initialize(&self, m: &mut MachineState<'_>) {
        self.inner.initialize(m);
    }
}

/// The DMK spawn unit: answers `rdctrl`, deciding between direct execution
/// (uniform warp) and a respawn through the pool.
#[derive(Debug)]
pub struct DmkUnit {
    cfg: DmkConfig,
    /// Warps that were told to spawn and will regroup at their next rdctrl.
    pending_spawn: Vec<bool>,
}

impl DmkUnit {
    /// Build the unit.
    pub fn new(cfg: DmkConfig) -> DmkUnit {
        DmkUnit { cfg, pending_spawn: vec![false; cfg.warps] }
    }

    /// Mixed-state check over a warp's mapped slots.
    fn warp_states(&self, warp: usize, m: &MachineState<'_>) -> (u32, u32, u32) {
        let (mut fetch, mut inner, mut leaf) = (0, 0, 0);
        for lane in 0..self.cfg.lanes {
            if let Some(s) = m.slot_of(warp, lane) {
                match m.state_cache[s] {
                    RayState::Inner => inner += 1,
                    RayState::Leaf => leaf += 1,
                    _ => fetch += 1,
                }
            }
        }
        (fetch, inner, leaf)
    }

    /// Regroup `warp` against the spawn-memory pool: choose the most
    /// numerous traversal state across the warp and the pool, then for each
    /// lane not already in that state either *exchange* its ray for a
    /// matching pooled ray or *dump* it into a free pool slot. The pass is
    /// retried with the opposite state if the warp is still mixed (pool
    /// pressure can make the first choice unsatisfiable), so a respawned
    /// warp is never state-mixed.
    fn regroup(&mut self, warp: usize, m: &mut MachineState<'_>) {
        let pool_base = self.cfg.warps * self.cfg.lanes;
        let pool_end = self.cfg.slot_count();
        let tally = |m: &MachineState<'_>| {
            let (mut inner, mut leaf) = (0u32, 0u32);
            for p in pool_base..pool_end {
                match m.state_cache[p] {
                    RayState::Inner => inner += 1,
                    RayState::Leaf => leaf += 1,
                    _ => {}
                }
            }
            (inner, leaf)
        };
        let (mut inner, mut leaf) = tally(m);
        for lane in 0..self.cfg.lanes {
            if let Some(s) = m.slot_of(warp, lane) {
                match m.state_cache[s] {
                    RayState::Inner => inner += 1,
                    RayState::Leaf => leaf += 1,
                    _ => {}
                }
            }
        }
        if inner == 0 && leaf == 0 {
            return;
        }
        let first = if inner >= leaf { RayState::Inner } else { RayState::Leaf };
        let second = if first == RayState::Inner { RayState::Leaf } else { RayState::Inner };
        for want in [first, second] {
            self.regroup_pass(warp, want, m);
            // Mixed only if the pool could neither absorb nor supply; the
            // second pass with the opposite state then must succeed.
            let (_, i, l) = self.warp_states(warp, m);
            if i == 0 || l == 0 {
                return;
            }
        }
    }

    /// One regroup pass: make every lane of `warp` hold a `want`-state ray
    /// (exchange with the pool), or at least not a counter-state ray (dump
    /// into a pool hole).
    fn regroup_pass(&mut self, warp: usize, want: RayState, m: &mut MachineState<'_>) {
        let pool_base = self.cfg.warps * self.cfg.lanes;
        let pool_end = self.cfg.slot_count();
        let mut want_cursor = pool_base;
        let mut hole_cursor = pool_base;
        for lane in 0..self.cfg.lanes {
            let Some(s) = m.slot_of(warp, lane) else { continue };
            if m.state_cache[s] == want {
                continue;
            }
            // Prefer exchanging for a pooled want-state ray (fills the lane).
            while want_cursor < pool_end && m.state_cache[want_cursor] != want {
                want_cursor += 1;
            }
            if want_cursor < pool_end {
                m.slots.swap(s, want_cursor);
                m.state_cache.swap(s, want_cursor);
                continue;
            }
            // Otherwise dump a counter-state ray into a pool hole.
            if m.slots[s].ray.is_some() {
                while hole_cursor < pool_end && m.slots[hole_cursor].ray.is_some() {
                    hole_cursor += 1;
                }
                if hole_cursor < pool_end {
                    m.slots.swap(s, hole_cursor);
                    m.state_cache.swap(s, hole_cursor);
                }
            }
        }
    }
}

impl SpecialUnit for DmkUnit {
    fn issue(
        &mut self,
        warp: usize,
        token: u16,
        m: &mut MachineState<'_>,
        _stats: &mut SimStats,
    ) -> SpecialOutcome {
        debug_assert_eq!(token, TOKEN_RDCTRL);
        if self.pending_spawn[warp] {
            // The warp just executed its dump/reload SI block; regroup now.
            self.pending_spawn[warp] = false;
            self.regroup(warp, m);
        }
        let (fetch, inner, leaf) = self.warp_states(warp, m);
        // Tally what the pool could contribute.
        let pool_base = self.cfg.warps * self.cfg.lanes;
        let (mut pool_inner, mut pool_leaf) = (0u32, 0u32);
        for p in pool_base..self.cfg.slot_count() {
            match m.state_cache[p] {
                RayState::Inner if m.slots[p].ray.is_some() => pool_inner += 1,
                RayState::Leaf => pool_leaf += 1,
                _ => {}
            }
        }
        // Spawn only when regrouping pays for its dump/reload cost: the
        // warp's minority state occupies at least SPAWN_THRESHOLD lanes
        // (small divergence executes under masks, as in the DMK paper), or
        // the pool can refill a substantially hollow warp. This also
        // self-limits — right after a regroup the pool holds no
        // majority-state rays, so the warp proceeds.
        let minority = inner.min(leaf);
        let state_mixed = minority >= SPAWN_THRESHOLD;
        let majority_pool = if inner >= leaf { pool_inner } else { pool_leaf };
        let refill_possible =
            fetch >= SPAWN_THRESHOLD && (inner + leaf) > 0 && majority_pool >= SPAWN_THRESHOLD;
        if state_mixed || refill_possible {
            self.pending_spawn[warp] = true;
            return SpecialOutcome::Proceed { ctrl: CTRL_SPAWN };
        }
        // Holes left by retired rays refill from the global queue before the
        // warp continues half-empty (fresh rays start in the inner state, so
        // a leaf-bound warp will respawn next round — that churn is DMK's).
        if fetch > 0 && !m.queue.is_empty() {
            return SpecialOutcome::Proceed { ctrl: CTRL_FETCH };
        }
        if inner >= leaf && inner > 0 {
            return SpecialOutcome::Proceed { ctrl: CTRL_TRAV_INNER };
        }
        if leaf > 0 {
            return SpecialOutcome::Proceed { ctrl: CTRL_TRAV_LEAF };
        }
        // Queue drained and this warp has no rays: gather pool leftovers,
        // exit once the pool is empty too.
        if pool_inner + pool_leaf > 0 {
            self.pending_spawn[warp] = true;
            return SpecialOutcome::Proceed { ctrl: CTRL_SPAWN };
        }
        SpecialOutcome::Proceed { ctrl: CTRL_EXIT }
    }

    fn tick(
        &mut self,
        _cycle: u64,
        _idle: &[bool],
        _m: &mut MachineState<'_>,
        _stats: &mut SimStats,
    ) {
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        // DMK does all its work at `rdctrl` issue; the tick is empty, so
        // the unit is always quiescent and never blocks cycle skipping.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::{GpuConfig, Simulation};
    use drs_trace::{RayScript, Step, Termination};

    fn scripts(n: usize) -> Vec<RayScript> {
        (0..n)
            .map(|i| {
                let mut steps = Vec::new();
                for k in 0..2 + (i * 5 % 11) {
                    steps.push(Step::Inner {
                        node_addr: 0x1000_0000 + ((i * 29 + k * 3) % 2048) as u64 * 64,
                        both_children_hit: (i + k) % 3 == 0,
                    });
                    if (i + k) % 3 == 0 {
                        steps.push(Step::Leaf {
                            node_addr: 0x1100_0000 + ((i + k) % 512) as u64 * 64,
                            prim_base_addr: 0x4000_0000 + ((i * 7 + k) % 512) as u64 * 48,
                            prim_count: 1 + ((i + k) % 3) as u16,
                        });
                    }
                }
                RayScript::new(steps, Termination::Hit)
            })
            .collect()
    }

    fn run_dmk(n: usize, warps: usize) -> drs_sim::SimStats {
        let s = scripts(n);
        let cfg = DmkConfig { warps, lanes: 32, pool_slots: warps * 32 };
        let kernel = DmkKernel::new(cfg);
        let gpu = GpuConfig { max_warps: warps, max_cycles: 120_000_000, ..GpuConfig::gtx780() };
        Simulation::new(
            gpu,
            kernel.program(),
            Box::new(kernel.clone()),
            Box::new(DmkUnit::new(cfg)),
            &s,
        )
        .run()
        .expect("DMK hit the cycle cap")
    }

    #[test]
    fn program_splices_correctly() {
        let k = DmkKernel::new(DmkConfig::paper_default(4));
        let p = k.program();
        assert_eq!(p.blocks().len(), 15);
        assert_eq!(p.blocks().last().unwrap().label, "exit");
        assert!(p.blocks().iter().any(|b| b.label == "spawn_body"));
    }

    #[test]
    fn dmk_completes_all_rays() {
        let out = run_dmk(600, 6);
        assert_eq!(out.rays_completed, 600);
    }

    #[test]
    fn dmk_pays_si_instructions() {
        let out = run_dmk(600, 6);
        assert!(out.issued_si.total > 0, "spawns must execute SI work");
        // SI should be a visible but minority share, as in the paper.
        let si_frac = out.issued_si.total as f64 / (out.issued.total + out.issued_si.total) as f64;
        assert!(si_frac > 0.005 && si_frac < 0.5, "SI fraction {si_frac}");
    }

    #[test]
    fn dmk_incurs_spawn_bank_conflicts() {
        let out = run_dmk(800, 6);
        assert!(
            out.spawn_bank_conflict_cycles > 0,
            "scattered regrouped rays must conflict in spawn memory"
        );
    }

    #[test]
    fn dmk_normal_work_efficiency_is_high() {
        // Excluding SI, regrouped warps should run near-uniform.
        let out = run_dmk(800, 4);
        let eff = out.issued.simd_efficiency();
        assert!(eff > 0.5, "post-spawn warps should be fairly uniform: {eff}");
    }
}
