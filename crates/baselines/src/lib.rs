//! Baseline divergence-mitigation hardware the paper compares against.
//!
//! Two prior thread-recombining proposals, modelled as special units over
//! the same simulator core and (for DMK) a spawn-augmented while-if kernel:
//!
//! - [`dmk`] — **Dynamic Micro-Kernels**: on divergence, a warp dumps its
//!   rays into on-chip *spawn memory* and is re-formed from rays in one
//!   state. Regrouping is complete (no lane alignment), so SIMD efficiency
//!   approaches DRS — but every regroup pays explicit dump/load
//!   instructions ("SI" work) through a banked scratchpad whose conflicts
//!   erase most of the win (the paper measures ≈1.06× speedup despite
//!   large efficiency gains).
//! - [`tbc`] — **Thread Block Compaction**: warps of a thread block share a
//!   block-wide reconvergence stack and synchronize at divergence points,
//!   compacting active threads into fewer warps. Threads may move only
//!   within their SIMD lane, and the block must sync before compacting, so
//!   the efficiency gain is modest (paper: ≈46 % overall SIMD efficiency,
//!   ≈1.18× speedup) — but there is no data movement at all.

#![warn(missing_docs)]

pub mod dmk;
pub mod tbc;

pub use dmk::{DmkConfig, DmkKernel, DmkUnit, CTRL_SPAWN};
pub use tbc::{TbcConfig, TbcUnit};
