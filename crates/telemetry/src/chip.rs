//! Chip-level interval collector: the [`ChipTelemetrySink`] counterpart
//! of [`TelemetryCollector`](crate::TelemetryCollector).
//!
//! The shared memory system emits one [`ChipRequestEvent`] per arbitrated
//! request; this collector folds the stream into fixed-width interval
//! samples over chip cycles — per-bank L2 hits/misses/evictions, MSHR
//! occupancy and exhaustion-queue high-waters, DRAM bytes and channel
//! busy time in the model's 1/1024-cycle fixed point, NoC in-flight
//! high-water — plus a per-interval **cross-SM interference matrix**:
//! each L2 eviction is charged to (victim = last toucher of the displaced
//! line, aggressor = requester) and each MSHR-exhaustion stall to
//! (victim = queued requester, aggressor = owner of the fill it waited
//! behind).
//!
//! The matrix obeys an accounting identity in the spirit of the warp
//! collector's `Σ buckets == cycles × warps`: in every interval, the sum
//! over all matrix entries equals that interval's evictions + MSHR waits,
//! and the whole-run matrix sum equals the shared system's `l2_evictions
//! + mshr_waits` contention counters — checked by
//! [`ChipTelemetryReport::check_identity`].

use drs_sim::{ChipRequestEvent, ChipTelemetrySink, ChipTopology, JsonBuf, CHIP_TIME_Q};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One interval of chip memory-system activity. Requests are binned by
/// their post-NoC `arrival` cycle; DRAM channel busy time is apportioned
/// exactly across the intervals each transfer's busy span overlaps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChipIntervalSample {
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle (the final interval ends at the chip's
    /// cycle count).
    pub end: u64,
    /// Per-bank L2 hits this interval.
    pub bank_hits: Vec<u64>,
    /// Per-bank L2 misses this interval (merged requests hit neither).
    pub bank_misses: Vec<u64>,
    /// Per-bank L2 evictions this interval.
    pub bank_evictions: Vec<u64>,
    /// Requests arbitrated this interval.
    pub requests: u64,
    /// Cycles requests waited on busy banks this interval.
    pub bank_conflict_cycles: u64,
    /// Requests merged into in-flight fills this interval.
    pub mshr_merges: u64,
    /// Requests that queued for a free MSHR this interval.
    pub mshr_waits: u64,
    /// High-water of MSHR pool occupancy sampled at each request.
    pub mshr_occupancy_hwm: u64,
    /// High-water of simultaneously-queued requests waiting for an MSHR
    /// (each waiter occupies the conceptual queue from its bank slot to
    /// its service start).
    pub mshr_queue_hwm: u64,
    /// Lines transferred from DRAM this interval.
    pub dram_lines: u64,
    /// Bytes transferred from DRAM this interval (`lines × line_bytes`).
    pub dram_bytes: u64,
    /// DRAM channel busy time overlapping this interval, in 1/1024ths of
    /// a cycle ([`CHIP_TIME_Q`] fixed point).
    pub dram_busy_q: u64,
    /// Cycles requests queued for the DRAM channel this interval.
    pub dram_queue_cycles: u64,
    /// High-water of requests in flight (issued, response not yet at the
    /// SM) sampled at each request arrival.
    pub noc_inflight_hwm: u64,
    /// Victim-major `sms × sms` interference matrix: entry
    /// `[victim × sms + aggressor]` counts evictions of the victim's
    /// lines by the aggressor plus the victim's MSHR-exhaustion stalls
    /// behind the aggressor's fills, this interval.
    pub interference: Vec<u64>,
}

impl ChipIntervalSample {
    /// An all-zero sample sized for `banks` L2 banks and `sms` SMs.
    pub fn empty(banks: usize, sms: usize) -> ChipIntervalSample {
        ChipIntervalSample {
            bank_hits: vec![0; banks],
            bank_misses: vec![0; banks],
            bank_evictions: vec![0; banks],
            interference: vec![0; sms * sms],
            ..ChipIntervalSample::default()
        }
    }

    /// Fold another accumulated sample into this one (counters summed,
    /// high-waters maxed) — used to absorb DRAM busy tails that extend
    /// past the chip's final cycle into the last interval.
    fn absorb(&mut self, other: &ChipIntervalSample) {
        for (a, b) in self.bank_hits.iter_mut().zip(&other.bank_hits) {
            *a += b;
        }
        for (a, b) in self.bank_misses.iter_mut().zip(&other.bank_misses) {
            *a += b;
        }
        for (a, b) in self.bank_evictions.iter_mut().zip(&other.bank_evictions) {
            *a += b;
        }
        for (a, b) in self.interference.iter_mut().zip(&other.interference) {
            *a += b;
        }
        self.requests += other.requests;
        self.bank_conflict_cycles += other.bank_conflict_cycles;
        self.mshr_merges += other.mshr_merges;
        self.mshr_waits += other.mshr_waits;
        self.mshr_occupancy_hwm = self.mshr_occupancy_hwm.max(other.mshr_occupancy_hwm);
        self.mshr_queue_hwm = self.mshr_queue_hwm.max(other.mshr_queue_hwm);
        self.dram_lines += other.dram_lines;
        self.dram_bytes += other.dram_bytes;
        self.dram_busy_q += other.dram_busy_q;
        self.dram_queue_cycles += other.dram_queue_cycles;
        self.noc_inflight_hwm = self.noc_inflight_hwm.max(other.noc_inflight_hwm);
    }

    /// Total L2 evictions this interval (sum over banks).
    pub fn evictions(&self) -> u64 {
        self.bank_evictions.iter().sum()
    }

    /// Sum over the interference matrix this interval.
    pub fn interference_sum(&self) -> u64 {
        self.interference.iter().sum()
    }

    /// DRAM channel utilization in `[0, 1]` over this interval
    /// (`busy_q / (width × 1024)`); zero for a zero-width interval.
    pub fn dram_utilization(&self) -> f64 {
        if self.end <= self.start {
            return 0.0;
        }
        self.dram_busy_q as f64 / ((self.end - self.start) * CHIP_TIME_Q) as f64
    }
}

/// The chip memory-system timeline produced by [`ChipTelemetryCollector`]
/// — whole-run interference matrix plus interval samples partitioning
/// `[0, cycles)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipTelemetryReport {
    /// SMs feeding the shared system (matrix dimension).
    pub sms: usize,
    /// L2 banks (per-bank series dimension).
    pub banks: usize,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Chip-wide MSHR pool capacity.
    pub mshrs: usize,
    /// DRAM channel occupancy per line, in 1/1024ths of a cycle.
    pub cycles_per_line_q: u64,
    /// Sampling interval width in cycles.
    pub interval: u64,
    /// Chip cycle count (the slowest SM's).
    pub cycles: u64,
    /// Whole-run victim-major `sms × sms` interference matrix.
    pub interference: Vec<u64>,
    /// Interval samples, contiguous from cycle 0.
    pub intervals: Vec<ChipIntervalSample>,
}

impl ChipTelemetryReport {
    /// Whole-run interference between a (victim, aggressor) SM pair.
    pub fn interference_at(&self, victim: usize, aggressor: usize) -> u64 {
        self.interference[victim * self.sms + aggressor]
    }

    /// Whole-run DRAM channel utilization in `[0, 1]`.
    pub fn dram_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let busy: u64 = self.intervals.iter().map(|s| s.dram_busy_q).sum();
        busy as f64 / (self.cycles * CHIP_TIME_Q) as f64
    }

    /// The chip accounting identity, in the spirit of the warp
    /// collector's `Σ buckets == cycles × warps`:
    ///
    /// - in **every interval**, the interference-matrix sum equals that
    ///   interval's evictions + MSHR-exhaustion waits (each such event is
    ///   charged to exactly one (victim, aggressor) pair);
    /// - per-interval matrices sum elementwise to the whole-run matrix;
    /// - interval bank hit/miss/eviction and wait counters sum to the
    ///   shared system's contention counters, passed in from `ChipStats`
    ///   / `ChipSummary` (`l2_hits`, `l2_misses`, `l2_evictions`,
    ///   `mshr_waits`);
    /// - intervals are contiguous and end at `cycles`.
    pub fn check_identity(
        &self,
        l2_hits: u64,
        l2_misses: u64,
        l2_evictions: u64,
        mshr_waits: u64,
    ) -> Result<(), String> {
        let mut sum_matrix = vec![0u64; self.sms * self.sms];
        let (mut hits, mut misses, mut evictions, mut waits) = (0, 0, 0, 0);
        let mut cursor = 0;
        for (i, s) in self.intervals.iter().enumerate() {
            if s.start != cursor {
                return Err(format!("interval {i} starts at {} expected {cursor}", s.start));
            }
            cursor = s.end;
            let m = s.interference_sum();
            let contended = s.evictions() + s.mshr_waits;
            if m != contended {
                return Err(format!(
                    "interval {i} [{}, {}): interference sum {m} != evictions + mshr_waits {contended}",
                    s.start, s.end
                ));
            }
            for (acc, v) in sum_matrix.iter_mut().zip(&s.interference) {
                *acc += v;
            }
            hits += s.bank_hits.iter().sum::<u64>();
            misses += s.bank_misses.iter().sum::<u64>();
            evictions += s.evictions();
            waits += s.mshr_waits;
        }
        if cursor != self.cycles {
            return Err(format!("intervals end at {cursor}, run has {} cycles", self.cycles));
        }
        if sum_matrix != self.interference {
            return Err("per-interval matrices do not sum to the whole-run matrix".into());
        }
        let total: u64 = self.interference.iter().sum();
        if total != l2_evictions + mshr_waits {
            return Err(format!(
                "matrix sum {total} != l2_evictions {l2_evictions} + mshr_waits {mshr_waits}"
            ));
        }
        if (hits, misses, evictions, waits) != (l2_hits, l2_misses, l2_evictions, mshr_waits) {
            return Err(format!(
                "interval totals ({hits}, {misses}, {evictions}, {waits}) != chip counters \
                 ({l2_hits}, {l2_misses}, {l2_evictions}, {mshr_waits})"
            ));
        }
        Ok(())
    }

    /// Emit the full report (intervals included) as JSON.
    pub fn write_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        self.header_json(j);
        j.key("intervals");
        j.begin_arr();
        for s in &self.intervals {
            j.begin_obj();
            j.kv_u64("start", s.start);
            j.kv_u64("end", s.end);
            j.kv_u64("requests", s.requests);
            j.kv_u64("bank_conflict_cycles", s.bank_conflict_cycles);
            u64_arr(j, "bank_hits", &s.bank_hits);
            u64_arr(j, "bank_misses", &s.bank_misses);
            u64_arr(j, "bank_evictions", &s.bank_evictions);
            j.kv_u64("mshr_merges", s.mshr_merges);
            j.kv_u64("mshr_waits", s.mshr_waits);
            j.kv_u64("mshr_occupancy_hwm", s.mshr_occupancy_hwm);
            j.kv_u64("mshr_queue_hwm", s.mshr_queue_hwm);
            j.kv_u64("dram_lines", s.dram_lines);
            j.kv_u64("dram_bytes", s.dram_bytes);
            j.kv_u64("dram_busy_q", s.dram_busy_q);
            j.kv_u64("dram_queue_cycles", s.dram_queue_cycles);
            j.kv_f64("dram_utilization", s.dram_utilization());
            j.kv_u64("noc_inflight_hwm", s.noc_inflight_hwm);
            u64_arr(j, "interference", &s.interference);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
    }

    /// Emit the compact whole-run form (no interval series) — embedded in
    /// the results JSON so cells carry the interference matrix without the
    /// full timeline.
    pub fn write_totals_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        self.header_json(j);
        j.kv_u64("intervals", self.intervals.len() as u64);
        j.kv_f64("dram_utilization", self.dram_utilization());
        j.kv_u64("dram_bytes", self.intervals.iter().map(|s| s.dram_bytes).sum());
        j.kv_u64(
            "mshr_occupancy_hwm",
            self.intervals.iter().map(|s| s.mshr_occupancy_hwm).max().unwrap_or(0),
        );
        j.kv_u64(
            "mshr_queue_hwm",
            self.intervals.iter().map(|s| s.mshr_queue_hwm).max().unwrap_or(0),
        );
        j.kv_u64(
            "noc_inflight_hwm",
            self.intervals.iter().map(|s| s.noc_inflight_hwm).max().unwrap_or(0),
        );
        j.end_obj();
    }

    fn header_json(&self, j: &mut JsonBuf) {
        j.kv_u64("sms", self.sms as u64);
        j.kv_u64("l2_banks", self.banks as u64);
        j.kv_u64("line_bytes", self.line_bytes);
        j.kv_u64("mshrs", self.mshrs as u64);
        j.kv_u64("cycles_per_line_q", self.cycles_per_line_q);
        j.kv_u64("interval", self.interval);
        j.kv_u64("cycles", self.cycles);
        u64_arr(j, "interference", &self.interference);
    }
}

fn u64_arr(j: &mut JsonBuf, key: &str, vals: &[u64]) {
    j.key(key);
    j.begin_arr();
    for &v in vals {
        j.u64(v);
    }
    j.end_arr();
}

/// The standard chip sink: folds the request-event stream into a
/// [`ChipTelemetryReport`]. Attach via `SharedMemSys::attach_telemetry`
/// (or `run_chip_observed`), then call
/// [`into_report`](ChipTelemetryCollector::into_report) after the run.
#[derive(Debug)]
pub struct ChipTelemetryCollector {
    interval: u64,
    topo: Option<ChipTopology>,
    samples: Vec<ChipIntervalSample>,
    interference: Vec<u64>,
    /// Service-start times of requests still conceptually queued for an
    /// MSHR (min-heap sweep for the queue-depth high-water).
    mshr_q: BinaryHeap<Reverse<u64>>,
    /// Ready times of requests still in flight (min-heap sweep for the
    /// NoC in-flight high-water).
    noc_q: BinaryHeap<Reverse<u64>>,
    cycles: Option<u64>,
}

impl ChipTelemetryCollector {
    /// Build a collector sampling at `interval` cycles (panics on 0).
    pub fn new(interval: u64) -> ChipTelemetryCollector {
        assert!(interval > 0, "chip telemetry interval must be positive");
        ChipTelemetryCollector {
            interval,
            topo: None,
            samples: Vec::new(),
            interference: Vec::new(),
            mshr_q: BinaryHeap::new(),
            noc_q: BinaryHeap::new(),
            cycles: None,
        }
    }

    fn sample_at<'a>(
        samples: &'a mut Vec<ChipIntervalSample>,
        topo: &ChipTopology,
        idx: usize,
    ) -> &'a mut ChipIntervalSample {
        while samples.len() <= idx {
            samples.push(ChipIntervalSample::empty(topo.l2_banks, topo.sms));
        }
        &mut samples[idx]
    }

    /// Finalize into the report. Panics if the run never finished (the
    /// chip loop delivers `on_finish` only on a clean run).
    pub fn into_report(mut self) -> ChipTelemetryReport {
        let cycles = self.cycles.expect("chip run not finished: into_report before on_finish");
        let topo = self.topo.expect("no topology: sink was never attached");
        let n = cycles.div_ceil(self.interval).max(1) as usize;
        while self.samples.len() < n {
            self.samples.push(ChipIntervalSample::empty(topo.l2_banks, topo.sms));
        }
        // DRAM busy spans may extend past the final cycle; fold the tail
        // into the last interval so the samples partition [0, cycles).
        if self.samples.len() > n {
            let tail = self.samples.split_off(n);
            let last = self.samples.last_mut().expect("n >= 1");
            for t in &tail {
                last.absorb(t);
            }
        }
        for (i, s) in self.samples.iter_mut().enumerate() {
            s.start = i as u64 * self.interval;
            s.end = ((i as u64 + 1) * self.interval).min(cycles);
        }
        ChipTelemetryReport {
            sms: topo.sms,
            banks: topo.l2_banks,
            line_bytes: topo.line_bytes,
            mshrs: topo.mshrs,
            cycles_per_line_q: topo.cycles_per_line_q,
            interval: self.interval,
            cycles,
            interference: self.interference,
            intervals: self.samples,
        }
    }
}

impl ChipTelemetrySink for ChipTelemetryCollector {
    fn on_start(&mut self, topo: &ChipTopology) {
        self.topo = Some(*topo);
        self.interference = vec![0; topo.sms * topo.sms];
    }

    fn on_request(&mut self, ev: &ChipRequestEvent) {
        let topo = self.topo.expect("chip event before on_start");
        let sms = topo.sms;
        // Gauge sweeps over the global heaps (spans cross intervals).
        let mshr_depth = ev.mshr_wait_aggressor.map(|_| {
            while self.mshr_q.peek().is_some_and(|&Reverse(end)| end <= ev.slot) {
                self.mshr_q.pop();
            }
            self.mshr_q.push(Reverse(ev.start));
            self.mshr_q.len() as u64
        });
        while self.noc_q.peek().is_some_and(|&Reverse(end)| end <= ev.arrival) {
            self.noc_q.pop();
        }
        self.noc_q.push(Reverse(ev.ready));
        let noc_depth = self.noc_q.len() as u64;
        let idx = (ev.arrival / self.interval) as usize;
        let s = Self::sample_at(&mut self.samples, &topo, idx);
        s.requests += 1;
        s.bank_conflict_cycles += ev.slot - ev.arrival;
        let bank = ev.bank as usize;
        if ev.merged {
            s.mshr_merges += 1;
        } else if ev.l2_hit {
            s.bank_hits[bank] += 1;
        } else {
            s.bank_misses[bank] += 1;
        }
        if let Some(victim) = ev.evicted_victim {
            s.bank_evictions[bank] += 1;
            s.interference[victim as usize * sms + ev.sm as usize] += 1;
        }
        if let Some(aggressor) = ev.mshr_wait_aggressor {
            s.mshr_waits += 1;
            s.interference[ev.sm as usize * sms + aggressor as usize] += 1;
        }
        s.mshr_occupancy_hwm = s.mshr_occupancy_hwm.max(ev.mshrs_in_use);
        if let Some(d) = mshr_depth {
            s.mshr_queue_hwm = s.mshr_queue_hwm.max(d);
        }
        s.noc_inflight_hwm = s.noc_inflight_hwm.max(noc_depth);
        if let Some(d) = ev.dram {
            s.dram_lines += 1;
            s.dram_bytes += topo.line_bytes;
            s.dram_queue_cycles += d.queue_cycles;
        }
        // Whole-run matrix mirrors the per-interval charges.
        if let Some(victim) = ev.evicted_victim {
            self.interference[victim as usize * sms + ev.sm as usize] += 1;
        }
        if let Some(aggressor) = ev.mshr_wait_aggressor {
            self.interference[ev.sm as usize * sms + aggressor as usize] += 1;
        }
        // Apportion the DRAM busy span exactly across interval windows.
        if let Some(d) = ev.dram {
            let span_q = self.interval * CHIP_TIME_Q;
            let mut from = d.busy_from_q;
            while from < d.busy_to_q {
                let idx = (from / span_q) as usize;
                let to = d.busy_to_q.min((idx as u64 + 1) * span_q);
                Self::sample_at(&mut self.samples, &topo, idx).dram_busy_q += to - from;
                from = to;
            }
        }
    }

    fn on_finish(&mut self, cycles: u64) {
        self.cycles = Some(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::ChipDramCharge;

    fn topo() -> ChipTopology {
        ChipTopology {
            sms: 2,
            l2_banks: 2,
            line_bytes: 128,
            mshrs: 4,
            cycles_per_line_q: 2048,
            noc_latency: 8,
        }
    }

    fn hit(sm: u32, bank: u32, arrival: u64) -> ChipRequestEvent {
        ChipRequestEvent {
            sm,
            line: 0x1000,
            bank,
            arrival,
            slot: arrival,
            start: arrival,
            ready: arrival + 40,
            l2_hit: true,
            merged: false,
            evicted_victim: None,
            mshr_wait_aggressor: None,
            dram: None,
            mshrs_in_use: 0,
        }
    }

    #[test]
    fn intervals_partition_and_identity_holds() {
        let mut c = ChipTelemetryCollector::new(100);
        c.on_start(&topo());
        c.on_request(&hit(0, 0, 5));
        // A miss that evicts SM 0's line, requested by SM 1.
        let mut miss = hit(1, 1, 110);
        miss.l2_hit = false;
        miss.evicted_victim = Some(0);
        miss.dram = Some(ChipDramCharge {
            busy_from_q: 110 * CHIP_TIME_Q,
            busy_to_q: 112 * CHIP_TIME_Q,
            queue_cycles: 0,
        });
        c.on_request(&miss);
        // SM 0 queues for an MSHR behind SM 1's fill.
        let mut wait = hit(0, 0, 130);
        wait.l2_hit = false;
        wait.slot = 130;
        wait.start = 150;
        wait.mshr_wait_aggressor = Some(1);
        wait.dram = Some(ChipDramCharge {
            busy_from_q: 150 * CHIP_TIME_Q,
            busy_to_q: 152 * CHIP_TIME_Q,
            queue_cycles: 0,
        });
        c.on_request(&wait);
        c.on_finish(250);
        let r = c.into_report();
        assert_eq!(r.intervals.len(), 3);
        assert_eq!((r.intervals[0].start, r.intervals[0].end), (0, 100));
        assert_eq!((r.intervals[2].start, r.intervals[2].end), (200, 250));
        assert_eq!(r.intervals[0].bank_hits[0], 1);
        assert_eq!(r.intervals[1].bank_misses[1], 1);
        assert_eq!(r.intervals[1].bank_evictions[1], 1);
        // Eviction: victim 0, aggressor 1 → row 0; wait: victim 0, aggressor 1.
        assert_eq!(r.interference_at(0, 1), 2);
        assert_eq!(r.interference_at(1, 0), 0);
        r.check_identity(1, 2, 1, 1).expect("identity holds");
        // Wrong totals must be rejected.
        assert!(r.check_identity(1, 2, 1, 0).is_err());
    }

    #[test]
    fn dram_busy_apportions_across_interval_boundaries() {
        let mut c = ChipTelemetryCollector::new(100);
        c.on_start(&topo());
        let mut miss = hit(0, 0, 95);
        miss.l2_hit = false;
        miss.dram = Some(ChipDramCharge {
            busy_from_q: 95 * CHIP_TIME_Q,
            busy_to_q: 105 * CHIP_TIME_Q,
            queue_cycles: 0,
        });
        c.on_request(&miss);
        c.on_finish(200);
        let r = c.into_report();
        assert_eq!(r.intervals[0].dram_busy_q, 5 * CHIP_TIME_Q);
        assert_eq!(r.intervals[1].dram_busy_q, 5 * CHIP_TIME_Q);
        let total: u64 = r.intervals.iter().map(|s| s.dram_busy_q).sum();
        assert_eq!(total, 10 * CHIP_TIME_Q);
        assert!((r.intervals[0].dram_utilization() - 0.05).abs() < 1e-12);
        r.check_identity(0, 1, 0, 0).expect("identity holds");
    }

    #[test]
    fn busy_tail_past_final_cycle_folds_into_last_interval() {
        let mut c = ChipTelemetryCollector::new(100);
        c.on_start(&topo());
        let mut miss = hit(0, 0, 90);
        miss.l2_hit = false;
        // Busy span runs to cycle 230 but the chip finishes at 150.
        miss.dram = Some(ChipDramCharge {
            busy_from_q: 90 * CHIP_TIME_Q,
            busy_to_q: 230 * CHIP_TIME_Q,
            queue_cycles: 0,
        });
        c.on_request(&miss);
        c.on_finish(150);
        let r = c.into_report();
        assert_eq!(r.intervals.len(), 2, "samples must partition [0, cycles)");
        assert_eq!(r.intervals[1].end, 150);
        let total: u64 = r.intervals.iter().map(|s| s.dram_busy_q).sum();
        assert_eq!(total, 140 * CHIP_TIME_Q, "no busy time may be dropped");
    }

    #[test]
    fn queue_depth_high_water_tracks_overlapping_waiters() {
        let mut c = ChipTelemetryCollector::new(1000);
        c.on_start(&topo());
        for i in 0..3u64 {
            let mut w = hit(0, 0, 10 + i);
            w.l2_hit = false;
            w.slot = 10 + i;
            w.start = 500; // all three wait until cycle 500
            w.mshr_wait_aggressor = Some(1);
            c.on_request(&w);
        }
        // A fourth waiter after the first three were served.
        let mut w = hit(0, 0, 600);
        w.l2_hit = false;
        w.slot = 600;
        w.start = 700;
        w.mshr_wait_aggressor = Some(1);
        c.on_request(&w);
        c.on_finish(1000);
        let r = c.into_report();
        assert_eq!(r.intervals[0].mshr_queue_hwm, 3, "three simultaneous waiters");
        assert_eq!(r.intervals[0].mshr_waits, 4);
    }
}
