//! Chrome trace-event JSON export.
//!
//! Emits the [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! JSON that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly. The mapping:
//!
//! - one **process** (`pid`) per simulation cell, named after the cell;
//! - one **thread** (`tid`) per warp, named `warp N`;
//! - one `"X"` (complete duration) event per merged stall span, with the
//!   bucket label as the event name and one simulated cycle = 1 µs of
//!   trace time (`ts`/`dur` are in µs in the format);
//! - a `"C"` (counter) event per sampling interval carrying the window's
//!   SIMD efficiency, so the timeline shows an efficiency track above the
//!   warp lanes;
//! - an `"i"` (instant) marker at the cell's final cycle.
//!
//! Everything goes through the simulator's [`JsonBuf`] emitter — no
//! serialization dependency.

use crate::collector::TelemetryReport;
use drs_sim::JsonBuf;

/// Append the trace events for one cell into an already-open JSON array
/// (the `"traceEvents"` list). `pid` distinguishes cells sharing a file.
pub fn write_cell_events(j: &mut JsonBuf, pid: u64, cell_name: &str, report: &TelemetryReport) {
    // Process / thread naming metadata.
    metadata(j, pid, None, "process_name", cell_name);
    for w in 0..report.warps {
        metadata(j, pid, Some(w as u64), "thread_name", &format!("warp {w}"));
    }
    if let Some(trace) = &report.trace {
        for s in &trace.spans {
            j.begin_obj();
            j.kv_str("name", s.bucket.label());
            j.kv_str("cat", "stall");
            j.kv_str("ph", "X");
            j.kv_u64("pid", pid);
            j.kv_u64("tid", s.warp as u64);
            j.kv_u64("ts", s.start);
            j.kv_u64("dur", s.len);
            j.end_obj();
        }
    }
    for s in &report.intervals {
        j.begin_obj();
        j.kv_str("name", "simd_efficiency");
        j.kv_str("ph", "C");
        j.kv_u64("pid", pid);
        j.kv_u64("ts", s.start);
        j.key("args");
        j.begin_obj();
        j.kv_f64("efficiency", s.simd_efficiency());
        j.end_obj();
        j.end_obj();
    }
    j.begin_obj();
    j.kv_str("name", "kernel end");
    j.kv_str("ph", "i");
    j.kv_str("s", "p");
    j.kv_u64("pid", pid);
    j.kv_u64("tid", 0);
    j.kv_u64("ts", report.cycles);
    j.end_obj();
}

fn metadata(j: &mut JsonBuf, pid: u64, tid: Option<u64>, what: &str, name: &str) {
    j.begin_obj();
    j.kv_str("name", what);
    j.kv_str("ph", "M");
    j.kv_u64("pid", pid);
    if let Some(t) = tid {
        j.kv_u64("tid", t);
    }
    j.key("args");
    j.begin_obj();
    j.kv_str("name", name);
    j.end_obj();
    j.end_obj();
}

/// Build a complete Chrome trace JSON document from named cell reports.
/// Cells become processes in pid order.
pub fn trace_json<'a, I>(cells: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a TelemetryReport)>,
{
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.kv_str("displayTimeUnit", "ms");
    j.key("traceEvents");
    j.begin_arr();
    for (pid, (name, report)) in cells.into_iter().enumerate() {
        write_cell_events(&mut j, pid as u64, name, report);
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{IntervalSample, StallSpan, TraceData};
    use drs_sim::StallBucket;

    fn tiny_report() -> TelemetryReport {
        let mut issued = drs_sim::ActiveHistogram::default();
        issued.record(32);
        issued.record(8);
        TelemetryReport {
            warps: 2,
            cycles: 4,
            interval: 4,
            totals: [2, 0, 0, 0, 2, 0, 2, 2],
            intervals: vec![IntervalSample {
                start: 0,
                end: 4,
                issued,
                ..IntervalSample::default()
            }],
            trace: Some(TraceData {
                spans: vec![
                    StallSpan { warp: 0, bucket: StallBucket::Issued, start: 0, len: 2 },
                    StallSpan { warp: 1, bucket: StallBucket::Idle, start: 0, len: 4 },
                ],
                dropped: 0,
            }),
        }
    }

    #[test]
    fn document_parses_and_has_expected_events() {
        let r = tiny_report();
        let text = trace_json([("fig2/aila", &r)]);
        let summary = crate::check::validate_chrome_trace(&text).unwrap();
        // 1 process_name + 2 thread_name metadata, 2 spans, 1 counter, 1 instant.
        assert_eq!(summary.metadata_events, 3);
        assert_eq!(summary.duration_events, 2);
        assert_eq!(summary.counter_events, 1);
        assert_eq!(summary.instant_events, 1);
        assert_eq!(summary.pids, vec![0]);
    }

    #[test]
    fn multiple_cells_get_distinct_pids() {
        let r = tiny_report();
        let text = trace_json([("a", &r), ("b", &r)]);
        let summary = crate::check::validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.pids, vec![0, 1]);
        assert_eq!(summary.duration_events, 4);
    }

    #[test]
    fn report_without_trace_still_exports_counters() {
        let r = TelemetryReport { trace: None, ..tiny_report() };
        let text = trace_json([("counters only", &r)]);
        let summary = crate::check::validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.duration_events, 0);
        assert_eq!(summary.counter_events, 1);
    }
}
