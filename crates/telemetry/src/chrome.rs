//! Chrome trace-event JSON export.
//!
//! Emits the [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! JSON that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly. The mapping:
//!
//! - one **process** (`pid`) per simulation cell, named after the cell;
//! - one **thread** (`tid`) per warp, named `warp N`;
//! - one `"X"` (complete duration) event per merged stall span, with the
//!   bucket label as the event name and one simulated cycle = 1 µs of
//!   trace time (`ts`/`dur` are in µs in the format);
//! - a `"C"` (counter) event per sampling interval carrying the window's
//!   SIMD efficiency, so the timeline shows an efficiency track above the
//!   warp lanes;
//! - an `"i"` (instant) marker at the cell's final cycle.
//!
//! Chip cells additionally get memory-system rows via
//! [`write_chip_events`]: one process per L2 bank (per-interval
//! hit/miss/eviction counters) and one for the DRAM channel, MSHR pool
//! and NoC gauges — alongside the per-warp rows of each SM's report.
//! [`TraceBuilder`] assembles mixed documents with sequential pids.
//!
//! Everything goes through the simulator's [`JsonBuf`] emitter — no
//! serialization dependency.

use crate::chip::ChipTelemetryReport;
use crate::collector::TelemetryReport;
use drs_sim::JsonBuf;

/// Append the trace events for one cell into an already-open JSON array
/// (the `"traceEvents"` list). `pid` distinguishes cells sharing a file.
pub fn write_cell_events(j: &mut JsonBuf, pid: u64, cell_name: &str, report: &TelemetryReport) {
    // Process / thread naming metadata.
    metadata(j, pid, None, "process_name", cell_name);
    for w in 0..report.warps {
        metadata(j, pid, Some(w as u64), "thread_name", &format!("warp {w}"));
    }
    if let Some(trace) = &report.trace {
        for s in &trace.spans {
            j.begin_obj();
            j.kv_str("name", s.bucket.label());
            j.kv_str("cat", "stall");
            j.kv_str("ph", "X");
            j.kv_u64("pid", pid);
            j.kv_u64("tid", s.warp as u64);
            j.kv_u64("ts", s.start);
            j.kv_u64("dur", s.len);
            j.end_obj();
        }
    }
    for s in &report.intervals {
        j.begin_obj();
        j.kv_str("name", "simd_efficiency");
        j.kv_str("ph", "C");
        j.kv_u64("pid", pid);
        j.kv_u64("ts", s.start);
        j.key("args");
        j.begin_obj();
        j.kv_f64("efficiency", s.simd_efficiency());
        j.end_obj();
        j.end_obj();
    }
    j.begin_obj();
    j.kv_str("name", "kernel end");
    j.kv_str("ph", "i");
    j.kv_str("s", "p");
    j.kv_u64("pid", pid);
    j.kv_u64("tid", 0);
    j.kv_u64("ts", report.cycles);
    j.end_obj();
}

/// Append the chip memory-system rows for one chip cell: one process per
/// L2 bank carrying that bank's per-interval hit/miss/eviction counters,
/// plus one process with DRAM (bytes, utilization), MSHR (occupancy and
/// exhaustion-queue high-waters, waits, merges) and NoC (in-flight
/// high-water) counter tracks and a `"i"` end marker. Returns the number
/// of pids consumed (`banks + 1`).
pub fn write_chip_events(
    j: &mut JsonBuf,
    pid_base: u64,
    cell_name: &str,
    report: &ChipTelemetryReport,
) -> u64 {
    for b in 0..report.banks {
        let pid = pid_base + b as u64;
        metadata(j, pid, None, "process_name", &format!("{cell_name}/L2 bank {b}"));
        for s in &report.intervals {
            j.begin_obj();
            j.kv_str("name", "l2_bank");
            j.kv_str("ph", "C");
            j.kv_u64("pid", pid);
            j.kv_u64("ts", s.start);
            j.key("args");
            j.begin_obj();
            j.kv_u64("hits", s.bank_hits[b]);
            j.kv_u64("misses", s.bank_misses[b]);
            j.kv_u64("evictions", s.bank_evictions[b]);
            j.end_obj();
            j.end_obj();
        }
    }
    let pid = pid_base + report.banks as u64;
    metadata(j, pid, None, "process_name", &format!("{cell_name}/DRAM+MSHR"));
    for s in &report.intervals {
        counter(j, pid, s.start, "dram", &[("bytes", s.dram_bytes as f64)]);
        counter(j, pid, s.start, "dram_utilization", &[("utilization", s.dram_utilization())]);
        counter(
            j,
            pid,
            s.start,
            "mshr",
            &[
                ("occupancy_hwm", s.mshr_occupancy_hwm as f64),
                ("queue_hwm", s.mshr_queue_hwm as f64),
                ("waits", s.mshr_waits as f64),
                ("merges", s.mshr_merges as f64),
            ],
        );
        counter(j, pid, s.start, "noc", &[("inflight_hwm", s.noc_inflight_hwm as f64)]);
    }
    j.begin_obj();
    j.kv_str("name", "chip end");
    j.kv_str("ph", "i");
    j.kv_str("s", "p");
    j.kv_u64("pid", pid);
    j.kv_u64("tid", 0);
    j.kv_u64("ts", report.cycles);
    j.end_obj();
    report.banks as u64 + 1
}

fn counter(j: &mut JsonBuf, pid: u64, ts: u64, name: &str, args: &[(&str, f64)]) {
    j.begin_obj();
    j.kv_str("name", name);
    j.kv_str("ph", "C");
    j.kv_u64("pid", pid);
    j.kv_u64("ts", ts);
    j.key("args");
    j.begin_obj();
    for &(k, v) in args {
        j.kv_f64(k, v);
    }
    j.end_obj();
    j.end_obj();
}

fn metadata(j: &mut JsonBuf, pid: u64, tid: Option<u64>, what: &str, name: &str) {
    j.begin_obj();
    j.kv_str("name", what);
    j.kv_str("ph", "M");
    j.kv_u64("pid", pid);
    if let Some(t) = tid {
        j.kv_u64("tid", t);
    }
    j.key("args");
    j.begin_obj();
    j.kv_str("name", name);
    j.end_obj();
    j.end_obj();
}

/// Build a complete Chrome trace JSON document from named cell reports.
/// Cells become processes in pid order.
pub fn trace_json<'a, I>(cells: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a TelemetryReport)>,
{
    let mut b = TraceBuilder::new();
    for (name, report) in cells {
        b.add_cell(name, report);
    }
    b.finish()
}

/// Incremental Chrome-trace assembly for documents mixing per-warp cell
/// rows and chip memory-system rows, allocating process ids sequentially
/// (one per cell, `banks + 1` per chip report).
pub struct TraceBuilder {
    j: JsonBuf,
    pid: u64,
}

impl TraceBuilder {
    /// Open an empty trace document.
    pub fn new() -> TraceBuilder {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.kv_str("displayTimeUnit", "ms");
        j.key("traceEvents");
        j.begin_arr();
        TraceBuilder { j, pid: 0 }
    }

    /// Append one cell's per-warp rows (see [`write_cell_events`]).
    pub fn add_cell(&mut self, name: &str, report: &TelemetryReport) {
        write_cell_events(&mut self.j, self.pid, name, report);
        self.pid += 1;
    }

    /// Append one chip cell's memory-system rows (see
    /// [`write_chip_events`]).
    pub fn add_chip(&mut self, name: &str, report: &ChipTelemetryReport) {
        self.pid += write_chip_events(&mut self.j, self.pid, name, report);
    }

    /// Close the document and return the JSON text.
    pub fn finish(mut self) -> String {
        self.j.end_arr();
        self.j.end_obj();
        self.j.finish()
    }
}

impl Default for TraceBuilder {
    fn default() -> TraceBuilder {
        TraceBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{IntervalSample, StallSpan, TraceData};
    use drs_sim::StallBucket;

    fn tiny_report() -> TelemetryReport {
        let mut issued = drs_sim::ActiveHistogram::default();
        issued.record(32);
        issued.record(8);
        TelemetryReport {
            warps: 2,
            cycles: 4,
            interval: 4,
            totals: [2, 0, 0, 0, 2, 0, 2, 2],
            intervals: vec![IntervalSample {
                start: 0,
                end: 4,
                issued,
                ..IntervalSample::default()
            }],
            trace: Some(TraceData {
                spans: vec![
                    StallSpan { warp: 0, bucket: StallBucket::Issued, start: 0, len: 2 },
                    StallSpan { warp: 1, bucket: StallBucket::Idle, start: 0, len: 4 },
                ],
                dropped: 0,
            }),
        }
    }

    #[test]
    fn document_parses_and_has_expected_events() {
        let r = tiny_report();
        let text = trace_json([("fig2/aila", &r)]);
        let summary = crate::check::validate_chrome_trace(&text).unwrap();
        // 1 process_name + 2 thread_name metadata, 2 spans, 1 counter, 1 instant.
        assert_eq!(summary.metadata_events, 3);
        assert_eq!(summary.duration_events, 2);
        assert_eq!(summary.counter_events, 1);
        assert_eq!(summary.instant_events, 1);
        assert_eq!(summary.pids, vec![0]);
    }

    #[test]
    fn multiple_cells_get_distinct_pids() {
        let r = tiny_report();
        let text = trace_json([("a", &r), ("b", &r)]);
        let summary = crate::check::validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.pids, vec![0, 1]);
        assert_eq!(summary.duration_events, 4);
    }

    #[test]
    fn report_without_trace_still_exports_counters() {
        let r = TelemetryReport { trace: None, ..tiny_report() };
        let text = trace_json([("counters only", &r)]);
        let summary = crate::check::validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.duration_events, 0);
        assert_eq!(summary.counter_events, 1);
    }
}
