//! A minimal recursive-descent JSON reader used to *validate* emitted
//! artifacts (std-only, like the emitter it checks).
//!
//! This is deliberately not a general-purpose parser: it exists so the
//! test suite and CI smoke can prove that every trace/timeline file the
//! telemetry layer writes is well-formed JSON with the schema Chrome's
//! trace viewer expects, without adding a serde dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are unique; duplicate keys are a parse error
    /// because the emitter never produces them.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting [`parse`] accepts. The parser recurses once
/// per `[`/`{`, so adversarial input like a million open brackets would
/// otherwise overflow the stack; past this depth it returns a typed
/// [`ParseError`] instead. Every document the emitters produce nests a
/// handful of levels — far below the limit.
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] (byte offset + reason) for any malformed
/// input, including duplicate object keys and container nesting deeper
/// than [`MAX_DEPTH`] — never a panic or stack overflow.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    /// Guard one level of container recursion; the matching decrement is
    /// in `object`/`array` on every return path.
    fn descend(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("containers nested deeper than the supported maximum"));
        }
        self.depth += 1;
        Ok(())
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.descend()?;
        let v = self.object_body();
        self.depth -= 1;
        v
    }

    fn object_body(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key, val).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.descend()?;
        let v = self.array_body();
        self.depth -= 1;
        v
    }

    fn array_body(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // The emitter only writes \u for C0 controls, so
                            // surrogate pairs are out of scope — reject them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // byte boundaries are safe to rediscover).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { at: start, msg: format!("bad number '{text}'") })
    }
}

/// Event counts found by [`validate_chrome_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `"M"` metadata events.
    pub metadata_events: usize,
    /// `"X"` complete-duration events (stall spans).
    pub duration_events: usize,
    /// `"C"` counter events (SIMD-efficiency samples).
    pub counter_events: usize,
    /// `"i"` instant markers.
    pub instant_events: usize,
    /// Distinct process ids, sorted.
    pub pids: Vec<u64>,
}

/// Parse `text` and check it is a Chrome trace-event document this crate's
/// writer could have produced: a top-level object with a `traceEvents`
/// array whose members each carry a `ph` phase and `pid`, with `"X"`
/// events additionally carrying numeric `tid`/`ts`/`dur` and a name.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing 'traceEvents' key")?
        .as_arr()
        .ok_or("'traceEvents' is not an array")?;
    let mut summary = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("traceEvents[{i}]: {field}");
        let ph = ev.get("ph").and_then(Value::as_str).ok_or_else(|| ctx("missing string 'ph'"))?;
        let pid =
            ev.get("pid").and_then(Value::as_num).ok_or_else(|| ctx("missing numeric 'pid'"))?
                as u64;
        if !summary.pids.contains(&pid) {
            summary.pids.push(pid);
        }
        match ph {
            "M" => summary.metadata_events += 1,
            "X" => {
                for field in ["tid", "ts", "dur"] {
                    ev.get(field)
                        .and_then(Value::as_num)
                        .ok_or_else(|| ctx(&format!("'X' event missing numeric '{field}'")))?;
                }
                ev.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ctx("'X' event missing 'name'"))?;
                summary.duration_events += 1;
            }
            "C" => {
                ev.get("args").ok_or_else(|| ctx("'C' event missing 'args'"))?;
                summary.counter_events += 1;
            }
            "i" => summary.instant_events += 1,
            other => return Err(ctx(&format!("unknown phase '{other}'"))),
        }
    }
    summary.pids.sort_unstable();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parses_empty_containers_and_unicode() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse(r#""Ané""#).unwrap().as_str(), Some("Ané"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "12 34", "{\"a\":1}x", "nul"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        // Duplicate keys are a bug in our emitter.
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn nesting_is_bounded_by_a_typed_error_not_the_stack() {
        // Right at the limit parses; one past it is a ParseError. A
        // million unclosed brackets must not overflow the stack either.
        let deep = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        assert!(parse(&deep(MAX_DEPTH)).is_ok());
        let err = parse(&deep(MAX_DEPTH + 1)).unwrap_err();
        assert!(err.msg.contains("nested deeper"), "{err}");
        assert!(parse(&"[".repeat(1_000_000)).is_err());
        let objs = format!("{}0{}", "{\"k\":".repeat(MAX_DEPTH + 1), "}".repeat(MAX_DEPTH + 1));
        assert!(parse(&objs).unwrap_err().msg.contains("nested deeper"));
        // Depth is container nesting, not document length: a wide flat
        // array is fine.
        assert!(parse(&format!("[{}1]", "1,".repeat(10_000))).is_ok());
    }

    #[test]
    fn roundtrips_the_emitter() {
        let mut j = drs_sim::JsonBuf::new();
        j.begin_obj();
        j.kv_str("s", "quote\" nl\n ctrl\u{1}");
        j.kv_f64("f", 0.25);
        j.kv_f64("nan", f64::NAN);
        j.end_obj();
        let v = parse(&j.finish()).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("quote\" nl\n ctrl\u{1}"));
        assert_eq!(v.get("f").unwrap().as_num(), Some(0.25));
        assert_eq!(v.get("nan"), Some(&Value::Null));
    }

    #[test]
    fn trace_validation_rejects_schema_violations() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":1}"#).is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"pid":0}]}"#).is_err());
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":0}]}"#)
                .is_err(),
            "X without dur must fail"
        );
        let ok = validate_chrome_trace(
            r#"{"traceEvents":[{"name":"issued","ph":"X","pid":0,"tid":1,"ts":5,"dur":2}]}"#,
        )
        .unwrap();
        assert_eq!(ok.duration_events, 1);
        assert_eq!(ok.pids, vec![0]);
    }
}
