//! Telemetry collectors for the cycle-level simulator.
//!
//! The simulator (`drs-sim`) defines the observation contract — an
//! attachable [`TelemetrySink`](drs_sim::TelemetrySink) receiving a
//! per-cycle [`StallBucket`](drs_sim::StallBucket) charge for every warp
//! plus live counter snapshots. This crate supplies the collectors that
//! turn that stream into artifacts:
//!
//! - [`TelemetryCollector`] — the standard sink: whole-run stall-bucket
//!   totals, a timeline of [`IntervalSample`] counter deltas at a
//!   configurable window, and (optionally) merged per-warp stall spans.
//! - [`ChipTelemetryCollector`] — the full-chip counterpart, consuming
//!   the shared memory system's
//!   [`ChipTelemetrySink`](drs_sim::ChipTelemetrySink) request stream:
//!   per-bank L2 / MSHR / DRAM / NoC interval series plus the per-interval
//!   cross-SM interference matrix and its accounting identity.
//! - [`chrome`] — exports a report as Chrome trace-event JSON, loadable
//!   in `chrome://tracing` or Perfetto (one process per cell, one thread
//!   per warp, one duration event per stall span).
//! - [`check`] — a minimal std-only JSON reader used by tests and CI to
//!   validate that emitted artifacts parse and match the expected schema.
//!
//! ```
//! use drs_telemetry::{TelemetryCollector, TelemetryConfig};
//!
//! let mut collector = TelemetryCollector::new(TelemetryConfig {
//!     interval: 500,
//!     trace: true,
//!     ..TelemetryConfig::default()
//! });
//! // let mut sim = Simulation::new(...);
//! // sim.attach_telemetry(&mut collector);
//! // let stats = sim.run()?;
//! // let report = collector.into_report();
//! // report.check_identity().unwrap();
//! ```

#![warn(missing_docs)]

pub mod check;
mod chip;
pub mod chrome;
mod collector;

pub use chip::{ChipIntervalSample, ChipTelemetryCollector, ChipTelemetryReport};
pub use collector::{
    IntervalSample, StallSpan, TelemetryCollector, TelemetryConfig, TelemetryReport, TraceData,
};
