//! The standard [`TelemetrySink`] implementation: stall-bucket totals,
//! interval-sliced timelines, and (optionally) per-warp state spans for
//! Chrome-trace export.

use drs_sim::{ActiveHistogram, CycleSnapshot, StallBucket, TelemetrySink, NUM_STALL_BUCKETS};

/// What to collect while a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Timeline sampling window in cycles. Every `interval` cycles the
    /// collector closes an [`IntervalSample`] of counter deltas.
    pub interval: u64,
    /// Record per-warp stall spans for Chrome-trace export. Off by default
    /// because span storage grows with run length.
    pub trace: bool,
    /// Hard cap on stored trace spans; beyond it spans are counted as
    /// dropped instead of stored, so a pathological run cannot exhaust
    /// memory.
    pub max_trace_events: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig { interval: 1000, trace: false, max_trace_events: 1 << 20 }
    }
}

/// Counter deltas over one sampling window `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalSample {
    /// First cycle of the window.
    pub start: u64,
    /// One past the last cycle of the window.
    pub end: u64,
    /// Instructions issued during the window (ordinary).
    pub issued: ActiveHistogram,
    /// Spawn-overhead (SI) instructions issued during the window.
    pub issued_si: ActiveHistogram,
    /// Warp-cycles charged to each stall bucket during the window.
    pub buckets: [u64; NUM_STALL_BUCKETS],
    /// Coalesced memory transactions during the window.
    pub mem_transactions: u64,
    /// Rays completed during the window.
    pub rays_completed: u64,
}

impl IntervalSample {
    /// Window width in cycles.
    pub fn width(&self) -> u64 {
        self.end - self.start
    }

    /// Combined (normal + SI) issue histogram for the window.
    pub fn issued_all(&self) -> ActiveHistogram {
        let mut h = self.issued;
        h.merge(&self.issued_si);
        h
    }

    /// SIMD efficiency over this window alone (0 when nothing issued).
    pub fn simd_efficiency(&self) -> f64 {
        self.issued_all().simd_efficiency()
    }
}

/// One merged run of consecutive cycles a warp spent in a single bucket —
/// the unit the Chrome-trace writer turns into a duration event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallSpan {
    /// Warp index within the SMX.
    pub warp: u32,
    /// The bucket charged for every cycle of the span.
    pub bucket: StallBucket,
    /// First cycle of the span.
    pub start: u64,
    /// Span length in cycles (≥ 1).
    pub len: u64,
}

/// Recorded per-warp spans plus how many were discarded at the cap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Merged stall spans, in close order.
    pub spans: Vec<StallSpan>,
    /// Spans discarded after `max_trace_events` was reached.
    pub dropped: u64,
}

/// Everything one instrumented run produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Resident warps attributed each cycle.
    pub warps: usize,
    /// Total simulated cycles observed.
    pub cycles: u64,
    /// Sampling window the intervals were sliced at.
    pub interval: u64,
    /// Whole-run warp-cycle totals per stall bucket.
    pub totals: [u64; NUM_STALL_BUCKETS],
    /// Timeline of counter deltas, one per window (last may be partial).
    pub intervals: Vec<IntervalSample>,
    /// Per-warp stall spans, when tracing was enabled.
    pub trace: Option<TraceData>,
}

impl TelemetryReport {
    /// The accounting identity: every warp-cycle lands in exactly one
    /// bucket, globally and within every interval. Returns a description
    /// of the first violation, if any.
    pub fn check_identity(&self) -> Result<(), String> {
        let total: u64 = self.totals.iter().sum();
        let expect = self.cycles * self.warps as u64;
        if total != expect {
            return Err(format!(
                "stall-bucket total {total} != cycles {} x warps {} = {expect}",
                self.cycles, self.warps
            ));
        }
        for s in &self.intervals {
            let got: u64 = s.buckets.iter().sum();
            let want = s.width() * self.warps as u64;
            if got != want {
                return Err(format!(
                    "interval [{}, {}): bucket sum {got} != width x warps = {want}",
                    s.start, s.end
                ));
            }
        }
        if let Some(last) = self.intervals.last() {
            if last.end != self.cycles {
                return Err(format!(
                    "intervals end at {} but the run has {} cycles",
                    last.end, self.cycles
                ));
            }
        }
        Ok(())
    }

    /// Issue-weighted mean of the per-interval SIMD efficiencies. Because
    /// the intervals partition the run, this equals the aggregate
    /// [`SimStats::simd_efficiency`](drs_sim::SimStats::simd_efficiency)
    /// up to floating-point rounding.
    pub fn weighted_simd_efficiency(&self) -> f64 {
        let mut active = 0u64;
        let mut total = 0u64;
        for s in &self.intervals {
            let h = s.issued_all();
            active += h.active_sum;
            total += h.total;
        }
        if total == 0 {
            return 0.0;
        }
        active as f64 / (total as f64 * 32.0)
    }

    /// Fraction of all warp-cycles charged to `bucket`.
    pub fn bucket_fraction(&self, bucket: StallBucket) -> f64 {
        let total: u64 = self.totals.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.totals[bucket as usize] as f64 / total as f64
    }

    /// Append this report as a JSON object (the timeline artifact format;
    /// the Chrome trace is a separate file, see [`crate::chrome`]).
    pub fn write_json(&self, j: &mut drs_sim::JsonBuf) {
        j.begin_obj();
        j.kv_u64("warps", self.warps as u64);
        j.kv_u64("cycles", self.cycles);
        j.kv_u64("interval", self.interval);
        j.key("stall_buckets");
        j.begin_obj();
        for b in StallBucket::ALL {
            j.kv_u64(b.label(), self.totals[b as usize]);
        }
        j.end_obj();
        j.kv_f64("weighted_simd_efficiency", self.weighted_simd_efficiency());
        j.key("intervals");
        j.begin_arr();
        for s in &self.intervals {
            j.begin_obj();
            j.kv_u64("start", s.start);
            j.kv_u64("end", s.end);
            j.kv_f64("simd_efficiency", s.simd_efficiency());
            j.key("issued");
            s.issued.write_json(j);
            j.key("issued_si");
            s.issued_si.write_json(j);
            j.key("buckets");
            j.begin_arr();
            for b in s.buckets {
                j.u64(b);
            }
            j.end_arr();
            j.kv_u64("mem_transactions", s.mem_transactions);
            j.kv_u64("rays_completed", s.rays_completed);
            j.end_obj();
        }
        j.end_arr();
        if let Some(t) = &self.trace {
            j.kv_u64("trace_spans", t.spans.len() as u64);
            j.kv_u64("trace_dropped", t.dropped);
        }
        j.end_obj();
    }
}

/// A [`TelemetrySink`] that accumulates a [`TelemetryReport`].
///
/// Attach with [`Simulation::attach_telemetry`](drs_sim::Simulation::attach_telemetry),
/// run, then take the report with [`TelemetryCollector::into_report`].
#[derive(Debug)]
pub struct TelemetryCollector {
    config: TelemetryConfig,
    report: TelemetryReport,
    /// Snapshot at the last closed interval boundary.
    prev: CycleSnapshot,
    /// Bucket counts accumulated inside the open interval.
    window_buckets: [u64; NUM_STALL_BUCKETS],
    /// First cycle of the open interval.
    window_start: u64,
    /// Per-warp open span: (bucket, start cycle). Grown on first cycle.
    open_spans: Vec<(StallBucket, u64)>,
    finished: bool,
}

impl TelemetryCollector {
    /// A collector for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.interval` is zero.
    pub fn new(config: TelemetryConfig) -> TelemetryCollector {
        assert!(config.interval > 0, "sampling interval must be positive");
        TelemetryCollector {
            report: TelemetryReport {
                interval: config.interval,
                trace: config.trace.then(TraceData::default),
                ..TelemetryReport::default()
            },
            config,
            prev: CycleSnapshot::default(),
            window_buckets: [0; NUM_STALL_BUCKETS],
            window_start: 0,
            open_spans: Vec::new(),
            finished: false,
        }
    }

    /// Close the open interval at `end` (exclusive) using `snap` as the
    /// right-edge counter state.
    fn close_interval(&mut self, end: u64, snap: &CycleSnapshot) {
        self.report.intervals.push(IntervalSample {
            start: self.window_start,
            end,
            issued: snap.issued.delta(&self.prev.issued),
            issued_si: snap.issued_si.delta(&self.prev.issued_si),
            buckets: self.window_buckets,
            mem_transactions: snap.mem_transactions - self.prev.mem_transactions,
            rays_completed: snap.rays_completed - self.prev.rays_completed,
        });
        self.prev = *snap;
        self.window_buckets = [0; NUM_STALL_BUCKETS];
        self.window_start = end;
    }

    fn push_span(&mut self, warp: u32, bucket: StallBucket, start: u64, end: u64) {
        let trace = self.report.trace.as_mut().expect("spans only tracked when tracing");
        if trace.spans.len() >= self.config.max_trace_events {
            trace.dropped += 1;
            return;
        }
        trace.spans.push(StallSpan { warp, bucket, start, len: end - start });
    }

    /// The accumulated report. Call after the simulation's `run` returned.
    ///
    /// # Panics
    ///
    /// Panics if the sink never saw `on_finish` — taking a report from a
    /// run that did not complete is a harness bug.
    pub fn into_report(self) -> TelemetryReport {
        assert!(self.finished, "into_report before the simulation finished");
        self.report
    }
}

impl TelemetrySink for TelemetryCollector {
    fn on_cycle(&mut self, snap: &CycleSnapshot, warp_buckets: &[StallBucket]) {
        if self.report.warps == 0 {
            self.report.warps = warp_buckets.len();
        }
        debug_assert_eq!(warp_buckets.len(), self.report.warps);
        for &b in warp_buckets {
            self.report.totals[b as usize] += 1;
            self.window_buckets[b as usize] += 1;
        }
        if self.config.trace {
            if self.open_spans.is_empty() {
                self.open_spans = warp_buckets.iter().map(|&b| (b, snap.cycle)).collect();
            } else {
                for (w, &next) in warp_buckets.iter().enumerate() {
                    let (cur, start) = self.open_spans[w];
                    if cur != next {
                        self.push_span(w as u32, cur, start, snap.cycle);
                        self.open_spans[w] = (next, snap.cycle);
                    }
                }
            }
        }
        if (snap.cycle + 1).is_multiple_of(self.config.interval) {
            self.close_interval(snap.cycle + 1, snap);
        }
    }

    /// Bulk charge for a fast-path span: `span` cycles starting at
    /// `snap.cycle` over which every warp's bucket and every counter are
    /// constant. Equivalent to `span` calls of
    /// [`on_cycle`](TelemetrySink::on_cycle) (the engine's A/B tests
    /// assert identical reports), but O(interval boundaries) instead of
    /// O(span × warps): totals and windows take `count × span` adds, open
    /// trace spans extend implicitly, and every interval boundary inside
    /// the span closes with the same snapshot — valid as the right-edge
    /// state precisely because the counters cannot change in a span no
    /// instruction issues in.
    fn on_cycles(&mut self, snap: &CycleSnapshot, warp_buckets: &[StallBucket], span: u64) {
        if span == 0 {
            return;
        }
        if self.report.warps == 0 {
            self.report.warps = warp_buckets.len();
        }
        debug_assert_eq!(warp_buckets.len(), self.report.warps);
        for &b in warp_buckets {
            self.report.totals[b as usize] += span;
        }
        if self.config.trace {
            if self.open_spans.is_empty() {
                self.open_spans = warp_buckets.iter().map(|&b| (b, snap.cycle)).collect();
            } else {
                for (w, &next) in warp_buckets.iter().enumerate() {
                    let (cur, start) = self.open_spans[w];
                    if cur != next {
                        self.push_span(w as u32, cur, start, snap.cycle);
                        self.open_spans[w] = (next, snap.cycle);
                    }
                }
            }
        }
        // Walk the interval boundaries covered by the span.
        let mut c = snap.cycle;
        let end = snap.cycle + span;
        while c < end {
            let boundary = (c / self.config.interval + 1) * self.config.interval;
            let chunk_end = boundary.min(end);
            let width = chunk_end - c;
            for &b in warp_buckets {
                self.window_buckets[b as usize] += width;
            }
            if chunk_end == boundary {
                self.close_interval(boundary, &CycleSnapshot { cycle: boundary - 1, ..*snap });
            }
            c = chunk_end;
        }
    }

    fn on_finish(&mut self, snap: &CycleSnapshot) {
        self.report.cycles = snap.cycle;
        if self.window_start < snap.cycle {
            self.close_interval(snap.cycle, snap);
        }
        if self.config.trace {
            let open = std::mem::take(&mut self.open_spans);
            for (w, (bucket, start)) in open.into_iter().enumerate() {
                self.push_span(w as u32, bucket, start, snap.cycle);
            }
        }
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a collector by hand: `warps` warps for `cycles` cycles, every
    /// warp issuing one 32-lane instruction per cycle.
    fn drive(config: TelemetryConfig, warps: usize, cycles: u64) -> TelemetryReport {
        let mut c = TelemetryCollector::new(config);
        let mut snap = CycleSnapshot::default();
        for cycle in 0..cycles {
            snap.cycle = cycle;
            for _ in 0..warps {
                snap.issued.record(32);
            }
            snap.mem_transactions += 2;
            c.on_cycle(&snap, &vec![StallBucket::Issued; warps]);
        }
        snap.cycle = cycles;
        c.on_finish(&snap);
        c.into_report()
    }

    #[test]
    fn intervals_partition_the_run() {
        let r = drive(TelemetryConfig { interval: 10, ..Default::default() }, 4, 35);
        assert_eq!(r.cycles, 35);
        assert_eq!(r.intervals.len(), 4, "three full windows plus one partial");
        assert_eq!(r.intervals[0].width(), 10);
        assert_eq!(r.intervals[3].width(), 5);
        assert_eq!(r.intervals[3].end, 35);
        r.check_identity().unwrap();
        for s in &r.intervals {
            assert_eq!(s.issued.total, s.width() * 4);
            assert_eq!(s.mem_transactions, 2 * s.width());
        }
    }

    #[test]
    fn exact_multiple_has_no_partial_tail() {
        let r = drive(TelemetryConfig { interval: 10, ..Default::default() }, 2, 30);
        assert_eq!(r.intervals.len(), 3);
        assert!(r.intervals.iter().all(|s| s.width() == 10));
        r.check_identity().unwrap();
    }

    #[test]
    fn weighted_efficiency_matches_uniform_run() {
        let r = drive(TelemetryConfig { interval: 7, ..Default::default() }, 4, 100);
        assert!((r.weighted_simd_efficiency() - 1.0).abs() < 1e-12);
        assert!((r.bucket_fraction(StallBucket::Issued) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_detects_corruption() {
        let mut r = drive(TelemetryConfig::default(), 2, 5);
        r.check_identity().unwrap();
        r.totals[0] += 1;
        assert!(r.check_identity().is_err());
    }

    #[test]
    fn spans_merge_consecutive_cycles() {
        let mut c = TelemetryCollector::new(TelemetryConfig { trace: true, ..Default::default() });
        let seq = [
            [StallBucket::Issued, StallBucket::Idle],
            [StallBucket::Issued, StallBucket::Idle],
            [StallBucket::MemoryPending, StallBucket::Idle],
            [StallBucket::MemoryPending, StallBucket::Issued],
        ];
        let mut snap = CycleSnapshot::default();
        for (cycle, buckets) in seq.iter().enumerate() {
            snap.cycle = cycle as u64;
            snap.issued.record(32);
            c.on_cycle(&snap, buckets);
        }
        snap.cycle = 4;
        c.on_finish(&snap);
        let trace = c.into_report().trace.unwrap();
        assert_eq!(trace.dropped, 0);
        // Warp 0: issued[0,2) + memory_pending[2,4). Warp 1: idle[0,3) + issued[3,4).
        assert_eq!(
            trace.spans,
            vec![
                StallSpan { warp: 0, bucket: StallBucket::Issued, start: 0, len: 2 },
                StallSpan { warp: 1, bucket: StallBucket::Idle, start: 0, len: 3 },
                StallSpan { warp: 0, bucket: StallBucket::MemoryPending, start: 2, len: 2 },
                StallSpan { warp: 1, bucket: StallBucket::Issued, start: 3, len: 1 },
            ]
        );
    }

    #[test]
    fn span_cap_counts_drops() {
        let mut c = TelemetryCollector::new(TelemetryConfig {
            trace: true,
            max_trace_events: 2,
            ..Default::default()
        });
        let mut snap = CycleSnapshot::default();
        // One warp alternating buckets every cycle: many spans.
        for cycle in 0..10u64 {
            snap.cycle = cycle;
            let b = if cycle % 2 == 0 { StallBucket::Issued } else { StallBucket::Idle };
            snap.issued.record(1);
            c.on_cycle(&snap, &[b]);
        }
        snap.cycle = 10;
        c.on_finish(&snap);
        let trace = c.into_report().trace.unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.dropped, 8);
    }

    /// The bulk fast-path charge must produce a report identical to the
    /// same cycles delivered one at a time — across interval boundaries,
    /// partial tails, and open trace spans.
    #[test]
    fn bulk_spans_match_per_cycle_delivery() {
        let config = TelemetryConfig { interval: 10, trace: true, ..Default::default() };
        // (buckets, span) segments with constant attribution, crossing
        // interval boundaries (spans 7+16 cross two) and ending mid-window.
        let segments: [(&[StallBucket], u64); 4] = [
            (&[StallBucket::Issued, StallBucket::Idle], 7),
            (&[StallBucket::MemoryPending, StallBucket::Idle], 16),
            (&[StallBucket::MemoryPending, StallBucket::Issued], 10),
            (&[StallBucket::Issued, StallBucket::Issued], 3),
        ];
        let total_cycles: u64 = segments.iter().map(|&(_, s)| s).sum();
        let run = |bulk: bool| {
            let mut c = TelemetryCollector::new(config);
            let mut snap = CycleSnapshot::default();
            let mut cycle = 0u64;
            for &(buckets, span) in &segments {
                // Counters move only at segment starts, as in a real
                // no-issue span.
                snap.issued.record(32);
                snap.mem_transactions += 1;
                snap.cycle = cycle;
                if bulk {
                    c.on_cycles(&snap, buckets, span);
                } else {
                    for i in 0..span {
                        snap.cycle = cycle + i;
                        c.on_cycle(&snap, buckets);
                    }
                }
                cycle += span;
            }
            snap.cycle = total_cycles;
            c.on_finish(&snap);
            c.into_report()
        };
        let bulk = run(true);
        let per_cycle = run(false);
        assert_eq!(bulk, per_cycle, "bulk and per-cycle delivery must agree exactly");
        bulk.check_identity().unwrap();
        assert_eq!(bulk.intervals.len(), 4, "three full windows plus a partial tail");
    }

    #[test]
    fn no_trace_by_default() {
        let r = drive(TelemetryConfig::default(), 1, 3);
        assert!(r.trace.is_none());
    }

    #[test]
    fn report_json_is_balanced() {
        let r = drive(TelemetryConfig { interval: 2, trace: true, ..Default::default() }, 2, 5);
        let mut j = drs_sim::JsonBuf::new();
        r.write_json(&mut j);
        let s = j.finish();
        assert!(s.contains("\"stall_buckets\""));
        assert!(s.contains("\"issued\":"));
        assert!(s.contains("\"trace_spans\""));
        assert_eq!(s.matches(['{', '[']).count(), s.matches(['}', ']']).count());
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        TelemetryCollector::new(TelemetryConfig { interval: 0, ..Default::default() });
    }

    #[test]
    #[should_panic]
    fn report_requires_finish() {
        TelemetryCollector::new(TelemetryConfig::default()).into_report();
    }
}
