//! Randomized round-trip and adversarial-input properties for the
//! std-only JSON reader in `check`.
//!
//! The reader exists to validate documents the `JsonBuf` emitter wrote,
//! and — since the experiment service — to parse untrusted protocol
//! lines from clients. Both roles get a property here:
//!
//! 1. **Fixpoint**: for arbitrary generated values, `emit → parse →
//!    emit` reproduces the first emission byte for byte, and the parsed
//!    value equals the generated one. This is the property the result
//!    store's byte-identity guarantee leans on (stored f64s must
//!    round-trip exactly).
//! 2. **Adversarial**: deep nesting, truncated escapes, duplicate keys,
//!    random truncations, and random byte flips all produce a typed
//!    `ParseError` — never a panic, hang, or stack overflow.
//!
//! Deterministically seeded (a fixed xorshift stream), so failures
//! reproduce exactly; no external property-testing crate is involved.

use drs_sim::JsonBuf;
use drs_telemetry::check::{self, Value};
use std::collections::BTreeMap;

/// xorshift64 — tiny, deterministic, good enough to drive generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emit a `Value` the way the telemetry writers would: `JsonBuf` for all
/// formatting (escaping, shortest-round-trip floats), object keys in
/// their `BTreeMap` order so emission is a pure function of the value.
fn emit_into(v: &Value, j: &mut JsonBuf) {
    match v {
        // JsonBuf has no null primitive; non-finite f64s emit `null`.
        Value::Null => j.f64(f64::NAN),
        Value::Bool(b) => j.bool(*b),
        Value::Num(n) => j.f64(*n),
        Value::Str(s) => j.str(s),
        Value::Arr(items) => {
            j.begin_arr();
            for item in items {
                emit_into(item, j);
            }
            j.end_arr();
        }
        Value::Obj(map) => {
            j.begin_obj();
            for (k, val) in map {
                j.key(k);
                emit_into(val, j);
            }
            j.end_obj();
        }
    }
}

fn emit(v: &Value) -> String {
    let mut j = JsonBuf::new();
    emit_into(v, &mut j);
    j.finish()
}

/// A finite f64 drawn from distributions that stress the formatter:
/// small integers, sign, wild exponents from raw bit patterns, and
/// dyadic fractions.
fn gen_num(rng: &mut Rng) -> f64 {
    match rng.below(5) {
        0 => rng.below(2_000) as f64 - 1_000.0,
        1 => (rng.below(1 << 53)) as f64,
        2 => rng.below(1_000_000) as f64 / (1u64 << rng.below(30)) as f64,
        3 => {
            // Raw bits cover subnormals and extreme exponents; retry out
            // the non-finite patterns.
            loop {
                let f = f64::from_bits(rng.next());
                if f.is_finite() {
                    return f;
                }
            }
        }
        _ => -((rng.below(1 << 30)) as f64) / 7.0,
    }
}

/// Strings mixing ASCII, the characters the escaper special-cases
/// (quotes, backslashes, C0 controls), and multi-byte code points.
fn gen_string(rng: &mut Rng) -> String {
    let len = rng.below(12);
    (0..len)
        .map(|_| match rng.below(8) {
            0 => '"',
            1 => '\\',
            2 => rng.below(0x20) as u8 as char, // C0 control
            3 => ['é', 'Ω', '中', '🦀'][rng.below(4) as usize],
            4 => '\n',
            _ => char::from(b' ' + rng.below(94) as u8),
        })
        .collect()
}

fn gen_value(rng: &mut Rng, depth: u64) -> Value {
    let arm = if depth == 0 { rng.below(4) } else { rng.below(6) };
    match arm {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Num(gen_num(rng)),
        3 => Value::Str(gen_string(rng)),
        4 => Value::Arr((0..rng.below(5)).map(|_| gen_value(rng, depth - 1)).collect()),
        _ => {
            let mut map = BTreeMap::new();
            for i in 0..rng.below(5) {
                // Indexed suffix keeps keys unique even when the random
                // part collides (duplicates are a parse error).
                let key = format!("{}_{i}", gen_string(rng));
                map.insert(key, gen_value(rng, depth - 1));
            }
            Value::Obj(map)
        }
    }
}

#[test]
fn emit_parse_emit_is_a_fixpoint() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for case in 0..600 {
        let value = gen_value(&mut rng, 4);
        let first = emit(&value);
        let parsed = check::parse(&first).unwrap_or_else(|e| {
            panic!("case {case}: emitted document failed to parse: {e}\n{first}")
        });
        assert_eq!(parsed, value, "case {case}: parse changed the value\n{first}");
        let second = emit(&parsed);
        assert_eq!(first, second, "case {case}: emit∘parse is not a fixpoint");
    }
}

#[test]
fn floats_round_trip_exactly_through_the_text_form() {
    let mut rng = Rng(42);
    for _ in 0..2_000 {
        let f = gen_num(&mut rng);
        let text = emit(&Value::Num(f));
        let back = check::parse(&text).unwrap();
        // Bitwise equality modulo the sign of zero: the formatter
        // preserves -0.0 ("−0.0" parses back negative), so to_bits
        // matches even there.
        assert_eq!(
            back.as_num().unwrap().to_bits(),
            f.to_bits(),
            "{f:?} -> {text} -> {:?}",
            back.as_num()
        );
    }
}

#[test]
fn truncated_escapes_are_typed_errors() {
    for bad in [
        r#""\"#,
        r#""\u"#,
        r#""\u0"#,
        r#""\u00"#,
        r#""\u004"#,
        r#""\uZZZZ""#,
        r#""\x41""#,
        r#""\ud800""#, // lone surrogate: the emitter never writes pairs
        "\"abc",
    ] {
        let err = check::parse(bad).unwrap_err();
        assert!(!err.msg.is_empty(), "{bad:?} should fail with a message");
    }
}

#[test]
fn duplicate_keys_are_rejected_at_any_depth() {
    for bad in [r#"{"a":1,"a":2}"#, r#"{"x":{"a":1,"a":2}}"#, r#"[{"a":null,"a":null}]"#] {
        let err = check::parse(bad).unwrap_err();
        assert!(err.msg.contains("duplicate"), "{bad}: {err}");
    }
}

#[test]
fn truncations_and_bit_flips_never_panic() {
    let mut rng = Rng(7);
    let value = gen_value(&mut rng, 4);
    let doc = emit(&value);
    // Every prefix either parses (it won't, except the full doc) or
    // errors — in both cases parse() returns instead of panicking.
    for end in 0..doc.len() {
        if doc.is_char_boundary(end) {
            let _ = check::parse(&doc[..end]);
        }
    }
    let bytes = doc.as_bytes();
    for _ in 0..500 {
        let mut mutated = bytes.to_vec();
        let at = rng.below(mutated.len() as u64) as usize;
        mutated[at] ^= 1 << rng.below(8);
        // Only valid UTF-8 can reach the parser (its input is &str).
        if let Ok(text) = std::str::from_utf8(&mutated) {
            let _ = check::parse(text);
        }
    }
}
