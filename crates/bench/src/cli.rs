//! Command-line parsing for the `experiments` binary.
//!
//! Kept in the library (rather than the binary) so flag handling is unit
//! tested without spawning processes.

use std::path::PathBuf;

/// Every mode the binary accepts, in `all`-run order. `perf`, `report`,
/// `verify`, `serve`, and `submit` are standalone utilities: `perf` times
/// the simulator itself (fast path vs naive stepping) and writes
/// `BENCH_sim.json`; `report` renders an existing
/// `BENCH_experiments.json` into `RESULTS.md`; `verify` runs the static
/// analyses over every registered kernel program and writes a
/// machine-readable report; `serve` runs the crash-safe experiment
/// service on a Unix socket; `submit` is its client. None is part of
/// `all`.
pub const MODES: [&str; 16] = [
    "table1", "fig2", "fig8", "fig9", "table2", "fig10", "fig11", "overhead", "ablation", "energy",
    "perf", "report", "verify", "serve", "submit", "all",
];

/// Usage text printed on `--help` and on flag errors.
pub const USAGE: &str = "\
Usage: experiments [MODE] [OPTIONS]

Regenerates the paper's tables and figures through the drs-harness job
pool and records every simulated cell to a machine-readable JSON file.

Modes:
  table1 | fig2 | fig8 | fig9 | table2 | fig10 | fig11 |
  overhead | ablation | energy | all        (default: all)
  perf             simulator perf baseline: run the fig2+fig8 grids twice
                   (fast path on, then naive stepping), assert bit-identical
                   stats, write wall-clock timings to BENCH_sim.json
  report           render an existing BENCH_experiments.json (see --out)
                   into RESULTS.md, comparing measured speedups against
                   the paper's headline numbers
  verify           run the drs-verify static analyses (structural checks,
                   shuffle live sets, stack-depth and pressure bounds,
                   natural loops) over every registered kernel program and
                   write a machine-readable JSON report to --out (default:
                   BENCH_verify.json); exits 1 on any error-severity
                   diagnostic or when a shuffle live set differs from the
                   kernel's declared per-ray register count
  serve            run the crash-safe experiment service on --socket:
                   clients submit figure grids, finished cells are
                   persisted to the result store as they complete, and a
                   restart after any crash resumes from the store with
                   byte-identical results; SIGTERM drains gracefully
  submit           client for a running server: submit --figure, stream
                   per-cell progress, fetch the deterministic results
                   document into --out; exits 1 when any cell failed or
                   the server shed the submission (busy/draining)

Options:
  --jobs N         worker threads (default: available parallelism)
  --out PATH       results JSON destination (default: BENCH_experiments.json);
                   for `report`, the results file to read
  --no-cache       always recapture ray streams; skip target/drs-cache
  --no-fastpath    disable the engine's event-driven cycle skipping and
                   step every cycle (results are bit-identical either way;
                   this is the reference path the perf harness times)
  --stats-dump PATH after the run, also write a deterministic stats-only
                   JSON dump of every cell (no wall-clock fields) — two
                   runs with identical inputs produce byte-identical dumps,
                   which CI diffs across --no-fastpath
  --timeline       collect stall attribution + interval timelines; writes
                   <out stem>_timeline.json next to the results file
  --trace-out PATH also record per-warp stall spans and write them as
                   Chrome trace-event JSON (chrome://tracing, Perfetto);
                   implies --timeline
  --interval N     timeline sampling window in cycles (default: 1000)
  --progress       per-job start/finish lines on stderr
  --retries N      extra attempts per cell for transient failures (worker
                   panics, cache corruption, injected faults); permanent
                   simulator failures are never retried (default: 1)
  --job-timeout SECS per-cell wall-clock budget; a cell exceeding it is
                   recorded as a typed 'deadline' failure with partial stats
  --job-cycles N   per-cell simulated-cycle budget; exceeding it records a
                   typed 'cycle_limit' failure instead of running to the
                   global safety cap
  --resume         reuse clean cells from this grid's checkpoint file
                   (<out stem>_checkpoint.json) and re-simulate only the
                   missing or failed ones; merged results are bit-identical
                   to an uninterrupted run
  --chip           full-chip mode: run every cell as --sms per-SM engines
                   against one shared L2/MSHR/DRAM memory system instead
                   of a single SMX scaled by the SMX count; in `perf` mode
                   also writes a chip-vs-scaled comparison to BENCH_chip.json
  --sms N          SMs per chip cell (default: 15, the GTX 780)
  --chip-threads N worker threads sharding the SMs inside each chip cell
                   (results are bit-identical for any value; default: 1)
  --perf-baseline PATH (perf mode) compare the new timings against a
                   committed BENCH_sim.json; exit 1 when any cell's
                   cycles/sec falls more than 25% below its baseline
  --inject SPEC    deterministic fault injection, e.g.
                   'seed=7,panic@1,cache~4x1,watchdog@2,budget@0'
                   (kinds panic|cache|watchdog|budget|chipcfg|store|
                   disconnect; @IDX by job index, ~N seed-addressed
                   one-in-N; xT = first T attempts only)
  --store          memoize finished cells in the durable result store; a
                   warm rerun of the same grid does zero simulation work
                   and produces a byte-identical results file
  --store-dir PATH result-store location (default: $DRS_STORE_DIR or
                   target/drs-store); entries are content-addressed by
                   job id with a length+checksum footer, written via
                   tmp+rename, and quarantined (never served) on any
                   corruption
  --cache-limit SZ capture-cache size budget with K/M/G suffix (e.g.
                   512M); past it the least-recently-used entries are
                   evicted after each store (the just-written entry is
                   never evicted)
  --socket PATH    serve/submit: Unix-domain socket path
                   (default: target/drs-serve.sock)
  --figure NAME    submit: the figure grid to submit (e.g. fig2)
  --queue N        serve: admission limit in undispatched cells across
                   all tickets; submissions past it get a typed 'busy'
                   response instead of queueing unboundedly (default 4096)
  --list           list modes with their job counts and exit
  -h, --help       show this help

Exit status: 0 on a clean run, 1 when any cell failed or was incomplete
(results are still written, with structured failure records), 2 on usage
errors. A result-store write failure after a successful simulation is a
stderr warning, not a failure: the run still exits 0 because only
durability — not the results — was lost.

Scaling environment variables: DRS_RAYS, DRS_TRIS_SCALE, DRS_WARPS_SCALE;
cache location: DRS_CACHE_DIR (default target/drs-cache);
store location: DRS_STORE_DIR (default target/drs-store).";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Selected mode (validated against [`MODES`]).
    pub mode: String,
    /// Worker threads for the harness pool.
    pub workers: usize,
    /// Results JSON destination.
    pub out: PathBuf,
    /// Use the on-disk capture cache.
    pub use_cache: bool,
    /// Engine event-driven fast path (`--no-fastpath` clears it).
    pub fastpath: bool,
    /// Deterministic stats-only JSON dump destination (`--stats-dump`).
    pub stats_dump: Option<PathBuf>,
    /// Collect stall attribution + interval timelines.
    pub timeline: bool,
    /// Chrome trace-event JSON destination (implies [`Cli::timeline`]).
    pub trace_out: Option<PathBuf>,
    /// Timeline sampling window in cycles.
    pub interval: u64,
    /// Print per-job progress lines to stderr.
    pub progress: bool,
    /// Extra attempts per cell for transient failures.
    pub retries: u32,
    /// Per-cell wall-clock budget in seconds.
    pub job_timeout_secs: Option<u64>,
    /// Per-cell simulated-cycle budget.
    pub job_cycles: Option<u64>,
    /// Resume from this grid's checkpoint file.
    pub resume: bool,
    /// Full-chip mode: N per-SM engines sharing one memory system.
    pub chip: bool,
    /// SMs per chip cell (only meaningful with [`Cli::chip`]).
    pub sms: usize,
    /// Worker threads inside each chip cell's window loop.
    pub chip_threads: usize,
    /// `perf` mode: committed `BENCH_sim.json` to gate against — any
    /// cell more than 25% slower than its baseline fails the run.
    pub perf_baseline: Option<PathBuf>,
    /// Deterministic fault-injection spec (`--inject`), parsed downstream
    /// by [`FaultPlan::parse`](drs_harness::FaultPlan::parse).
    pub inject: Option<String>,
    /// Memoize finished cells in the durable result store.
    pub store: bool,
    /// Result-store directory override (`--store-dir`).
    pub store_dir: Option<PathBuf>,
    /// Capture-cache size budget in bytes (`--cache-limit`, K/M/G suffix).
    pub cache_limit: Option<u64>,
    /// Unix-domain socket path for `serve`/`submit`.
    pub socket: PathBuf,
    /// Figure to submit (`submit` mode).
    pub figure: Option<String>,
    /// Server admission limit in undispatched cells (`serve` mode).
    pub queue: usize,
    /// List modes instead of running.
    pub list: bool,
    /// Show usage instead of running.
    pub help: bool,
}

impl Default for Cli {
    fn default() -> Cli {
        Cli {
            mode: "all".into(),
            workers: default_workers(),
            out: PathBuf::from("BENCH_experiments.json"),
            use_cache: true,
            fastpath: true,
            stats_dump: None,
            timeline: false,
            trace_out: None,
            interval: 1000,
            progress: false,
            retries: 1,
            job_timeout_secs: None,
            job_cycles: None,
            resume: false,
            chip: false,
            sms: 15,
            chip_threads: 1,
            perf_baseline: None,
            inject: None,
            store: false,
            store_dir: None,
            cache_limit: None,
            socket: PathBuf::from("target/drs-serve.sock"),
            figure: None,
            queue: 4096,
            list: false,
            help: false,
        }
    }
}

impl Cli {
    /// Telemetry is on when either timeline output or a trace was asked
    /// for (`--trace-out` implies `--timeline`).
    pub fn telemetry_enabled(&self) -> bool {
        self.timeline || self.trace_out.is_some()
    }

    /// Where the timeline artifact goes: `<out stem>_timeline.json` next
    /// to the results file.
    pub fn timeline_path(&self) -> PathBuf {
        let stem = self.out.file_stem().and_then(|s| s.to_str()).unwrap_or("experiments");
        self.out.with_file_name(format!("{stem}_timeline.json"))
    }

    /// Where the crash-safe checkpoint lives: `<out stem>_checkpoint.json`
    /// next to the results file.
    pub fn checkpoint_path(&self) -> PathBuf {
        let stem = self.out.file_stem().and_then(|s| s.to_str()).unwrap_or("experiments");
        self.out.with_file_name(format!("{stem}_checkpoint.json"))
    }

    /// Where the run-volatile sidecar goes: `<out stem>_run.json` next to
    /// the results file. The results file itself stays deterministic;
    /// wall-clock, worker-count, and cache/store counters live here.
    pub fn run_path(&self) -> PathBuf {
        let stem = self.out.file_stem().and_then(|s| s.to_str()).unwrap_or("experiments");
        self.out.with_file_name(format!("{stem}_run.json"))
    }
}

/// Parse a byte size with an optional K/M/G suffix (powers of 1024,
/// case-insensitive): `512M`, `2g`, `65536`.
///
/// # Errors
///
/// Returns a human-readable message for empty input, unknown suffixes,
/// non-numeric magnitudes, zero, and overflow.
pub fn parse_size(s: &str) -> Result<u64, String> {
    let err = || format!("expected a size like 512M or 2G, got '{s}'");
    let (digits, unit) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 1 << 20),
        Some(b'g' | b'G') => (&s[..s.len() - 1], 1 << 30),
        Some(b'0'..=b'9') => (s, 1),
        _ => return Err(err()),
    };
    let n: u64 = digits.parse().map_err(|_| err())?;
    n.checked_mul(unit).filter(|&b| b > 0).ok_or_else(err)
}

/// Available hardware parallelism (floor 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Parse the argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown modes, unknown flags,
/// malformed or missing flag values; the caller prints it with [`USAGE`]
/// and exits nonzero.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut saw_mode = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline): (&str, Option<String>) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (&arg[..f.len()], Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            if let Some(v) = &inline {
                return Ok(v.clone());
            }
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag {
            "--jobs" => {
                let v = value("--jobs")?;
                cli.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--jobs expects a positive integer, got '{v}'"))?;
            }
            "--out" => cli.out = PathBuf::from(value("--out")?),
            "--no-cache" => cli.use_cache = false,
            "--no-fastpath" => cli.fastpath = false,
            "--stats-dump" => cli.stats_dump = Some(PathBuf::from(value("--stats-dump")?)),
            "--timeline" => cli.timeline = true,
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--interval" => {
                let v = value("--interval")?;
                cli.interval = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--interval expects a positive integer, got '{v}'"))?;
            }
            "--progress" => cli.progress = true,
            "--retries" => {
                let v = value("--retries")?;
                cli.retries = v
                    .parse::<u32>()
                    .map_err(|_| format!("--retries expects a non-negative integer, got '{v}'"))?;
            }
            "--job-timeout" => {
                let v = value("--job-timeout")?;
                cli.job_timeout_secs = Some(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--job-timeout expects a positive integer, got '{v}'"))?,
                );
            }
            "--job-cycles" => {
                let v = value("--job-cycles")?;
                cli.job_cycles = Some(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--job-cycles expects a positive integer, got '{v}'"))?,
                );
            }
            "--resume" => cli.resume = true,
            "--chip" => cli.chip = true,
            "--sms" => {
                let v = value("--sms")?;
                cli.sms = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--sms expects a positive integer, got '{v}'"))?;
            }
            "--chip-threads" => {
                let v = value("--chip-threads")?;
                cli.chip_threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--chip-threads expects a positive integer, got '{v}'"))?;
            }
            "--perf-baseline" => {
                cli.perf_baseline = Some(PathBuf::from(value("--perf-baseline")?));
            }
            "--inject" => cli.inject = Some(value("--inject")?),
            "--store" => cli.store = true,
            "--store-dir" => cli.store_dir = Some(PathBuf::from(value("--store-dir")?)),
            "--cache-limit" => {
                let v = value("--cache-limit")?;
                cli.cache_limit = Some(parse_size(&v).map_err(|e| format!("--cache-limit: {e}"))?);
            }
            "--socket" => cli.socket = PathBuf::from(value("--socket")?),
            "--figure" => cli.figure = Some(value("--figure")?),
            "--queue" => {
                let v = value("--queue")?;
                cli.queue = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--queue expects a positive integer, got '{v}'"))?;
            }
            "--list" => cli.list = true,
            "-h" | "--help" => cli.help = true,
            f if f.starts_with('-') => return Err(format!("unknown flag '{f}'")),
            mode => {
                if saw_mode {
                    return Err(format!("unexpected extra argument '{mode}'"));
                }
                if !MODES.contains(&mode) {
                    return Err(format!(
                        "unknown mode '{}'; expected one of {}",
                        mode,
                        MODES.join("|")
                    ));
                }
                cli.mode = mode.to_string();
                saw_mode = true;
            }
        }
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Cli, String> {
        parse(args.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn defaults() {
        let cli = p(&[]).unwrap();
        assert_eq!(cli.mode, "all");
        assert!(cli.use_cache);
        assert!(cli.fastpath);
        assert_eq!(cli.stats_dump, None);
        assert!(!cli.list);
        assert!(cli.workers >= 1);
        assert_eq!(cli.out, PathBuf::from("BENCH_experiments.json"));
    }

    #[test]
    fn fastpath_and_stats_dump_flags() {
        let cli = p(&["fig2", "--no-fastpath", "--stats-dump", "a.json"]).unwrap();
        assert!(!cli.fastpath);
        assert_eq!(cli.stats_dump, Some(PathBuf::from("a.json")));
        let eq = p(&["fig2", "--no-fastpath", "--stats-dump=a.json"]).unwrap();
        assert_eq!(cli, eq);
        assert!(p(&["--stats-dump"]).unwrap_err().contains("requires a value"));
    }

    #[test]
    fn full_flag_set_both_syntaxes() {
        let a = p(&["fig10", "--jobs", "4", "--out", "r.json", "--no-cache"]).unwrap();
        let b = p(&["fig10", "--jobs=4", "--out=r.json", "--no-cache"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.mode, "fig10");
        assert_eq!(a.workers, 4);
        assert_eq!(a.out, PathBuf::from("r.json"));
        assert!(!a.use_cache);
    }

    #[test]
    fn telemetry_flags_both_syntaxes() {
        let a = p(&["fig2", "--timeline", "--trace-out", "t.json", "--interval", "500"]).unwrap();
        let b = p(&["fig2", "--timeline", "--trace-out=t.json", "--interval=500"]).unwrap();
        assert_eq!(a, b);
        assert!(a.timeline);
        assert_eq!(a.trace_out, Some(PathBuf::from("t.json")));
        assert_eq!(a.interval, 500);
        assert!(a.telemetry_enabled());
    }

    #[test]
    fn trace_out_implies_telemetry_without_timeline() {
        let cli = p(&["--trace-out", "t.json"]).unwrap();
        assert!(!cli.timeline);
        assert!(cli.telemetry_enabled());
        assert!(!p(&[]).unwrap().telemetry_enabled());
    }

    #[test]
    fn progress_flag_and_default_interval() {
        let cli = p(&["--progress"]).unwrap();
        assert!(cli.progress);
        assert_eq!(cli.interval, 1000);
        assert!(!p(&[]).unwrap().progress);
    }

    #[test]
    fn timeline_path_sits_next_to_out() {
        let cli = p(&["--out", "results/BENCH_experiments.json"]).unwrap();
        assert_eq!(cli.timeline_path(), PathBuf::from("results/BENCH_experiments_timeline.json"));
        assert_eq!(
            p(&[]).unwrap().timeline_path(),
            PathBuf::from("BENCH_experiments_timeline.json")
        );
    }

    #[test]
    fn fault_tolerance_flags_both_syntaxes() {
        let a = p(&[
            "fig2",
            "--retries",
            "3",
            "--job-timeout",
            "30",
            "--job-cycles",
            "5000",
            "--resume",
            "--inject",
            "seed=7,panic@1",
        ])
        .unwrap();
        let b = p(&[
            "fig2",
            "--retries=3",
            "--job-timeout=30",
            "--job-cycles=5000",
            "--resume",
            "--inject=seed=7,panic@1",
        ])
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.retries, 3);
        assert_eq!(a.job_timeout_secs, Some(30));
        assert_eq!(a.job_cycles, Some(5000));
        assert!(a.resume);
        assert_eq!(a.inject.as_deref(), Some("seed=7,panic@1"));
        let d = p(&[]).unwrap();
        assert_eq!(d.retries, 1);
        assert_eq!(d.job_timeout_secs, None);
        assert_eq!(d.job_cycles, None);
        assert!(!d.resume);
        assert_eq!(d.inject, None);
        assert_eq!(p(&["--retries", "0"]).unwrap().retries, 0, "zero retries is valid");
    }

    #[test]
    fn chip_flags_both_syntaxes() {
        let a = p(&["fig2", "--chip", "--sms", "4", "--chip-threads", "2"]).unwrap();
        let b = p(&["fig2", "--chip", "--sms=4", "--chip-threads=2"]).unwrap();
        assert_eq!(a, b);
        assert!(a.chip);
        assert_eq!(a.sms, 4);
        assert_eq!(a.chip_threads, 2);
        let d = p(&[]).unwrap();
        assert!(!d.chip);
        assert_eq!(d.sms, 15, "default SMs match the GTX 780");
        assert_eq!(d.chip_threads, 1);
        assert!(p(&["--sms", "0"]).unwrap_err().contains("positive integer"));
        assert!(p(&["--chip-threads", "0"]).unwrap_err().contains("positive integer"));
    }

    #[test]
    fn perf_baseline_flag_both_syntaxes() {
        let a = p(&["perf", "--perf-baseline", "BENCH_sim.json"]).unwrap();
        let b = p(&["perf", "--perf-baseline=BENCH_sim.json"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.perf_baseline, Some(PathBuf::from("BENCH_sim.json")));
        assert_eq!(p(&["perf"]).unwrap().perf_baseline, None);
        assert!(p(&["--perf-baseline"]).unwrap_err().contains("requires a value"));
    }

    #[test]
    fn checkpoint_path_sits_next_to_out() {
        let cli = p(&["--out", "results/BENCH_experiments.json"]).unwrap();
        assert_eq!(
            cli.checkpoint_path(),
            PathBuf::from("results/BENCH_experiments_checkpoint.json")
        );
        assert_eq!(
            p(&[]).unwrap().checkpoint_path(),
            PathBuf::from("BENCH_experiments_checkpoint.json")
        );
    }

    #[test]
    fn store_and_service_flags_both_syntaxes() {
        let a = p(&[
            "fig2",
            "--store",
            "--store-dir",
            "s",
            "--cache-limit",
            "512M",
            "--socket",
            "x.sock",
            "--queue",
            "8",
        ])
        .unwrap();
        let b = p(&[
            "fig2",
            "--store",
            "--store-dir=s",
            "--cache-limit=512M",
            "--socket=x.sock",
            "--queue=8",
        ])
        .unwrap();
        assert_eq!(a, b);
        assert!(a.store);
        assert_eq!(a.store_dir, Some(PathBuf::from("s")));
        assert_eq!(a.cache_limit, Some(512 << 20));
        assert_eq!(a.socket, PathBuf::from("x.sock"));
        assert_eq!(a.queue, 8);
        let d = p(&[]).unwrap();
        assert!(!d.store);
        assert_eq!(d.store_dir, None);
        assert_eq!(d.cache_limit, None);
        assert_eq!(d.socket, PathBuf::from("target/drs-serve.sock"));
        assert_eq!(d.figure, None);
        assert_eq!(d.queue, 4096);
        let sub = p(&["submit", "--figure", "fig2"]).unwrap();
        assert_eq!(sub.mode, "submit");
        assert_eq!(sub.figure.as_deref(), Some("fig2"));
    }

    #[test]
    fn size_suffixes_parse_in_powers_of_1024() {
        assert_eq!(parse_size("65536"), Ok(65536));
        assert_eq!(parse_size("4k"), Ok(4096));
        assert_eq!(parse_size("4K"), Ok(4096));
        assert_eq!(parse_size("512M"), Ok(512 << 20));
        assert_eq!(parse_size("2g"), Ok(2 << 30));
        for bad in ["", "M", "x", "1T", "0", "0M", "-1", "99999999999G"] {
            assert!(parse_size(bad).is_err(), "'{bad}' should be rejected");
        }
        assert!(p(&["--cache-limit", "frob"]).unwrap_err().contains("--cache-limit"));
    }

    #[test]
    fn run_path_sits_next_to_out() {
        let cli = p(&["--out", "results/BENCH_experiments.json"]).unwrap();
        assert_eq!(cli.run_path(), PathBuf::from("results/BENCH_experiments_run.json"));
    }

    #[test]
    fn list_and_help() {
        assert!(p(&["--list"]).unwrap().list);
        assert!(p(&["--help"]).unwrap().help);
        assert!(p(&["-h"]).unwrap().help);
    }

    #[test]
    fn bad_inputs_are_rejected_with_messages() {
        for (args, needle) in [
            (&["frob"][..], "unknown mode"),
            (&["--frob"][..], "unknown flag"),
            (&["--jobs"][..], "requires a value"),
            (&["--jobs", "0"][..], "positive integer"),
            (&["--jobs", "x"][..], "positive integer"),
            (&["--interval"][..], "requires a value"),
            (&["--interval", "0"][..], "positive integer"),
            (&["--trace-out"][..], "requires a value"),
            (&["--retries", "x"][..], "non-negative integer"),
            (&["--job-timeout", "0"][..], "positive integer"),
            (&["--job-cycles", "x"][..], "positive integer"),
            (&["--inject"][..], "requires a value"),
            (&["fig2", "fig8"][..], "extra argument"),
        ] {
            let err = p(args).unwrap_err();
            assert!(err.contains(needle), "args {args:?}: '{err}' missing '{needle}'");
        }
    }

    #[test]
    fn every_mode_parses() {
        for mode in MODES {
            assert_eq!(p(&[mode]).unwrap().mode, mode);
        }
    }
}
