//! Rendering `BENCH_experiments.json` into `RESULTS.md` — the `report`
//! mode of the `experiments` binary.
//!
//! The input is the machine-readable results document the binary itself
//! emits (see `drs_harness::ResultsFile`); the output is a markdown
//! report with one table per figure, comparing the measured speedups and
//! SIMD efficiencies against the paper's headline numbers with explicit
//! pass / deviation markers. Rendering is a pure function of the parsed
//! document, so it is unit-tested without running any simulation.

use drs_telemetry::check::Value;
use std::collections::BTreeMap;

/// The paper's headline DRS speedups over Aila per scene (Fig. 11), in
/// the paper's scene order. The four-scene average is
/// [`PAPER_DRS_AVG_SPEEDUP`].
pub const PAPER_DRS_SPEEDUPS: [(&str, f64); 4] =
    [("conference room", 1.84), ("fairy forest", 1.92), ("crytek sponza", 1.67), ("plants", 1.83)];

/// The paper's average DRS speedup over the four scenes.
pub const PAPER_DRS_AVG_SPEEDUP: f64 = 1.79;

/// Relative deviation from the paper's number under which a measured
/// speedup counts as reproduced. The workloads are procedural stand-ins
/// at a fraction of the original geometry and ray counts, so the bar is
/// directional agreement within a generous band, not equality.
pub const PASS_BAND: f64 = 0.25;

/// One simulation cell pulled out of the results document.
#[derive(Debug, Clone)]
struct Cell {
    scene: String,
    method: String,
    bounce: u64,
    empty: bool,
    figures: Vec<String>,
    cycles: f64,
    rays: f64,
    /// active-lane sums and issue totals of the normal + SI histograms,
    /// for overall SIMD efficiency across bounces.
    active_sum: f64,
    issued_total: f64,
    /// Shared-memory-system counters, present only for full-chip cells.
    chip: Option<ChipCell>,
}

/// The slice of a full-chip cell's `chip` summary the report footnotes:
/// L2 hit rate, DRAM-channel utilization, and MSHR-exhaustion stalls.
#[derive(Debug, Clone, Copy, Default)]
struct ChipCell {
    l2_hits: f64,
    l2_misses: f64,
    mshr_waits: f64,
    /// DRAM busy time in 1/1024-cycle fixed point ([`drs_sim::CHIP_TIME_Q`]).
    dram_busy_q: f64,
}

fn num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_num).ok_or_else(|| format!("cell missing number '{key}'"))
}

fn text(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("cell missing string '{key}'"))
}

fn histogram(stats: &Value, key: &str) -> Result<(f64, f64), String> {
    let h = stats.get(key).ok_or_else(|| format!("stats missing '{key}'"))?;
    Ok((num(h, "active_sum")?, num(h, "total")?))
}

fn parse_cells(doc: &Value) -> Result<Vec<Cell>, String> {
    let raw = doc
        .get("cells")
        .and_then(Value::as_arr)
        .ok_or("document has no 'cells' array — is this a BENCH_experiments.json?")?;
    let mut cells = Vec::with_capacity(raw.len());
    for v in raw {
        let stats = v.get("stats").ok_or("cell missing 'stats'")?;
        let (a, t) = histogram(stats, "issued")?;
        let (a_si, t_si) = histogram(stats, "issued_si")?;
        cells.push(Cell {
            scene: text(v, "scene")?,
            method: text(v, "method")?,
            bounce: num(v, "bounce")? as u64,
            empty: matches!(v.get("empty"), Some(Value::Bool(true))),
            figures: v
                .get("figures")
                .and_then(Value::as_arr)
                .map(|fs| fs.iter().filter_map(Value::as_str).map(str::to_string).collect())
                .unwrap_or_default(),
            cycles: num(stats, "cycles")?,
            rays: num(stats, "rays_completed")?,
            active_sum: a + a_si,
            issued_total: t + t_si,
            chip: v
                .get("chip")
                .map(|c| {
                    Ok::<_, String>(ChipCell {
                        l2_hits: num(c, "l2_hits")?,
                        l2_misses: num(c, "l2_misses")?,
                        mshr_waits: num(c, "mshr_waits")?,
                        dram_busy_q: num(c, "dram_busy_q")?,
                    })
                })
                .transpose()?,
        });
    }
    Ok(cells)
}

/// Per-(scene, method) aggregate over bounces — the paper's "overall"
/// rows: total rays over total cycles, merged issue histograms.
#[derive(Debug, Default, Clone)]
struct Overall {
    rays: f64,
    cycles: f64,
    active_sum: f64,
    issued_total: f64,
}

impl Overall {
    /// Throughput up to a constant factor (clock and SMX count cancel in
    /// every ratio the report prints).
    fn rate(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.rays / self.cycles
        }
    }

    fn efficiency(&self) -> f64 {
        if self.issued_total == 0.0 {
            0.0
        } else {
            self.active_sum / (self.issued_total * 32.0)
        }
    }
}

fn aggregate<'a>(cells: impl Iterator<Item = &'a Cell>) -> BTreeMap<(String, String), Overall> {
    let mut map: BTreeMap<(String, String), Overall> = BTreeMap::new();
    for c in cells {
        if c.empty {
            continue;
        }
        let o = map.entry((c.scene.clone(), c.method.clone())).or_default();
        o.rays += c.rays;
        o.cycles += c.cycles;
        o.active_sum += c.active_sum;
        o.issued_total += c.issued_total;
    }
    map
}

fn in_figure<'a>(cells: &'a [Cell], fig: &'a str) -> impl Iterator<Item = &'a Cell> {
    cells.iter().filter(move |c| c.figures.iter().any(|f| f == fig))
}

/// The speedup verdict marker for one scene.
fn verdict(measured: f64, paper: f64) -> String {
    let dev = (measured - paper) / paper;
    if dev.abs() <= PASS_BAND {
        format!("pass ({:+.0}%)", dev * 100.0)
    } else {
        format!("**deviation** ({:+.0}%)", dev * 100.0)
    }
}

/// Render the parsed results document to markdown.
///
/// # Errors
///
/// Returns a message when the document is missing required fields (wrong
/// file, or a schema from a different tool).
pub fn render(doc: &Value) -> Result<String, String> {
    let mode = doc.get("mode").and_then(Value::as_str).unwrap_or("?").to_string();
    let chip_sms = chip_sms(doc);
    let cells = parse_cells(doc)?;
    let mut md = String::new();
    md.push_str("# Results vs. the paper\n\n");
    md.push_str(
        "Generated by `experiments -- report` from `BENCH_experiments.json` \
         (machine-readable output of the experiments binary).\n\n",
    );
    md.push_str(&format!(
        "- source run mode: `{mode}`, {} simulated cells\n\
         - workloads are procedural stand-ins at reduced geometry/ray scale \
         (see `DRS_RAYS`, `DRS_TRIS_SCALE`, `DRS_WARPS_SCALE`), so absolute \
         Mrays/s are not comparable to the paper; speedup *ratios* are the \
         reproduction target\n\
         - pass band: within {:.0}% of the paper's per-scene speedup\n",
        cells.len(),
        PASS_BAND * 100.0
    ));
    match chip_sms {
        Some(sms) => md.push_str(&format!(
            "- **chip-accurate figures**: cells ran in full-chip mode \
             (`--chip`, {sms} SMs sharing one L2/MSHR/DRAM memory system), \
             so throughput includes cross-SM contention instead of scaling \
             one SMX by the SMX count\n\n"
        )),
        None => md.push_str(
            "- figures extrapolate one simulated SMX by the SMX count \
             (15×); rerun with `--chip` for chip-accurate numbers that \
             include cross-SM memory contention\n\n",
        ),
    }

    render_fig11(&mut md, &cells);
    render_fig2(&mut md, &cells);
    render_fig10(&mut md, &cells);
    render_chip_profile(&mut md, &cells);

    md.push_str(
        "---\n\nRegenerate with `cargo run -p drs-bench --release --bin \
         experiments -- all` followed by `… -- report`.\n",
    );
    Ok(md)
}

/// The SM count of a full-chip results document (every cell carries its
/// `chip_config`), or `None` for classic SMX-count-scaled results.
fn chip_sms(doc: &Value) -> Option<u64> {
    doc.get("cells")?
        .as_arr()?
        .iter()
        .find_map(|c| c.get("chip_config"))
        .and_then(|cfg| cfg.get("sms"))
        .and_then(Value::as_num)
        .map(|n| n as u64)
}

/// The ordered method labels of the four-method comparison grid.
const COMPARISON: [&str; 4] = ["Aila", "DMK", "TBC", "DRS(M=1,B=6)"];

fn render_fig11(md: &mut String, cells: &[Cell]) {
    md.push_str("## Figure 11: speedup over Aila\n\n");
    let overall = aggregate(in_figure(cells, "fig11"));
    if overall.is_empty() {
        md.push_str("*(no fig11 cells in this results file — run `fig11` or `all`)*\n\n");
        return;
    }
    md.push_str("| scene | DMK | TBC | DRS | DRS (paper) | verdict |\n");
    md.push_str("|---|---|---|---|---|---|\n");
    let mut drs_speedups = Vec::new();
    for (scene, paper) in PAPER_DRS_SPEEDUPS {
        let rate =
            |method: &str| overall.get(&(scene.to_string(), method.to_string())).map(Overall::rate);
        let Some(aila) = rate("Aila").filter(|&r| r > 0.0) else { continue };
        let speedup = |method: &str| rate(method).map(|r| r / aila);
        let fmt = |s: Option<f64>| s.map_or("--".into(), |s| format!("{s:.2}x"));
        let drs = speedup(COMPARISON[3]);
        let row_verdict = drs.map_or("--".into(), |d| verdict(d, paper));
        md.push_str(&format!(
            "| {scene} | {} | {} | {} | {paper:.2}x | {row_verdict} |\n",
            fmt(speedup("DMK")),
            fmt(speedup("TBC")),
            fmt(drs),
        ));
        if let Some(d) = drs {
            drs_speedups.push(d);
        }
    }
    if !drs_speedups.is_empty() {
        let avg = drs_speedups.iter().sum::<f64>() / drs_speedups.len() as f64;
        md.push_str(&format!(
            "| **average** |  |  | **{avg:.2}x** | **{PAPER_DRS_AVG_SPEEDUP:.2}x** | {} |\n",
            verdict(avg, PAPER_DRS_AVG_SPEEDUP)
        ));
    }
    md.push('\n');
}

fn render_fig2(md: &mut String, cells: &[Cell]) {
    md.push_str("## Figure 2: Aila SIMD efficiency per bounce (conference room)\n\n");
    let mut rows: Vec<&Cell> = in_figure(cells, "fig2").filter(|c| !c.empty).collect();
    rows.sort_by_key(|c| c.bounce);
    if rows.is_empty() {
        md.push_str("*(no fig2 cells in this results file — run `fig2` or `all`)*\n\n");
        return;
    }
    md.push_str("| bounce | SIMD efficiency |\n|---|---|\n");
    for c in &rows {
        let eff = if c.issued_total == 0.0 { 0.0 } else { c.active_sum / (c.issued_total * 32.0) };
        md.push_str(&format!("| B{} | {:.1}% |\n", c.bounce, eff * 100.0));
    }
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    let eff = |c: &Cell| {
        if c.issued_total == 0.0 {
            0.0
        } else {
            c.active_sum / (c.issued_total * 32.0)
        }
    };
    md.push_str(&format!(
        "\nPaper's claim: efficiency collapses with bounce depth as rays \
         diverge. Measured B{}→B{}: {:.1}% → {:.1}% ({}).\n\n",
        first.bounce,
        last.bounce,
        eff(first) * 100.0,
        eff(last) * 100.0,
        if eff(last) < eff(first) { "pass" } else { "**deviation**" }
    ));
}

fn render_fig10(md: &mut String, cells: &[Cell]) {
    md.push_str("## Figure 10: overall SIMD efficiency by method\n\n");
    let overall = aggregate(in_figure(cells, "fig10"));
    if overall.is_empty() {
        md.push_str("*(no fig10 cells in this results file — run `fig10` or `all`)*\n\n");
        return;
    }
    md.push_str("| scene | Aila | DMK | TBC | DRS | ordering |\n|---|---|---|---|---|---|\n");
    for (scene, _) in PAPER_DRS_SPEEDUPS {
        let eff = |method: &str| {
            overall.get(&(scene.to_string(), method.to_string())).map(Overall::efficiency)
        };
        let Some(aila) = eff("Aila") else { continue };
        let drs = eff(COMPARISON[3]);
        // The paper's qualitative result: every compaction scheme beats
        // Aila on efficiency, and DRS is at or near the top.
        let ordering = match drs {
            Some(d) if d > aila => "pass (DRS > Aila)",
            Some(_) => "**deviation** (DRS ≤ Aila)",
            None => "--",
        };
        let fmt = |e: Option<f64>| e.map_or("--".into(), |e| format!("{:.1}%", e * 100.0));
        md.push_str(&format!(
            "| {scene} | {} | {} | {} | {} | {ordering} |\n",
            fmt(Some(aila)),
            fmt(eff("DMK")),
            fmt(eff("TBC")),
            fmt(drs),
        ));
    }
    md.push('\n');
}

/// Footnote table for chip-accurate cells: per-(scene, method) shared
/// memory-system profile — L2 hit rate, DRAM-channel utilization
/// (busy time over chip cycles, both summed across bounces), and
/// MSHR-exhaustion stalls. Silent when the document has no chip cells.
fn render_chip_profile(md: &mut String, cells: &[Cell]) {
    let mut map: BTreeMap<(String, String), (ChipCell, f64)> = BTreeMap::new();
    for c in cells {
        let Some(chip) = c.chip.filter(|_| !c.empty) else { continue };
        let (acc, cycles) = map.entry((c.scene.clone(), c.method.clone())).or_default();
        acc.l2_hits += chip.l2_hits;
        acc.l2_misses += chip.l2_misses;
        acc.mshr_waits += chip.mshr_waits;
        acc.dram_busy_q += chip.dram_busy_q;
        *cycles += c.cycles;
    }
    if map.is_empty() {
        return;
    }
    md.push_str("## Shared memory system (chip-accurate cells)\n\n");
    md.push_str(
        "Chip-wide L2 hit rate and DRAM-channel utilization per \
         (scene, method), summed over bounces. Utilization is DRAM busy \
         time over chip cycles (fixed-point `dram_busy_q / (cycles × \
         1024)`); MSHR waits count requests stalled on an exhausted \
         miss-handler pool.\n\n",
    );
    md.push_str("| scene | method | L2 hit rate | DRAM util | MSHR waits |\n");
    md.push_str("|---|---|---|---|---|\n");
    for ((scene, method), (chip, cycles)) in &map {
        let hit_rate = chip.l2_hits / (chip.l2_hits + chip.l2_misses).max(1.0);
        let util = chip.dram_busy_q / (cycles.max(1.0) * 1024.0);
        md.push_str(&format!(
            "| {scene} | {method} | {:.1}% | {:.1}% | {} |\n",
            hit_rate * 100.0,
            util * 100.0,
            chip.mshr_waits
        ));
    }
    md.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_telemetry::check::parse;

    /// A miniature results document with two scenes' fig11 grids plus a
    /// fig2 pair, hand-built through the same JSON shape the emitter uses.
    fn sample_doc() -> Value {
        let mut cells = String::new();
        let mut push = |scene: &str,
                        method: &str,
                        bounce: u64,
                        figures: &str,
                        cycles: u64,
                        rays: u64,
                        active: u64,
                        total: u64| {
            if !cells.is_empty() {
                cells.push(',');
            }
            cells.push_str(&format!(
                r#"{{"scene":"{scene}","method":"{method}","bounce":{bounce},
                   "figures":[{figures}],"empty":false,"mrays_per_sec":1.0,
                   "stats":{{"cycles":{cycles},"rays_completed":{rays},
                     "issued":{{"active_sum":{active},"total":{total}}},
                     "issued_si":{{"active_sum":0,"total":0}}}}}}"#
            ));
        };
        // conference: DRS 2.0x over Aila (paper 1.84 → pass).
        push("conference room", "Aila", 1, r#""fig11","fig10""#, 1000, 100, 320, 20);
        push("conference room", "DRS(M=1,B=6)", 1, r#""fig11","fig10""#, 500, 100, 600, 20);
        // fairy forest: DRS 1.0x (paper 1.92 → deviation).
        push("fairy forest", "Aila", 1, r#""fig11""#, 1000, 100, 320, 20);
        push("fairy forest", "DRS(M=1,B=6)", 1, r#""fig11""#, 1000, 100, 320, 20);
        // fig2: efficiency falls from B1 to B2.
        push("conference room", "Aila", 1, r#""fig2""#, 10, 5, 300, 10);
        push("conference room", "Aila", 2, r#""fig2""#, 10, 5, 100, 10);
        parse(&format!(r#"{{"mode":"all","cells":[{cells}]}}"#)).unwrap()
    }

    #[test]
    fn report_marks_pass_and_deviation() {
        let md = render(&sample_doc()).unwrap();
        assert!(md.contains("| conference room | -- | -- | 2.00x | 1.84x | pass (+9%) |"), "{md}");
        assert!(md.contains("| fairy forest | -- | -- | 1.00x | 1.92x | **deviation** (-48%) |"));
        assert!(md.contains("**average**"));
    }

    #[test]
    fn report_covers_fig2_trend() {
        let md = render(&sample_doc()).unwrap();
        assert!(md.contains("| B1 | 93.8% |"), "{md}");
        assert!(md.contains("| B2 | 31.2% |"));
        assert!(md.contains("93.8% → 31.2% (pass)"));
    }

    #[test]
    fn report_annotates_chip_vs_scaled_runs() {
        let scaled = render(&sample_doc()).unwrap();
        assert!(scaled.contains("extrapolate one simulated SMX"), "{scaled}");

        // The same document with one chip cell flips the annotation.
        let doc = parse(
            r#"{"mode":"fig2","cells":[{"scene":"conference room","method":"Aila",
               "bounce":1,"figures":["fig2"],"empty":false,
               "chip_config":{"sms":15,"l2_banks":16},
               "chip":{"sms":15,"l2_hits":300,"l2_misses":100,"l2_evictions":2,
                 "mshr_waits":7,"dram_busy_q":5120},
               "stats":{"cycles":10,"rays_completed":5,
                 "issued":{"active_sum":300,"total":10},
                 "issued_si":{"active_sum":0,"total":0}}}]}"#,
        )
        .unwrap();
        let chip = render(&doc).unwrap();
        assert!(chip.contains("chip-accurate figures"), "{chip}");
        assert!(chip.contains("15 SMs sharing one L2/MSHR/DRAM"), "{chip}");
        assert!(!chip.contains("extrapolate one simulated SMX"));
    }

    #[test]
    fn chip_cells_get_a_memory_system_footnote() {
        // No chip cells → no footnote section at all.
        let scaled = render(&sample_doc()).unwrap();
        assert!(!scaled.contains("Shared memory system"), "{scaled}");

        let doc = parse(
            r#"{"mode":"fig2","cells":[{"scene":"conference room","method":"Aila",
               "bounce":1,"figures":["fig2"],"empty":false,
               "chip_config":{"sms":2,"l2_banks":16},
               "chip":{"sms":2,"l2_hits":300,"l2_misses":100,"l2_evictions":2,
                 "mshr_waits":7,"dram_busy_q":5120},
               "stats":{"cycles":10,"rays_completed":5,
                 "issued":{"active_sum":300,"total":10},
                 "issued_si":{"active_sum":0,"total":0}}}]}"#,
        )
        .unwrap();
        let md = render(&doc).unwrap();
        assert!(md.contains("## Shared memory system (chip-accurate cells)"), "{md}");
        // 300/(300+100) = 75% hit rate; 5120/(10·1024) = 50% utilization.
        assert!(md.contains("| conference room | Aila | 75.0% | 50.0% | 7 |"), "{md}");
    }

    #[test]
    fn report_survives_partial_documents() {
        let doc = parse(r#"{"mode":"table1","cells":[]}"#).unwrap();
        let md = render(&doc).unwrap();
        assert!(md.contains("no fig11 cells"));
        assert!(md.contains("no fig2 cells"));
        assert!(md.contains("no fig10 cells"));
    }

    #[test]
    fn report_rejects_foreign_documents() {
        let doc = parse(r#"{"traceEvents":[]}"#).unwrap();
        assert!(render(&doc).unwrap_err().contains("no 'cells'"));
    }

    #[test]
    fn verdict_band_edges() {
        assert!(verdict(1.84, 1.84).starts_with("pass"));
        assert!(verdict(1.84 * 1.24, 1.84).starts_with("pass"));
        assert!(verdict(1.84 * 1.30, 1.84).starts_with("**deviation**"));
        assert!(verdict(1.84 * 0.70, 1.84).starts_with("**deviation**"));
    }
}
