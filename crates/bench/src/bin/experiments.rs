//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Usage: `experiments <mode>` where mode is one of
//! `table1 | fig2 | fig8 | fig9 | table2 | fig10 | fig11 | overhead | all`.
//!
//! Scaling knobs: `DRS_RAYS`, `DRS_TRIS_SCALE`, `DRS_WARPS_SCALE` (see the
//! `drs-bench` crate docs). Absolute Mrays/s values depend on the scaled
//! workloads; the comparisons (who wins, by what factor) are the result.

use drs_bench::{capture_workloads, run_all_bounces, run_method, Method};
use drs_core::overhead::{dmk_spawn_memory_bytes, paper, tbc_warp_buffer_bytes, DrsOverhead};
use drs_core::DrsConfig;
use drs_scene::SceneKind;
use drs_sim::{ActiveHistogram, GpuConfig};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match mode.as_str() {
        "table1" => table1(),
        "fig2" => fig2(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "table2" => table2(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "overhead" => overhead(),
        "ablation" => ablation(),
        "energy" => energy(),
        "all" => {
            table1();
            fig2();
            fig8();
            fig9();
            table2();
            fig10();
            fig11();
            overhead();
            ablation();
            energy();
        }
        other => {
            eprintln!(
                "unknown mode {other}; expected table1|fig2|fig8|fig9|table2|fig10|fig11|overhead|ablation|energy|all"
            );
            std::process::exit(2);
        }
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Table 1: the simulated GPU configuration.
fn table1() {
    banner("Table 1: GPU microarchitectural parameters");
    let c = GpuConfig::gtx780();
    println!("SMX Clock Frequency       {} MHz", c.clock_mhz);
    println!("SIMD lanes                {}", c.simd_lanes);
    println!("SMXs/GPU                  {}", c.smx_count);
    println!("Warp Scheduler            Greedy-Then-Oldest");
    println!("Warp Schedulers/SMX       {}", c.warp_schedulers);
    println!("Inst. Dispatch Units/SMX  {}", c.dispatch_units);
    println!("Registers/SMX             {}", c.registers_per_smx);
    println!("L1 Data Cache             {} KB", c.l1d_bytes / 1024);
    println!("L1 Texture Cache          {} KB", c.l1t_bytes / 1024);
    println!("L2 Cache                  {} KB (whole GPU)", c.l2_bytes * c.smx_count / 1024);
}

fn histogram_row(h: &ActiveHistogram) -> String {
    let f = |i| h.bucket_fraction(i) * 100.0;
    format!(
        "eff {:5.1}%  W1:8 {:4.1}%  W9:16 {:4.1}%  W17:24 {:4.1}%  W25:32 {:4.1}%",
        h.simd_efficiency() * 100.0,
        f(0),
        f(1),
        f(2),
        f(3)
    )
}

/// Figure 2: SIMD efficiency breakdown of Aila's kernel per bounce on the
/// conference room.
fn fig2() {
    banner("Figure 2: Aila kernel SIMD efficiency per bounce (conference room)");
    let wl = capture_workloads(&[SceneKind::Conference], 8);
    for b in 1..=wl[0].streams.depth() {
        let stream = wl[0].streams.bounce(b);
        if stream.scripts.is_empty() {
            println!("B{b}: (no surviving rays)");
            continue;
        }
        let out = run_method(Method::Aila, &stream.scripts);
        println!("B{b}: {}", histogram_row(&out.stats.issued));
    }
}

/// Figure 8: Mrays/s for bounces 1-4 under different backup-row configs.
fn fig8() {
    banner("Figure 8: ray tracing performance (Mrays/s) vs backup ray rows");
    let gpu = GpuConfig::gtx780();
    let methods: Vec<(String, Method)> = vec![
        ("Aila".into(), Method::Aila),
        (
            "DRS M=1 (no xbank, 58w)".into(),
            Method::Drs { backup_rows: 1, swap_buffers: 9, extra_bank: false },
        ),
        ("DRS M=1".into(), Method::Drs { backup_rows: 1, swap_buffers: 9, extra_bank: true }),
        ("DRS M=2".into(), Method::Drs { backup_rows: 2, swap_buffers: 9, extra_bank: true }),
        ("DRS M=4".into(), Method::Drs { backup_rows: 4, swap_buffers: 9, extra_bank: true }),
        ("DRS M=8".into(), Method::Drs { backup_rows: 8, swap_buffers: 9, extra_bank: true }),
        ("DRS ideal".into(), Method::IdealDrs),
    ];
    let workloads = capture_workloads(&SceneKind::ALL, 4);
    for wl in &workloads {
        println!("\n{}:", wl.kind);
        print!("{:26}", "");
        for b in 1..=4 {
            print!("      B{b}");
        }
        println!();
        for (label, method) in &methods {
            print!("{label:26}");
            for b in 1..=wl.streams.depth() {
                let stream = wl.streams.bounce(b);
                if stream.scripts.is_empty() {
                    print!("      --");
                    continue;
                }
                let out = run_method(*method, &stream.scripts);
                print!("  {:6.1}", out.stats.mrays_per_sec(gpu.clock_mhz, gpu.smx_count));
            }
            println!();
        }
    }
}

/// Figure 9: rdctrl warp-issue stall rate vs backup rows.
fn fig9() {
    banner("Figure 9: rdctrl warp issue stall rate vs backup ray rows");
    let workloads = capture_workloads(&[SceneKind::Conference, SceneKind::FairyForest], 4);
    for wl in &workloads {
        println!("\n{}:", wl.kind);
        for m in [1usize, 2, 4, 8] {
            let method = Method::Drs { backup_rows: m, swap_buffers: 9, extra_bank: true };
            let (outs, _) = run_all_bounces(method, &wl.streams);
            let stalls: u64 = outs.iter().map(|o| o.stats.rdctrl_stalls).sum();
            let issued: u64 = outs.iter().map(|o| o.stats.rdctrl_issued).sum();
            let rate = stalls as f64 / (stalls + issued).max(1) as f64;
            println!(
                "  M={m}: stall rate {:6.2}%  ({} stalls / {} issues)",
                rate * 100.0,
                stalls,
                issued
            );
        }
    }
}

/// Table 2: Mrays/s vs swap-buffer count, plus average swap latency.
fn table2() {
    banner("Table 2: ray tracing performance vs swap buffers (1 backup row)");
    let gpu = GpuConfig::gtx780();
    let buffer_counts = [6usize, 9, 12, 18];
    let workloads = capture_workloads(&SceneKind::ALL, 4);
    println!("{:16} {:>4} {:>9} {:>9} {:>9} {:>9}", "scene", "", "#6", "#9", "#12", "#18");
    let mut swap_cycles = vec![(0u64, 0u64); buffer_counts.len()];
    for wl in &workloads {
        for b in 1..=wl.streams.depth() {
            let stream = wl.streams.bounce(b);
            if stream.scripts.is_empty() {
                continue;
            }
            print!("{:16} B{b:<3}", wl.kind.to_string());
            for (i, &buffers) in buffer_counts.iter().enumerate() {
                let method =
                    Method::Drs { backup_rows: 1, swap_buffers: buffers, extra_bank: false };
                let out = run_method(method, &stream.scripts);
                swap_cycles[i].0 += out.stats.swap_cycle_sum;
                swap_cycles[i].1 += out.stats.swaps_completed;
                print!(" {:9.2}", out.stats.mrays_per_sec(gpu.clock_mhz, gpu.smx_count));
            }
            println!();
        }
    }
    print!("avg swap cycles     ");
    for (sum, n) in &swap_cycles {
        print!(" {:9.1}", *sum as f64 / (*n).max(1) as f64);
    }
    println!();
}

/// Figure 10: SIMD efficiency and utilization breakdown for all methods.
fn fig10() {
    banner("Figure 10: SIMD efficiency and utilization breakdown");
    let methods = [Method::Aila, Method::Dmk, Method::Tbc, Method::drs_default()];
    let workloads = capture_workloads(&SceneKind::ALL, 8);
    for wl in &workloads {
        println!("\n{}:", wl.kind);
        for method in methods {
            println!("  {}:", method.label());
            let mut agg_all = ActiveHistogram::default();
            let mut agg_si = ActiveHistogram::default();
            for b in 1..=wl.streams.depth() {
                let stream = wl.streams.bounce(b);
                if stream.scripts.is_empty() {
                    continue;
                }
                let out = run_method(method, &stream.scripts);
                agg_all.merge(&out.stats.issued);
                agg_si.merge(&out.stats.issued_si);
                if b <= 3 {
                    let si = if out.stats.issued_si.total > 0 {
                        format!(
                            "  SI {:4.1}%",
                            out.stats.issued_si.total as f64
                                / (out.stats.issued.total + out.stats.issued_si.total) as f64
                                * 100.0
                        )
                    } else {
                        String::new()
                    };
                    println!("    B{b}: {}{si}", histogram_row(&out.stats.issued));
                }
            }
            let mut combined = agg_all;
            combined.merge(&agg_si);
            let si_share = if combined.total > 0 {
                agg_si.total as f64 / combined.total as f64 * 100.0
            } else {
                0.0
            };
            println!("    overall: {}  (SI share {:.1}%)", histogram_row(&combined), si_share);
        }
    }
}

/// Figure 11: simulated performance and speedups normalized to Aila.
fn fig11() {
    banner("Figure 11: performance (Mrays/s) and speedup vs Aila");
    let gpu = GpuConfig::gtx780();
    let methods = [Method::Aila, Method::Dmk, Method::Tbc, Method::drs_default()];
    let workloads = capture_workloads(&SceneKind::ALL, 8);
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for wl in &workloads {
        println!("\n{}:", wl.kind);
        let mut overall = Vec::new();
        for method in methods.iter() {
            let (outs, agg) = run_all_bounces(*method, &wl.streams);
            let mrays = agg.mrays(&gpu);
            let per_bounce: Vec<String> = outs
                .iter()
                .take(3)
                .map(|o| format!("{:6.1}", o.stats.mrays_per_sec(gpu.clock_mhz, gpu.smx_count)))
                .collect();
            println!(
                "  {:12} B1-B3 [{}]  overall {:7.1} Mrays/s",
                method.label(),
                per_bounce.join(" "),
                mrays
            );
            overall.push(mrays);
        }
        let aila = overall[0].max(1e-9);
        print!("  speedup vs Aila:");
        for (mi, v) in overall.iter().enumerate() {
            print!("  {} {:.2}x", methods[mi].label(), v / aila);
            speedups[mi].push(v / aila);
        }
        println!();
    }
    println!("\naverage speedups over the four scenes:");
    for (mi, method) in methods.iter().enumerate() {
        let avg = speedups[mi].iter().sum::<f64>() / speedups[mi].len().max(1) as f64;
        println!("  {:12} {:.2}x", method.label(), avg);
    }
}

/// Section 4.5: hardware overhead accounting.
fn overhead() {
    banner("Section 4.5: hardware overhead");
    let cfg = DrsConfig::paper_default();
    let o = DrsOverhead::for_config(&cfg);
    println!("DRS (58 warps, 1 backup row, 6 swap buffers):");
    println!(
        "  swap buffers      {:5} B  (paper: {} B)",
        o.swap_buffer_bits / 8,
        paper::SWAP_BUFFER_BYTES
    );
    println!(
        "  ray state table   {:5} B  (paper: {} B)",
        o.ray_state_table_bits / 8,
        paper::RAY_STATE_TABLE_BYTES
    );
    println!("  renaming table    {:5} B", o.renaming_table_bits.div_ceil(8));
    println!("  control state     {:5} B", o.control_state_bits.div_ceil(8));
    println!(
        "  total             {:5} B  (paper: ~{} B)",
        o.total_bytes(),
        paper::TOTAL_PER_SMX_BYTES
    );
    println!(
        "  fraction of 256 KB register file: {:.2}%  (paper: {:.2}%)",
        o.fraction_of_register_file(paper::REGFILE_BYTES) * 100.0,
        paper::REGFILE_FRACTION * 100.0
    );
    println!(
        "  synthesized area: {} mm²/core × {} SMX / {} mm² die = {:.2}% (paper: {:.2}%)",
        paper::AREA_PER_CORE_MM2,
        paper::SMX_COUNT,
        paper::GPU_DIE_MM2,
        paper::AREA_PER_CORE_MM2 * paper::SMX_COUNT as f64 / paper::GPU_DIE_MM2 * 100.0,
        paper::GPU_AREA_FRACTION * 100.0
    );
    println!("\nbaseline storage for comparison:");
    println!(
        "  DMK spawn memory (54 warps): {:.2} KB",
        dmk_spawn_memory_bytes(54, 32) as f64 / 1024.0
    );
    println!(
        "  TBC warp buffer (10 blocks): {:.2} KB + per-lane-addressable register file",
        tbc_warp_buffer_bytes(10, 32, 64) as f64 / 1024.0
    );
}

/// Ablations of the design choices DESIGN.md calls out: Aila's software
/// optimizations (speculative traversal / terminated-ray replacement) and
/// the BVH build quality feeding every experiment.
fn ablation() {
    use drs_bvh::{BuildMethod, BuildParams, Bvh};
    use drs_kernels::{WhileWhileConfig, WhileWhileKernel};
    use drs_sim::{NullSpecial, Simulation};
    use drs_trace::BounceStreams;

    banner("Ablations");
    let gpu = GpuConfig::gtx780();
    let wl = capture_workloads(&[SceneKind::Conference], 2);
    let scripts = &wl[0].streams.bounce(2).scripts;

    println!("Aila software-optimization ablation (conference, bounce 2):");
    for (label, spec, replace) in [
        ("while-while (plain)        ", false, false),
        ("+ terminated-ray replace   ", false, true),
        ("+ speculative traversal    ", true, false),
        ("+ both (paper baseline)    ", true, true),
    ] {
        let k = WhileWhileKernel::new(WhileWhileConfig {
            speculative_traversal: spec,
            replace_terminated: replace,
        });
        let out = Simulation::new(
            GpuConfig { max_warps: 48, ..gpu.clone() },
            k.program(),
            Box::new(k.clone()),
            Box::new(NullSpecial),
            scripts,
        )
        .run();
        assert!(out.completed);
        println!(
            "  {label} eff {:5.1}%  {:7.1} Mrays/s",
            out.stats.issued.simd_efficiency() * 100.0,
            out.stats.mrays_per_sec(gpu.clock_mhz, gpu.smx_count)
        );
    }

    println!("\nAcceleration-structure ablation (conference, functional traversal):");
    {
        use drs_bvh::{KdBuildParams, KdTree};
        let tris = (SceneKind::Conference.paper_triangle_count() as f64 * drs_bench::tris_scale())
            as usize;
        let scene = SceneKind::Conference.build_with_tris(tris.max(2_000));
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        let kd = KdTree::build(scene.mesh(), &KdBuildParams::default());
        let mut bvh_nodes = 0usize;
        let mut kd_nodes = 0usize;
        let mut rays = 0usize;
        for i in 0..64 {
            for j in 0..48 {
                let ray =
                    scene.camera().primary_ray((i as f32 + 0.5) / 64.0, (j as f32 + 0.5) / 48.0);
                let mut events = 0usize;
                let _ = bvh.intersect_instrumented(scene.mesh(), &ray, &mut |_| events += 1);
                bvh_nodes += events;
                let (_, v) = kd.intersect_counted(scene.mesh(), &ray);
                kd_nodes += v;
                rays += 1;
            }
        }
        println!("  BVH (binned SAH)   nodes/ray {:5.1}", bvh_nodes as f64 / rays as f64);
        println!(
            "  kd-tree (median)   nodes/ray {:5.1}  (space partitioning, duplicated prims)",
            kd_nodes as f64 / rays as f64
        );
    }

    println!("\nBVH build-quality ablation (conference, primary rays):");
    let tris =
        (SceneKind::Conference.paper_triangle_count() as f64 * drs_bench::tris_scale()) as usize;
    let scene = SceneKind::Conference.build_with_tris(tris.max(2_000));
    for (label, method) in [
        ("binned SAH (16 bins)", BuildMethod::BinnedSah { bins: 16 }),
        ("median split        ", BuildMethod::Median),
    ] {
        let bvh = Bvh::build(scene.mesh(), &BuildParams { method, max_leaf_size: 4 });
        let streams =
            BounceStreams::capture_with_bvh(&scene, &bvh, drs_bench::rays_per_bounce(), 1, 7);
        let stats = streams.bounce(1).stats();
        let out = run_method(Method::Aila, &streams.bounce(1).scripts);
        println!(
            "  {label}  nodes/ray {:5.1}  prims/ray {:4.1}  Aila {:7.1} Mrays/s",
            stats.avg_inner(),
            stats.total_prim_tests as f64 / stats.rays.max(1) as f64,
            out.stats.mrays_per_sec(gpu.clock_mhz, gpu.smx_count)
        );
    }
}

/// Dynamic-energy comparison (the paper's §4.4 register-file argument):
/// ray shuffling adds RF traffic, but the drop in redundant issues makes
/// DRS a net win. Also reports the swap share of RF accesses against the
/// paper's measured 7.36 % (primary) / 18.79 % (secondary).
fn energy() {
    use drs_sim::EnergyModel;

    banner("Energy: per-ray dynamic energy and RF traffic");
    let model = EnergyModel::default();
    let wl = capture_workloads(&[SceneKind::Conference], 2);
    for b in 1..=2 {
        let stream = wl[0].streams.bounce(b);
        if stream.scripts.is_empty() {
            continue;
        }
        println!("\nconference bounce {b} ({} rays):", stream.scripts.len());
        for method in [Method::Aila, Method::Dmk, Method::Tbc, Method::drs_default()] {
            let out = run_method(method, &stream.scripts);
            let e = model.estimate(&out.stats);
            let swap_share = out.stats.swap_regfile_fraction() * 100.0;
            println!(
                "  {:12} {:8.1} nJ/ray   RF accesses {:>10}   swap share {:4.1}%",
                method.label(),
                e.nj_per_ray(out.stats.rays_completed),
                out.stats.regfile_reads + out.stats.regfile_writes + out.stats.swap_accesses,
                swap_share
            );
        }
    }
    println!("\n(paper: swap traffic is 7.36% of RF accesses for primary rays,");
    println!(" 18.79% for secondary — and total RF accesses still fall vs. Aila)");
}
