//! Regenerates every table and figure of the paper's evaluation section
//! through the `drs-harness` job pool.
//!
//! Usage: `experiments [MODE] [--jobs N] [--out PATH] [--no-cache]
//! [--timeline] [--trace-out PATH] [--interval N] [--progress] [--list]`
//! where MODE is one of `table1 | fig2 | fig8 | fig9 | table2 | fig10 |
//! fig11 | overhead | ablation | energy | all` (default `all`).
//!
//! `--timeline` attaches the telemetry collector to every cell and writes
//! stall-attribution totals plus interval timelines to
//! `<out stem>_timeline.json`; `--trace-out PATH` additionally records
//! per-warp stall spans as Chrome trace-event JSON (open in
//! `chrome://tracing` or Perfetto).
//!
//! Each figure is a declarative job set (`drs_harness::figures`); the
//! union of the requested figures' cells is deduplicated by content-
//! derived job id (fig10 and fig11 share their whole grid), executed in
//! parallel with bit-deterministic results, and written both as the
//! familiar stdout tables and as machine-readable JSON
//! (`BENCH_experiments.json`) for the per-PR perf trajectory.
//!
//! Scaling knobs: `DRS_RAYS`, `DRS_TRIS_SCALE`, `DRS_WARPS_SCALE` (see the
//! `drs-bench` crate docs). Absolute Mrays/s values depend on the scaled
//! workloads; the comparisons (who wins, by what factor) are the result.

use drs_bench::cli;
use drs_bench::{figures, Aggregate};
use drs_core::overhead::{dmk_spawn_memory_bytes, paper, tbc_warp_buffer_bytes, DrsOverhead};
use drs_core::DrsConfig;
use drs_harness::{
    run_jobs, CaptureMode, CellResult, CheckpointSpec, ChipConfig, FaultPlan, JobId, Method,
    ResultStore, ResultsFile, RunOptions, Scale, Server, ServerOptions, SimJob, StreamCache,
    WorkloadSpec,
};
use drs_scene::SceneKind;
use drs_sim::{ActiveHistogram, GpuConfig};
use std::collections::HashMap;

/// Cells of the current run, addressable by content-derived job id.
struct Cells {
    by_id: HashMap<JobId, CellResult>,
    scale: Scale,
    /// The chip config every job ran with (`--chip`), or `None` for the
    /// default single-SMX cells scaled by the SMX count.
    chip: Option<ChipConfig>,
}

impl Cells {
    /// The cell for (scene, bounce, method), if it was part of the run.
    fn get(&self, scene: SceneKind, bounce: usize, method: Method) -> Option<&CellResult> {
        let workload = WorkloadSpec::standard(scene, &self.scale, figures::CANONICAL_DEPTH);
        let job = SimJob {
            workload,
            bounce,
            method,
            warps: self.scale.warps(method.paper_warps()),
            chip: self.chip,
        };
        self.by_id.get(&job.id())
    }

    /// Like [`Cells::get`] but demands presence (enumeration bug otherwise).
    fn require(&self, scene: SceneKind, bounce: usize, method: Method) -> &CellResult {
        self.get(scene, bounce, method).unwrap_or_else(|| {
            panic!("cell missing from run: {scene} B{bounce} {}", method.label())
        })
    }
}

fn main() {
    let cli = match cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    if cli.help {
        println!("{}", cli::USAGE);
        return;
    }
    let scale = Scale::from_env();
    if cli.list {
        list_modes(&scale);
        return;
    }
    // Standalone utility modes: neither runs the figure pipeline below.
    if cli.mode == "perf" {
        perf_mode(&cli, &scale);
        return;
    }
    if cli.mode == "report" {
        report_mode(&cli);
        return;
    }
    if cli.mode == "verify" {
        verify_mode(&cli);
        return;
    }
    if cli.mode == "serve" {
        serve_mode(&cli, &scale);
        return;
    }
    if cli.mode == "submit" {
        submit_mode(&cli);
        return;
    }

    let modes = modes_for(&cli.mode);
    let chip_cfg = cli.chip.then(|| ChipConfig::gtx780(cli.sms));

    // Union of all requested figures' jobs, deduped by content id. One
    // simulated cell can serve several figures (fig10/fig11 share every
    // cell; energy is a subset of both). With `--chip` every set is
    // decorated *before* ids are taken, since the chip config is part of
    // job identity.
    let mut jobs: Vec<SimJob> = Vec::new();
    let mut index: HashMap<JobId, usize> = HashMap::new();
    let mut figures_of: Vec<Vec<String>> = Vec::new();
    for mode in &modes {
        let Some(mut set) = figures::by_name(mode, &scale) else { continue };
        if let Some(chip) = chip_cfg {
            set = set.with_chip(chip);
        }
        for job in set.jobs {
            let id = job.id();
            let slot = *index.entry(id).or_insert_with(|| {
                jobs.push(job);
                figures_of.push(Vec::new());
                jobs.len() - 1
            });
            if !figures_of[slot].iter().any(|f| f == mode) {
                figures_of[slot].push(mode.to_string());
            }
        }
    }

    let capture = if cli.use_cache {
        CaptureMode::Cached(StreamCache::with_limit(StreamCache::default_dir(), cli.cache_limit))
    } else {
        CaptureMode::Uncached
    };
    let store = cli.store.then(|| {
        std::sync::Arc::new(ResultStore::new(
            cli.store_dir.clone().unwrap_or_else(ResultStore::default_dir),
        ))
    });
    let telemetry = cli.telemetry_enabled().then(|| drs_telemetry::TelemetryConfig {
        interval: cli.interval,
        trace: cli.trace_out.is_some(),
        ..drs_telemetry::TelemetryConfig::default()
    });
    let faults = match &cli.inject {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", cli::USAGE);
                std::process::exit(2);
            }
        },
        None => FaultPlan::default(),
    };
    let opts = RunOptions {
        workers: cli.workers,
        capture,
        telemetry,
        progress: cli.progress,
        fastpath: cli.fastpath,
        retries: cli.retries,
        job_cycle_budget: cli.job_cycles,
        job_timeout_ms: cli.job_timeout_secs.map(|s| s * 1000),
        chip_threads: cli.chip_threads,
        faults,
        checkpoint: Some(CheckpointSpec { path: cli.checkpoint_path(), resume: cli.resume }),
        store,
        ..RunOptions::serial()
    };
    let report = run_jobs(&jobs, &opts);

    let failures: Vec<String> = report
        .cells
        .iter()
        .filter(|c| c.failure.is_some() || !c.completed)
        .map(|c| {
            let why = c
                .failure
                .as_ref()
                .map_or_else(|| "incomplete".to_string(), |f| format!("{}: {}", f.kind, f.message));
            format!(
                "{} B{} {} ({} attempt(s)): {why}",
                c.job.workload.scene,
                c.job.bounce,
                c.job.method.label(),
                c.attempts
            )
        })
        .collect();
    let resumed = report.resumed;
    if let Some(chip) = &chip_cfg {
        println!(
            "[full-chip mode: {} SMs sharing one L2/MSHR/DRAM system ({}); throughput is \
             chip-accurate, not SMX-count-scaled]",
            chip.sms,
            chip.canonical()
        );
    }
    let cells = Cells {
        by_id: report.cells.iter().map(|c| (c.job.id(), c.clone())).collect(),
        scale,
        chip: chip_cfg,
    };

    for mode in &modes {
        match *mode {
            "table1" => table1(),
            "fig2" => fig2(&cells),
            "fig8" => fig8(&cells),
            "fig9" => fig9(&cells),
            "table2" => table2(&cells),
            "fig10" => fig10(&cells),
            "fig11" => fig11(&cells),
            "overhead" => overhead(),
            "ablation" => ablation(&cells),
            "energy" => energy(&cells),
            other => unreachable!("unhandled mode {other}"),
        }
    }

    let cache = report.cache;
    let results = ResultsFile::from_report(&cli.mode, cli.workers, report, figures_of);
    match results.write_to(&cli.out) {
        Ok(()) => {
            let resumed_note = if resumed > 0 {
                format!("; {resumed} resumed from checkpoint")
            } else {
                String::new()
            };
            let store_note = if cli.store {
                format!("; store: {} hit / {} miss", results.store.hits, results.store.misses)
            } else {
                String::new()
            };
            println!(
                "\n[{} cells -> {}; capture cache: {} hit / {} miss / {} evicted{store_note}{resumed_note}; {:.1}s]",
                results.cells.len(),
                cli.out.display(),
                cache.hits,
                cache.misses,
                cache.evictions,
                results.wall_ms / 1e3
            );
        }
        Err(e) => {
            eprintln!("error: could not write {}: {e}", cli.out.display());
            std::process::exit(1);
        }
    }
    // The volatile run facts (wall clock, workers, cache/store counters)
    // go to a sidecar so the results file itself stays byte-identical
    // across reruns.
    if let Err(e) = drs_harness::write_text(&cli.run_path(), &results.run_json()) {
        eprintln!("warning: could not write {}: {e}", cli.run_path().display());
    }
    if let Some(dump) = &cli.stats_dump {
        if let Err(e) = drs_harness::write_text(dump, &results.stats_json()) {
            eprintln!("error: could not write {}: {e}", dump.display());
            std::process::exit(1);
        }
        println!("[stats dump -> {}]", dump.display());
    }
    if cli.telemetry_enabled() {
        let timeline = cli.timeline_path();
        match results.timeline_json() {
            Some(json) => {
                if let Err(e) = drs_harness::write_text(&timeline, &json) {
                    eprintln!("error: could not write {}: {e}", timeline.display());
                    std::process::exit(1);
                }
                println!("[timeline -> {}]", timeline.display());
            }
            None => println!("[timeline: no instrumented cells in this mode]"),
        }
    }
    if let Some(trace_path) = &cli.trace_out {
        match results.chrome_trace_json() {
            Some(json) => {
                // Self-validate before writing: a malformed trace should
                // fail the run, not silently produce an unloadable file.
                let summary =
                    drs_telemetry::check::validate_chrome_trace(&json).unwrap_or_else(|e| {
                        eprintln!("error: generated chrome trace failed validation: {e}");
                        std::process::exit(1);
                    });
                if let Err(e) = drs_harness::write_text(trace_path, &json) {
                    eprintln!("error: could not write {}: {e}", trace_path.display());
                    std::process::exit(1);
                }
                println!(
                    "[chrome trace -> {}; {} rows, {} spans; load in chrome://tracing]",
                    trace_path.display(),
                    summary.pids.len(),
                    summary.duration_events
                );
            }
            None => println!("[chrome trace: no instrumented cells in this mode]"),
        }
    }
    // Two distinct degradations, two distinct exit codes: a failed cell
    // means the results are incomplete (exit 1); a failed store write
    // after a successful simulation lost only durability — the results
    // in hand are complete and correct, so warn and exit 0.
    if !failures.is_empty() {
        eprintln!("error: {} of {} cell(s) failed:", failures.len(), results.cells.len());
        for cell in failures {
            eprintln!("  {cell}");
        }
        eprintln!(
            "(structured failure records are in {}; rerun with --resume to retry only the \
             failed cells)",
            cli.out.display()
        );
        std::process::exit(1);
    }
    if results.store.write_failures > 0 {
        eprintln!(
            "warning: {} result-store write(s) failed but every simulation succeeded; the \
             results in {} are complete, only store durability was lost (a warm rerun will \
             re-simulate the unpersisted cells)",
            results.store.write_failures,
            cli.out.display()
        );
    }
}

/// The presentation order for a mode (`all` = every section).
fn modes_for(mode: &str) -> Vec<&'static str> {
    let all = [
        "table1", "fig2", "fig8", "fig9", "table2", "fig10", "fig11", "overhead", "ablation",
        "energy",
    ];
    match mode {
        "all" => all.to_vec(),
        m => all.iter().copied().filter(|x| *x == m).collect(),
    }
}

fn list_modes(scale: &Scale) {
    println!("{:10} {:>6}  workloads", "mode", "jobs");
    for mode in cli::MODES {
        if mode == "all" {
            continue;
        }
        match mode {
            "perf" => {
                let jobs: usize = PERF_FIGURES
                    .iter()
                    .map(|f| figures::by_name(f, scale).unwrap().jobs.len())
                    .sum();
                println!(
                    "{:10} {:>6}  {} grids twice (fast path vs naive) -> BENCH_sim.json",
                    mode,
                    jobs * 2,
                    PERF_FIGURES.join("+")
                );
            }
            "report" => {
                println!("{:10} {:>6}  render BENCH_experiments.json -> RESULTS.md", mode, 0);
            }
            "verify" => println!(
                "{:10} {:>6}  static analysis of {} kernel programs -> BENCH_verify.json",
                mode,
                0,
                VERIFY_KERNELS.len()
            ),
            "serve" => {
                println!("{:10} {:>6}  crash-safe experiment service on --socket", mode, 0);
            }
            "submit" => {
                println!("{:10} {:>6}  client: submit --figure to a running server", mode, 0);
            }
            _ => match figures::by_name(mode, scale) {
                Some(set) => {
                    let workloads = set.distinct_workloads();
                    let scenes: Vec<String> =
                        workloads.iter().map(|w| w.scene.to_string()).collect();
                    println!("{:10} {:>6}  {}", mode, set.jobs.len(), scenes.join(", "));
                }
                None => println!("{:10} {:>6}  (print-only, no simulation)", mode, 0),
            },
        }
    }
}

/// The grids the perf baseline times: fig2 (latency-bound single-method
/// column) and fig8 (the big memory-bound backup-row sweep — where cycle
/// skipping pays most).
const PERF_FIGURES: [&str; 2] = ["fig2", "fig8"];

/// `perf` mode: the simulator's own perf baseline. Runs the perf grids
/// twice — event-driven fast path, then naive per-cycle stepping —
/// asserts the two passes produced bit-identical stats, and writes the
/// wall-clock comparison to `BENCH_sim.json` (or `--out` when overridden)
/// for CI regression gating.
fn perf_mode(cli: &cli::Cli, scale: &Scale) {
    use drs_sim::JsonBuf;
    if cli.chip {
        chip_perf_mode(cli, scale);
        return;
    }
    banner("Simulator perf: event-driven fast path vs naive stepping");
    let out = if cli.out == std::path::Path::new("BENCH_experiments.json") {
        std::path::PathBuf::from("BENCH_sim.json")
    } else {
        cli.out.clone()
    };
    // Read the committed baseline up front, so gating against the same
    // path this run is about to overwrite still compares old vs new.
    let baseline = cli.perf_baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: could not read perf baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        let doc = drs_telemetry::check::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: perf baseline {} is not valid JSON: {e}", path.display());
            std::process::exit(1);
        });
        drs_bench::perf::perf_cells(&doc).unwrap_or_else(|| {
            eprintln!("error: {} is not a drs-sim-perf baseline", path.display());
            std::process::exit(1);
        })
    });
    let mut measured: Vec<drs_bench::perf::PerfCell> = Vec::new();
    let opts = |fastpath: bool| RunOptions {
        workers: cli.workers,
        capture: if cli.use_cache {
            CaptureMode::Cached(StreamCache::new(StreamCache::default_dir()))
        } else {
            CaptureMode::Uncached
        },
        progress: cli.progress,
        fastpath,
        ..RunOptions::serial()
    };
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.kv_u64("schema_version", 1);
    j.kv_str("suite", "drs-sim-perf");
    j.kv_u64("workers", cli.workers as u64);
    j.key("figures");
    j.begin_arr();
    let mut mismatches = 0usize;
    for fig in PERF_FIGURES {
        let set = figures::by_name(fig, scale).expect("perf figures are simulation modes");
        let fast = run_jobs(&set.jobs, &opts(true));
        let naive = run_jobs(&set.jobs, &opts(false));
        let mut sim_cycles = 0u64;
        let mut wall_fast = 0.0f64;
        let mut wall_naive = 0.0f64;
        j.begin_obj();
        j.kv_str("figure", fig);
        j.key("cells");
        j.begin_arr();
        for (f, n) in fast.cells.iter().zip(&naive.cells) {
            if f.stats != n.stats {
                eprintln!("error: fast path changed results for {}", f.cell_name());
                mismatches += 1;
            }
            if f.empty {
                continue;
            }
            sim_cycles += f.stats.cycles;
            wall_fast += f.wall_ms;
            wall_naive += n.wall_ms;
            let cycles_per_sec_fast = f.stats.cycles as f64 / (f.wall_ms / 1e3).max(1e-12);
            measured.push((fig.to_string(), f.cell_name(), f.stats.cycles as f64, f.wall_ms));
            j.begin_obj();
            j.kv_str("cell", &f.cell_name());
            j.kv_u64("sim_cycles", f.stats.cycles);
            j.kv_f64("wall_ms_fast", f.wall_ms);
            j.kv_f64("wall_ms_naive", n.wall_ms);
            j.kv_f64("speedup", n.wall_ms / f.wall_ms.max(1e-9));
            j.kv_f64("cycles_per_sec_fast", cycles_per_sec_fast);
            j.kv_f64("cycles_per_sec_naive", n.stats.cycles as f64 / (n.wall_ms / 1e3).max(1e-12));
            j.end_obj();
        }
        j.end_arr();
        j.kv_u64("sim_cycles", sim_cycles);
        j.kv_f64("wall_ms_fast", wall_fast);
        j.kv_f64("wall_ms_naive", wall_naive);
        j.kv_f64("speedup", wall_naive / wall_fast.max(1e-9));
        j.end_obj();
        println!(
            "{fig}: {} cells, {:.3e} sim-cycles; fast {:.0} ms, naive {:.0} ms, speedup {:.2}x",
            fast.cells.len(),
            sim_cycles as f64,
            wall_fast,
            wall_naive,
            wall_naive / wall_fast.max(1e-9)
        );
    }
    j.end_arr();
    j.end_obj();
    if mismatches > 0 {
        eprintln!("error: {mismatches} cell(s) differ between fast path and naive stepping");
        std::process::exit(1);
    }
    match drs_harness::write_text(&out, &j.finish()) {
        Ok(()) => println!("[perf baseline -> {}]", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    if let Some(baseline) = baseline {
        use drs_bench::perf::{compare, REGRESSION_TOLERANCE};
        let gate = compare(&baseline, &measured, REGRESSION_TOLERANCE);
        let path = cli.perf_baseline.as_ref().unwrap();
        if !gate.slow_cells.is_empty() {
            eprintln!(
                "warning: {} cell(s) individually more than {:.0}% slower than {} \
                 (noisy at CI cell durations; the gate judges the aggregate):",
                gate.slow_cells.len(),
                REGRESSION_TOLERANCE * 100.0,
                path.display()
            );
            for msg in &gate.slow_cells {
                eprintln!("  {msg}");
            }
        }
        if gate.regresses(REGRESSION_TOLERANCE) {
            eprintln!(
                "error: aggregate simulator throughput is {:.0}% below {} \
                 ({} paired cells; tolerance {:.0}%)",
                (1.0 - gate.ratio) * 100.0,
                path.display(),
                gate.cells_compared,
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "[perf gate: {} paired cells, aggregate throughput {:.2}x baseline — pass]",
            gate.cells_compared, gate.ratio
        );
    }
}

/// `perf --chip`: chip-accurate vs SMX-count-scaled throughput. Runs a
/// small scene × method × bounce grid twice — once as classic single-SMX
/// cells scaled by `--sms`, once as full chips of `--sms` SMs sharing one
/// L2/MSHR/DRAM system — and writes the per-cell Mrays/s deltas plus the
/// shared-memory contention counters to `BENCH_chip.json` (or `--out`
/// when overridden). The delta *is* the measurement: it quantifies how
/// much the usual "multiply one SMX by 15" extrapolation overstates (or
/// understates) whole-chip throughput once SMs contend for the L2, the
/// MSHR pool, and DRAM bandwidth.
fn chip_perf_mode(cli: &cli::Cli, scale: &Scale) {
    use drs_sim::JsonBuf;
    banner("Chip perf: full-chip simulation vs SMX-count-scaled extrapolation");
    let chip = ChipConfig::gtx780(cli.sms);
    let mut gpu = GpuConfig::gtx780();
    gpu.smx_count = cli.sms;
    let out = if cli.out == std::path::Path::new("BENCH_experiments.json") {
        std::path::PathBuf::from("BENCH_chip.json")
    } else {
        cli.out.clone()
    };

    // A small but representative grid: a closed and an open scene, the
    // Aila baseline and the default DRS config, two bounces each.
    let scenes = [SceneKind::Conference, SceneKind::FairyForest];
    let methods = [Method::Aila, Method::drs_default()];
    let mut scaled_jobs = Vec::new();
    for scene in scenes {
        let workload = WorkloadSpec::standard(scene, scale, figures::CANONICAL_DEPTH);
        for method in methods {
            for bounce in 1..=2 {
                scaled_jobs.push(SimJob {
                    workload,
                    bounce,
                    method,
                    warps: scale.warps(method.paper_warps()),
                    chip: None,
                });
            }
        }
    }
    let chip_jobs: Vec<SimJob> =
        scaled_jobs.iter().map(|j| SimJob { chip: Some(chip), ..*j }).collect();

    let opts = || RunOptions {
        workers: cli.workers,
        capture: if cli.use_cache {
            CaptureMode::Cached(StreamCache::new(StreamCache::default_dir()))
        } else {
            CaptureMode::Uncached
        },
        progress: cli.progress,
        fastpath: cli.fastpath,
        chip_threads: cli.chip_threads,
        ..RunOptions::serial()
    };
    let scaled = run_jobs(&scaled_jobs, &opts());
    let chips = run_jobs(&chip_jobs, &opts());

    let mut j = JsonBuf::new();
    j.begin_obj();
    j.kv_u64("schema_version", 1);
    j.kv_str("suite", "drs-chip-perf");
    j.kv_u64("sms", cli.sms as u64);
    j.kv_str("chip_config", &chip.canonical());
    j.key("cells");
    j.begin_arr();
    let mut failures = 0usize;
    let mut compared = 0usize;
    for (s, c) in scaled.cells.iter().zip(&chips.cells) {
        if s.failure.is_some() || c.failure.is_some() {
            eprintln!("error: chip-perf cell failed: {}", s.cell_name());
            failures += 1;
            continue;
        }
        if s.empty {
            continue;
        }
        let summary = c.chip.as_ref().expect("completed chip cells carry a summary");
        let mrays_scaled = s.mrays_per_sec(&gpu);
        let mrays_chip = c.mrays_per_sec(&gpu);
        let delta_pct = (mrays_chip / mrays_scaled.max(1e-12) - 1.0) * 100.0;
        compared += 1;
        j.begin_obj();
        j.kv_str("cell", &s.cell_name());
        j.kv_f64("mrays_scaled", mrays_scaled);
        j.kv_f64("mrays_chip", mrays_chip);
        j.kv_f64("delta_pct", delta_pct);
        j.kv_f64("l2_hit_rate_scaled", s.stats.l2.hit_rate());
        j.kv_f64("l2_hit_rate_chip", summary.l2_hit_rate());
        j.kv_u64("chip_cycles", c.stats.cycles);
        j.kv_u64("dram_lines", summary.dram_lines);
        j.kv_u64("dram_queue_cycles", summary.dram_queue_cycles);
        j.kv_u64("bank_conflict_cycles", summary.bank_conflict_cycles);
        j.kv_u64("mshr_merges", summary.mshr_merges);
        j.kv_u64("mshr_waits", summary.mshr_waits);
        j.end_obj();
        println!(
            "{:32} scaled {:7.1} Mrays/s  chip {:7.1} Mrays/s  ({:+5.1}%)  L2 {:4.1}% -> {:4.1}%",
            s.cell_name(),
            mrays_scaled,
            mrays_chip,
            delta_pct,
            s.stats.l2.hit_rate() * 100.0,
            summary.l2_hit_rate() * 100.0
        );
    }
    j.end_arr();
    j.kv_u64("cells_compared", compared as u64);
    j.end_obj();
    if failures > 0 || compared < 2 {
        eprintln!("error: chip-perf needs >= 2 clean comparison cells, got {compared}");
        std::process::exit(1);
    }
    match drs_harness::write_text(&out, &j.finish()) {
        Ok(()) => println!("[chip perf -> {}]", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}

/// Every kernel program the static-analysis report covers. TBC and DRS
/// execute the while-if program under their own hardware units, so their
/// entries verify that same program — listed separately because the paper
/// evaluates them as separate methods.
const VERIFY_KERNELS: [&str; 5] = ["while-while", "while-if", "dmk", "tbc", "drs"];

/// The program a registered kernel name executes (mirrors the `drs-verify`
/// CLI's registry).
fn verify_program_for(name: &str) -> drs_sim::Program {
    use drs_baselines::{DmkConfig, DmkKernel};
    use drs_kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
    match name {
        "while-while" => WhileWhileKernel::new(WhileWhileConfig::default()).program(),
        "dmk" => DmkKernel::new(DmkConfig::paper_default(4)).program(),
        "while-if" | "tbc" | "drs" => WhileIfKernel::new().program(),
        other => unreachable!("unregistered kernel `{other}`"),
    }
}

/// `verify` mode: run the full static-analysis suite — structural checks,
/// dataflow diagnostics, shuffle live sets, stack-depth and register-
/// pressure bounds, natural loops — over every registered kernel program
/// and write one machine-readable JSON report for CI to gate on.
///
/// Exits 1 when any kernel has an error-severity diagnostic (including a
/// shuffle live set that differs from the declared per-ray register
/// count); warnings are recorded but do not fail the run.
fn verify_mode(cli: &cli::Cli) {
    use drs_kernels::costs::RAY_LIVE_REGISTERS;
    use drs_sim::JsonBuf;
    use drs_verify::{live_set_summary, verify_program, Severity};

    banner("Static analysis: kernel programs");
    let out = if cli.out == std::path::Path::new("BENCH_experiments.json") {
        std::path::PathBuf::from("BENCH_verify.json")
    } else {
        cli.out.clone()
    };
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.kv_u64("schema_version", 1);
    j.kv_str("suite", "drs-verify-static");
    j.key("kernels");
    j.begin_arr();
    let mut total_errors = 0usize;
    for name in VERIFY_KERNELS {
        let program = verify_program_for(name);
        let mut report = verify_program(&program);
        drs_verify::shuffle::check_shuffle_live(program.blocks(), RAY_LIVE_REGISTERS, &mut report);
        let summary = live_set_summary(&program);
        let errors = report.errors().count();
        let warnings = report.warnings().count();
        total_errors += errors;

        j.begin_obj();
        j.kv_str("kernel", name);
        j.kv_u64("declared_live_regs", RAY_LIVE_REGISTERS as u64);
        j.kv_bool("clean", errors == 0);
        j.kv_u64("errors", errors as u64);
        j.kv_u64("warnings", warnings as u64);
        j.key("diagnostics");
        j.begin_arr();
        for d in &report.diagnostics {
            j.begin_obj();
            j.kv_str("check", d.check.code());
            j.kv_str("severity", if d.severity == Severity::Error { "error" } else { "warning" });
            if let Some(b) = d.block {
                j.kv_u64("block", u64::from(b));
            }
            j.kv_str("message", &d.message);
            j.end_obj();
        }
        j.end_arr();
        j.key("live");
        j.begin_obj();
        j.kv_u64("transfer_regs", summary.transfer_regs() as u64);
        j.kv_u64("max_live", summary.max_live as u64);
        j.kv_u64("min_live", summary.min_live as u64);
        j.kv_u64("max_pressure", summary.max_pressure as u64);
        j.kv_u64("distinct_dsts", summary.distinct_dsts as u64);
        j.kv_u64("reconverge_nesting", summary.reconverge_nesting as u64);
        j.kv_bool("stack_repeatable", summary.stack_repeatable);
        j.kv_u64("stack_depth_bound_32_lanes", summary.stack_depth_bound(32) as u64);
        j.key("points");
        j.begin_arr();
        for p in &summary.points {
            j.begin_obj();
            j.kv_u64("block", u64::from(p.block));
            j.kv_str("label", &p.label);
            j.kv_bool("loop_header", p.loop_header);
            j.kv_bool("reconverge", p.reconverge);
            j.kv_u64("live_regs", p.live_count() as u64);
            j.key("regs");
            j.begin_arr();
            for r in p.live_regs() {
                j.u64(u64::from(r));
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.key("loops");
        j.begin_arr();
        for l in &summary.loops {
            j.begin_obj();
            j.kv_u64("header", u64::from(l.header));
            j.kv_u64("depth", l.depth as u64);
            j.kv_u64("body_blocks", l.body.len() as u64);
            j.kv_bool("trip_count_static", l.trip_bounds.is_some());
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();

        let shuffle_ok = summary.points.iter().all(|p| p.live_count() == RAY_LIVE_REGISTERS);
        println!(
            "{name:12} {} ({} error(s), {} warning(s)); {} shuffle points, live {}..{} regs{}, \
             stack depth <= {}, pressure <= {}",
            if errors == 0 { "clean" } else { "FAILED" },
            errors,
            warnings,
            summary.points.len(),
            summary.min_live,
            summary.max_live,
            if shuffle_ok { " (= declared)" } else { " (MISMATCH)" },
            summary.stack_depth_bound(32),
            summary.max_pressure,
        );
    }
    j.end_arr();
    j.kv_bool("clean", total_errors == 0);
    j.kv_u64("total_errors", total_errors as u64);
    j.end_obj();
    match drs_harness::write_text(&out, &j.finish()) {
        Ok(()) => println!("[static analysis -> {}]", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    if total_errors > 0 {
        eprintln!("error: {total_errors} error-severity diagnostic(s); see {}", out.display());
        std::process::exit(1);
    }
}

/// `serve` mode: run the crash-safe experiment service until SIGTERM.
/// Every finished cell is persisted to the result store as it completes,
/// so a crash at any instant loses at most the in-flight cells and a
/// restarted server resumes from the store with byte-identical results.
fn serve_mode(cli: &cli::Cli, scale: &Scale) {
    let faults = match &cli.inject {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", cli::USAGE);
                std::process::exit(2);
            }
        },
        None => FaultPlan::default(),
    };
    let opts = ServerOptions {
        socket: cli.socket.clone(),
        store_dir: cli.store_dir.clone().unwrap_or_else(ResultStore::default_dir),
        cache_dir: StreamCache::default_dir(),
        cache_limit: cli.cache_limit,
        workers: cli.workers,
        queue_limit: cli.queue,
        scale: *scale,
        fastpath: cli.fastpath,
        retries: cli.retries,
        faults,
        progress: true,
        ..ServerOptions::new(&cli.socket)
    };
    if let Err(e) = Server::run(opts) {
        eprintln!("error: could not start server on {}: {e}", cli.socket.display());
        std::process::exit(1);
    }
}

/// `submit` mode: client for a running server. Submits `--figure`,
/// streams per-cell progress to stderr, fetches the deterministic results
/// document into `--out`. Exit 1 when any cell failed or the server shed
/// the submission.
fn submit_mode(cli: &cli::Cli) {
    use drs_telemetry::check::{self, Value};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let Some(figure) = &cli.figure else {
        eprintln!("error: submit needs --figure (e.g. --figure fig2)\n\n{}", cli::USAGE);
        std::process::exit(2);
    };
    // A server that was just spawned may not have bound its socket yet;
    // retry briefly so `serve & submit` sequences are race-free, then
    // fail loudly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let stream = loop {
        match UnixStream::connect(&cli.socket) {
            Ok(s) => break s,
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    std::io::ErrorKind::NotFound | std::io::ErrorKind::ConnectionRefused
                );
                if !transient || std::time::Instant::now() >= deadline {
                    eprintln!(
                        "error: could not connect to {}: {e}\n(start the server with \
                         `experiments serve`)",
                        cli.socket.display()
                    );
                    std::process::exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
    };
    let mut writer = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("error: could not clone socket: {e}");
        std::process::exit(1);
    });
    let mut reader = BufReader::new(stream);
    let mut send = |line: String| {
        writer.write_all(line.as_bytes()).and_then(|()| writer.write_all(b"\n")).unwrap_or_else(
            |e| {
                eprintln!("error: server connection lost: {e}");
                std::process::exit(1);
            },
        );
    };
    let recv = |reader: &mut BufReader<UnixStream>| -> Value {
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    eprintln!("error: server closed the connection");
                    std::process::exit(1);
                }
                Ok(_) if line.trim().is_empty() => {}
                Ok(_) => {
                    return check::parse(line.trim()).unwrap_or_else(|e| {
                        eprintln!("error: malformed server event: {e}");
                        std::process::exit(1);
                    });
                }
                Err(e) => {
                    eprintln!("error: server connection lost: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let event = |doc: &Value| doc.get("event").and_then(Value::as_str).unwrap_or("").to_string();

    let hello = recv(&mut reader);
    if event(&hello) != "hello" {
        eprintln!("error: expected a hello event, got: {}", event(&hello));
        std::process::exit(1);
    }
    send(format!("{{\"op\":\"submit\",\"figure\":\"{figure}\"}}"));
    let accepted = recv(&mut reader);
    let ticket = match event(&accepted).as_str() {
        "accepted" => {
            let ticket = accepted.get("ticket").and_then(Value::as_num).map_or(0, |n| n as u64);
            let jobs = accepted.get("jobs").and_then(Value::as_num).unwrap_or(0.0);
            eprintln!("[submitted {figure} as ticket {ticket} ({jobs} cells)]");
            ticket
        }
        "busy" => {
            eprintln!("error: server is at its admission limit (busy); retry later");
            std::process::exit(1);
        }
        "draining" => {
            eprintln!("error: server is draining and refused the submission");
            std::process::exit(1);
        }
        other => {
            let msg = accepted.get("message").and_then(Value::as_str).unwrap_or("");
            eprintln!("error: submission failed ({other}): {msg}");
            std::process::exit(1);
        }
    };
    let failed: u64;
    loop {
        let ev = recv(&mut reader);
        match event(&ev).as_str() {
            "cell" => {
                if cli.progress {
                    let done = ev.get("done").and_then(Value::as_num).unwrap_or(0.0);
                    let total = ev.get("total").and_then(Value::as_num).unwrap_or(0.0);
                    let name = ev.get("cell").and_then(Value::as_str).unwrap_or("?");
                    let source = ev.get("source").and_then(Value::as_str).unwrap_or("?");
                    eprintln!("[{done}/{total}] {name} ({source})");
                }
            }
            "done" => {
                failed = ev.get("failed").and_then(Value::as_num).map_or(0, |n| n as u64);
                break;
            }
            other => {
                let msg = ev.get("message").and_then(Value::as_str).unwrap_or("");
                eprintln!("error: unexpected server event '{other}': {msg}");
                std::process::exit(1);
            }
        }
    }
    send(format!("{{\"op\":\"fetch\",\"ticket\":{ticket}}}"));
    // The results event embeds the deterministic document verbatim; slice
    // it out of the raw line (instead of re-serializing a parse) so the
    // written file is byte-identical to what the server produced.
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                eprintln!("error: server closed the connection before the results");
                std::process::exit(1);
            }
            Ok(_) if line.trim().is_empty() => {}
            Ok(_) => break,
            Err(e) => {
                eprintln!("error: server connection lost: {e}");
                std::process::exit(1);
            }
        }
    }
    let line = line.trim();
    let Some(doc_at) = line.find("\"doc\":") else {
        eprintln!("error: expected a results event, got: {line}");
        std::process::exit(1);
    };
    let doc = &line[doc_at + "\"doc\":".len()..line.len() - 1];
    if check::parse(doc).is_err() {
        eprintln!("error: server returned a malformed results document");
        std::process::exit(1);
    }
    if let Err(e) = drs_harness::write_text(&cli.out, doc) {
        eprintln!("error: could not write {}: {e}", cli.out.display());
        std::process::exit(1);
    }
    println!("[ticket {ticket} results -> {}]", cli.out.display());
    if failed > 0 {
        eprintln!("error: {failed} cell(s) failed; see the failure records in the results");
        std::process::exit(1);
    }
}

/// `report` mode: render an existing `BENCH_experiments.json` (the file
/// `--out` points at) into `RESULTS.md` next to it.
fn report_mode(cli: &cli::Cli) {
    let text = match std::fs::read_to_string(&cli.out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: could not read {}: {e}\n(run `experiments all` first, or point --out at \
                 an existing results file)",
                cli.out.display()
            );
            std::process::exit(1);
        }
    };
    let doc = match drs_telemetry::check::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {} is not valid JSON: {e}", cli.out.display());
            std::process::exit(1);
        }
    };
    let md = match drs_bench::report::render(&doc) {
        Ok(md) => md,
        Err(e) => {
            eprintln!("error: {}: {e}", cli.out.display());
            std::process::exit(1);
        }
    };
    let out = cli.out.with_file_name("RESULTS.md");
    match drs_harness::write_text(&out, md.trim_end()) {
        Ok(()) => println!("[report -> {}]", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Table 1: the simulated GPU configuration.
fn table1() {
    banner("Table 1: GPU microarchitectural parameters");
    let c = GpuConfig::gtx780();
    println!("SMX Clock Frequency       {} MHz", c.clock_mhz);
    println!("SIMD lanes                {}", c.simd_lanes);
    println!("SMXs/GPU                  {}", c.smx_count);
    println!("Warp Scheduler            Greedy-Then-Oldest");
    println!("Warp Schedulers/SMX       {}", c.warp_schedulers);
    println!("Inst. Dispatch Units/SMX  {}", c.dispatch_units);
    println!("Registers/SMX             {}", c.registers_per_smx);
    println!("L1 Data Cache             {} KB", c.l1d_bytes / 1024);
    println!("L1 Texture Cache          {} KB", c.l1t_bytes / 1024);
    println!("L2 Cache                  {} KB (whole GPU)", c.l2_bytes * c.smx_count / 1024);
}

fn histogram_row(h: &ActiveHistogram) -> String {
    let f = |i| h.bucket_fraction(i) * 100.0;
    format!(
        "eff {:5.1}%  W1:8 {:4.1}%  W9:16 {:4.1}%  W17:24 {:4.1}%  W25:32 {:4.1}%",
        h.simd_efficiency() * 100.0,
        f(0),
        f(1),
        f(2),
        f(3)
    )
}

/// Figure 2: SIMD efficiency breakdown of Aila's kernel per bounce on the
/// conference room.
fn fig2(cells: &Cells) {
    banner("Figure 2: Aila kernel SIMD efficiency per bounce (conference room)");
    for b in 1..=figures::CANONICAL_DEPTH {
        let cell = cells.require(SceneKind::Conference, b, Method::Aila);
        if cell.empty {
            println!("B{b}: (no surviving rays)");
            continue;
        }
        println!("B{b}: {}", histogram_row(&cell.stats.issued));
    }
}

/// Figure 8: Mrays/s for bounces 1-4 under different backup-row configs.
fn fig8(cells: &Cells) {
    banner("Figure 8: ray tracing performance (Mrays/s) vs backup ray rows");
    let gpu = GpuConfig::gtx780();
    for kind in SceneKind::ALL {
        println!("\n{kind}:");
        print!("{:26}", "");
        for b in 1..=4 {
            print!("      B{b}");
        }
        println!();
        for (label, method) in figures::fig8_methods() {
            print!("{label:26}");
            for b in 1..=4 {
                let cell = cells.require(kind, b, method);
                if cell.empty {
                    print!("      --");
                } else {
                    print!("  {:6.1}", cell.mrays_per_sec(&gpu));
                }
            }
            println!();
        }
    }
}

/// Figure 9: rdctrl warp-issue stall rate vs backup rows.
fn fig9(cells: &Cells) {
    banner("Figure 9: rdctrl warp issue stall rate vs backup ray rows");
    for kind in [SceneKind::Conference, SceneKind::FairyForest] {
        println!("\n{kind}:");
        for m in [1usize, 2, 4, 8] {
            let method = Method::Drs { backup_rows: m, swap_buffers: 9, extra_bank: true };
            let mut stalls = 0u64;
            let mut issued = 0u64;
            for b in 1..=4 {
                let cell = cells.require(kind, b, method);
                stalls += cell.stats.rdctrl_stalls;
                issued += cell.stats.rdctrl_issued;
            }
            let rate = stalls as f64 / (stalls + issued).max(1) as f64;
            println!(
                "  M={m}: stall rate {:6.2}%  ({} stalls / {} issues)",
                rate * 100.0,
                stalls,
                issued
            );
        }
    }
}

/// Table 2: Mrays/s vs swap-buffer count, plus average swap latency.
fn table2(cells: &Cells) {
    banner("Table 2: ray tracing performance vs swap buffers (1 backup row)");
    let gpu = GpuConfig::gtx780();
    println!("{:16} {:>4} {:>9} {:>9} {:>9} {:>9}", "scene", "", "#6", "#9", "#12", "#18");
    let mut swap_cycles = vec![(0u64, 0u64); figures::TABLE2_BUFFERS.len()];
    for kind in SceneKind::ALL {
        for b in 1..=4 {
            let row: Vec<&CellResult> = figures::TABLE2_BUFFERS
                .iter()
                .map(|&buffers| {
                    let method =
                        Method::Drs { backup_rows: 1, swap_buffers: buffers, extra_bank: false };
                    cells.require(kind, b, method)
                })
                .collect();
            if row.iter().all(|c| c.empty) {
                continue;
            }
            print!("{:16} B{b:<3}", kind.to_string());
            for (i, cell) in row.iter().enumerate() {
                swap_cycles[i].0 += cell.stats.swap_cycle_sum;
                swap_cycles[i].1 += cell.stats.swaps_completed;
                print!(" {:9.2}", cell.mrays_per_sec(&gpu));
            }
            println!();
        }
    }
    print!("avg swap cycles     ");
    for (sum, n) in &swap_cycles {
        print!(" {:9.1}", *sum as f64 / (*n).max(1) as f64);
    }
    println!();
}

/// Figure 10: SIMD efficiency and utilization breakdown for all methods.
fn fig10(cells: &Cells) {
    banner("Figure 10: SIMD efficiency and utilization breakdown");
    for kind in SceneKind::ALL {
        println!("\n{kind}:");
        for method in figures::comparison_methods() {
            println!("  {}:", method.label());
            let mut agg_all = ActiveHistogram::default();
            let mut agg_si = ActiveHistogram::default();
            for b in 1..=figures::CANONICAL_DEPTH {
                let cell = cells.require(kind, b, method);
                if cell.empty {
                    continue;
                }
                agg_all.merge(&cell.stats.issued);
                agg_si.merge(&cell.stats.issued_si);
                if b <= 3 {
                    let si = if cell.stats.issued_si.total > 0 {
                        format!(
                            "  SI {:4.1}%",
                            cell.stats.issued_si.total as f64
                                / (cell.stats.issued.total + cell.stats.issued_si.total) as f64
                                * 100.0
                        )
                    } else {
                        String::new()
                    };
                    println!("    B{b}: {}{si}", histogram_row(&cell.stats.issued));
                }
            }
            let mut combined = agg_all;
            combined.merge(&agg_si);
            let si_share = if combined.total > 0 {
                agg_si.total as f64 / combined.total as f64 * 100.0
            } else {
                0.0
            };
            println!("    overall: {}  (SI share {:.1}%)", histogram_row(&combined), si_share);
        }
    }
}

/// Figure 11: simulated performance and speedups normalized to Aila.
fn fig11(cells: &Cells) {
    banner("Figure 11: performance (Mrays/s) and speedup vs Aila");
    let gpu = GpuConfig::gtx780();
    // Chip cells aggregate every SM's rays already; scaling by the SMX
    // count again would double-count (see CellResult::mrays_per_sec).
    let smx = if cells.chip.is_some() { 1 } else { gpu.smx_count };
    let methods = figures::comparison_methods();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for kind in SceneKind::ALL {
        println!("\n{kind}:");
        let mut overall = Vec::new();
        for method in methods {
            let mut agg = Aggregate::default();
            let mut per_bounce = Vec::new();
            for b in 1..=figures::CANONICAL_DEPTH {
                let cell = cells.require(kind, b, method);
                if cell.empty {
                    continue;
                }
                agg.add(&cell.stats);
                if per_bounce.len() < 3 {
                    per_bounce.push(format!("{:6.1}", cell.mrays_per_sec(&gpu)));
                }
            }
            let mrays = agg.mrays_at(gpu.clock_mhz, smx);
            println!(
                "  {:12} B1-B3 [{}]  overall {:7.1} Mrays/s",
                method.label(),
                per_bounce.join(" "),
                mrays
            );
            overall.push(mrays);
        }
        let aila = overall[0].max(1e-9);
        print!("  speedup vs Aila:");
        for (mi, v) in overall.iter().enumerate() {
            print!("  {} {:.2}x", methods[mi].label(), v / aila);
            speedups[mi].push(v / aila);
        }
        println!();
    }
    println!("\naverage speedups over the four scenes:");
    for (mi, method) in methods.iter().enumerate() {
        let avg = speedups[mi].iter().sum::<f64>() / speedups[mi].len().max(1) as f64;
        println!("  {:12} {:.2}x", method.label(), avg);
    }
}

/// Section 4.5: hardware overhead accounting.
fn overhead() {
    banner("Section 4.5: hardware overhead");
    let cfg = DrsConfig::paper_default();
    let o = DrsOverhead::for_config(&cfg);
    println!("DRS (58 warps, 1 backup row, 6 swap buffers):");
    println!(
        "  swap buffers      {:5} B  (paper: {} B)",
        o.swap_buffer_bits / 8,
        paper::SWAP_BUFFER_BYTES
    );
    println!(
        "  ray state table   {:5} B  (paper: {} B)",
        o.ray_state_table_bits / 8,
        paper::RAY_STATE_TABLE_BYTES
    );
    println!("  renaming table    {:5} B", o.renaming_table_bits.div_ceil(8));
    println!("  control state     {:5} B", o.control_state_bits.div_ceil(8));
    println!(
        "  total             {:5} B  (paper: ~{} B)",
        o.total_bytes(),
        paper::TOTAL_PER_SMX_BYTES
    );
    println!(
        "  fraction of 256 KB register file: {:.2}%  (paper: {:.2}%)",
        o.fraction_of_register_file(paper::REGFILE_BYTES) * 100.0,
        paper::REGFILE_FRACTION * 100.0
    );
    println!(
        "  synthesized area: {} mm²/core × {} SMX / {} mm² die = {:.2}% (paper: {:.2}%)",
        paper::AREA_PER_CORE_MM2,
        paper::SMX_COUNT,
        paper::GPU_DIE_MM2,
        paper::AREA_PER_CORE_MM2 * paper::SMX_COUNT as f64 / paper::GPU_DIE_MM2 * 100.0,
        paper::GPU_AREA_FRACTION * 100.0
    );
    println!("\nbaseline storage for comparison:");
    println!(
        "  DMK spawn memory (54 warps): {:.2} KB",
        dmk_spawn_memory_bytes(54, 32) as f64 / 1024.0
    );
    println!(
        "  TBC warp buffer (10 blocks): {:.2} KB + per-lane-addressable register file",
        tbc_warp_buffer_bytes(10, 32, 64) as f64 / 1024.0
    );
}

/// Ablations of the design choices DESIGN.md calls out: Aila's software
/// optimizations (run through the harness grid) and the BVH build quality
/// feeding every experiment (functional, not simulation cells).
fn ablation(cells: &Cells) {
    use drs_bvh::{BuildMethod, BuildParams, Bvh};
    use drs_trace::BounceStreams;

    banner("Ablations");
    let gpu = GpuConfig::gtx780();
    let scale = cells.scale;

    println!("Aila software-optimization ablation (conference, bounce 2):");
    for (label, method) in figures::ablation_variants() {
        let cell = cells.require(SceneKind::Conference, 2, method);
        println!(
            "  {label} eff {:5.1}%  {:7.1} Mrays/s",
            cell.stats.issued.simd_efficiency() * 100.0,
            cell.mrays_per_sec(&gpu)
        );
    }

    println!("\nAcceleration-structure ablation (conference, functional traversal):");
    {
        use drs_bvh::{KdBuildParams, KdTree};
        let scene = SceneKind::Conference.build_with_tris(scale.tris(SceneKind::Conference));
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        let kd = KdTree::build(scene.mesh(), &KdBuildParams::default());
        let mut bvh_nodes = 0usize;
        let mut kd_nodes = 0usize;
        let mut rays = 0usize;
        for i in 0..64 {
            for j in 0..48 {
                let ray =
                    scene.camera().primary_ray((i as f32 + 0.5) / 64.0, (j as f32 + 0.5) / 48.0);
                let mut events = 0usize;
                let _ = bvh.intersect_instrumented(scene.mesh(), &ray, &mut |_| events += 1);
                bvh_nodes += events;
                let (_, v) = kd.intersect_counted(scene.mesh(), &ray);
                kd_nodes += v;
                rays += 1;
            }
        }
        println!("  BVH (binned SAH)   nodes/ray {:5.1}", bvh_nodes as f64 / rays as f64);
        println!(
            "  kd-tree (median)   nodes/ray {:5.1}  (space partitioning, duplicated prims)",
            kd_nodes as f64 / rays as f64
        );
    }

    println!("\nBVH build-quality ablation (conference, primary rays):");
    let scene = SceneKind::Conference.build_with_tris(scale.tris(SceneKind::Conference));
    for (label, method) in [
        ("binned SAH (16 bins)", BuildMethod::BinnedSah { bins: 16 }),
        ("median split        ", BuildMethod::Median),
    ] {
        let bvh = Bvh::build(scene.mesh(), &BuildParams { method, max_leaf_size: 4 });
        let streams = BounceStreams::capture_with_bvh(&scene, &bvh, scale.rays, 1, 7);
        let stats = streams.bounce(1).stats();
        let sim = drs_harness::run_method_with_warps(
            Method::Aila,
            scale.warps(Method::Aila.paper_warps()),
            &streams.bounce(1).scripts,
        )
        .unwrap_or_else(|e| {
            eprintln!("error: BVH-ablation cell failed: {e}");
            std::process::exit(1);
        });
        println!(
            "  {label}  nodes/ray {:5.1}  prims/ray {:4.1}  Aila {:7.1} Mrays/s",
            stats.avg_inner(),
            stats.total_prim_tests as f64 / stats.rays.max(1) as f64,
            sim.mrays_per_sec(gpu.clock_mhz, gpu.smx_count)
        );
    }
}

/// Dynamic-energy comparison (the paper's §4.4 register-file argument):
/// ray shuffling adds RF traffic, but the drop in redundant issues makes
/// DRS a net win. Also reports the swap share of RF accesses against the
/// paper's measured 7.36 % (primary) / 18.79 % (secondary).
fn energy(cells: &Cells) {
    use drs_sim::EnergyModel;

    banner("Energy: per-ray dynamic energy and RF traffic");
    let model = EnergyModel::default();
    for b in 1..=2 {
        let probe = cells.require(SceneKind::Conference, b, Method::Aila);
        if probe.empty {
            continue;
        }
        println!("\nconference bounce {b} ({} rays):", probe.stats.rays_completed);
        for method in figures::comparison_methods() {
            let cell = cells.require(SceneKind::Conference, b, method);
            let e = model.estimate(&cell.stats);
            let swap_share = cell.stats.swap_regfile_fraction() * 100.0;
            println!(
                "  {:12} {:8.1} nJ/ray   RF accesses {:>10}   swap share {:4.1}%",
                method.label(),
                e.nj_per_ray(cell.stats.rays_completed),
                cell.stats.regfile_reads + cell.stats.regfile_writes + cell.stats.swap_accesses,
                swap_share
            );
        }
    }
    println!("\n(paper: swap traffic is 7.36% of RF accesses for primary rays,");
    println!(" 18.79% for secondary — and total RF accesses still fall vs. Aila)");
}
