//! Experiment front-end: paper-figure presentation and micro-benches.
//!
//! The orchestration machinery — job model, worker pool, capture cache,
//! machine-readable results — lives in the `drs-harness` crate and is
//! re-exported here. This crate keeps what is specific to *presenting*
//! the paper's evaluation: the `experiments` binary (one mode per paper
//! table/figure, see [`cli`]) and the dependency-free [`microbench`]
//! benches under `benches/`.
//!
//! Scaling knobs (environment variables, resolved once per process via
//! [`Scale::from_env`]):
//!
//! - `DRS_RAYS` — rays captured per bounce (default 24000; the paper uses
//!   2 000 000 per bounce on a hardware-speed simulator),
//! - `DRS_TRIS_SCALE` — scene triangle count as a fraction of the original
//!   asset (default 0.1),
//! - `DRS_WARPS_SCALE` — scales the resident-warp counts (default 1.0 =
//!   the paper's 48/58/60 warps).

#![warn(missing_docs)]

pub mod cli;
pub mod microbench;
pub mod perf;
pub mod report;

pub use drs_harness::{
    figures, parallel_map, run_jobs, run_method_with_warps, CacheCounters, CaptureMode, CellResult,
    ChipConfig, ChipSummary, JobId, JobSet, Method, ResultsFile, RunOptions, RunReport, Scale,
    SimJob, StreamCache, WorkloadSpec,
};

use drs_scene::SceneKind;
use drs_sim::{GpuConfig, SimStats};
use drs_trace::{BounceStreams, RayScript};

/// Rays captured per bounce (`DRS_RAYS`).
pub fn rays_per_bounce() -> usize {
    Scale::from_env().rays
}

/// Scene scale relative to the paper's assets (`DRS_TRIS_SCALE`).
pub fn tris_scale() -> f64 {
    Scale::from_env().tris_scale
}

/// Run one method over one ray stream to completion, with the warp count
/// the paper assigns the method (scaled by `DRS_WARPS_SCALE`).
///
/// # Panics
///
/// Panics if the simulation fails (cycle cap, watchdog — a modelling bug).
pub fn run_method(method: Method, scripts: &[RayScript]) -> SimStats {
    let scale = Scale::from_env();
    run_method_with_warps(method, scale.warps(method.paper_warps()), scripts)
        .unwrap_or_else(|e| panic!("{} failed: {e}", method.label()))
}

/// A captured per-scene workload.
#[derive(Debug)]
pub struct Workload {
    /// Which benchmark scene.
    pub kind: SceneKind,
    /// Per-bounce ray streams (1-based bounce indices inside).
    pub streams: BounceStreams,
}

/// Capture workloads for the given scenes at `bounces` depth (uncached —
/// harness runs go through [`StreamCache`] instead).
pub fn capture_workloads(scenes: &[SceneKind], bounces: usize) -> Vec<Workload> {
    let scale = Scale::from_env();
    scenes
        .iter()
        .map(|&kind| {
            let spec = WorkloadSpec::standard(kind, &scale, bounces);
            Workload { kind, streams: spec.capture() }
        })
        .collect()
}

/// Aggregate outcome across bounces: total rays / total cycles, and a
/// merged issue histogram — the paper's "overall" rows.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Total rays traced.
    pub rays: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Merged normal-issue histogram.
    pub issued: drs_sim::ActiveHistogram,
    /// Merged SI histogram.
    pub issued_si: drs_sim::ActiveHistogram,
}

impl Aggregate {
    /// Fold one bounce's stats in.
    pub fn add(&mut self, stats: &SimStats) {
        self.rays += stats.rays_completed;
        self.cycles += stats.cycles;
        self.issued.merge(&stats.issued);
        self.issued_si.merge(&stats.issued_si);
    }

    /// Overall Mrays/s at the whole-GPU scale.
    pub fn mrays(&self, gpu: &GpuConfig) -> f64 {
        self.mrays_at(gpu.clock_mhz, gpu.smx_count)
    }

    /// Overall Mrays/s with an explicit SMX scale factor: the GPU's
    /// `smx_count` for single-SMX cells, 1 for full-chip aggregates
    /// (whose rays are already summed across every SM).
    pub fn mrays_at(&self, clock_mhz: u32, smx_count: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.rays as f64 / self.cycles as f64 * f64::from(clock_mhz) * smx_count as f64
    }

    /// Overall SIMD efficiency including SI instructions.
    pub fn simd_efficiency(&self) -> f64 {
        let mut all = self.issued;
        all.merge(&self.issued_si);
        all.simd_efficiency()
    }
}

/// Run `method` over every bounce of `streams`, returning per-bounce
/// statistics plus the aggregate.
pub fn run_all_bounces(method: Method, streams: &BounceStreams) -> (Vec<SimStats>, Aggregate) {
    let mut agg = Aggregate::default();
    let mut outs = Vec::new();
    for b in 1..=streams.depth() {
        let stream = streams.bounce(b);
        if stream.scripts.is_empty() {
            continue;
        }
        let out = run_method(method, &stream.scripts);
        agg.add(&out);
        outs.push(out);
    }
    (outs, agg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() {
        std::env::set_var("DRS_RAYS", "400");
        std::env::set_var("DRS_TRIS_SCALE", "0.01");
        std::env::set_var("DRS_WARPS_SCALE", "0.15");
    }

    #[test]
    fn all_methods_complete_one_bounce() {
        tiny_env();
        let wl = capture_workloads(&[SceneKind::Conference], 2);
        let scripts = &wl[0].streams.bounce(2).scripts;
        for method in
            [Method::Aila, Method::Dmk, Method::Tbc, Method::drs_default(), Method::IdealDrs]
        {
            let out = run_method(method, scripts);
            assert!(out.rays_completed > 0, "{} traced no rays", method.label());
        }
    }

    #[test]
    fn aggregate_accumulates() {
        tiny_env();
        let wl = capture_workloads(&[SceneKind::FairyForest], 2);
        let (outs, agg) = run_all_bounces(Method::Aila, &wl[0].streams);
        assert!(!outs.is_empty());
        let sum: u64 = outs.iter().map(|o| o.rays_completed).sum();
        assert_eq!(agg.rays, sum);
        assert!(agg.mrays(&GpuConfig::gtx780()) > 0.0);
        assert!(agg.simd_efficiency() > 0.0);
    }
}
