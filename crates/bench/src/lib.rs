//! Experiment harness: workload generation and method runners shared by the
//! `experiments` binary (one mode per paper table/figure) and the
//! dependency-free [`microbench`] benches under `benches/`.
//!
//! Scaling knobs (environment variables):
//!
//! - `DRS_RAYS` — rays captured per bounce (default 24000; the paper uses
//!   2 000 000 per bounce on a hardware-speed simulator),
//! - `DRS_TRIS_SCALE` — scene triangle count as a fraction of the original
//!   asset (default 0.1),
//! - `DRS_WARPS_SCALE` — scales the resident-warp counts (default 1.0 =
//!   the paper's 48/58/60 warps).

#![warn(missing_docs)]

pub mod microbench;

use drs_baselines::{DmkConfig, DmkKernel, DmkUnit, TbcConfig, TbcUnit};
use drs_core::system::RowedWhileIf;
use drs_core::{DrsConfig, DrsUnit};
use drs_kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs_scene::SceneKind;
use drs_sim::{GpuConfig, NullSpecial, SimOutcome, SimStats, Simulation};
use drs_trace::{BounceStreams, RayScript};

/// Read a scaling knob from the environment.
fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Rays captured per bounce.
pub fn rays_per_bounce() -> usize {
    env_f64("DRS_RAYS", 24000.0) as usize
}

/// Scene scale relative to the paper's assets.
pub fn tris_scale() -> f64 {
    env_f64("DRS_TRIS_SCALE", 0.1)
}

fn scale_warps(warps: usize) -> usize {
    ((warps as f64 * env_f64("DRS_WARPS_SCALE", 1.0)) as usize).max(2)
}

/// The ray-tracing methods the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Aila-style software while-while kernel (48 warps).
    Aila,
    /// Dynamic Micro-Kernels (54 warps — spawn memory sized per the paper).
    Dmk,
    /// Thread Block Compaction (48 warps, 6-warp blocks).
    Tbc,
    /// Dynamic Ray Shuffling with explicit parameters.
    Drs {
        /// Backup ray rows.
        backup_rows: usize,
        /// Total swap buffers.
        swap_buffers: usize,
        /// Use the extra register bank (60 warps) or shrink to 58 warps.
        extra_bank: bool,
    },
    /// DRS with zero-cost shuffling.
    IdealDrs,
}

impl Method {
    /// The paper's default DRS configuration.
    pub fn drs_default() -> Method {
        Method::Drs { backup_rows: 1, swap_buffers: 6, extra_bank: false }
    }

    /// Display label used in the printed tables.
    pub fn label(&self) -> String {
        match self {
            Method::Aila => "Aila".into(),
            Method::Dmk => "DMK".into(),
            Method::Tbc => "TBC".into(),
            Method::Drs { backup_rows, swap_buffers, extra_bank } => {
                format!(
                    "DRS(M={backup_rows},B={swap_buffers}{})",
                    if *extra_bank { ",xbank" } else { "" }
                )
            }
            Method::IdealDrs => "DRS(ideal)".into(),
        }
    }
}

/// Resident warps for a method (before `DRS_WARPS_SCALE`).
fn paper_warps(method: Method) -> usize {
    match method {
        Method::Aila => 48,
        Method::Dmk => 54,
        Method::Tbc => 48,
        // One backup row without the extra register bank costs two warps'
        // worth of registers (60 -> 58); the extra bank keeps 60.
        Method::Drs { extra_bank: false, .. } => 58,
        Method::Drs { extra_bank: true, .. } | Method::IdealDrs => 60,
    }
}

/// Run one method over one ray stream to completion.
///
/// # Panics
///
/// Panics if the simulation hits its safety cycle cap (a modelling bug).
pub fn run_method(method: Method, scripts: &[RayScript]) -> SimOutcome {
    let warps = scale_warps(paper_warps(method));
    let gpu = GpuConfig { max_warps: warps, max_cycles: 4_000_000_000, ..GpuConfig::gtx780() };
    let out = match method {
        Method::Aila => {
            let k = WhileWhileKernel::new(WhileWhileConfig::default());
            Simulation::new(gpu, k.program(), Box::new(k.clone()), Box::new(NullSpecial), scripts)
                .run()
        }
        Method::Dmk => {
            let cfg = DmkConfig { warps, lanes: 32, pool_slots: warps * 32 };
            let k = DmkKernel::new(cfg);
            Simulation::new(
                gpu,
                k.program(),
                Box::new(k.clone()),
                Box::new(DmkUnit::new(cfg)),
                scripts,
            )
            .run()
        }
        Method::Tbc => {
            let k = WhileIfKernel::new();
            let cfg = TbcConfig { warps, lanes: 32, warps_per_block: 6.min(warps) };
            Simulation::new(
                gpu,
                k.program(),
                Box::new(k.clone()),
                Box::new(TbcUnit::new(cfg)),
                scripts,
            )
            .run()
        }
        Method::Drs { backup_rows, swap_buffers, .. } => {
            let cfg = DrsConfig { warps, backup_rows, swap_buffers, ideal: false, lanes: 32 };
            let k = WhileIfKernel::new();
            let behavior = RowedWhileIf::new(cfg.rows());
            Simulation::new(
                gpu,
                k.program(),
                Box::new(behavior),
                Box::new(DrsUnit::new(cfg)),
                scripts,
            )
            .run()
        }
        Method::IdealDrs => {
            let cfg = DrsConfig { warps, backup_rows: 1, swap_buffers: 6, ideal: true, lanes: 32 };
            let k = WhileIfKernel::new();
            let behavior = RowedWhileIf::new(cfg.rows());
            Simulation::new(
                gpu,
                k.program(),
                Box::new(behavior),
                Box::new(DrsUnit::new(cfg)),
                scripts,
            )
            .run()
        }
    };
    assert!(out.completed, "{} hit the simulation cycle cap", method.label());
    out
}

/// A captured per-scene workload.
#[derive(Debug)]
pub struct Workload {
    /// Which benchmark scene.
    pub kind: SceneKind,
    /// Per-bounce ray streams (1-based bounce indices inside).
    pub streams: BounceStreams,
}

/// Capture workloads for the given scenes at `bounces` depth.
pub fn capture_workloads(scenes: &[SceneKind], bounces: usize) -> Vec<Workload> {
    let rays = rays_per_bounce();
    scenes
        .iter()
        .map(|&kind| {
            let tris = (kind.paper_triangle_count() as f64 * tris_scale()) as usize;
            let scene = kind.build_with_tris(tris.max(2_000));
            let streams = BounceStreams::capture(&scene, rays, bounces, 0xD125_0000 + tris as u64);
            Workload { kind, streams }
        })
        .collect()
}

/// Aggregate outcome across bounces: total rays / total cycles, and a
/// merged issue histogram — the paper's "overall" rows.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Total rays traced.
    pub rays: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Merged normal-issue histogram.
    pub issued: drs_sim::ActiveHistogram,
    /// Merged SI histogram.
    pub issued_si: drs_sim::ActiveHistogram,
}

impl Aggregate {
    /// Fold one bounce's stats in.
    pub fn add(&mut self, stats: &SimStats) {
        self.rays += stats.rays_completed;
        self.cycles += stats.cycles;
        self.issued.merge(&stats.issued);
        self.issued_si.merge(&stats.issued_si);
    }

    /// Overall Mrays/s at the whole-GPU scale.
    pub fn mrays(&self, gpu: &GpuConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.rays as f64 / self.cycles as f64 * gpu.clock_mhz as f64 * gpu.smx_count as f64
    }

    /// Overall SIMD efficiency including SI instructions.
    pub fn simd_efficiency(&self) -> f64 {
        let mut all = self.issued;
        all.merge(&self.issued_si);
        all.simd_efficiency()
    }
}

/// Run `method` over every bounce of `streams`, returning per-bounce
/// outcomes plus the aggregate.
pub fn run_all_bounces(method: Method, streams: &BounceStreams) -> (Vec<SimOutcome>, Aggregate) {
    let mut agg = Aggregate::default();
    let mut outs = Vec::new();
    for b in 1..=streams.depth() {
        let stream = streams.bounce(b);
        if stream.scripts.is_empty() {
            continue;
        }
        let out = run_method(method, &stream.scripts);
        agg.add(&out.stats);
        outs.push(out);
    }
    (outs, agg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() {
        std::env::set_var("DRS_RAYS", "400");
        std::env::set_var("DRS_TRIS_SCALE", "0.01");
        std::env::set_var("DRS_WARPS_SCALE", "0.15");
    }

    #[test]
    fn all_methods_complete_one_bounce() {
        tiny_env();
        let wl = capture_workloads(&[SceneKind::Conference], 2);
        let scripts = &wl[0].streams.bounce(2).scripts;
        for method in
            [Method::Aila, Method::Dmk, Method::Tbc, Method::drs_default(), Method::IdealDrs]
        {
            let out = run_method(method, scripts);
            assert!(out.stats.rays_completed > 0, "{} traced no rays", method.label());
        }
    }

    #[test]
    fn aggregate_accumulates() {
        tiny_env();
        let wl = capture_workloads(&[SceneKind::FairyForest], 2);
        let (outs, agg) = run_all_bounces(Method::Aila, &wl[0].streams);
        assert!(!outs.is_empty());
        let sum: u64 = outs.iter().map(|o| o.stats.rays_completed).sum();
        assert_eq!(agg.rays, sum);
        assert!(agg.mrays(&GpuConfig::gtx780()) > 0.0);
        assert!(agg.simd_efficiency() > 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> =
            [Method::Aila, Method::Dmk, Method::Tbc, Method::drs_default(), Method::IdealDrs]
                .iter()
                .map(|m| m.label())
                .collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
