//! Minimal, dependency-free micro-benchmark harness.
//!
//! Presents a Criterion-shaped API (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`) so the
//! bench targets under `benches/` read like idiomatic Criterion code while
//! building with no registry access. Timing is wall-clock via
//! [`std::time::Instant`]: one warm-up run, then `sample_size` measured runs,
//! reporting min / mean per iteration plus derived throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Units processed per iteration, used to derive a throughput figure.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements (rays, triangles, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Top-level harness handle; hands out benchmark groups.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), sample_size: 10, throughput: None }
    }
}

/// A named collection of benchmarks sharing sample-count and throughput
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the units processed per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), |b| f(b));
        self
    }

    /// Run a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(&self.name, &id.label, &b.samples, self.throughput);
    }

    /// End the group (kept for Criterion API parity; reports are emitted
    /// per-benchmark as they complete).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement context handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: one warm-up call, then `sample_size` timed calls.
    /// Named for Criterion API parity, so bench bodies port verbatim; it
    /// records samples rather than returning an iterator.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(group: &str, label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples recorded");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mut line = format!(
        "{group}/{label}: mean {} min {} ({} samples)",
        fmt_dur(mean),
        fmt_dur(min),
        samples.len()
    );
    if let Some(t) = throughput {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.3} Melem/s", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.3} MiB/s", n as f64 / secs / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Define a function running each listed benchmark against a fresh
/// [`Criterion`] (API-compatible with Criterion's macro of the same name).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` invoking one or more [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("build", "conference");
        assert_eq!(id.label, "build/conference");
        let from: BenchmarkId = "plain".into();
        assert_eq!(from.label, "plain");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_dur(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).ends_with(" s"));
    }
}
