//! CI perf gate: compare a fresh `perf`-mode run against a committed
//! `BENCH_sim.json` baseline.
//!
//! The `experiments perf` mode measures simulated cycles per wall-clock
//! second for every cell of its grids. With `--perf-baseline PATH` the
//! fresh measurements are compared against the committed baseline file
//! cell by cell (matched on figure + cell name), and the run fails when
//! simulator throughput drops more than [`REGRESSION_TOLERANCE`].
//!
//! The pass/fail verdict is the **cycle-weighted aggregate** over all
//! paired cells (total simulated cycles over total wall time), not any
//! single cell: at CI scale individual cells run for milliseconds and
//! their wall times are scheduler-noise-dominated — back-to-back runs
//! of an identical binary show >40% per-cell swings, while the suite
//! aggregate stays within a few percent. Per-cell ratios beyond the
//! tolerance are still reported as diagnostics so a localized regression
//! is visible even when the aggregate absorbs it. The threshold is
//! deliberately soft — CI machines are noisy and absolute wall-clock
//! varies — but a >25% drop in aggregate simulator throughput is a real
//! regression, not noise.

use drs_telemetry::check::Value;

/// Fractional slowdown tolerated before the gate fails: aggregate
/// throughput may fall up to 25% below the committed baseline.
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// One cell's measurement: (figure, cell name, simulated cycles,
/// fast-path wall milliseconds).
pub type PerfCell = (String, String, f64, f64);

/// Outcome of comparing a fresh perf run against a baseline.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Cells present in both runs (matched on figure + cell name).
    /// Cells on only one side are skipped — grids legitimately grow and
    /// shrink across PRs; the gate judges only the overlap.
    pub cells_compared: usize,
    /// Current aggregate throughput over baseline aggregate throughput
    /// (cycle-weighted: Σcycles/Σwall on each side, paired cells only).
    /// 1.0 = unchanged, below 1.0 = slower.
    pub ratio: f64,
    /// Per-cell diagnostics: cells individually slower than the
    /// tolerance, as human-readable messages. Informational — noisy at
    /// CI cell durations, so they never fail the gate by themselves.
    pub slow_cells: Vec<String>,
}

impl GateOutcome {
    /// Whether the aggregate regression exceeds `tolerance` (an empty
    /// overlap never fails — there is nothing to judge).
    pub fn regresses(&self, tolerance: f64) -> bool {
        self.cells_compared > 0 && self.ratio < 1.0 - tolerance
    }
}

/// Extract the per-cell measurements from a parsed `BENCH_sim.json`
/// document. `None` when the document is not a perf baseline (wrong
/// suite or shape) — the caller treats that as a hard error rather than
/// silently passing the gate.
pub fn perf_cells(doc: &Value) -> Option<Vec<PerfCell>> {
    if doc.get("suite")?.as_str()? != "drs-sim-perf" {
        return None;
    }
    let mut out = Vec::new();
    for fig in doc.get("figures")?.as_arr()? {
        let figure = fig.get("figure")?.as_str()?.to_string();
        for cell in fig.get("cells")?.as_arr()? {
            out.push((
                figure.clone(),
                cell.get("cell")?.as_str()?.to_string(),
                cell.get("sim_cycles")?.as_num()?,
                cell.get("wall_ms_fast")?.as_num()?,
            ));
        }
    }
    Some(out)
}

/// Compare `current` against `baseline` over their paired cells.
pub fn compare(baseline: &[PerfCell], current: &[PerfCell], tolerance: f64) -> GateOutcome {
    let mut cells_compared = 0;
    let (mut cycles, mut wall, mut base_cycles, mut base_wall) = (0.0, 0.0, 0.0, 0.0);
    let mut slow_cells = Vec::new();
    for (fig, cell, bc, bw) in baseline {
        let Some((_, _, nc, nw)) = current.iter().find(|(f, c, _, _)| f == fig && c == cell) else {
            continue;
        };
        cells_compared += 1;
        cycles += nc;
        wall += nw;
        base_cycles += bc;
        base_wall += bw;
        let (base_cps, new_cps) = (bc / bw.max(1e-12), nc / nw.max(1e-12));
        if new_cps < base_cps * (1.0 - tolerance) && base_cps > 0.0 {
            slow_cells.push(format!(
                "{fig} {cell}: {new_cps:.3e} cycles/s vs baseline {base_cps:.3e} ({:.0}% slower)",
                (1.0 - new_cps / base_cps) * 100.0
            ));
        }
    }
    let base_rate = base_cycles / base_wall.max(1e-12);
    let ratio = if base_rate > 0.0 { cycles / wall.max(1e-12) / base_rate } else { 1.0 };
    GateOutcome { cells_compared, ratio, slow_cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_telemetry::check;

    fn cell(fig: &str, name: &str, cycles: f64, wall_ms: f64) -> PerfCell {
        (fig.to_string(), name.to_string(), cycles, wall_ms)
    }

    #[test]
    fn parses_a_perf_document() {
        let doc = check::parse(
            r#"{"suite":"drs-sim-perf","figures":[
                {"figure":"fig2","cells":[
                    {"cell":"a","sim_cycles":1000,"wall_ms_fast":1.0},
                    {"cell":"b","sim_cycles":2000,"wall_ms_fast":1.0}]},
                {"figure":"fig8","cells":[
                    {"cell":"c","sim_cycles":3000,"wall_ms_fast":2.0}]}]}"#,
        )
        .unwrap();
        let cells = perf_cells(&doc).unwrap();
        assert_eq!(
            cells,
            vec![
                cell("fig2", "a", 1000.0, 1.0),
                cell("fig2", "b", 2000.0, 1.0),
                cell("fig8", "c", 3000.0, 2.0)
            ]
        );
    }

    #[test]
    fn rejects_non_perf_documents() {
        let doc = check::parse(r#"{"suite":"drs-experiments","figures":[]}"#).unwrap();
        assert!(perf_cells(&doc).is_none());
        let doc = check::parse(r#"{"figures":[]}"#).unwrap();
        assert!(perf_cells(&doc).is_none());
    }

    #[test]
    fn aggregate_regression_fails_the_gate() {
        let baseline = [cell("fig8", "a", 1000.0, 1.0), cell("fig8", "b", 1000.0, 1.0)];
        // Both cells 2x slower: aggregate ratio 0.5.
        let current = [cell("fig8", "a", 1000.0, 2.0), cell("fig8", "b", 1000.0, 2.0)];
        let out = compare(&baseline, &current, REGRESSION_TOLERANCE);
        assert_eq!(out.cells_compared, 2);
        assert!((out.ratio - 0.5).abs() < 1e-9, "{}", out.ratio);
        assert!(out.regresses(REGRESSION_TOLERANCE));
        assert_eq!(out.slow_cells.len(), 2);
        assert!(out.slow_cells[0].contains("50% slower"), "{:?}", out.slow_cells);
    }

    #[test]
    fn single_noisy_cell_does_not_fail_the_aggregate() {
        // One tiny cell 3x slower, one big cell unchanged: the
        // cycle-weighted aggregate barely moves, so the gate passes but
        // the noisy cell is still reported.
        let baseline = [cell("fig8", "big", 100_000.0, 100.0), cell("fig8", "tiny", 100.0, 0.1)];
        let current = [cell("fig8", "big", 100_000.0, 100.0), cell("fig8", "tiny", 100.0, 0.3)];
        let out = compare(&baseline, &current, REGRESSION_TOLERANCE);
        assert!(!out.regresses(REGRESSION_TOLERANCE), "ratio {}", out.ratio);
        assert_eq!(out.slow_cells.len(), 1);
        assert!(out.slow_cells[0].contains("fig8 tiny"));
    }

    #[test]
    fn unpaired_cells_are_skipped() {
        let baseline = [cell("fig8", "gone", 1000.0, 10.0), cell("fig8", "kept", 1000.0, 1.0)];
        let current = [cell("fig8", "kept", 1000.0, 1.0), cell("fig8", "new", 1.0, 100.0)];
        let out = compare(&baseline, &current, REGRESSION_TOLERANCE);
        assert_eq!(out.cells_compared, 1);
        assert!((out.ratio - 1.0).abs() < 1e-9);
        assert!(out.slow_cells.is_empty());
    }

    #[test]
    fn empty_overlap_never_regresses() {
        let out = compare(&[cell("fig2", "a", 1.0, 1.0)], &[cell("fig8", "z", 1.0, 9.0)], 0.25);
        assert_eq!(out.cells_compared, 0);
        assert!(!out.regresses(0.25));
    }

    #[test]
    fn faster_and_equal_runs_pass() {
        let baseline = [cell("fig8", "a", 1000.0, 1.0)];
        assert!(!compare(&baseline, &[cell("fig8", "a", 1000.0, 1.0)], 0.25).regresses(0.25));
        assert!(!compare(&baseline, &[cell("fig8", "a", 5000.0, 1.0)], 0.25).regresses(0.25));
    }
}
