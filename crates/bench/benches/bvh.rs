//! Micro-benchmarks for the BVH substrate: construction and functional
//! traversal throughput.

use drs_bench::microbench::{BenchmarkId, Criterion, Throughput};
use drs_bench::{criterion_group, criterion_main};
use drs_bvh::{BuildMethod, BuildParams, Bvh};
use drs_scene::SceneKind;

fn bvh_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bvh_build");
    group.sample_size(10);
    for kind in [SceneKind::Conference, SceneKind::Plants] {
        let scene = kind.build_with_tris(20_000);
        group.throughput(Throughput::Elements(scene.mesh().len() as u64));
        for (name, method) in
            [("binned_sah", BuildMethod::BinnedSah { bins: 16 }), ("median", BuildMethod::Median)]
        {
            group.bench_with_input(
                BenchmarkId::new(name, kind.name().replace(' ', "_")),
                scene.mesh(),
                |b, mesh| {
                    b.iter(|| Bvh::build(mesh, &BuildParams { method, max_leaf_size: 4 }));
                },
            );
        }
    }
    group.finish();
}

fn bvh_traverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("bvh_traverse");
    group.sample_size(20);
    for kind in SceneKind::ALL {
        let scene = kind.build_with_tris(20_000);
        let bvh = Bvh::build(scene.mesh(), &BuildParams::default());
        let rays: Vec<_> = (0..4096)
            .map(|i| {
                let s = (i % 64) as f32 / 64.0 + 0.005;
                let t = (i / 64) as f32 / 64.0 + 0.005;
                scene.camera().primary_ray(s, t)
            })
            .collect();
        group.throughput(Throughput::Elements(rays.len() as u64));
        group.bench_function(BenchmarkId::new("closest_hit", kind.name().replace(' ', "_")), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for ray in &rays {
                    if bvh.intersect(scene.mesh(), ray).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bvh_build, bvh_traverse);
criterion_main!(benches);
