//! Micro-benchmarks for the cycle-level simulator itself: wall time to
//! simulate a fixed workload for the baseline kernel and for DRS (including
//! its swap engine).

use drs_bench::microbench::{Criterion, Throughput};
use drs_bench::{criterion_group, criterion_main};
use drs_core::system::RowedWhileIf;
use drs_core::{DrsConfig, DrsUnit};
use drs_kernels::{WhileIfKernel, WhileWhileConfig, WhileWhileKernel};
use drs_scene::SceneKind;
use drs_sim::{GpuConfig, NullSpecial, Simulation};
use drs_trace::BounceStreams;

fn simulator(c: &mut Criterion) {
    let scene = SceneKind::Conference.build_with_tris(8_000);
    let streams = BounceStreams::capture(&scene, 2_000, 2, 3);
    let scripts = streams.bounce(2).scripts.clone();
    let gpu = GpuConfig { max_warps: 8, ..GpuConfig::gtx780() };

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(scripts.len() as u64));

    group.bench_function("while_while_aila", |b| {
        b.iter(|| {
            let k = WhileWhileKernel::new(WhileWhileConfig::default());
            Simulation::new(
                gpu.clone(),
                k.program(),
                Box::new(k.clone()),
                Box::new(NullSpecial),
                &scripts,
            )
            .run()
            .expect("completes")
            .cycles
        });
    });

    group.bench_function("while_if_drs", |b| {
        b.iter(|| {
            let cfg =
                DrsConfig { warps: 8, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 };
            let k = WhileIfKernel::new();
            Simulation::new(
                gpu.clone(),
                k.program(),
                Box::new(RowedWhileIf::new(cfg.rows())),
                Box::new(DrsUnit::new(cfg)),
                &scripts,
            )
            .run()
            .expect("completes")
            .cycles
        });
    });

    group.finish();
}

criterion_group!(benches, simulator);
criterion_main!(benches);
