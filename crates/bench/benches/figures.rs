//! Benches mirroring the paper's figure pipelines at miniature scale — one
//! bench per experiment family, so regressions in any stage (scene build,
//! trace capture, per-method simulation) surface here.

use drs_bench::microbench::{BenchmarkId, Criterion};
use drs_bench::{criterion_group, criterion_main, run_method, Method};
use drs_scene::SceneKind;
use drs_trace::BounceStreams;

fn capture_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_pipeline");
    group.sample_size(10);

    // Workload capture (scene + BVH + path walk), as used by every figure.
    group.bench_function("capture_conference", |b| {
        b.iter(|| {
            let scene = SceneKind::Conference.build_with_tris(6_000);
            BounceStreams::capture(&scene, 1_000, 2, 11).depth()
        });
    });

    // One figure cell per method (Figure 10/11 inner loop).
    let scene = SceneKind::Conference.build_with_tris(6_000);
    let streams = BounceStreams::capture(&scene, 1_200, 2, 13);
    let scripts = streams.bounce(2).scripts.clone();
    std::env::set_var("DRS_WARPS_SCALE", "0.15");
    for method in [Method::Aila, Method::Dmk, Method::Tbc, Method::drs_default()] {
        group.bench_with_input(
            BenchmarkId::new("fig11_cell", method.label()),
            &scripts,
            |b, scripts| {
                b.iter(|| run_method(method, scripts).cycles);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, capture_pipeline);
criterion_main!(benches);
